// Tests for OFD data verification (Definition 2.1), including the paper's
// Table 1 / Table 2 examples, approximate support, and inheritance checks.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ofd/ofd.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

// Table 1 (original values) plus the combined drug+country ontology.
struct Fixture {
  Relation rel;
  Ontology ontology;
  SynonymIndex index;
  OfdVerifier verifier;

  static Fixture Make(bool updated_meds) {
    auto csv = ReadCsvFile(std::string(FASTOFD_DATA_DIR) + "/clinical_trials.csv");
    EXPECT_TRUE(csv.ok());
    auto rel = Relation::FromCsv(csv.value());
    EXPECT_TRUE(rel.ok());
    Relation relation = std::move(rel).value();
    if (!updated_meds) {
      // data file ships the *updated* Table 1 (t9=ASA, t11=adizem);
      // restore the original values for the "clean" fixture.
      relation.Set(8, relation.schema().Find("MED"), "tiazac");
      relation.Set(10, relation.schema().Find("MED"), "tiazac");
    }
    // Merge the two ontology files (names are disjoint).
    std::string dir(FASTOFD_DATA_DIR);
    auto drug = ReadOntologyFile(dir + "/drug_ontology.txt");
    auto country = ReadOntologyFile(dir + "/country_ontology.txt");
    EXPECT_TRUE(drug.ok());
    EXPECT_TRUE(country.ok());
    std::string merged = WriteOntology(drug.value()) + WriteOntology(country.value());
    auto ont = ParseOntology(merged);
    EXPECT_TRUE(ont.ok());
    return Fixture(std::move(relation), std::move(ont).value());
  }

 private:
  Fixture(Relation r, Ontology o)
      : rel(std::move(r)),
        ontology(std::move(o)),
        index(ontology, rel.dict()),
        verifier(rel, index, &ontology, /*theta=*/3) {}
};

Ofd MakeOfd(const Schema& s, std::initializer_list<const char*> lhs, const char* rhs,
            OfdKind kind = OfdKind::kSynonym) {
  AttrSet l;
  for (const char* a : lhs) l = l.With(s.Find(a));
  return Ofd{l, s.Find(rhs), kind};
}

TEST(OfdVerifierTest, CcToCtryHoldsAsSynonymOfd) {
  Fixture f = Fixture::Make(/*updated_meds=*/false);
  Ofd ofd = MakeOfd(f.rel.schema(), {"CC"}, "CTRY");
  // The FD fails (USA vs America), but the OFD holds (Example 2.2).
  StrippedPartition cc = StrippedPartition::BuildForSet(f.rel, ofd.lhs);
  StrippedPartition cc_ctry = StrippedPartition::BuildForSet(
      f.rel, ofd.lhs.With(ofd.rhs));
  EXPECT_FALSE(FdHolds(cc, cc_ctry));
  EXPECT_TRUE(f.verifier.Holds(ofd));
}

TEST(OfdVerifierTest, SympDiagToMedHoldsOnOriginalTable) {
  Fixture f = Fixture::Make(/*updated_meds=*/false);
  Ofd ofd = MakeOfd(f.rel.schema(), {"SYMP", "DIAG"}, "MED");
  EXPECT_TRUE(f.verifier.Holds(ofd));
}

TEST(OfdVerifierTest, SympDiagToMedFailsOnUpdatedTable) {
  // Example 1.2: with t9[MED]=ASA and t11[MED]=adizem there is no sense
  // under which {cartia, ASA, tiazac, adizem} are all synonyms.
  Fixture f = Fixture::Make(/*updated_meds=*/true);
  Ofd ofd = MakeOfd(f.rel.schema(), {"SYMP", "DIAG"}, "MED");
  EXPECT_FALSE(f.verifier.Holds(ofd));
}

TEST(OfdVerifierTest, OntologyRepairRestoresSatisfaction) {
  Fixture f = Fixture::Make(/*updated_meds=*/true);
  Ofd ofd = MakeOfd(f.rel.schema(), {"SYMP", "DIAG"}, "MED");
  SenseId fda = f.ontology.FindSense("fda_diltiazem");
  ASSERT_NE(fda, kInvalidSense);
  // Paper resolution (1): add ASA and adizem under the FDA sense.
  f.index.AddValue(fda, f.rel.dict().Lookup("ASA"));
  f.index.AddValue(fda, f.rel.dict().Lookup("adizem"));
  EXPECT_TRUE(f.verifier.Holds(ofd));
}

TEST(OfdVerifierTest, PairwiseSharedSensesAreNotEnough) {
  // Paper Table 2: v,w,z share senses pairwise but the triple intersection
  // is empty, so the OFD must fail — tuple-pair verification is unsound.
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"u", "v"});
  rel.AppendRow({"u", "w"});
  rel.AppendRow({"u", "z"});
  Ontology ont;
  SenseId c = ont.AddSense("C");
  SenseId d = ont.AddSense("D");
  SenseId fsense = ont.AddSense("F");
  SenseId g = ont.AddSense("G");
  // names(v)={C,D}, names(w)={D,F}, names(z)={C,F,G}.
  ont.AddValue(c, "v");
  ont.AddValue(d, "v");
  ont.AddValue(d, "w");
  ont.AddValue(fsense, "w");
  ont.AddValue(c, "z");
  ont.AddValue(fsense, "z");
  ont.AddValue(g, "z");
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  Ofd ofd{AttrSet::Of({0}), 1, OfdKind::kSynonym};

  // Every pair of rows satisfies the OFD...
  for (RowId a = 0; a < 3; ++a) {
    for (RowId b = a + 1; b < 3; ++b) {
      const std::vector<RowId> pair = {a, b};
      EXPECT_TRUE(verifier.HoldsInClass(pair, 1, OfdKind::kSynonym));
    }
  }
  // ...but the whole class does not.
  EXPECT_FALSE(verifier.Holds(ofd));
}

TEST(OfdVerifierTest, TransitivityDoesNotHoldForOfds) {
  // Paper §3.1: R(A,B,C) = {(a,b,d),(a,c,e),(a,b,d)}, b syn c, d !syn e.
  // A->B and B->C hold, but A->C fails.
  Relation rel(Schema({"A", "B", "C"}));
  rel.AppendRow({"a", "b", "d"});
  rel.AppendRow({"a", "c", "e"});
  rel.AppendRow({"a", "b", "d"});
  Ontology ont;
  SenseId s = ont.AddSense("bc");
  ont.AddValue(s, "b");
  ont.AddValue(s, "c");
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  EXPECT_TRUE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kSynonym}));
  EXPECT_TRUE(verifier.Holds({AttrSet::Of({1}), 2, OfdKind::kSynonym}));
  EXPECT_FALSE(verifier.Holds({AttrSet::Of({0}), 2, OfdKind::kSynonym}));
}

TEST(OfdVerifierTest, ValueOutsideOntologyOnlySatisfiedByEquality) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"u", "mystery"});
  rel.AppendRow({"u", "mystery"});
  rel.AppendRow({"w", "mystery"});
  rel.AppendRow({"w", "other"});
  Ontology ont;  // Empty ontology: plain FD semantics.
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  // Class u: equal values -> holds. Class w: distinct, no senses -> fails.
  const std::vector<RowId> class_u = {0, 1};
  const std::vector<RowId> class_w = {2, 3};
  EXPECT_TRUE(verifier.HoldsInClass(class_u, 1, OfdKind::kSynonym));
  EXPECT_FALSE(verifier.HoldsInClass(class_w, 1, OfdKind::kSynonym));
  EXPECT_FALSE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kSynonym}));
}

TEST(OfdVerifierTest, SupportIsOneIffExactHolds) {
  Fixture clean = Fixture::Make(false);
  Fixture dirty = Fixture::Make(true);
  Ofd ofd = MakeOfd(clean.rel.schema(), {"SYMP", "DIAG"}, "MED");
  StrippedPartition p_clean = StrippedPartition::BuildForSet(clean.rel, ofd.lhs);
  StrippedPartition p_dirty = StrippedPartition::BuildForSet(dirty.rel, ofd.lhs);
  EXPECT_DOUBLE_EQ(clean.verifier.Support(ofd, p_clean), 1.0);
  EXPECT_LT(dirty.verifier.Support(ofd, p_dirty), 1.0);
  // Updated table: headache/hypertension class {t8..t11} = {cartia, ASA,
  // tiazac, adizem}; best sense covers 2 of 4 tuples (cartia+tiazac under
  // FDA or cartia+ASA under MoH). Other classes are satisfied.
  // => support = (11 - 4 + 2) / 11 = 9/11.
  EXPECT_NEAR(dirty.verifier.Support(ofd, p_dirty), 9.0 / 11.0, 1e-9);
}

TEST(OfdVerifierTest, SupportPropertyOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    Relation rel(Schema({"X", "Y"}));
    Ontology ont;
    SenseId s0 = ont.AddSense("s0");
    SenseId s1 = ont.AddSense("s1");
    for (int i = 0; i < 4; ++i) ont.AddValue(s0, "a" + std::to_string(i));
    for (int i = 0; i < 4; ++i) ont.AddValue(s1, "b" + std::to_string(i));
    for (int r = 0; r < 60; ++r) {
      std::string x = "x" + std::to_string(rng.NextUint(6));
      std::string pool = rng.NextBernoulli(0.5) ? "a" : "b";
      std::string y = pool + std::to_string(rng.NextUint(4));
      rel.AppendRow({x, y});
    }
    SynonymIndex index(ont, rel.dict());
    OfdVerifier verifier(rel, index);
    Ofd ofd{AttrSet::Of({0}), 1, OfdKind::kSynonym};
    StrippedPartition p = StrippedPartition::BuildForSet(rel, ofd.lhs);
    double support = verifier.Support(ofd, p);
    EXPECT_GE(support, 0.0);
    EXPECT_LE(support, 1.0);
    EXPECT_EQ(verifier.Holds(ofd, p), support == 1.0);
  }
}

TEST(OfdVerifierTest, SavingsCountsSynonymClasses) {
  Fixture f = Fixture::Make(false);
  Ofd ofd = MakeOfd(f.rel.schema(), {"CC"}, "CTRY");
  StrippedPartition p = StrippedPartition::BuildForSet(f.rel, ofd.lhs);
  SynonymSavings savings = f.verifier.Savings(ofd, p);
  // Π*_CC = {US-class (7 tuples), IN-class (3 tuples)}; both contain
  // syntactically distinct but synonymous CTRY values.
  EXPECT_EQ(savings.classes, 2);
  EXPECT_EQ(savings.synonym_classes, 2);
  EXPECT_EQ(savings.saved_tuples, 10);
  EXPECT_EQ(savings.class_tuples, 10);
}

TEST(OfdVerifierTest, InheritanceOfdViaCommonAncestor) {
  Fixture f = Fixture::Make(false);
  // tylenol (acetaminophen family) and ibuprofen (nsaid family) share the
  // ancestor 'continuant_drug' within 3 hops, but not within 1.
  Relation rel(Schema({"G", "MED"}));
  rel.AppendRow({"g", "tylenol"});
  rel.AppendRow({"g", "ibuprofen"});
  SynonymIndex index(f.ontology, rel.dict());
  OfdVerifier loose(rel, index, &f.ontology, /*theta=*/3);
  OfdVerifier strict(rel, index, &f.ontology, /*theta=*/0);
  Ofd inh{AttrSet::Of({0}), 1, OfdKind::kInheritance};
  EXPECT_TRUE(loose.Holds(inh));
  EXPECT_FALSE(strict.Holds(inh));
}

TEST(OfdVerifierTest, SynonymOfdImpliesInheritanceOfdAtSameClass) {
  // Values synonymous under one sense share that sense's concept trivially.
  Fixture f = Fixture::Make(false);
  Relation rel(Schema({"G", "MED"}));
  rel.AppendRow({"g", "cartia"});
  rel.AppendRow({"g", "tiazac"});
  SynonymIndex index(f.ontology, rel.dict());
  OfdVerifier verifier(rel, index, &f.ontology, /*theta=*/0);
  EXPECT_TRUE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kSynonym}));
  EXPECT_TRUE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kInheritance}));
}

}  // namespace
}  // namespace fastofd
