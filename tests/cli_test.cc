// Integration tests for the fastofd command-line tool: gen -> discover ->
// verify -> clean round trips through real files and process exits.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace fastofd {
namespace {

std::string TempDir() {
  const char* t = std::getenv("TMPDIR");
  std::string dir = (t ? t : "/tmp");
  dir += "/fastofd_cli_test";
  std::string cmd = "mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

int RunCli(const std::string& args, std::string* output = nullptr) {
  std::string out_file = TempDir() + "/out.txt";
  std::string cmd = std::string(FASTOFD_CLI_BIN) + " " + args + " > " + out_file +
                    " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  if (output) {
    std::ifstream in(out_file);
    std::ostringstream buf;
    buf << in.rdbuf();
    *output = buf.str();
  }
  return WEXITSTATUS(rc);
}

// Like RunCli, but captures stderr (where --metrics dumps go) instead of
// discarding it.
int RunCliCaptureStderr(const std::string& args, std::string* err_output) {
  std::string out_file = TempDir() + "/out.txt";
  std::string err_file = TempDir() + "/err.txt";
  std::string cmd = std::string(FASTOFD_CLI_BIN) + " " + args + " > " + out_file +
                    " 2> " + err_file;
  int rc = std::system(cmd.c_str());
  std::ifstream in(err_file);
  std::ostringstream buf;
  buf << in.rdbuf();
  *err_output = buf.str();
  return WEXITSTATUS(rc);
}

TEST(CliTest, UsageOnNoCommand) {
  EXPECT_EQ(RunCli(""), 2);
  EXPECT_EQ(RunCli("bogus"), 2);
}

TEST(CliTest, GenDiscoverVerifyCleanPipeline) {
  std::string dir = TempDir();
  std::string data = dir + "/d.csv";
  std::string ont = dir + "/o.txt";
  std::string sigma = dir + "/s.txt";

  // gen: deterministic instance with errors + incompleteness.
  ASSERT_EQ(RunCli("gen --rows 300 --err 0.05 --inc 0.1 --seed 5 --out " + data +
                " --ontology-out " + ont + " --sigma-out " + sigma),
            0);

  // discover: finds OFDs on the dirty data (approximate, kappa 0.9).
  std::string discovered = dir + "/discovered.txt";
  std::string out;
  ASSERT_EQ(RunCli("discover --data " + data + " --ontology " + ont +
                " --kappa 0.9 --out " + discovered, &out),
            0);
  std::ifstream check(discovered);
  EXPECT_TRUE(check.good());

  // verify: the planted sigma is violated on the dirty instance (exit 3).
  EXPECT_EQ(RunCli("verify --data " + data + " --ontology " + ont + " --sigma " +
                sigma, &out),
            3);
  EXPECT_NE(out.find("VIOLATED"), std::string::npos);

  // clean: produces a consistent repair; verify passes afterwards (exit 0).
  std::string repaired = dir + "/repaired.csv";
  std::string repaired_ont = dir + "/repaired_o.txt";
  ASSERT_EQ(RunCli("clean --data " + data + " --ontology " + ont + " --sigma " +
                sigma + " --out " + repaired + " --ontology-out " + repaired_ont,
                &out),
            0);
  EXPECT_NE(out.find("consistent"), std::string::npos);
  EXPECT_EQ(RunCli("verify --data " + repaired + " --ontology " + repaired_ont +
                " --sigma " + sigma, &out),
            0);
  EXPECT_EQ(out.find("VIOLATED"), std::string::npos);
}

TEST(CliTest, MetricsDumpOnStderr) {
  std::string dir = TempDir();
  std::string data = dir + "/m.csv";
  std::string ont = dir + "/mo.txt";
  std::string sigma = dir + "/ms.txt";
  ASSERT_EQ(RunCli("gen --rows 200 --seed 7 --out " + data + " --ontology-out " +
                ont + " --sigma-out " + sigma),
            0);

  // Text dump: per-level timers and the partition-cache counters.
  std::string err;
  ASSERT_EQ(RunCliCaptureStderr("discover --data " + data + " --ontology " + ont +
                " --threads 2 --metrics", &err),
            0);
  EXPECT_NE(err.find("discover.seconds"), std::string::npos);
  EXPECT_NE(err.find("discover.level"), std::string::npos);
  EXPECT_NE(err.find("partition_cache.hits"), std::string::npos);
  EXPECT_NE(err.find("partition_cache.misses"), std::string::npos);
  EXPECT_NE(err.find("partition_cache.evictions"), std::string::npos);

  // JSON dump: one object with the three metric sections.
  ASSERT_EQ(RunCliCaptureStderr("discover --data " + data + " --ontology " + ont +
                " --metrics=json", &err),
            0);
  EXPECT_EQ(err.front(), '{');
  EXPECT_NE(err.find("\"counters\""), std::string::npos);
  EXPECT_NE(err.find("\"timers\""), std::string::npos);
  EXPECT_NE(err.find("\"partition_cache.hits\""), std::string::npos);

  // Without --metrics, stderr stays clean.
  ASSERT_EQ(RunCliCaptureStderr("discover --data " + data + " --ontology " + ont,
                &err),
            0);
  EXPECT_EQ(err.find("discover.seconds"), std::string::npos);
}

TEST(CliTest, MissingInputsFail) {
  EXPECT_EQ(RunCli("discover"), 1);
  EXPECT_EQ(RunCli("verify --data /nonexistent.csv --ontology /nonexistent.txt"), 1);
}

}  // namespace
}  // namespace fastofd
