// Symbolic verification of the OFD axiom system (paper Theorem 3.3):
// derives the full implication relation by brute-force closure under the
// axioms {Identity, Decomposition, Composition} over a small universe, and
// checks that the linear-time Closure procedure computes exactly the
// derivable dependencies. Also exercises the axiom-equivalence direction of
// Theorem 3.6 (Lien's NFD rules are derivable).

#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ofd/inference.h"
#include "relation/attr_set.h"

namespace fastofd {
namespace {

using Dep = std::pair<uint64_t, uint64_t>;  // (lhs mask, rhs mask)

// All dependencies derivable from `sigma` over n attributes by exhaustively
// applying the OFD axioms to a fixpoint.
std::set<Dep> DeriveAll(const std::vector<Dependency>& sigma, int n) {
  const uint64_t kAll = (uint64_t{1} << n);
  std::set<Dep> derived;
  // O1 Identity: X -> X for all X.
  for (uint64_t x = 0; x < kAll; ++x) derived.insert({x, x});
  for (const Dependency& d : sigma) derived.insert({d.lhs.mask(), d.rhs.mask()});

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Dep> snapshot(derived.begin(), derived.end());
    // O2 Decomposition: X -> Y, Z ⊆ Y  =>  X -> Z.
    for (const Dep& d : snapshot) {
      // Enumerate submasks of d.second.
      uint64_t y = d.second;
      for (uint64_t z = y;; z = (z - 1) & y) {
        if (derived.insert({d.first, z}).second) changed = true;
        if (z == 0) break;
      }
    }
    // O3 Composition: X -> Y, Z -> W  =>  XZ -> YW.
    snapshot.assign(derived.begin(), derived.end());
    for (const Dep& a : snapshot) {
      for (const Dep& b : snapshot) {
        if (derived.insert({a.first | b.first, a.second | b.second}).second) {
          changed = true;
        }
      }
    }
  }
  return derived;
}

TEST(AxiomsTest, ClosureComputesExactlyTheDerivableDependencies) {
  Rng rng(123);
  const int n = 3;  // 2^(2n) dependency space: keep the fixpoint tractable.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Dependency> sigma;
    int deps = 1 + static_cast<int>(rng.NextUint(3));
    for (int i = 0; i < deps; ++i) {
      AttrSet lhs = AttrSet::FromMask(rng.NextUint(1u << n));
      AttrSet rhs = AttrSet::FromMask(rng.NextUint(1u << n));
      sigma.push_back({lhs, rhs});
    }
    std::set<Dep> derived = DeriveAll(sigma, n);
    for (uint64_t x = 0; x < (1u << n); ++x) {
      AttrSet closure = Closure(AttrSet::FromMask(x), sigma);
      for (uint64_t y = 0; y < (1u << n); ++y) {
        bool derivable = derived.count({x, y}) > 0;
        bool by_closure = closure.ContainsAll(AttrSet::FromMask(y));
        EXPECT_EQ(derivable, by_closure)
            << "trial " << trial << " X=" << x << " Y=" << y;
      }
    }
  }
}

TEST(AxiomsTest, LienNfdRulesAreDerivable) {
  // Theorem 3.6 (one direction): each NFD axiom instance is OFD-derivable.
  const int n = 4;
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    AttrSet x = AttrSet::FromMask(rng.NextUint(1u << n));
    AttrSet y = AttrSet::FromMask(rng.NextUint(1u << n));
    AttrSet w = AttrSet::FromMask(rng.NextUint(1u << n));
    AttrSet z = w.Intersect(AttrSet::FromMask(rng.NextUint(1u << n)));  // Z ⊆ W

    // N1 Reflexivity: {} ⊢ X -> Y for Y ⊆ X.
    EXPECT_TRUE(Implies({}, x, x.Intersect(y)));
    // N2 Append: {X -> Y} ⊢ XW -> YZ, Z ⊆ W.
    std::vector<Dependency> given = {{x, y}};
    EXPECT_TRUE(Implies(given, x.Union(w), y.Union(z)));
    // N4 Simplification: {X -> YZ} ⊢ X -> Y and X -> Z.
    std::vector<Dependency> yz = {{x, y.Union(z)}};
    EXPECT_TRUE(Implies(yz, x, y));
    EXPECT_TRUE(Implies(yz, x, z));
    // N3 Union: {X -> Y, X -> Z} ⊢ X -> YZ.
    std::vector<Dependency> both = {{x, y}, {x, z}};
    EXPECT_TRUE(Implies(both, x, y.Union(z)));
  }
}

TEST(AxiomsTest, TransitivityIsNotDerivable) {
  // The defining negative result: {A->B, B->C} does not derive A->C when
  // A, B, C are distinct attributes.
  std::vector<Dependency> sigma = {{AttrSet::Of({0}), AttrSet::Of({1})},
                                   {AttrSet::Of({1}), AttrSet::Of({2})}};
  std::set<Dep> derived = DeriveAll(sigma, 3);
  EXPECT_FALSE(derived.count({AttrSet::Of({0}).mask(), AttrSet::Of({2}).mask()}));
  EXPECT_FALSE(Implies(sigma, AttrSet::Of({0}), AttrSet::Of({2})));
}

}  // namespace
}  // namespace fastofd
