// Property tests for the flat partition kernels: IntersectInto / RefineInto /
// IntersectError against a naive map-based reference on randomized relations
// (all-singleton, all-one-class, and ragged class-size shapes), byte-identical
// ProductParallel output across thread counts, flat-layout audit coverage,
// and the PartitionCache eviction-at-budget contract.

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace fastofd {
namespace {

// Shapes for the randomized relations: cardinality 0 means "every cell
// unique" (all rows singleton classes), 1 means one giant class.
struct ColumnShape {
  const char* label;
  std::vector<uint64_t> cardinalities;  // One per attribute.
};

Relation MakeRandomRelation(int rows, const ColumnShape& shape, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t a = 0; a < shape.cardinalities.size(); ++a) {
    names.push_back("A" + std::to_string(a));
  }
  Relation rel((Schema(names)));
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t a = 0; a < shape.cardinalities.size(); ++a) {
      uint64_t card = shape.cardinalities[a];
      uint64_t v = card == 0 ? static_cast<uint64_t>(r) : rng.NextUint(card);
      row.push_back("a" + std::to_string(a) + "_" + std::to_string(v));
    }
    rel.AppendRow(row);
  }
  return rel;
}

// Naive reference: group rows by their tuple of value ids over `attrs`,
// keep the non-singleton groups, order classes by first row. This is the
// definition of a stripped partition, independent of the flat layout.
std::vector<std::vector<RowId>> NaiveClasses(const Relation& rel, AttrSet attrs) {
  std::map<std::vector<ValueId>, std::vector<RowId>> groups;
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    std::vector<ValueId> key;
    for (AttrId a : attrs.ToVector()) {
      key.push_back(rel.Column(a)[static_cast<size_t>(r)]);
    }
    groups[key].push_back(r);
  }
  std::map<RowId, std::vector<RowId>> by_head;  // Rows are appended ascending.
  for (auto& [key, rows] : groups) {
    if (rows.size() >= 2) by_head[rows.front()] = rows;
  }
  std::vector<std::vector<RowId>> out;
  for (auto& [head, rows] : by_head) out.push_back(rows);
  return out;
}

int64_t NaiveError(const std::vector<std::vector<RowId>>& classes) {
  int64_t sum = 0;
  for (const auto& cls : classes) sum += static_cast<int64_t>(cls.size());
  return sum - static_cast<int64_t>(classes.size());
}

// Canonical form of a flat partition for comparison: classes ordered by
// first row (the kernels emit rows strictly ascending within a class, but
// smaller-side probing can permute class order).
std::vector<std::vector<RowId>> Canonical(const StrippedPartition& p) {
  std::map<RowId, std::vector<RowId>> by_head;
  for (const auto& cls : p.ToClassVectors()) by_head[cls.front()] = cls;
  std::vector<std::vector<RowId>> out;
  for (auto& [head, rows] : by_head) out.push_back(rows);
  return out;
}

TEST(FlatKernelPropertyTest, MatchesNaiveReferenceAcrossShapes) {
  const std::vector<ColumnShape> shapes = {
      {"all-singleton", {0, 0}},
      {"all-one-class", {1, 1}},
      {"singleton-x-giant", {0, 1}},
      {"ragged", {3, 40}},
      {"ragged-skewed", {2, 7}},
      {"mid", {16, 16}},
  };
  const std::vector<int> row_counts = {0, 1, 2, 3, 17, 256, 1000};
  for (const ColumnShape& shape : shapes) {
    for (int rows : row_counts) {
      SCOPED_TRACE(std::string(shape.label) + " rows=" + std::to_string(rows));
      Relation rel = MakeRandomRelation(rows, shape, 1234u + static_cast<uint64_t>(rows));
      AttrSet both = AttrSet::Of({0, 1});
      std::vector<std::vector<RowId>> expected = NaiveClasses(rel, both);

      StrippedPartition fa = StrippedPartition::Build(rel, 0);
      StrippedPartition fb = StrippedPartition::Build(rel, 1);
      ASSERT_TRUE(fa.AuditInvariants(rel, AttrSet::Single(0)).ok());
      ASSERT_TRUE(fb.AuditInvariants(rel, AttrSet::Single(1)).ok());

      PartitionScratch scratch;
      StrippedPartition out;

      // Intersection kernel (run twice so the second call exercises the
      // warmed, zero-allocation path into a dirty `out`).
      for (int pass = 0; pass < 2; ++pass) {
        StrippedPartition::IntersectInto(fa, fb, &scratch, &out);
        EXPECT_EQ(Canonical(out), expected) << "intersect pass " << pass;
        EXPECT_TRUE(out.AuditInvariants(rel, both).ok());
      }

      // Refinement by the dictionary-coded column, no column partition.
      StrippedPartition::RefineInto(fa, rel.Column(1), rel.dict().size(),
                                    &scratch, &out);
      EXPECT_EQ(Canonical(out), expected) << "refine";
      EXPECT_TRUE(out.AuditInvariants(rel, both).ok());

      // BuildForSet is the ping-pong refinement composition.
      StrippedPartition direct = StrippedPartition::BuildForSet(rel, both);
      EXPECT_EQ(Canonical(direct), expected) << "build-for-set";

      // Error count without materializing: exact when unbounded...
      const int64_t expected_error = NaiveError(expected);
      EXPECT_EQ(StrippedPartition::IntersectError(
                    fa, fb, &scratch, std::numeric_limits<int64_t>::max()),
                expected_error);
      // ...and any value > max_error is acceptable once the cutoff trips.
      int64_t capped = StrippedPartition::IntersectError(fa, fb, &scratch, 0);
      if (expected_error > 0) {
        EXPECT_GT(capped, 0);
      } else {
        EXPECT_EQ(capped, 0);
      }
    }
  }
}

TEST(FlatKernelPropertyTest, ProductParallelIsByteIdenticalAcrossThreadCounts) {
  // Large enough to clear the parallel-dispatch threshold (1 << 14 rows).
  Relation rel = MakeRandomRelation(20000, {"mid", {64, 97}}, 77);
  StrippedPartition fa = StrippedPartition::Build(rel, 0);
  StrippedPartition fb = StrippedPartition::Build(rel, 1);
  StrippedPartition serial = StrippedPartition::Product(fa, fb);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    StrippedPartition par = StrippedPartition::ProductParallel(fa, fb, &pool);
    // Byte-identical, not just canonically equal: same class order, same
    // arena contents, for any thread count.
    EXPECT_EQ(par.ToClassVectors(), serial.ToClassVectors());
    EXPECT_EQ(par.num_classes(), serial.num_classes());
    EXPECT_EQ(par.sum_sizes(), serial.sum_sizes());
    EXPECT_TRUE(par.AuditInvariants(rel, AttrSet::Of({0, 1})).ok());
  }
}

TEST(RowSpanTest, BasicAccessors) {
  const std::vector<RowId> rows = {2, 5, 9};
  RowSpan span = rows;  // Implicit from a vector.
  EXPECT_EQ(span.size(), 3u);
  EXPECT_FALSE(span.empty());
  EXPECT_EQ(span.front(), 2);
  EXPECT_EQ(span.back(), 9);
  EXPECT_EQ(span[1], 5);
  std::vector<RowId> copied(span.begin(), span.end());
  EXPECT_EQ(copied, rows);
  RowSpan explicit_span(rows.data() + 1, 2);
  EXPECT_EQ(explicit_span.front(), 5);
}

TEST(FlatAuditTest, AcceptsWellFormedLayoutAndRejectsCorruption) {
  // Two classes {0,1,2} and {4,6} over 8 rows.
  const std::vector<RowId> rows = {0, 1, 2, 4, 6};
  const std::vector<uint32_t> offsets = {0, 3, 5};
  EXPECT_TRUE(StrippedPartition::AuditFlatParts(rows, offsets, 8).ok());

  // Offsets must start at 0.
  EXPECT_FALSE(
      StrippedPartition::AuditFlatParts(rows, {1, 3, 5}, 8).ok());
  // Offsets must end at rows.size().
  EXPECT_FALSE(
      StrippedPartition::AuditFlatParts(rows, {0, 3, 4}, 8).ok());
  // Classes must have >= 2 rows (stripped partition).
  EXPECT_FALSE(
      StrippedPartition::AuditFlatParts(rows, {0, 4, 5}, 8).ok());
  // Offsets must be monotone.
  EXPECT_FALSE(
      StrippedPartition::AuditFlatParts(rows, {0, 5, 3}, 8).ok());
  // The arena cannot hold more rows than the relation.
  EXPECT_FALSE(StrippedPartition::AuditFlatParts(rows, offsets, 4).ok());
}

// Regression for the byte accounting fix: entries are charged by actual
// allocated arena bytes, so filling the cache past a small budget must
// evict (before the fix, undercounted footprints let the cache blow its
// --cache-mb budget without ever evicting). Audit-backed: the cache's own
// invariant auditor re-derives every charge and the budget check.
TEST(PartitionCacheTest, EvictsWhenArenaBytesExceedBudget) {
  Relation rel = MakeRandomRelation(2000, {"four-cols", {50, 50, 50, 50}}, 9);
  StrippedPartition sample = StrippedPartition::Build(rel, 0);
  sample.Compact();
  const int64_t footprint = PartitionCache::FootprintBytes(sample);
  ASSERT_GT(footprint, 0);

  // Room for roughly two compacted single-attribute partitions.
  PartitionCache cache(rel, footprint * 2 + footprint / 2);
  for (AttrId a = 0; a < 4; ++a) {
    std::shared_ptr<const StrippedPartition> p = cache.Get(AttrSet::Single(a));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(cache.AuditInvariants().ok());
  }
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
  EXPECT_LT(cache.size(), 4u);
  EXPECT_TRUE(cache.AuditInvariants().ok());
}

}  // namespace
}  // namespace fastofd
