// Unit tests for the checked numeric-parse helpers (common/parse.h) — the
// only sanctioned numeric-parsing entry points in the tree (tools/lint.py
// rule `raw-numeric-parse`).

#include "common/parse.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace fastofd {
namespace {

TEST(ParseInt64Test, ParsesPlainIntegers) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808").value(),
            std::numeric_limits<int64_t>::min());
}

TEST(ParseInt64Test, RejectsPartialParses) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64(" 12").ok());
  EXPECT_FALSE(ParseInt64("12 ").ok());
  EXPECT_FALSE(ParseInt64("+12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
}

TEST(ParseInt64Test, RejectsOverflowInsteadOfSaturating) {
  // strtoll would silently return INT64_MAX here; the checked helper errors.
  Result<int64_t> big = ParseInt64("9223372036854775808");
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.status().message().find("out of range"), std::string::npos);
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesFixedAndScientific) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3").value(), -3.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("2.5E-2").value(), 0.025);
}

TEST(ParseDoubleTest, RejectsGarbageAndRangeErrors) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("nanfish").ok());
  // Overflow to inf / underflow to 0 are reported, not silently absorbed.
  EXPECT_FALSE(ParseDouble("1e999").ok());
  EXPECT_FALSE(ParseDouble("-1e999").ok());
}

TEST(ParseIndexTest, EnforcesRange) {
  EXPECT_EQ(ParseIndex("0", 5).value(), 0);
  EXPECT_EQ(ParseIndex("4", 5).value(), 4);
  EXPECT_FALSE(ParseIndex("5", 5).ok());
  EXPECT_FALSE(ParseIndex("-1", 5).ok());
  // The int64 overflow path must also be an error, not a wrapped index.
  EXPECT_FALSE(ParseIndex("4294967296", 5).ok());
  EXPECT_FALSE(ParseIndex("9223372036854775808", 5).ok());
}

TEST(ParsesAsNumberTest, MatchesFlagHeuristic) {
  EXPECT_TRUE(ParsesAsNumber("-3"));
  EXPECT_TRUE(ParsesAsNumber("2.5e-1"));
  EXPECT_TRUE(ParsesAsNumber("1e999"));  // Out-of-range still *looks* numeric.
  EXPECT_FALSE(ParsesAsNumber(""));
  EXPECT_FALSE(ParsesAsNumber("--x"));
  EXPECT_FALSE(ParsesAsNumber("12px"));
}

}  // namespace
}  // namespace fastofd
