// Unit tests for the relation substrate: AttrSet, Schema, Relation, and the
// stripped-partition algebra (including brute-force cross-checks).

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relation/attr_set.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace fastofd {
namespace {

TEST(AttrSetTest, BasicOps) {
  AttrSet s = AttrSet::Of({0, 3, 5});
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.With(1).size(), 4);
  EXPECT_EQ(s.Without(3).size(), 2);
  EXPECT_EQ(s.First(), 0);
  EXPECT_EQ(s.ToVector(), (std::vector<AttrId>{0, 3, 5}));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a = AttrSet::Of({0, 1, 2});
  AttrSet b = AttrSet::Of({2, 3});
  EXPECT_EQ(a.Union(b), AttrSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrSet::Of({2}));
  EXPECT_EQ(a.Minus(b), AttrSet::Of({0, 1}));
  EXPECT_TRUE(AttrSet::Of({1}).IsSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet::Of({4})));
}

TEST(AttrSetTest, AllAndEmpty) {
  EXPECT_TRUE(AttrSet().empty());
  EXPECT_EQ(AttrSet::All(5).size(), 5);
  EXPECT_EQ(AttrSet::All(64).size(), 64);
  EXPECT_EQ(AttrSet::All(0).size(), 0);
}

TEST(SchemaTest, NamesAndLookup) {
  Schema s({"CC", "CTRY", "SYMP"});
  EXPECT_EQ(s.num_attrs(), 3);
  EXPECT_EQ(s.Find("CTRY"), 1);
  EXPECT_EQ(s.Find("nope"), -1);
  EXPECT_EQ(s.name(2), "SYMP");
  EXPECT_EQ(s.Render(AttrSet::Of({0, 2})), "[CC,SYMP]");
}

Relation MakeTable1() {
  // The paper's Table 1 (clinical trials sample), original values.
  Schema schema({"CC", "CTRY", "SYMP", "TEST", "DIAG", "MED"});
  std::vector<std::vector<std::string>> rows = {
      {"US", "USA", "joint pain", "CT", "osteoarthritis", "ibuprofen"},
      {"IN", "India", "joint pain", "CT", "osteoarthritis", "NSAID"},
      {"CA", "Canada", "joint pain", "CT", "osteoarthritis", "naproxen"},
      {"IN", "Bharat", "nausea", "EEG", "migrane", "analgesic"},
      {"US", "America", "nausea", "EEG", "migrane", "tylenol"},
      {"US", "USA", "nausea", "EEG", "migrane", "acetaminophen"},
      {"IN", "India", "chest pain", "X-ray", "hypertension", "morphine"},
      {"US", "USA", "headache", "CT", "hypertension", "cartia"},
      {"US", "USA", "headache", "MRI", "hypertension", "tiazac"},
      {"US", "America", "headache", "MRI", "hypertension", "tiazac"},
      {"US", "USA", "headache", "CT", "hypertension", "tiazac"},
  };
  auto rel = Relation::FromRows(std::move(schema), rows);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(RelationTest, BuildAndAccess) {
  Relation rel = MakeTable1();
  EXPECT_EQ(rel.num_rows(), 11);
  EXPECT_EQ(rel.num_attrs(), 6);
  EXPECT_EQ(rel.StringAt(3, 1), "Bharat");
  EXPECT_EQ(rel.At(0, 0), rel.At(4, 0));  // US == US
  EXPECT_NE(rel.At(0, 1), rel.At(4, 1));  // USA != America
}

TEST(RelationTest, SetCellAndDistance) {
  Relation a = MakeTable1();
  Relation b = MakeTable1();
  b.Set(8, 5, "ASA");
  b.Set(10, 5, "adizem");
  EXPECT_EQ(a.CellDistance(b), 2);
  EXPECT_EQ(b.StringAt(8, 5), "ASA");
  // Self-distance is zero.
  EXPECT_EQ(a.CellDistance(a), 0);
}

TEST(RelationTest, CsvRoundTrip) {
  Relation rel = MakeTable1();
  CsvTable t = rel.ToCsv();
  auto rel2 = Relation::FromCsv(t);
  ASSERT_TRUE(rel2.ok());
  EXPECT_EQ(rel.CellDistance(rel2.value()), 0);
}

TEST(RelationTest, ArityMismatchRejected) {
  Schema schema({"A", "B"});
  auto rel = Relation::FromRows(schema, {{"1", "2"}, {"1"}});
  EXPECT_FALSE(rel.ok());
}

// ---------------------------------------------------------------------------
// Partitions.

// Brute-force reference partition: group rows by their X-projection strings.
std::set<std::set<RowId>> ReferenceStripped(const Relation& rel, AttrSet attrs) {
  std::map<std::string, std::set<RowId>> groups;
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    std::string key;
    for (AttrId a : attrs.ToVector()) {
      key += rel.StringAt(r, a);
      key += '\x1f';
    }
    groups[key].insert(r);
  }
  std::set<std::set<RowId>> out;
  for (auto& [_, g] : groups) {
    if (g.size() >= 2) out.insert(g);
  }
  return out;
}

std::set<std::set<RowId>> AsSets(const StrippedPartition& p) {
  std::set<std::set<RowId>> out;
  for (const auto& c : p.classes()) out.insert(std::set<RowId>(c.begin(), c.end()));
  return out;
}

TEST(PartitionTest, SingleAttributeMatchesPaperExample) {
  Relation rel = MakeTable1();
  AttrId cc = rel.schema().Find("CC");
  StrippedPartition p = StrippedPartition::Build(rel, cc);
  // Π*_CC = {{t1,t5,t6,t8..t11},{t2,t4,t7}} (0-based: {0,4,5,7,8,9,10},{1,3,6});
  // {t3} = {2} is stripped.
  EXPECT_EQ(p.num_classes(), 2);
  EXPECT_EQ(p.sum_sizes(), 10);
  EXPECT_EQ(AsSets(p), ReferenceStripped(rel, AttrSet::Single(cc)));
}

TEST(PartitionTest, ProductMatchesBruteForce) {
  Relation rel = MakeTable1();
  for (int a = 0; a < rel.num_attrs(); ++a) {
    for (int b = a + 1; b < rel.num_attrs(); ++b) {
      AttrSet s = AttrSet::Of({a, b});
      StrippedPartition p = StrippedPartition::Product(
          StrippedPartition::Build(rel, a), StrippedPartition::Build(rel, b));
      EXPECT_EQ(AsSets(p), ReferenceStripped(rel, s))
          << "attrs " << rel.schema().Render(s);
    }
  }
}

TEST(PartitionTest, EmptySetIsSingleClass) {
  Relation rel = MakeTable1();
  StrippedPartition p = StrippedPartition::BuildForSet(rel, AttrSet());
  EXPECT_EQ(p.num_classes(), 1);
  EXPECT_EQ(p.sum_sizes(), rel.num_rows());
}

TEST(PartitionTest, SuperkeyDetection) {
  // Build a tiny relation where {A,B} is a key but neither A nor B is.
  Schema schema({"A", "B"});
  auto rel = Relation::FromRows(schema, {{"1", "1"}, {"1", "2"}, {"2", "1"}});
  ASSERT_TRUE(rel.ok());
  const Relation& r = rel.value();
  EXPECT_FALSE(StrippedPartition::Build(r, 0).IsSuperkey());
  EXPECT_TRUE(StrippedPartition::BuildForSet(r, AttrSet::Of({0, 1})).IsSuperkey());
}

TEST(PartitionTest, ErrorAndFullCardinality) {
  Relation rel = MakeTable1();
  AttrId cc = rel.schema().Find("CC");
  StrippedPartition p = StrippedPartition::Build(rel, cc);
  // |Π_CC| = 3 classes total (US, IN, CA); e = ||Π*|| - |Π*| = 10 - 2 = 8.
  EXPECT_EQ(p.full_num_classes(), 3);
  EXPECT_EQ(p.error(), 8);
}

TEST(PartitionTest, FdHoldsViaPartitions) {
  Relation rel = MakeTable1();
  const Schema& s = rel.schema();
  // SYMP -> DIAG holds in Table 1 (each symptom maps to one diagnosis).
  StrippedPartition symp = StrippedPartition::Build(rel, s.Find("SYMP"));
  StrippedPartition symp_diag = StrippedPartition::BuildForSet(
      rel, AttrSet::Of({s.Find("SYMP"), s.Find("DIAG")}));
  EXPECT_TRUE(FdHolds(symp, symp_diag));
  // CC -> CTRY does NOT hold syntactically (USA vs America).
  StrippedPartition cc = StrippedPartition::Build(rel, s.Find("CC"));
  StrippedPartition cc_ctry = StrippedPartition::BuildForSet(
      rel, AttrSet::Of({s.Find("CC"), s.Find("CTRY")}));
  EXPECT_FALSE(FdHolds(cc, cc_ctry));
}

class PartitionRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionRandomTest, ProductAgreesWithBruteForceOnRandomRelations) {
  Rng rng(1000 + GetParam());
  const int n_attrs = 4;
  const int n_rows = 40;
  Schema schema({"A", "B", "C", "D"});
  Relation rel((Schema(schema)));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < n_attrs; ++a) {
      row.push_back("v" + std::to_string(rng.NextUint(3)));
    }
    rel.AppendRow(row);
  }
  // Check every attribute set up to size 3.
  for (uint64_t mask = 1; mask < 16; ++mask) {
    AttrSet s = AttrSet::FromMask(mask);
    StrippedPartition p = StrippedPartition::BuildForSet(rel, s);
    EXPECT_EQ(AsSets(p), ReferenceStripped(rel, s)) << "mask " << mask;
    // Stats invariants.
    int64_t total = 0;
    for (const auto& c : p.classes()) {
      EXPECT_GE(c.size(), 2u);
      total += static_cast<int64_t>(c.size());
    }
    EXPECT_EQ(total, p.sum_sizes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionRandomTest, ::testing::Range(0, 10));

TEST(PartitionCacheTest, CachesAndMatchesDirect) {
  Relation rel = MakeTable1();
  PartitionCache cache(rel);
  AttrSet s = AttrSet::Of({0, 2, 4});
  std::shared_ptr<const StrippedPartition> p = cache.Get(s);
  EXPECT_EQ(AsSets(*p), ReferenceStripped(rel, s));
  size_t size_after_first = cache.size();  // Includes recursive prefixes.
  EXPECT_GE(size_after_first, 1u);
  int64_t misses_after_first = cache.misses();
  cache.Get(s);
  EXPECT_EQ(cache.size(), size_after_first);  // No recomputation.
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_EQ(cache.hits(), 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0);
}

int64_t Footprint(const Relation& rel, AttrSet attrs) {
  return PartitionCache::FootprintBytes(
      StrippedPartition::BuildForSet(rel, attrs));
}

TEST(PartitionCacheTest, LruEvictionOrder) {
  Relation rel = MakeTable1();
  AttrSet a = AttrSet::Of({0});  // CC
  AttrSet b = AttrSet::Of({2});  // SYMP
  AttrSet c = AttrSet::Of({3});  // TEST
  // Budget admits any two of the three partitions, never all three.
  PartitionCache cache(
      rel, Footprint(rel, a) + Footprint(rel, b) + Footprint(rel, c) - 1);

  cache.Get(a);
  cache.Get(b);
  EXPECT_EQ(cache.size(), 2u);
  cache.Get(a);  // Touch: a becomes most-recently-used.
  EXPECT_EQ(cache.hits(), 1);
  cache.Get(c);  // Over budget: evicts b — the LRU entry — not a.
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
  cache.Get(a);
  EXPECT_EQ(cache.hits(), 2);  // a survived the eviction.
  cache.Get(b);
  EXPECT_EQ(cache.misses(), 4);  // b did not.
}

TEST(PartitionCacheTest, OversizedServedUncached) {
  Relation rel = MakeTable1();
  PartitionCache cache(rel, 1);  // Nothing fits.
  AttrSet s = AttrSet::Of({0, 2});
  std::shared_ptr<const StrippedPartition> p = cache.Get(s);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(AsSets(*p), ReferenceStripped(rel, s));  // Correct even uncached.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.evictions(), 0);  // Serving uncached is not an eviction.
}

TEST(PartitionCacheTest, BudgetInvariantUnderSweep) {
  Relation rel = MakeTable1();
  // A budget that retains some partitions but forces steady eviction.
  PartitionCache cache(rel, 4 * Footprint(rel, AttrSet::Of({5})));
  for (uint64_t mask = 1; mask < 32; ++mask) {
    AttrSet s = AttrSet::FromMask(mask);
    std::shared_ptr<const StrippedPartition> p = cache.Get(s);
    EXPECT_EQ(AsSets(*p), ReferenceStripped(rel, s)) << "mask " << mask;
    EXPECT_LE(cache.bytes(), cache.budget_bytes());
  }
  EXPECT_GT(cache.evictions(), 0);
}

TEST(PartitionCacheTest, RefetchAfterEvictionMatches) {
  Relation rel = MakeTable1();
  AttrSet a = AttrSet::Of({1});  // CTRY
  AttrSet b = AttrSet::Of({4});  // DIAG
  // Budget holds exactly one of the two entries at a time.
  PartitionCache cache(rel, std::max(Footprint(rel, a), Footprint(rel, b)));
  std::shared_ptr<const StrippedPartition> held = cache.Get(a);
  EXPECT_EQ(cache.size(), 1u);
  cache.Get(b);  // Evicts a.
  EXPECT_EQ(cache.evictions(), 1);
  // The pointer held across the eviction stays valid...
  EXPECT_EQ(AsSets(*held), ReferenceStripped(rel, a));
  // ...and a re-fetch recomputes the identical partition.
  std::shared_ptr<const StrippedPartition> again = cache.Get(a);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_NE(again.get(), held.get());
  EXPECT_EQ(AsSets(*again), ReferenceStripped(rel, a));
}

}  // namespace
}  // namespace fastofd
