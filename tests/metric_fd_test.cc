// Tests for the Metric FD comparison class (paper §2, "Relationship to
// other dependencies") and the dataset flavour wrappers.

#include <string>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "ofd/metric_fd.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("IBM", "IBM Inc."), 5);
  EXPECT_EQ(EditDistance("USA", "America"), 7);
}

TEST(EditDistanceTest, MetricAxiomsOnSamples) {
  const char* words[] = {"cartia", "tiazac", "carta", "", "tylenol"};
  for (const char* a : words) {
    for (const char* b : words) {
      int dab = EditDistance(a, b);
      EXPECT_EQ(dab, EditDistance(b, a));              // symmetry
      EXPECT_EQ(dab == 0, std::string(a) == b);        // identity
      for (const char* c : words) {                    // triangle
        EXPECT_LE(EditDistance(a, c), dab + EditDistance(b, c));
      }
    }
  }
}

TEST(MetricFdTest, DeltaZeroIsTraditionalFd) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "v"});
  rel.AppendRow({"a", "v"});
  EXPECT_TRUE(MetricFdHolds(rel, AttrSet::Of({0}), 1, 0));
  rel.AppendRow({"a", "w"});
  EXPECT_FALSE(MetricFdHolds(rel, AttrSet::Of({0}), 1, 0));
  EXPECT_TRUE(MetricFdHolds(rel, AttrSet::Of({0}), 1, 1));  // v ~ w at δ=1
}

TEST(MetricFdTest, CapturesSmallVariationButNotSynonyms) {
  // The paper's point: MFDs accept "IBM"/"IBM Inc."-style variation but
  // still flag true synonyms like USA/America.
  Relation rel(Schema({"CC", "CTRY"}));
  rel.AppendRow({"US", "USA"});
  rel.AppendRow({"US", "America"});
  Ontology ont;
  SenseId s = ont.AddSense("iso");
  ont.AddValue(s, "USA");
  ont.AddValue(s, "America");
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  Ofd ofd{AttrSet::Of({0}), 1, OfdKind::kSynonym};
  EXPECT_TRUE(verifier.Holds(ofd));                       // OFD: clean
  EXPECT_FALSE(MetricFdHolds(rel, ofd.lhs, ofd.rhs, 3));  // MFD: flagged

  // Small-typo case: MFD accepts, OFD (no ontology entry) rejects.
  Relation rel2(Schema({"CC", "CTRY"}));
  rel2.AppendRow({"US", "USA"});
  rel2.AppendRow({"US", "USAA"});
  SynonymIndex index2(ont, rel2.dict());
  OfdVerifier verifier2(rel2, index2);
  EXPECT_TRUE(MetricFdHolds(rel2, ofd.lhs, ofd.rhs, 1));
  EXPECT_FALSE(verifier2.Holds(ofd));
}

TEST(MetricFdTest, ComparisonCountsFalsePositives) {
  DataGenConfig cfg;
  cfg.num_rows = 400;
  cfg.num_senses = 4;
  cfg.error_rate = 0.0;
  cfg.seed = 77;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  MetricComparison strict =
      CompareMetricVsOfd(data.rel, index, data.sigma[0], /*delta=*/0);
  EXPECT_GT(strict.tuples, 0);
  // Clean synonym data: the OFD flags nothing, a strict MFD (δ=0 == FD)
  // flags every non-majority synonym tuple — all false positives.
  EXPECT_EQ(strict.ofd_flagged, 0);
  EXPECT_GT(strict.mfd_flagged, 0);
  EXPECT_EQ(strict.mfd_only, strict.mfd_flagged);
  // Loosening δ can only reduce MFD flags.
  MetricComparison loose =
      CompareMetricVsOfd(data.rel, index, data.sigma[0], /*delta=*/4);
  EXPECT_LE(loose.mfd_flagged, strict.mfd_flagged);
}

TEST(DatasetFlavourTest, ClinicalAndKivaRenameSchemas) {
  DataGenConfig cfg;
  cfg.num_rows = 50;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_noise_attrs = 1;
  cfg.num_key_attrs = 1;
  cfg.seed = 5;
  GeneratedData clinical = GenerateClinical(cfg);
  EXPECT_EQ(clinical.rel.schema().name(0), "CC");
  EXPECT_EQ(clinical.rel.schema().name(2), "CTRY");
  EXPECT_EQ(clinical.rel.schema().name(5), "NCTID");
  GeneratedData kiva = GenerateKiva(cfg);
  EXPECT_EQ(kiva.rel.schema().name(1), "SECTOR");
  EXPECT_EQ(kiva.rel.schema().name(5), "LOAN_ID");
  // Data identical to the generic generator (values unchanged).
  GeneratedData generic = GenerateData(cfg);
  EXPECT_EQ(generic.rel.CellDistance(clinical.rel), 0);
  EXPECT_EQ(generic.rel.CellDistance(kiva.rel), 0);
  // Ground truth still consistent.
  EXPECT_EQ(clinical.rel.CellDistance(clinical.clean_rel),
            static_cast<int64_t>(clinical.errors.size()));
}

}  // namespace
}  // namespace fastofd
