// Unit tests for the ontology substrate: core model, text format, synonym
// index, descendants, repairs, and the random generator.

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/dictionary.h"
#include "ontology/generator.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"

namespace fastofd {
namespace {

Ontology MakeDrugOntology() {
  auto result = ReadOntologyFile(std::string(FASTOFD_DATA_DIR) + "/drug_ontology.txt");
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.status().message());
  return std::move(result).value();
}

TEST(OntologyTest, BuildsConceptsAndSenses) {
  Ontology ont;
  ConceptId root = ont.AddConcept("drug");
  ConceptId child = ont.AddConcept("nsaid", root);
  EXPECT_EQ(ont.parent(child), root);
  EXPECT_EQ(ont.children(root), std::vector<ConceptId>{child});
  SenseId s = ont.AddSense("fda", child);
  EXPECT_EQ(ont.sense_concept(s), child);
  EXPECT_EQ(ont.FindSense("fda"), s);
  EXPECT_EQ(ont.FindSense("nope"), kInvalidSense);
  EXPECT_EQ(ont.FindConcept("nsaid"), child);
}

TEST(OntologyTest, AddValueIdempotentAndCountsRepairs) {
  Ontology ont;
  SenseId s = ont.AddSense("s");
  EXPECT_TRUE(ont.AddValue(s, "a"));
  EXPECT_FALSE(ont.AddValue(s, "a"));
  EXPECT_TRUE(ont.AddValue(s, "b"));
  EXPECT_EQ(ont.num_added_values(), 2);
  ont.MarkPristine();
  EXPECT_EQ(ont.num_added_values(), 0);
  EXPECT_TRUE(ont.AddValue(s, "c"));
  EXPECT_EQ(ont.num_added_values(), 1);  // dist(S, S') == 1
}

TEST(OntologyTest, NamesOfReturnsAllSenses) {
  Ontology ont = MakeDrugOntology();
  // cartia belongs to both FDA diltiazem and MoH aspirin senses.
  auto senses = ont.NamesOf("cartia");
  EXPECT_EQ(senses.size(), 2u);
  // tiazac only to FDA.
  EXPECT_EQ(ont.NamesOf("tiazac").size(), 1u);
  // unknown value has no names.
  EXPECT_TRUE(ont.NamesOf("adizem").empty());
  EXPECT_TRUE(ont.ContainsValue("ASA"));
  EXPECT_FALSE(ont.ContainsValue("adizem"));
}

TEST(OntologyTest, PaperExample22HasNoCommonSense) {
  // {ASA, cartia, tiazac, adizem} must share no sense (Example 1.2).
  Ontology ont = MakeDrugOntology();
  std::vector<std::string> vals = {"ASA", "cartia", "tiazac", "adizem"};
  std::set<SenseId> common;
  bool first = true;
  for (const auto& v : vals) {
    auto names = ont.NamesOf(v);
    std::set<SenseId> s(names.begin(), names.end());
    if (first) {
      common = s;
      first = false;
    } else {
      std::set<SenseId> inter;
      std::set_intersection(common.begin(), common.end(), s.begin(), s.end(),
                            std::inserter(inter, inter.begin()));
      common = inter;
    }
  }
  EXPECT_TRUE(common.empty());
  // But after the paper's ontology repair (add ASA + adizem under FDA),
  // a common sense exists.
  SenseId fda = ont.FindSense("fda_diltiazem");
  ASSERT_NE(fda, kInvalidSense);
  ont.AddValue(fda, "ASA");
  ont.AddValue(fda, "adizem");
  for (const auto& v : vals) {
    auto names = ont.NamesOf(v);
    EXPECT_TRUE(std::find(names.begin(), names.end(), fda) != names.end()) << v;
  }
  EXPECT_EQ(ont.num_added_values(), 2);
}

TEST(OntologyTest, DescendantsWalksSubtree) {
  Ontology ont = MakeDrugOntology();
  ConceptId analgesic = ont.FindConcept("analgesic");
  ASSERT_NE(analgesic, kInvalidConcept);
  auto desc = ont.Descendants(analgesic);
  std::set<std::string> set(desc.begin(), desc.end());
  // analgesic subtree includes acetaminophen family and salicylates.
  EXPECT_TRUE(set.count("tylenol"));
  EXPECT_TRUE(set.count("aspirin"));
  EXPECT_TRUE(set.count("analgesic"));
  // but not the calcium channel blockers.
  EXPECT_FALSE(set.count("tiazac"));
}

TEST(OntologyIoTest, ParsesAndRoundTrips) {
  Ontology ont = MakeDrugOntology();
  std::string text = WriteOntology(ont);
  auto round = ParseOntology(text);
  ASSERT_TRUE(round.ok());
  const Ontology& ont2 = round.value();
  EXPECT_EQ(ont2.num_senses(), ont.num_senses());
  EXPECT_EQ(ont2.num_concepts(), ont.num_concepts());
  EXPECT_EQ(ont2.num_values(), ont.num_values());
  for (SenseId s = 0; s < ont.num_senses(); ++s) {
    EXPECT_EQ(ont2.SenseValues(s), ont.SenseValues(s));
    EXPECT_EQ(ont2.sense_name(s), ont.sense_name(s));
  }
}

TEST(OntologyIoTest, ParseErrors) {
  EXPECT_FALSE(ParseOntology("sense s a b c\n").ok());             // missing colon
  EXPECT_FALSE(ParseOntology("concept a\nconcept a\n").ok());      // duplicate
  EXPECT_FALSE(ParseOntology("concept a parent=zzz\n").ok());      // bad parent
  EXPECT_FALSE(ParseOntology("sense s concept=zzz : a\n").ok());   // bad concept
  EXPECT_FALSE(ParseOntology("bogus directive\n").ok());
  EXPECT_TRUE(ParseOntology("# only comments\n\n").ok());
}

TEST(OntologyIoTest, ValuesWithSpaces) {
  auto r = ParseOntology("sense s : joint pain | chest pain\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().SenseValues(0),
            (std::vector<std::string>{"joint pain", "chest pain"}));
}

TEST(SynonymIndexTest, CompilesAgainstDictionary) {
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId cartia = dict.Intern("cartia");
  ValueId tiazac = dict.Intern("tiazac");
  ValueId asa = dict.Intern("ASA");
  ValueId adizem = dict.Intern("adizem");  // not in ontology
  SynonymIndex index(ont, dict);

  EXPECT_EQ(index.Senses(cartia).size(), 2u);
  EXPECT_EQ(index.Senses(tiazac).size(), 1u);
  EXPECT_TRUE(index.InOntology(asa));
  EXPECT_FALSE(index.InOntology(adizem));

  SenseId fda = ont.FindSense("fda_diltiazem");
  EXPECT_TRUE(index.SenseContains(fda, cartia));
  EXPECT_FALSE(index.SenseContains(fda, asa));
  // Sense values restricted to the dictionary: cardizem was never interned.
  const auto& vals = index.SenseValues(fda);
  EXPECT_EQ(vals.size(), 2u);
}

TEST(SynonymIndexTest, IncrementalAddMirrorsRepair) {
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId adizem = dict.Intern("adizem");
  SynonymIndex index(ont, dict);
  SenseId fda = ont.FindSense("fda_diltiazem");
  EXPECT_FALSE(index.SenseContains(fda, adizem));
  index.AddValue(fda, adizem);
  EXPECT_TRUE(index.SenseContains(fda, adizem));
  index.AddValue(fda, adizem);  // idempotent
  EXPECT_EQ(index.Senses(adizem).size(), 1u);
}

TEST(SynonymIndexTest, AddValueReportsWhetherItInserted) {
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId cartia = dict.Intern("cartia");
  ValueId adizem = dict.Intern("adizem");
  SynonymIndex index(ont, dict);
  SenseId fda = ont.FindSense("fda_diltiazem");
  EXPECT_FALSE(index.AddValue(fda, cartia));  // already compiled from the ontology
  EXPECT_TRUE(index.AddValue(fda, adizem));
  EXPECT_FALSE(index.AddValue(fda, adizem));  // second insert is a no-op
}

TEST(SynonymIndexTest, UndoingOnlyRealInsertionsPreservesTheBase) {
  // The beam-search materialization pattern: speculative AddValue calls are
  // undone with RemoveValue, but only for mappings AddValue actually created.
  // A pre-existing (sense, value) pair must survive the round trip — the old
  // unconditional undo deleted it from one map and then corrupted the other.
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId cartia = dict.Intern("cartia");
  ValueId adizem = dict.Intern("adizem");
  SynonymIndex index(ont, dict);
  SenseId fda = ont.FindSense("fda_diltiazem");
  std::vector<std::pair<SenseId, ValueId>> applied;
  for (ValueId v : {cartia, adizem}) {
    if (index.AddValue(fda, v)) applied.emplace_back(fda, v);
  }
  for (const auto& [s, v] : applied) index.RemoveValue(s, v);
  EXPECT_TRUE(index.SenseContains(fda, cartia));   // pre-existing: kept
  EXPECT_FALSE(index.SenseContains(fda, adizem));  // speculative: undone
  EXPECT_TRUE(index.Senses(adizem).empty());
  // Removing an absent mapping is a no-op; both directions stay in sync.
  index.RemoveValue(fda, adizem);
  EXPECT_EQ(index.SenseValues(fda).size(), 1u);  // cartia (tiazac not interned)
}

TEST(SynonymIndexOverlayTest, ReadsThroughBaseAndAdditions) {
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId cartia = dict.Intern("cartia");
  ValueId tiazac = dict.Intern("tiazac");
  ValueId adizem = dict.Intern("adizem");
  SynonymIndex index(ont, dict);
  SenseId fda = ont.FindSense("fda_diltiazem");

  SynonymIndexOverlay overlay(index);
  EXPECT_TRUE(overlay.SenseContains(fda, cartia));  // base read-through
  EXPECT_FALSE(overlay.SenseContains(fda, adizem));
  EXPECT_FALSE(overlay.Add(fda, cartia));  // present in the base: rejected
  EXPECT_TRUE(overlay.Add(fda, adizem));
  EXPECT_FALSE(overlay.Add(fda, adizem));  // duplicate addition: rejected
  EXPECT_TRUE(overlay.SenseContains(fda, adizem));

  // Accessors agree with a materialized copy (additions appended in order,
  // sense lists merged sorted); the base index itself is untouched.
  EXPECT_EQ(overlay.SenseValues(fda), (std::vector<ValueId>{cartia, tiazac, adizem}));
  EXPECT_EQ(overlay.Senses(adizem), std::vector<SenseId>{fda});
  EXPECT_TRUE(overlay.SenseHasValues(fda));
  EXPECT_FALSE(index.SenseContains(fda, adizem));
  EXPECT_TRUE(AuditSynonymIndexOverlay(overlay).ok());

  overlay.Clear();
  EXPECT_FALSE(overlay.SenseContains(fda, adizem));
  EXPECT_TRUE(AuditSynonymIndexOverlay(overlay).ok());
}

TEST(SynonymIndexOverlayTest, AuditCatchesAdditionShadowedByBase) {
  // An overlay addition that later appears in the base index would be
  // double-counted by the scorer's materialization; the audit rejects it.
  Ontology ont = MakeDrugOntology();
  Dictionary dict;
  ValueId adizem = dict.Intern("adizem");
  SynonymIndex index(ont, dict);
  SenseId fda = ont.FindSense("fda_diltiazem");
  SynonymIndexOverlay overlay(index);
  EXPECT_TRUE(overlay.Add(fda, adizem));
  EXPECT_TRUE(AuditSynonymIndexOverlay(overlay).ok());
  index.AddValue(fda, adizem);  // base mutated underneath the overlay
  EXPECT_FALSE(AuditSynonymIndexOverlay(overlay).ok());
}

TEST(OntologyGeneratorTest, RespectsConfig) {
  OntologyGenConfig cfg;
  cfg.num_senses = 6;
  cfg.values_per_sense = 5;
  cfg.overlap = 0.0;
  cfg.seed = 7;
  Ontology ont = GenerateOntology(cfg);
  EXPECT_EQ(ont.num_senses(), 6);
  for (SenseId s = 0; s < 6; ++s) {
    EXPECT_EQ(ont.SenseValues(s).size(), 5u);
  }
  // With zero overlap, all values are distinct.
  EXPECT_EQ(ont.num_values(), 30u);
  EXPECT_EQ(ont.num_added_values(), 0);  // generator marks pristine
}

TEST(OntologyGeneratorTest, OverlapCreatesSharedValues) {
  OntologyGenConfig cfg;
  cfg.num_senses = 10;
  cfg.values_per_sense = 10;
  cfg.overlap = 0.5;
  cfg.seed = 11;
  Ontology ont = GenerateOntology(cfg);
  // Significantly fewer distinct values than senses * values_per_sense.
  EXPECT_LT(ont.num_values(), 85u);
  // Some value must have multiple senses.
  bool multi = false;
  for (SenseId s = 0; s < ont.num_senses() && !multi; ++s) {
    for (const auto& v : ont.SenseValues(s)) {
      if (ont.NamesOf(v).size() > 1) {
        multi = true;
        break;
      }
    }
  }
  EXPECT_TRUE(multi);
}

TEST(OntologyGeneratorTest, DeterministicInSeed) {
  OntologyGenConfig cfg;
  cfg.seed = 99;
  Ontology a = GenerateOntology(cfg);
  Ontology b = GenerateOntology(cfg);
  EXPECT_EQ(WriteOntology(a), WriteOntology(b));
}

}  // namespace
}  // namespace fastofd
