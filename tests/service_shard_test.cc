// Regression tests for the sharded session executors: per-session response
// determinism must survive sharding and work stealing, and an idle shard
// must actually steal from a loaded one. Runs under ThreadSanitizer in CI —
// the concurrent update+verify streams here are the data-race probe for the
// snapshot-read protocol (busy/readers/drain_cv + the session version
// seqlock).

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "ofd/sigma_io.h"
#include "service/client.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"

namespace fastofd {
namespace {

class ServiceShardTest : public ::testing::Test {
 protected:
  static std::string Dir() {
    const char* t = std::getenv("TMPDIR");
    std::string dir = (t ? t : "/tmp");
    dir += "/fastofd_service_shard_test";
    std::string cmd = "mkdir -p " + dir;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
  }

  void SetUp() override {
    dir_ = Dir();
    DataGenConfig cfg;
    cfg.num_rows = 400;
    cfg.error_rate = 0.03;
    cfg.seed = 11;
    GeneratedData data = GenerateData(cfg);
    data_path_ = dir_ + "/d.csv";
    ontology_path_ = dir_ + "/o.txt";
    sigma_path_ = dir_ + "/s.txt";
    ASSERT_TRUE(WriteCsvFile(data_path_, data.rel.ToCsv()).ok());
    WriteText(ontology_path_, WriteOntology(data.ontology));
    WriteText(sigma_path_, WriteSigma(data.sigma, data.rel.schema()));
  }

  static void WriteText(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good());
  }

  static Json Req(const std::string& op, int64_t id = 1) {
    Json r = Json::Object();
    r.Set("id", Json::Int(id));
    r.Set("op", Json::Str(op));
    return r;
  }

  Json LoadReq(const std::string& session) {
    Json r = Req(ops::kLoad);
    r.Set("session", Json::Str(session));
    r.Set("data", Json::Str(data_path_));
    r.Set("ontology", Json::Str(ontology_path_));
    r.Set("sigma", Json::Str(sigma_path_));
    return r;
  }

  std::string dir_, data_path_, ontology_path_, sigma_path_;
};

constexpr int kUpdates = 12;
constexpr int kVerifies = 8;
constexpr int64_t kUpdateIdBase = 1000;
constexpr int64_t kVerifyIdBase = 2000;

// One client's pipelined stream: send everything, then read every response.
std::vector<std::string> RunStream(ServiceClient& client,
                                   const std::vector<Json>& requests) {
  std::vector<std::string> responses;
  for (const Json& request : requests) {
    Status sent = client.Send(request);
    EXPECT_TRUE(sent.ok()) << sent.message();
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    auto resp = client.ReadResponse();
    EXPECT_TRUE(resp.ok()) << "response " << i;
    if (!resp.ok()) break;
    responses.push_back(resp.value().Dump());
  }
  return responses;
}

// The update stream writes a constant value into NOISE0 — an attribute no
// OFD mentions — so the session's violation state never changes and every
// verify response has exactly one correct byte sequence, independent of how
// the streams interleave.
std::vector<Json> UpdateStream() {
  std::vector<Json> requests;
  for (int i = 0; i < kUpdates; ++i) {
    Json r = Json::Object();
    r.Set("id", Json::Int(kUpdateIdBase + i));
    r.Set("op", Json::Str(ops::kUpdate));
    r.Set("session", Json::Str("hot"));
    r.Set("row", Json::Int(i));
    r.Set("attr", Json::Str("NOISE0"));
    r.Set("value", Json::Str("zz"));
    requests.push_back(std::move(r));
  }
  return requests;
}

std::vector<Json> VerifyStream() {
  std::vector<Json> requests;
  for (int i = 0; i < kVerifies; ++i) {
    Json r = Json::Object();
    r.Set("id", Json::Int(kVerifyIdBase + i));
    r.Set("op", Json::Str(ops::kVerify));
    r.Set("session", Json::Str("hot"));
    requests.push_back(std::move(r));
  }
  return requests;
}

// Concurrent snapshot reads may complete in any order relative to each
// other, so responses are compared keyed by id, not by arrival position.
std::map<int64_t, std::string> ById(const std::vector<std::string>& dumps) {
  std::map<int64_t, std::string> by_id;
  for (const std::string& dump : dumps) {
    auto parsed = Json::Parse(dump);
    EXPECT_TRUE(parsed.ok());
    if (parsed.ok()) by_id[parsed.value().Get("id").AsInt(-1)] = dump;
  }
  return by_id;
}

TEST_F(ServiceShardTest, ConcurrentStreamsMatchSingleExecutorByteForByte) {
  // Reference: one shard, streams run back to back — the pre-shard
  // single-executor order.
  std::vector<std::string> ref_updates, ref_verifies;
  {
    MetricsRegistry metrics;
    ServerConfig config;
    config.threads = 2;
    config.shards = 1;
    config.queue_depth = 64;
    ServiceServer server(config, &metrics);
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::ConnectTcp(server.port());
    ASSERT_TRUE(client.ok());
    auto loaded = client.value().Call(LoadReq("hot"));
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded.value().Get("ok").AsBool()) << loaded.value().Dump();
    ref_updates = RunStream(client.value(), UpdateStream());
    ref_verifies = RunStream(client.value(), VerifyStream());
    server.NotifyShutdown();
    server.Wait();
  }
  ASSERT_EQ(ref_updates.size(), static_cast<size_t>(kUpdates));
  ASSERT_EQ(ref_verifies.size(), static_cast<size_t>(kVerifies));
  std::map<int64_t, std::string> ref_verifies_by_id = ById(ref_verifies);

  for (int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    MetricsRegistry metrics;
    ServerConfig config;
    config.threads = 2;
    config.shards = shards;
    config.queue_depth = 64;
    ServiceServer server(config, &metrics);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.shard_count(), shards);

    auto update_client = ServiceClient::ConnectTcp(server.port());
    auto verify_client = ServiceClient::ConnectTcp(server.port());
    ASSERT_TRUE(update_client.ok());
    ASSERT_TRUE(verify_client.ok());
    auto loaded = update_client.value().Call(LoadReq("hot"));
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded.value().Get("ok").AsBool()) << loaded.value().Dump();

    // Race the streams from two threads on two connections.
    std::vector<std::string> updates, verifies;
    std::thread update_thread([&] {
      updates = RunStream(update_client.value(), UpdateStream());
    });
    std::thread verify_thread([&] {
      verifies = RunStream(verify_client.value(), VerifyStream());
    });
    update_thread.join();
    verify_thread.join();
    server.NotifyShutdown();
    server.Wait();

    // Writes are per-session FIFO: the update connection sees its responses
    // in send order, byte-identical to the single-executor run.
    ASSERT_EQ(updates.size(), ref_updates.size());
    for (size_t i = 0; i < updates.size(); ++i) {
      EXPECT_EQ(updates[i], ref_updates[i]) << "update " << i;
    }
    // Reads ran as concurrent snapshots (any completion order), but each
    // response's bytes must match the single-executor run exactly.
    EXPECT_EQ(ById(verifies), ref_verifies_by_id);
    EXPECT_GT(metrics.Snapshot().Counter("serve.snapshot_reads"), 0);
    EXPECT_EQ(metrics.Snapshot().Counter("serve.rejected"), 0);
  }
}

TEST_F(ServiceShardTest, IdleExecutorStealsFromLoadedShard) {
  // Two session names that hash to the same shard of 2: the sleep occupies
  // that shard's executor, so only a steal by the other shard's executor
  // can answer the verify quickly.
  std::string busy_name = "busy";
  std::string hot_name;
  for (int i = 0; hot_name.empty(); ++i) {
    std::string candidate = "hot" + std::to_string(i);
    if (ServiceServer::ShardOf(candidate, 2) ==
        ServiceServer::ShardOf(busy_name, 2)) {
      hot_name = candidate;
    }
    ASSERT_LT(i, 64) << "no colliding session name found";
  }

  MetricsRegistry metrics;
  ServerConfig config;
  config.threads = 2;
  config.shards = 2;
  ServiceServer server(config, &metrics);
  ASSERT_TRUE(server.Start().ok());

  auto blocker = ServiceClient::ConnectTcp(server.port());
  auto prober = ServiceClient::ConnectTcp(server.port());
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(prober.ok());
  auto loaded = prober.value().Call(LoadReq(hot_name));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().Get("ok").AsBool()) << loaded.value().Dump();

  Json sleep_req = Req(ops::kSleep, 1);
  sleep_req.Set("session", Json::Str(busy_name));
  sleep_req.Set("ms", Json::Number(600));
  ASSERT_TRUE(blocker.value().Send(sleep_req).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Json verify_req = Req(ops::kVerify, 2);
  verify_req.Set("session", Json::Str(hot_name));
  auto begin = std::chrono::steady_clock::now();
  auto verify = prober.value().Call(verify_req);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().Get("ok").AsBool()) << verify.value().Dump();
  // Without stealing this waits out the remaining ~550 ms of sleep.
  EXPECT_LT(elapsed_ms, 400.0);
  int64_t stolen = 0;
  for (const auto& [name, value] : metrics.Snapshot().counters) {
    if (name.rfind("serve.shard.", 0) == 0 &&
        name.find(".stolen") != std::string::npos) {
      stolen += value;
    }
  }
  EXPECT_GE(stolen, 1);

  EXPECT_TRUE(blocker.value().ReadResponse().ok());  // The sleep completes.
  server.NotifyShutdown();
  server.Wait();
}

}  // namespace
}  // namespace fastofd
