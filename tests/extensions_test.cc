// Tests for the extension modules: LHS-synonym OFDs, incremental
// verification, and parallel discovery determinism.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ofd/incremental.h"
#include "ofd/lhs_synonym.h"
#include "ofd/verifier.h"
#include "ontology/generator.h"
#include "ontology/synonym_index.h"

namespace fastofd {
namespace {

// ---------------------------------------------------------------------------
// LHS-synonym OFDs (response letter W2).

TEST(LhsSynonymTest, MergedClassesCatchHiddenViolations) {
  // Literal classes {Cartia}, {Tiazac} are clean per class; under the FDA
  // sense they merge, exposing that the merged class maps to two different
  // diseases with no common sense.
  Relation rel(Schema({"MED", "DISEASE"}));
  rel.AppendRow({"Cartia", "hyperpiesis"});
  rel.AppendRow({"Cartia", "hyperpiesis"});
  rel.AppendRow({"Tiazac", "flu"});
  rel.AppendRow({"Tiazac", "flu"});
  Ontology ont;
  SenseId fda = ont.AddSense("fda");
  ont.AddValue(fda, "Cartia");
  ont.AddValue(fda, "Tiazac");
  SynonymIndex index(ont, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  // The plain OFD holds (each literal class has one value)…
  OfdVerifier verifier(rel, index);
  EXPECT_TRUE(verifier.Holds(ofd));
  // …but the LHS-synonym reading does not.
  EXPECT_FALSE(HoldsWithLhsSynonyms(rel, index, ofd));
}

TEST(LhsSynonymTest, HoldsWhenMergedClassesShareASense) {
  Relation rel(Schema({"MED", "DISEASE"}));
  rel.AppendRow({"Cartia", "hypertension"});
  rel.AppendRow({"Tiazac", "HHD"});
  Ontology ont;
  SenseId fda = ont.AddSense("fda");
  ont.AddValue(fda, "Cartia");
  ont.AddValue(fda, "Tiazac");
  SenseId disease = ont.AddSense("disease");
  ont.AddValue(disease, "hypertension");
  ont.AddValue(disease, "HHD");
  SynonymIndex index(ont, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  EXPECT_TRUE(HoldsWithLhsSynonyms(rel, index, ofd));
}

TEST(LhsSynonymTest, ImpliesPlainOfd) {
  // LHS-synonym satisfaction is strictly stronger: sweep random instances.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(7000 + seed);
    OntologyGenConfig ocfg;
    ocfg.num_senses = 3;
    ocfg.values_per_sense = 4;
    ocfg.overlap = 0.4;
    ocfg.seed = static_cast<uint64_t>(9000 + seed);
    Ontology ont = GenerateOntology(ocfg);
    Relation rel(Schema({"X", "Y"}));
    for (int r = 0; r < 30; ++r) {
      SenseId sx = static_cast<SenseId>(rng.NextUint(3));
      SenseId sy = static_cast<SenseId>(rng.NextUint(3));
      rel.AppendRow({ont.SenseValues(sx)[rng.NextUint(4)],
                     ont.SenseValues(sy)[rng.NextUint(4)]});
    }
    SynonymIndex index(ont, rel.dict());
    OfdVerifier verifier(rel, index);
    Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
    if (HoldsWithLhsSynonyms(rel, index, ofd)) {
      EXPECT_TRUE(verifier.Holds(ofd)) << "seed " << seed;
    }
  }
}

TEST(LhsSynonymTest, StatsCountInterpretationsAndClasses) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"b", "1"});
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "a");
  ont.AddValue(s, "b");
  SynonymIndex index(ont, rel.dict());
  LhsSynonymStats stats;
  EXPECT_TRUE(HoldsWithLhsSynonyms(rel, index, {AttrSet::Single(0), 1,
                                                OfdKind::kSynonym},
                                   &stats));
  EXPECT_EQ(stats.interpretations, 2);  // literal + one sense
  // Literal: one non-singleton class {a,a}; sense s: merged {a,a,b}.
  EXPECT_EQ(stats.classes_evaluated, 2);
}

TEST(LhsSynonymTest, NoOntologyDegeneratesToPlainOfd) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", "2"});
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  OfdVerifier verifier(rel, index);
  EXPECT_EQ(HoldsWithLhsSynonyms(rel, index, ofd), verifier.Holds(ofd));
}

// ---------------------------------------------------------------------------
// Incremental verification.

TEST(IncrementalTest, TracksSingleClassUpdates) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "g1");
  ont.AddValue(s, "g2");
  rel.AppendRow({"x", "g1"});
  rel.AppendRow({"x", "g2"});
  rel.AppendRow({"y", "g1"});
  rel.AppendRow({"y", "g1"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  IncrementalVerifier inc(&rel, index, sigma);
  EXPECT_TRUE(inc.IsConsistent());

  // Break class y.
  ValueId bad = rel.mutable_dict().Intern("bad");
  inc.UpdateCell(2, 1, bad);
  EXPECT_FALSE(inc.IsConsistent());
  EXPECT_EQ(inc.violating_classes(0), 1);

  // Fix it again.
  inc.UpdateCell(2, 1, rel.dict().Lookup("g1"));
  EXPECT_TRUE(inc.IsConsistent());
}

TEST(IncrementalTest, MatchesFullReverificationOnRandomUpdateStreams) {
  for (int seed = 0; seed < 6; ++seed) {
    DataGenConfig cfg;
    cfg.num_rows = 120;
    cfg.num_senses = 3;
    cfg.error_rate = 0.0;
    cfg.seed = static_cast<uint64_t>(7100 + seed);
    GeneratedData data = GenerateData(cfg);
    Relation rel = data.rel;
    SynonymIndex index(data.ontology, rel.dict());
    IncrementalVerifier inc(&rel, index, data.sigma);
    Rng rng(7200 + static_cast<uint64_t>(seed));

    std::vector<ValueId> pool;
    for (SenseId s = 0; s < index.num_senses(); ++s) {
      for (ValueId v : index.SenseValues(s)) pool.push_back(v);
    }
    pool.push_back(rel.mutable_dict().Intern("garbage"));

    for (int step = 0; step < 40; ++step) {
      RowId row = static_cast<RowId>(rng.NextUint(rel.num_rows()));
      const Ofd& ofd = data.sigma[rng.NextUint(data.sigma.size())];
      ValueId v = pool[rng.NextUint(pool.size())];
      inc.UpdateCell(row, ofd.rhs, v);

      // Full reverification as ground truth.
      OfdVerifier verifier(rel, index);
      bool all = true;
      for (size_t i = 0; i < data.sigma.size(); ++i) {
        bool holds = verifier.Holds(data.sigma[i]);
        all &= holds;
        EXPECT_EQ(inc.Holds(i), holds) << "seed " << seed << " step " << step;
      }
      EXPECT_EQ(inc.IsConsistent(), all);
    }
  }
}

TEST(IncrementalTest, RechecksOnlyAffectedClasses) {
  DataGenConfig cfg;
  cfg.num_rows = 500;
  cfg.classes_per_antecedent = 25;
  cfg.error_rate = 0.0;
  cfg.seed = 7300;
  GeneratedData data = GenerateData(cfg);
  Relation rel = data.rel;
  SynonymIndex index(data.ontology, rel.dict());
  IncrementalVerifier inc(&rel, index, data.sigma);
  int64_t initial = inc.classes_rechecked();
  ValueId v = rel.At(0, data.sigma[0].rhs);
  inc.UpdateCell(0, data.sigma[0].rhs, v);
  // One update touches at most one class per OFD with this consequent.
  EXPECT_LE(inc.classes_rechecked() - initial, 1);
}

TEST(IncrementalTest, RejectsOverlappingSigma) {
  Relation rel(Schema({"A", "B", "C"}));
  rel.AppendRow({"1", "2", "3"});
  Ontology ont;
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym},
                    {AttrSet::Single(1), 2, OfdKind::kSynonym}};
  EXPECT_DEATH(IncrementalVerifier(&rel, index, sigma), "CHECK failed");
}

// ---------------------------------------------------------------------------
// Parallel discovery.

TEST(ParallelDiscoveryTest, OutputIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 4; ++seed) {
    DataGenConfig cfg;
    cfg.num_rows = 600;
    cfg.num_antecedents = 3;
    cfg.num_consequents = 3;
    cfg.num_noise_attrs = 2;
    cfg.error_rate = 0.02;
    cfg.seed = static_cast<uint64_t>(7400 + seed);
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    FastOfdConfig serial;
    serial.num_threads = 1;
    FastOfdResult a = FastOfd(data.rel, index, serial).Discover();
    for (int threads : {2, 4, 8}) {
      FastOfdConfig parallel;
      parallel.num_threads = threads;
      FastOfdResult b = FastOfd(data.rel, index, parallel).Discover();
      EXPECT_EQ(a.ofds, b.ofds) << "threads " << threads << " seed " << seed;
      EXPECT_EQ(a.candidates_checked, b.candidates_checked);
      EXPECT_EQ(a.values_scanned, b.values_scanned);
    }
  }
}

}  // namespace
}  // namespace fastofd
