// Tests for the extension modules: LHS-synonym OFDs, incremental
// verification, and parallel discovery determinism.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ofd/incremental.h"
#include "ofd/lhs_synonym.h"
#include "ofd/verifier.h"
#include "ontology/generator.h"
#include "ontology/synonym_index.h"

namespace fastofd {
namespace {

// ---------------------------------------------------------------------------
// LHS-synonym OFDs (response letter W2).

TEST(LhsSynonymTest, MergedClassesCatchHiddenViolations) {
  // Literal classes {Cartia}, {Tiazac} are clean per class; under the FDA
  // sense they merge, exposing that the merged class maps to two different
  // diseases with no common sense.
  Relation rel(Schema({"MED", "DISEASE"}));
  rel.AppendRow({"Cartia", "hyperpiesis"});
  rel.AppendRow({"Cartia", "hyperpiesis"});
  rel.AppendRow({"Tiazac", "flu"});
  rel.AppendRow({"Tiazac", "flu"});
  Ontology ont;
  SenseId fda = ont.AddSense("fda");
  ont.AddValue(fda, "Cartia");
  ont.AddValue(fda, "Tiazac");
  SynonymIndex index(ont, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  // The plain OFD holds (each literal class has one value)…
  OfdVerifier verifier(rel, index);
  EXPECT_TRUE(verifier.Holds(ofd));
  // …but the LHS-synonym reading does not.
  EXPECT_FALSE(HoldsWithLhsSynonyms(rel, index, ofd));
}

TEST(LhsSynonymTest, HoldsWhenMergedClassesShareASense) {
  Relation rel(Schema({"MED", "DISEASE"}));
  rel.AppendRow({"Cartia", "hypertension"});
  rel.AppendRow({"Tiazac", "HHD"});
  Ontology ont;
  SenseId fda = ont.AddSense("fda");
  ont.AddValue(fda, "Cartia");
  ont.AddValue(fda, "Tiazac");
  SenseId disease = ont.AddSense("disease");
  ont.AddValue(disease, "hypertension");
  ont.AddValue(disease, "HHD");
  SynonymIndex index(ont, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  EXPECT_TRUE(HoldsWithLhsSynonyms(rel, index, ofd));
}

TEST(LhsSynonymTest, ImpliesPlainOfd) {
  // LHS-synonym satisfaction is strictly stronger: sweep random instances.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(7000 + seed);
    OntologyGenConfig ocfg;
    ocfg.num_senses = 3;
    ocfg.values_per_sense = 4;
    ocfg.overlap = 0.4;
    ocfg.seed = static_cast<uint64_t>(9000 + seed);
    Ontology ont = GenerateOntology(ocfg);
    Relation rel(Schema({"X", "Y"}));
    for (int r = 0; r < 30; ++r) {
      SenseId sx = static_cast<SenseId>(rng.NextUint(3));
      SenseId sy = static_cast<SenseId>(rng.NextUint(3));
      rel.AppendRow({ont.SenseValues(sx)[rng.NextUint(4)],
                     ont.SenseValues(sy)[rng.NextUint(4)]});
    }
    SynonymIndex index(ont, rel.dict());
    OfdVerifier verifier(rel, index);
    Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
    if (HoldsWithLhsSynonyms(rel, index, ofd)) {
      EXPECT_TRUE(verifier.Holds(ofd)) << "seed " << seed;
    }
  }
}

TEST(LhsSynonymTest, StatsCountInterpretationsAndClasses) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"b", "1"});
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "a");
  ont.AddValue(s, "b");
  SynonymIndex index(ont, rel.dict());
  LhsSynonymStats stats;
  EXPECT_TRUE(HoldsWithLhsSynonyms(rel, index, {AttrSet::Single(0), 1,
                                                OfdKind::kSynonym},
                                   &stats));
  EXPECT_EQ(stats.interpretations, 2);  // literal + one sense
  // Literal: one non-singleton class {a,a}; sense s: merged {a,a,b}.
  EXPECT_EQ(stats.classes_evaluated, 2);
}

TEST(LhsSynonymTest, NoOntologyDegeneratesToPlainOfd) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", "2"});
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  Ofd ofd{AttrSet::Single(0), 1, OfdKind::kSynonym};
  OfdVerifier verifier(rel, index);
  EXPECT_EQ(HoldsWithLhsSynonyms(rel, index, ofd), verifier.Holds(ofd));
}

// ---------------------------------------------------------------------------
// Incremental verification.

TEST(IncrementalTest, TracksSingleClassUpdates) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "g1");
  ont.AddValue(s, "g2");
  rel.AppendRow({"x", "g1"});
  rel.AppendRow({"x", "g2"});
  rel.AppendRow({"y", "g1"});
  rel.AppendRow({"y", "g1"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  IncrementalVerifier inc(&rel, index, sigma);
  EXPECT_TRUE(inc.IsConsistent());

  // Break class y.
  ValueId bad = rel.mutable_dict().Intern("bad");
  inc.UpdateCell(2, 1, bad);
  EXPECT_FALSE(inc.IsConsistent());
  EXPECT_EQ(inc.violating_classes(0), 1);

  // Fix it again.
  inc.UpdateCell(2, 1, rel.dict().Lookup("g1"));
  EXPECT_TRUE(inc.IsConsistent());
}

TEST(IncrementalTest, MatchesFullReverificationOnRandomUpdateStreams) {
  for (int seed = 0; seed < 6; ++seed) {
    DataGenConfig cfg;
    cfg.num_rows = 120;
    cfg.num_senses = 3;
    cfg.error_rate = 0.0;
    cfg.seed = static_cast<uint64_t>(7100 + seed);
    GeneratedData data = GenerateData(cfg);
    Relation rel = data.rel;
    SynonymIndex index(data.ontology, rel.dict());
    IncrementalVerifier inc(&rel, index, data.sigma);
    Rng rng(7200 + static_cast<uint64_t>(seed));

    std::vector<ValueId> pool;
    for (SenseId s = 0; s < index.num_senses(); ++s) {
      for (ValueId v : index.SenseValues(s)) pool.push_back(v);
    }
    pool.push_back(rel.mutable_dict().Intern("garbage"));

    for (int step = 0; step < 40; ++step) {
      RowId row = static_cast<RowId>(rng.NextUint(rel.num_rows()));
      const Ofd& ofd = data.sigma[rng.NextUint(data.sigma.size())];
      ValueId v = pool[rng.NextUint(pool.size())];
      inc.UpdateCell(row, ofd.rhs, v);

      // Full reverification as ground truth.
      OfdVerifier verifier(rel, index);
      bool all = true;
      for (size_t i = 0; i < data.sigma.size(); ++i) {
        bool holds = verifier.Holds(data.sigma[i]);
        all &= holds;
        EXPECT_EQ(inc.Holds(i), holds) << "seed " << seed << " step " << step;
      }
      EXPECT_EQ(inc.IsConsistent(), all);
    }
  }
}

TEST(IncrementalTest, RechecksOnlyAffectedClasses) {
  DataGenConfig cfg;
  cfg.num_rows = 500;
  cfg.classes_per_antecedent = 25;
  cfg.error_rate = 0.0;
  cfg.seed = 7300;
  GeneratedData data = GenerateData(cfg);
  Relation rel = data.rel;
  SynonymIndex index(data.ontology, rel.dict());
  IncrementalVerifier inc(&rel, index, data.sigma);
  int64_t initial = inc.classes_rechecked();
  ValueId v = rel.At(0, data.sigma[0].rhs);
  inc.UpdateCell(0, data.sigma[0].rhs, v);
  // One update touches at most one class per OFD with this consequent.
  EXPECT_LE(inc.classes_rechecked() - initial, 1);
}

// Asserts the incremental verifier's full per-OFD state against fresh
// re-verification of the (already mutated) relation.
void ExpectMatchesFullVerification(const IncrementalVerifier& inc,
                                   const Relation& rel,
                                   const SynonymIndex& index,
                                   const SigmaSet& sigma,
                                   const std::string& context) {
  OfdVerifier verifier(rel, index);
  bool all = true;
  for (size_t i = 0; i < sigma.size(); ++i) {
    bool holds = verifier.Holds(sigma[i]);
    all &= holds;
    EXPECT_EQ(inc.Holds(i), holds) << context << " ofd " << i;
  }
  EXPECT_EQ(inc.IsConsistent(), all) << context;
}

TEST(IncrementalTest, LhsUpdateMovesRowBetweenClasses) {
  // Two clean classes; moving a row of class x into class y brings a
  // conflicting consequent along, and moving it back repairs the violation.
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "g1");
  ont.AddValue(s, "g2");
  rel.AppendRow({"x", "g1"});
  rel.AppendRow({"x", "g2"});
  rel.AppendRow({"y", "other"});
  rel.AppendRow({"y", "other"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  IncrementalVerifier inc(&rel, index, sigma);
  EXPECT_TRUE(inc.IsConsistent());

  ValueId y = rel.dict().Lookup("y");
  ValueId x = rel.dict().Lookup("x");
  inc.UpdateCell(0, 0, y);  // Row 0 ("g1") joins class y ("other", "other").
  EXPECT_FALSE(inc.IsConsistent());
  EXPECT_EQ(inc.violating_classes(0), 1);
  ExpectMatchesFullVerification(inc, rel, index, sigma, "after move");

  inc.UpdateCell(0, 0, x);  // Back: both classes clean again.
  EXPECT_TRUE(inc.IsConsistent());
  ExpectMatchesFullVerification(inc, rel, index, sigma, "after move back");
}

TEST(IncrementalTest, RepeatedUpdatesToSameCellConverge) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "g1");
  ont.AddValue(s, "g2");
  rel.AppendRow({"x", "g1"});
  rel.AppendRow({"x", "g2"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  IncrementalVerifier inc(&rel, index, sigma);
  ValueId bad = rel.mutable_dict().Intern("bad");
  ValueId g1 = rel.dict().Lookup("g1");
  for (int round = 0; round < 5; ++round) {
    inc.UpdateCell(1, 1, bad);
    EXPECT_FALSE(inc.IsConsistent()) << "round " << round;
    inc.UpdateCell(1, 1, bad);  // Same value again: must stay a no-op.
    EXPECT_FALSE(inc.IsConsistent()) << "round " << round;
    ExpectMatchesFullVerification(inc, rel, index, sigma, "broken");
    inc.UpdateCell(1, 1, g1);
    EXPECT_TRUE(inc.IsConsistent()) << "round " << round;
    ExpectMatchesFullVerification(inc, rel, index, sigma, "reverted");
  }
  EXPECT_EQ(inc.violating_classes(0), 0);
}

TEST(IncrementalTest, OverlappingSigmaInterleavedUpdates) {
  // B is the consequent of A->B and an antecedent of B->C: one update to a
  // B-cell must re-check A->B's class and move the row between B->C classes.
  Relation rel(Schema({"A", "B", "C"}));
  Ontology ont;
  SenseId sb = ont.AddSense("sb");
  ont.AddValue(sb, "b1");
  ont.AddValue(sb, "b2");
  SenseId sc = ont.AddSense("sc");
  ont.AddValue(sc, "c1");
  ont.AddValue(sc, "c2");
  rel.AppendRow({"a1", "b1", "c1"});
  rel.AppendRow({"a1", "b2", "c2"});
  rel.AppendRow({"a2", "zz", "qq"});
  rel.AppendRow({"a2", "zz", "qq"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym},
                    {AttrSet::Single(1), 2, OfdKind::kSynonym}};
  IncrementalVerifier inc(&rel, index, sigma);
  EXPECT_TRUE(inc.IsConsistent());

  // b1 -> zz: row 0 leaves class {b1} and joins {zz, zz}; A->B's class a1
  // loses its shared sense, and B->C's class zz now holds {c1, qq, qq}.
  ValueId zz = rel.dict().Lookup("zz");
  inc.UpdateCell(0, 1, zz);
  ExpectMatchesFullVerification(inc, rel, index, sigma, "after b1->zz");
  EXPECT_FALSE(inc.IsConsistent());

  // Interleave a C update that repairs B->C's zz class.
  ValueId qq = rel.dict().Lookup("qq");
  inc.UpdateCell(0, 2, qq);
  ExpectMatchesFullVerification(inc, rel, index, sigma, "after c1->qq");

  // Revert the B update: A->B is clean again, and B->C goes back to the
  // original classes (row 0's C-cell now reads qq in class b1 — still a
  // singleton, so consistent).
  ValueId b1 = rel.dict().Lookup("b1");
  inc.UpdateCell(0, 1, b1);
  ExpectMatchesFullVerification(inc, rel, index, sigma, "after revert");
  EXPECT_TRUE(inc.IsConsistent());
}

TEST(IncrementalTest, MixedLhsRhsRandomStreamsMatchFullReverification) {
  for (int seed = 0; seed < 4; ++seed) {
    DataGenConfig cfg;
    cfg.num_rows = 100;
    cfg.num_senses = 3;
    cfg.error_rate = 0.02;
    cfg.seed = static_cast<uint64_t>(7400 + seed);
    GeneratedData data = GenerateData(cfg);
    Relation rel = data.rel;
    SynonymIndex index(data.ontology, rel.dict());
    IncrementalVerifier inc(&rel, index, data.sigma);
    Rng rng(7500 + static_cast<uint64_t>(seed));

    std::vector<ValueId> pool;
    for (SenseId s = 0; s < index.num_senses(); ++s) {
      for (ValueId v : index.SenseValues(s)) pool.push_back(v);
    }
    pool.push_back(rel.mutable_dict().Intern("garbage"));
    // Reuse existing antecedent values so lhs updates merge classes too.
    for (RowId r = 0; r < std::min<RowId>(rel.num_rows(), 10); ++r) {
      for (AttrId a = 0; a < rel.num_attrs(); ++a) pool.push_back(rel.At(r, a));
    }

    for (int step = 0; step < 60; ++step) {
      RowId row = static_cast<RowId>(rng.NextUint(rel.num_rows()));
      AttrId attr = static_cast<AttrId>(rng.NextUint(rel.num_attrs()));
      ValueId v = pool[rng.NextUint(pool.size())];
      inc.UpdateCell(row, attr, v);
      ExpectMatchesFullVerification(inc, rel, index, data.sigma,
                                    "seed " + std::to_string(seed) + " step " +
                                        std::to_string(step));
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel discovery.

TEST(ParallelDiscoveryTest, OutputIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 4; ++seed) {
    DataGenConfig cfg;
    cfg.num_rows = 600;
    cfg.num_antecedents = 3;
    cfg.num_consequents = 3;
    cfg.num_noise_attrs = 2;
    cfg.error_rate = 0.02;
    cfg.seed = static_cast<uint64_t>(7400 + seed);
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    FastOfdConfig serial;
    serial.num_threads = 1;
    FastOfdResult a = FastOfd(data.rel, index, serial).Discover();
    for (int threads : {2, 4, 8}) {
      FastOfdConfig parallel;
      parallel.num_threads = threads;
      FastOfdResult b = FastOfd(data.rel, index, parallel).Discover();
      EXPECT_EQ(a.ofds, b.ofds) << "threads " << threads << " seed " << seed;
      EXPECT_EQ(a.candidates_checked, b.candidates_checked);
      EXPECT_EQ(a.values_scanned, b.values_scanned);
    }
  }
}

}  // namespace
}  // namespace fastofd
