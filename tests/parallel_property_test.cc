// Property: discovery and cleaning outputs are byte-identical across every
// thread count AND every dispatch grain. The task scheduler may interleave,
// steal, and nest arbitrarily — grain knobs (validate_grain, beam_grain)
// change only the task shapes — so any divergence here means scheduling
// state leaked into results, which the ordered-reduce / sharded-sink /
// pre-sized-slot discipline exists to prevent. Runs under TSan in CI.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clean/repair.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ontology/synonym_index.h"

namespace fastofd {
namespace {

GeneratedData MakeInstance(uint64_t seed, double error_rate,
                           double incompleteness_rate) {
  DataGenConfig cfg;
  cfg.num_rows = 500;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 3;
  cfg.num_noise_attrs = 2;
  cfg.num_senses = 4;
  cfg.error_rate = error_rate;
  cfg.incompleteness_rate = incompleteness_rate;
  cfg.seed = seed;
  return GenerateData(cfg);
}

struct GrainCase {
  int threads;
  int grain;
};

// Thread-count × grain sweep: serial reference, then coarse/fine/automatic
// grains at 2 and 8 threads (8 > hardware concurrency on small runners —
// oversubscription must not change output either).
const GrainCase kCases[] = {
    {2, 0}, {2, 1}, {2, 7}, {8, 0}, {8, 1}, {8, 3}, {8, 64},
};

TEST(ParallelPropertyTest, DiscoveryByteIdenticalAcrossThreadsAndGrains) {
  for (uint64_t seed : {7u, 31u}) {
    GeneratedData data = MakeInstance(seed, /*error_rate=*/0.02,
                                      /*incompleteness_rate=*/0.05);
    SynonymIndex index(data.ontology, data.rel.dict());
    FastOfdConfig serial;
    serial.num_threads = 1;
    FastOfdResult reference = FastOfd(data.rel, index, serial).Discover();
    ASSERT_FALSE(reference.ofds.empty());
    for (const GrainCase& c : kCases) {
      FastOfdConfig cfg;
      cfg.num_threads = c.threads;
      cfg.validate_grain = c.grain;
      FastOfdResult got = FastOfd(data.rel, index, cfg).Discover();
      const std::string label = "seed " + std::to_string(seed) + " threads " +
                                std::to_string(c.threads) + " grain " +
                                std::to_string(c.grain);
      EXPECT_EQ(reference.ofds, got.ofds) << label;
      EXPECT_EQ(reference.candidates_checked, got.candidates_checked) << label;
      EXPECT_EQ(reference.values_scanned, got.values_scanned) << label;
      EXPECT_EQ(reference.partition_products, got.partition_products) << label;
    }
  }
}

TEST(ParallelPropertyTest, CleanByteIdenticalAcrossThreadsAndGrains) {
  for (uint64_t seed : {13u, 57u}) {
    GeneratedData data = MakeInstance(seed, /*error_rate=*/0.06,
                                      /*incompleteness_rate=*/0.1);
    OfdCleanConfig serial;
    serial.num_threads = 1;
    OfdCleanResult reference =
        OfdClean(data.rel, data.ontology, data.sigma, serial).Run();
    for (const GrainCase& c : kCases) {
      OfdCleanConfig cfg;
      cfg.num_threads = c.threads;
      cfg.beam_grain = c.grain;
      OfdCleanResult got =
          OfdClean(data.rel, data.ontology, data.sigma, cfg).Run();
      const std::string label = "seed " + std::to_string(seed) + " threads " +
                                std::to_string(c.threads) + " grain " +
                                std::to_string(c.grain);
      EXPECT_EQ(got.best.repaired.CellDistance(reference.best.repaired), 0)
          << label;
      EXPECT_EQ(reference.best.ontology_additions, got.best.ontology_additions)
          << label;
      EXPECT_EQ(reference.best.data_changes, got.best.data_changes) << label;
      EXPECT_EQ(reference.best.consistent, got.best.consistent) << label;
      EXPECT_EQ(reference.num_candidates, got.num_candidates) << label;
      EXPECT_EQ(reference.nodes_evaluated, got.nodes_evaluated) << label;
      ASSERT_EQ(reference.pareto.size(), got.pareto.size()) << label;
      for (size_t i = 0; i < reference.pareto.size(); ++i) {
        EXPECT_EQ(reference.pareto[i].ontology_changes,
                  got.pareto[i].ontology_changes) << label;
        EXPECT_EQ(reference.pareto[i].data_changes, got.pareto[i].data_changes)
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace fastofd
