// Tests for Σ (OFD set) text serialization and the NFD comparison class.

#include <string>

#include <gtest/gtest.h>

#include "ofd/nfd.h"
#include "ofd/sigma_io.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

TEST(SigmaIoTest, ParsesAllForms) {
  Schema schema({"CC", "CTRY", "SYMP", "DIAG", "MED"});
  auto result = ParseSigma(
      "# comment\n"
      "CC -> CTRY\n"
      "SYMP, DIAG ->syn MED\n"
      "CC ->inh MED\n"
      "{} -> CTRY\n",
      schema);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const SigmaSet& sigma = result.value();
  ASSERT_EQ(sigma.size(), 4u);
  EXPECT_EQ(sigma[0], (Ofd{AttrSet::Of({0}), 1, OfdKind::kSynonym}));
  EXPECT_EQ(sigma[1], (Ofd{AttrSet::Of({2, 3}), 4, OfdKind::kSynonym}));
  EXPECT_EQ(sigma[2], (Ofd{AttrSet::Of({0}), 4, OfdKind::kInheritance}));
  EXPECT_EQ(sigma[3], (Ofd{AttrSet(), 1, OfdKind::kSynonym}));
}

TEST(SigmaIoTest, RoundTrips) {
  Schema schema({"A", "B", "C", "D"});
  SigmaSet sigma = {{AttrSet::Of({0, 2}), 1, OfdKind::kSynonym},
                    {AttrSet(), 3, OfdKind::kSynonym},
                    {AttrSet::Of({1}), 2, OfdKind::kInheritance}};
  auto round = ParseSigma(WriteSigma(sigma, schema), schema);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), sigma);
}

TEST(SigmaIoTest, Errors) {
  Schema schema({"A", "B"});
  EXPECT_FALSE(ParseSigma("A B\n", schema).ok());          // no arrow
  EXPECT_FALSE(ParseSigma("A -> Z\n", schema).ok());       // unknown attr
  EXPECT_FALSE(ParseSigma("Z -> A\n", schema).ok());       // unknown attr
  EXPECT_FALSE(ParseSigma("A ->\n", schema).ok());         // no consequent
  EXPECT_FALSE(ParseSigma("A, B -> A\n", schema).ok());    // trivial
  EXPECT_TRUE(ParseSigma("\n# only comments\n", schema).ok());
}

// ---------------------------------------------------------------------------
// NFDs (paper §3.4–3.6): semantics differ from OFDs in both directions.

TEST(NfdTest, HoldsWithoutNullsIffFd) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"b", "2"});
  EXPECT_TRUE(NfdHolds(rel, AttrSet::Of({0}), 1));
  rel.Set(1, 1, "9");
  EXPECT_FALSE(NfdHolds(rel, AttrSet::Of({0}), 1));
}

TEST(NfdTest, NullConsequentIsTolerated) {
  // A null consequent makes the pair vacuously satisfied (weaker than FD).
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"a", ""});
  EXPECT_TRUE(NfdHolds(rel, AttrSet::Of({0}), 1, ""));
  // Without null semantics ("" is an ordinary value) the FD fails.
  EXPECT_FALSE(NfdHolds(rel, AttrSet::Of({0}), 1, "<null>"));
}

TEST(NfdTest, NullAntecedentMatchesEverything) {
  // A null antecedent agrees with every tuple, making the NFD *stricter*
  // than the FD on the same strings.
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "1"});
  rel.AppendRow({"", "2"});
  EXPECT_FALSE(NfdHolds(rel, AttrSet::Of({0}), 1, ""));   // null X vs "a": Y differ
  EXPECT_TRUE(NfdHolds(rel, AttrSet::Of({0}), 1, "<null>"));
}

TEST(NfdTest, OfdHoldsWhereNfdFails) {
  // Paper Theorem 3.4 discussion: [CC] -> [CTRY] from Table 1 holds as an
  // OFD (USA/America are synonyms) but fails as an NFD.
  Relation rel(Schema({"CC", "CTRY"}));
  rel.AppendRow({"US", "USA"});
  rel.AppendRow({"US", "America"});
  Ontology ont;
  SenseId s = ont.AddSense("iso_us");
  ont.AddValue(s, "USA");
  ont.AddValue(s, "America");
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  EXPECT_TRUE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kSynonym}));
  EXPECT_FALSE(NfdHolds(rel, AttrSet::Of({0}), 1));
}

TEST(NfdTest, NfdHoldsWhereOfdFails) {
  // The other direction: a null is a wildcard for the NFD but just an
  // out-of-ontology value for the OFD.
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"a", "v1"});
  rel.AppendRow({"a", ""});
  Ontology ont;
  SenseId s = ont.AddSense("s");
  ont.AddValue(s, "v1");
  SynonymIndex index(ont, rel.dict());
  OfdVerifier verifier(rel, index);
  EXPECT_TRUE(NfdHolds(rel, AttrSet::Of({0}), 1, ""));
  EXPECT_FALSE(verifier.Holds({AttrSet::Of({0}), 1, OfdKind::kSynonym}));
}

TEST(NfdTest, PairwiseVsClassSemantics) {
  // Paper Table 2 again: NFD-style pairwise checking is insufficient for
  // OFDs — but as an NFD (plain equality, no nulls) the example simply
  // fails pairwise too. This documents that the semantic gap is about
  // senses, not about the pairwise/classwise mechanics alone.
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"u", "v"});
  rel.AppendRow({"u", "w"});
  rel.AppendRow({"u", "z"});
  EXPECT_FALSE(NfdHolds(rel, AttrSet::Of({0}), 1));
}

}  // namespace
}  // namespace fastofd
