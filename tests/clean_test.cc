// Tests for the OFDClean stack: EMD, sense assignment, data/ontology
// repair, the end-to-end driver on the paper's running example, and the
// HoloCleanLite baseline.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "clean/emd.h"
#include "clean/holoclean_lite.h"
#include "clean/repair.h"
#include "clean/sense_assignment.h"
#include "datagen/datagen.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

// ---------------------------------------------------------------------------
// EMD.

TEST(EmdTest, IdenticalHistogramsHaveZeroDistance) {
  ValueHistogram p = {{1, 3}, {2, 5}};
  EXPECT_DOUBLE_EQ(CategoricalEmd(p, p), 0.0);
}

TEST(EmdTest, CategoricalKnownValues) {
  // p = {a:3}, q = {b:3}: move 3 units -> EMD 3.
  EXPECT_DOUBLE_EQ(CategoricalEmd({{1, 3}}, {{2, 3}}), 3.0);
  // p = {a:2, b:1}, q = {a:1, b:2}: move 1 unit.
  EXPECT_DOUBLE_EQ(CategoricalEmd({{1, 2}, {2, 1}}, {{1, 1}, {2, 2}}), 1.0);
}

TEST(EmdTest, CategoricalIsSymmetric) {
  ValueHistogram p = {{1, 4}, {2, 1}, {3, 2}};
  ValueHistogram q = {{1, 1}, {4, 6}};
  EXPECT_DOUBLE_EQ(CategoricalEmd(p, q), CategoricalEmd(q, p));
}

TEST(EmdTest, UnequalMassChargesSurplus) {
  // p has 5 units, q has 2 on the same bin: 3 surplus moves.
  EXPECT_DOUBLE_EQ(CategoricalEmd({{1, 5}}, {{1, 2}}), 3.0);
}

TEST(EmdTest, OrderedPrefixSumFormula) {
  // p = [1,0,0], q = [0,0,1]: one unit moved two bins -> 2.
  EXPECT_DOUBLE_EQ(OrderedEmd({1, 0, 0}, {0, 0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(OrderedEmd({2, 2}, {2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(OrderedEmd({0, 4}, {4, 0}), 4.0);
}

// ---------------------------------------------------------------------------
// Fixtures.

// Table 1 with updated (dirty) MED values and the merged ontology.
struct CleanFixture {
  Relation rel;
  Ontology ontology;

  static CleanFixture Make() {
    auto csv = ReadCsvFile(std::string(FASTOFD_DATA_DIR) + "/clinical_trials.csv");
    EXPECT_TRUE(csv.ok());
    CsvTable table = csv.value();
    table.header.erase(table.header.begin());
    for (auto& row : table.rows) row.erase(row.begin());
    auto rel = Relation::FromCsv(table);
    EXPECT_TRUE(rel.ok());
    std::string dir(FASTOFD_DATA_DIR);
    auto merged = ParseOntology(
        WriteOntology(ReadOntologyFile(dir + "/drug_ontology.txt").value()) +
        WriteOntology(ReadOntologyFile(dir + "/country_ontology.txt").value()));
    EXPECT_TRUE(merged.ok());
    return CleanFixture{std::move(rel).value(), std::move(merged).value()};
  }
};

// ---------------------------------------------------------------------------
// Initial sense assignment (Algorithm 5).

TEST(SenseAssignmentTest, PicksSenseWithMaxCoverage) {
  Relation rel(Schema({"X", "MED"}));
  // Class of 5 tuples: 3 covered by sense A only, 2 by sense B only.
  Ontology ont;
  SenseId sa = ont.AddSense("A");
  SenseId sb = ont.AddSense("B");
  ont.AddValue(sa, "a1");
  ont.AddValue(sa, "a2");
  ont.AddValue(sb, "b1");
  rel.AppendRow({"x", "a1"});
  rel.AppendRow({"x", "a1"});
  rel.AppendRow({"x", "a2"});
  rel.AppendRow({"x", "b1"});
  rel.AppendRow({"x", "b1"});
  SynonymIndex index(ont, rel.dict());
  const std::vector<RowId> rows = {0, 1, 2, 3, 4};
  SenseId got = SenseSelector::InitialAssignment(rel, index, rows, 1);
  EXPECT_EQ(got, sa);  // Covers 3 tuples vs 2.
}

TEST(SenseAssignmentTest, PrefersSenseCoveringMoreDistinctTopValues) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId sa = ont.AddSense("A");
  SenseId sb = ont.AddSense("B");
  // Sense A covers both frequent values; B covers one frequent + one rare.
  ont.AddValue(sa, "v1");
  ont.AddValue(sa, "v2");
  ont.AddValue(sb, "v1");
  ont.AddValue(sb, "rare");
  for (int i = 0; i < 4; ++i) rel.AppendRow({"x", "v1"});
  for (int i = 0; i < 3; ++i) rel.AppendRow({"x", "v2"});
  rel.AppendRow({"x", "rare"});
  SynonymIndex index(ont, rel.dict());
  std::vector<RowId> rows;
  for (RowId r = 0; r < rel.num_rows(); ++r) rows.push_back(r);
  EXPECT_EQ(SenseSelector::InitialAssignment(rel, index, rows, 1), sa);
}

TEST(SenseAssignmentTest, AllValuesOutsideOntologyGivesInvalidSense) {
  Relation rel(Schema({"X", "MED"}));
  rel.AppendRow({"x", "u1"});
  rel.AppendRow({"x", "u2"});
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  const std::vector<RowId> rows = {0, 1};
  EXPECT_EQ(SenseSelector::InitialAssignment(rel, index, rows, 1), kInvalidSense);
}

TEST(SenseAssignmentTest, FallsBackWhenTopValueUncovered) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("S");
  ont.AddValue(s, "known");
  // 'mystery' is the most frequent value but unknown to the ontology.
  rel.AppendRow({"x", "mystery"});
  rel.AppendRow({"x", "mystery"});
  rel.AppendRow({"x", "mystery"});
  rel.AppendRow({"x", "known"});
  SynonymIndex index(ont, rel.dict());
  const std::vector<RowId> rows = {0, 1, 2, 3};
  EXPECT_EQ(SenseSelector::InitialAssignment(rel, index, rows, 1), s);
}

TEST(SenseAssignmentTest, AccuracyHighOnCleanGeneratedData) {
  DataGenConfig cfg;
  cfg.num_rows = 500;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.error_rate = 0.0;
  cfg.seed = 7;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  SenseSelector selector(data.rel, index, data.sigma);
  SenseAssignmentResult result = selector.Run();

  int64_t correct = 0, total = 0;
  for (size_t i = 0; i < data.sigma.size(); ++i) {
    const auto& classes = result.partitions[i].classes();
    for (size_t c = 0; c < classes.size(); ++c) {
      // Recover the class's antecedent value to look up the true sense.
      AttrId lhs = data.sigma[i].lhs.First();
      std::string key = std::to_string(i) + ":" +
                        data.rel.StringAt(classes[c][0], lhs);
      auto it = data.true_senses.find(key);
      if (it == data.true_senses.end()) continue;
      ++total;
      SenseId assigned = result.senses[i][c];
      if (assigned == it->second) {
        ++correct;
      } else if (assigned != kInvalidSense) {
        // Also accept a sense that covers every tuple of the class (an
        // equally valid interpretation due to sense overlap).
        bool covers_all = true;
        for (RowId r : classes[c]) {
          covers_all &= index.SenseContains(assigned, data.rel.At(r, data.sigma[i].rhs));
        }
        if (covers_all) ++correct;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.95);
}

// ---------------------------------------------------------------------------
// Data repair.

TEST(RepairDataTest, FixesSingleOutlierTuple) {
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("S");
  ont.AddValue(s, "good1");
  ont.AddValue(s, "good2");
  rel.AppendRow({"x", "good1"});
  rel.AppendRow({"x", "good1"});
  rel.AppendRow({"x", "good2"});
  rel.AppendRow({"x", "bad"});
  SynonymIndex index(ont, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  SenseSelector selector(rel, index, sigma);
  SenseAssignmentResult assignment = selector.Run();
  RepairResult result = RepairData(rel, index, sigma, assignment, 1000);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.data_changes, 1);
  // The outlier was rewritten to the most frequent covered value.
  EXPECT_EQ(result.repaired.StringAt(3, 1), "good1");
  // Synonym variation among good1/good2 was NOT "repaired".
  EXPECT_EQ(result.repaired.StringAt(2, 1), "good2");
}

TEST(RepairDataTest, MajorityRepairWithoutOntology) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"x", "a"});
  rel.AppendRow({"x", "a"});
  rel.AppendRow({"x", "b"});
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  SenseSelector selector(rel, index, sigma);
  SenseAssignmentResult assignment = selector.Run();
  RepairResult result = RepairData(rel, index, sigma, assignment, 1000);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.data_changes, 1);
  EXPECT_EQ(result.repaired.StringAt(2, 1), "a");
}

TEST(RepairDataTest, BudgetExhaustionFlagsInfeasible) {
  Relation rel(Schema({"X", "Y"}));
  for (int i = 0; i < 10; ++i) {
    rel.AppendRow({"x", "v" + std::to_string(i)});
  }
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  SenseSelector selector(rel, index, sigma);
  SenseAssignmentResult assignment = selector.Run();
  RepairResult result = RepairData(rel, index, sigma, assignment, /*max_changes=*/2);
  EXPECT_FALSE(result.tau_feasible);
  EXPECT_FALSE(result.consistent);
}

TEST(RepairDataTest, CleanInstanceNeedsNoChanges) {
  CleanFixture f = CleanFixture::Make();
  // Restore the original (clean) MED values.
  f.rel.Set(8, f.rel.schema().Find("MED"), "tiazac");
  f.rel.Set(10, f.rel.schema().Find("MED"), "tiazac");
  SynonymIndex index(f.ontology, f.rel.dict());
  const Schema& s = f.rel.schema();
  SigmaSet sigma = {
      {AttrSet::Single(s.Find("CC")), s.Find("CTRY"), OfdKind::kSynonym},
      {AttrSet::Of({s.Find("SYMP"), s.Find("DIAG")}), s.Find("MED"),
       OfdKind::kSynonym}};
  SenseSelector selector(f.rel, index, sigma);
  SenseAssignmentResult assignment = selector.Run();
  RepairResult result = RepairData(f.rel, index, sigma, assignment, 1000);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.data_changes, 0);
}

// ---------------------------------------------------------------------------
// OFDClean end to end.

TEST(OfdCleanTest, ResolvesPaperExample12) {
  CleanFixture f = CleanFixture::Make();
  const Schema& s = f.rel.schema();
  SigmaSet sigma = {
      {AttrSet::Single(s.Find("CC")), s.Find("CTRY"), OfdKind::kSynonym},
      {AttrSet::Of({s.Find("SYMP"), s.Find("DIAG")}), s.Find("MED"),
       OfdKind::kSynonym}};
  OfdCleanConfig cfg;
  cfg.beam_size = 3;
  OfdClean cleaner(f.rel, f.ontology, sigma, cfg);
  OfdCleanResult result = cleaner.Run();

  // The headache class is interpreted under one sense (MoH or FDA); the two
  // values outside that sense are the ontology-repair candidates (paper
  // §7.1: values not in S *under the chosen sense* — e.g. {tiazac, adizem}
  // under MoH, matching Table 5's ASA-under-FDA style candidates).
  EXPECT_EQ(result.num_candidates, 2);
  EXPECT_TRUE(result.best.consistent);
  // The Pareto frontier offers the pure-data repair (k=0) and, if it saves
  // data changes, the ontology-assisted repair (k=1).
  ASSERT_FALSE(result.pareto.empty());
  EXPECT_EQ(result.pareto.front().ontology_changes, 0);
  for (size_t i = 1; i < result.pareto.size(); ++i) {
    EXPECT_GT(result.pareto[i].ontology_changes,
              result.pareto[i - 1].ontology_changes);
    EXPECT_LT(result.pareto[i].data_changes, result.pareto[i - 1].data_changes);
  }
  // Repaired instance satisfies Σ w.r.t. the repaired ontology.
  SynonymIndex repaired_index(f.ontology, f.rel.dict());
  for (const OntologyAddition& add : result.best.ontology_additions) {
    repaired_index.AddValue(add.sense, add.value);
  }
  OfdVerifier verifier(result.best.repaired, repaired_index);
  for (const Ofd& ofd : sigma) {
    EXPECT_TRUE(verifier.Holds(ofd));
  }
}

TEST(OfdCleanTest, ReproducesTable5RepairStaircase) {
  // Paper Tables 4/5: the four-tuple subset t8..t11 with t11[CTRY] updated
  // to 'Uni. States'. Candidate ontology repairs trade off against data
  // repairs one-for-one, producing the staircase Pareto frontier of
  // Table 5: 0 insertions -> 3 data repairs, ... , 3 insertions -> 0.
  Relation rel(Schema({"CC", "CTRY", "SYMP", "DIAG", "MED"}));
  rel.AppendRow({"US", "USA", "headache", "hypertension", "cartia"});
  rel.AppendRow({"US", "USA", "headache", "hypertension", "ASA"});
  rel.AppendRow({"US", "America", "headache", "hypertension", "tiazac"});
  rel.AppendRow({"US", "Uni. States", "headache", "hypertension", "adizem"});
  std::string dir(FASTOFD_DATA_DIR);
  Ontology ontology =
      ParseOntology(
          WriteOntology(ReadOntologyFile(dir + "/drug_ontology.txt").value()) +
          WriteOntology(ReadOntologyFile(dir + "/country_ontology.txt").value()))
          .value();
  const Schema& s = rel.schema();
  SigmaSet sigma = {
      {AttrSet::Single(s.Find("CC")), s.Find("CTRY"), OfdKind::kSynonym},
      {AttrSet::Of({s.Find("SYMP"), s.Find("DIAG")}), s.Find("MED"),
       OfdKind::kSynonym}};
  OfdCleanConfig cfg;
  cfg.beam_size = 4;
  OfdClean cleaner(rel, ontology, sigma, cfg);
  OfdCleanResult result = cleaner.Run();

  // Candidates: 'Uni. States' under the country sense, plus the two MED
  // values outside the class's chosen drug sense.
  EXPECT_EQ(result.num_candidates, 3);
  // Staircase: each insertion saves exactly one data repair.
  ASSERT_EQ(result.pareto.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(result.pareto[static_cast<size_t>(k)].ontology_changes, k);
    EXPECT_EQ(result.pareto[static_cast<size_t>(k)].data_changes, 3 - k);
  }
  EXPECT_TRUE(result.best.consistent);
}

TEST(OfdCleanTest, CleanDataNeedsNoRepairs) {
  DataGenConfig cfg;
  cfg.num_rows = 200;
  cfg.error_rate = 0.0;
  cfg.seed = 3;
  GeneratedData data = GenerateData(cfg);
  OfdClean cleaner(data.rel, data.ontology, data.sigma);
  OfdCleanResult result = cleaner.Run();
  EXPECT_TRUE(result.best.consistent);
  EXPECT_EQ(result.best.data_changes, 0);
  EXPECT_TRUE(result.best.ontology_additions.empty());
}

TEST(OfdCleanTest, RepairsInjectedErrorsWithGoodAccuracy) {
  DataGenConfig cfg;
  cfg.num_rows = 400;
  cfg.num_senses = 4;
  cfg.error_rate = 0.05;
  cfg.seed = 11;
  GeneratedData data = GenerateData(cfg);
  OfdClean cleaner(data.rel, data.ontology, data.sigma);
  OfdCleanResult result = cleaner.Run();
  EXPECT_TRUE(result.best.consistent);
  RepairScore score = ScoreRepair(data, result.best.repaired);
  EXPECT_GT(score.precision(), 0.6);
  EXPECT_GT(score.recall(), 0.4);
}

TEST(OfdCleanTest, IncompletenessTriggersOntologyRepairs) {
  DataGenConfig cfg;
  cfg.num_rows = 300;
  cfg.error_rate = 0.0;
  cfg.incompleteness_rate = 0.15;
  cfg.seed = 13;
  GeneratedData data = GenerateData(cfg);
  OfdCleanConfig ccfg;
  ccfg.max_repair_size = 16;
  OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
  OfdCleanResult result = cleaner.Run();
  EXPECT_GT(result.num_candidates, 0);
  EXPECT_FALSE(result.best.ontology_additions.empty());
  // Ontology repairs re-add removed values to correct senses: check that
  // most additions target values the generator removed.
  int64_t removed_hits = 0;
  for (const OntologyAddition& add : result.best.ontology_additions) {
    const std::string& v = data.rel.dict().String(add.value);
    if (std::find(data.removed_values.begin(), data.removed_values.end(), v) !=
        data.removed_values.end()) {
      ++removed_hits;
    }
  }
  EXPECT_GT(removed_hits, 0);
}

TEST(OfdCleanTest, TauInfeasibleInstanceYieldsEmptyPareto) {
  // Six all-distinct values in one class and an empty ontology: any repair
  // needs 5 changes while τ = 0.1 allows ⌊0.6⌋ = 0. Every beam node is
  // infeasible, so the frontier stays empty — the old accounting pushed the
  // budget-truncated change count as a bogus k=0 Pareto point.
  Relation rel(Schema({"X", "Y"}));
  for (int i = 0; i < 6; ++i) rel.AppendRow({"x", "v" + std::to_string(i)});
  Ontology empty;
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  OfdCleanConfig cfg;
  cfg.tau = 0.1;
  OfdClean cleaner(rel, empty, sigma, cfg);
  OfdCleanResult result = cleaner.Run();
  EXPECT_TRUE(result.pareto.empty());
  EXPECT_FALSE(result.best.tau_feasible);
  EXPECT_EQ(result.num_candidates, 0);
}

TEST(OfdCleanTest, InfeasibleLevelsAreSkippedNotTruncated) {
  // One class: three tuples covered by the sense, three sharing the
  // uncovered value 'bad'. Level 0 needs 3 repairs but τ = 0.2 allows only
  // 1, so k=0 yields no Pareto point. The infeasible node must still be
  // expanded — inserting 'bad' (k=1) repairs everything and becomes the
  // frontier's only point. The old truncated accounting instead reported a
  // k=0 point of 2 changes and exited early on it.
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("S");
  ont.AddValue(s, "good");
  for (int i = 0; i < 3; ++i) rel.AppendRow({"x", "good"});
  for (int i = 0; i < 3; ++i) rel.AppendRow({"x", "bad"});
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  OfdCleanConfig cfg;
  cfg.tau = 0.2;  // Budget ⌊0.2 · 6⌋ = 1.
  OfdClean cleaner(rel, ont, sigma, cfg);
  OfdCleanResult result = cleaner.Run();
  ASSERT_EQ(result.pareto.size(), 1u);
  EXPECT_EQ(result.pareto[0].ontology_changes, 1);
  EXPECT_EQ(result.pareto[0].data_changes, 0);
  EXPECT_TRUE(result.best.tau_feasible);
  EXPECT_TRUE(result.best.consistent);
  EXPECT_EQ(result.best.data_changes, 0);
  ASSERT_EQ(result.best.ontology_additions.size(), 1u);
  EXPECT_EQ(rel.dict().String(result.best.ontology_additions[0].value), "bad");
}

TEST(OfdCleanTest, CandidatesRankedByOccurrenceAcrossClasses) {
  // 'oops' occurs in two classes (3 occurrences total), 'rare' in one (1).
  // Collection must dedup candidates across classes, count every occurrence,
  // and rank by total count when truncating to max_candidates.
  Relation rel(Schema({"X", "MED"}));
  Ontology ont;
  SenseId s = ont.AddSense("S");
  ont.AddValue(s, "good");
  rel.AppendRow({"x1", "good"});
  rel.AppendRow({"x1", "good"});
  rel.AppendRow({"x1", "oops"});
  rel.AppendRow({"x1", "oops"});
  rel.AppendRow({"x2", "good"});
  rel.AppendRow({"x2", "good"});
  rel.AppendRow({"x2", "oops"});
  rel.AppendRow({"x2", "rare"});
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  OfdCleanConfig cfg;
  cfg.max_candidates = 1;  // Keep only the top-count candidate.
  OfdClean cleaner(rel, ont, sigma, cfg);
  OfdCleanResult result = cleaner.Run();
  EXPECT_EQ(result.num_candidates, 2);  // Pre-truncation |Cand(S)|.
  EXPECT_EQ(result.pareto.size(), 2u);
  // Only the 'oops' insertion was explored; it saves 3 of the 4 repairs.
  ASSERT_EQ(result.best.ontology_additions.size(), 1u);
  EXPECT_EQ(rel.dict().String(result.best.ontology_additions[0].value), "oops");
  EXPECT_EQ(result.best.data_changes, 1);

  // The class-support filter drops the single-class 'rare' before counting.
  OfdCleanConfig filtered = cfg;
  filtered.min_candidate_classes = 2;
  OfdClean cleaner2(rel, ont, sigma, filtered);
  EXPECT_EQ(cleaner2.Run().num_candidates, 1);
}

TEST(OfdCleanTest, BeamResultsIdenticalAcrossScoringModesAndThreads) {
  // The incremental + parallel beam search must be byte-identical to the
  // full-rescore serial reference: same candidates, node counts, frontier,
  // chosen insertions, and repaired cells, for any thread count.
  DataGenConfig dg;
  dg.num_rows = 400;
  dg.num_senses = 4;
  dg.error_rate = 0.04;
  dg.incompleteness_rate = 0.12;
  dg.seed = 23;
  GeneratedData data = GenerateData(dg);

  auto run = [&](bool incremental, int threads) {
    OfdCleanConfig cfg;
    cfg.incremental_scoring = incremental;
    cfg.num_threads = threads;
    cfg.max_repair_size = 16;
    OfdClean cleaner(data.rel, data.ontology, data.sigma, cfg);
    return cleaner.Run();
  };
  OfdCleanResult reference = run(/*incremental=*/false, /*threads=*/1);
  EXPECT_GT(reference.num_candidates, 0);
  EXPECT_FALSE(reference.pareto.empty());

  const std::vector<std::pair<bool, int>> variants = {
      {true, 1}, {true, 2}, {true, 8}, {false, 8}};
  for (const auto& [incremental, threads] : variants) {
    SCOPED_TRACE("incremental=" + std::to_string(incremental) +
                 " threads=" + std::to_string(threads));
    OfdCleanResult got = run(incremental, threads);
    EXPECT_EQ(got.num_candidates, reference.num_candidates);
    EXPECT_EQ(got.nodes_evaluated, reference.nodes_evaluated);
    ASSERT_EQ(got.pareto.size(), reference.pareto.size());
    for (size_t i = 0; i < reference.pareto.size(); ++i) {
      EXPECT_EQ(got.pareto[i].ontology_changes, reference.pareto[i].ontology_changes);
      EXPECT_EQ(got.pareto[i].data_changes, reference.pareto[i].data_changes);
    }
    EXPECT_EQ(got.best.data_changes, reference.best.data_changes);
    EXPECT_EQ(got.best.consistent, reference.best.consistent);
    EXPECT_TRUE(got.best.ontology_additions == reference.best.ontology_additions);
    ASSERT_EQ(got.best.repaired.num_rows(), reference.best.repaired.num_rows());
    for (RowId r = 0; r < reference.best.repaired.num_rows(); ++r) {
      for (int a = 0; a < reference.best.repaired.num_attrs(); ++a) {
        EXPECT_EQ(got.best.repaired.StringAt(r, a),
                  reference.best.repaired.StringAt(r, a));
      }
    }
  }
}

TEST(OfdCleanTest, RejectsOverlappingAntecedentConsequent) {
  Relation rel(Schema({"A", "B", "C"}));
  rel.AppendRow({"1", "2", "3"});
  Ontology ont;
  // B is consequent of the first OFD and antecedent of the second.
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym},
                    {AttrSet::Single(1), 2, OfdKind::kSynonym}};
  EXPECT_DEATH(OfdClean(rel, ont, sigma), "CHECK failed");
}

// ---------------------------------------------------------------------------
// HoloCleanLite.

TEST(HoloCleanLiteTest, RepairsLowConfidenceCellToMajorityValue) {
  Relation rel(Schema({"X", "Y"}));
  for (int i = 0; i < 5; ++i) rel.AppendRow({"x", "a"});
  rel.AppendRow({"x", "b"});
  Ontology dict;
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  HoloCleanLiteResult result = HoloCleanLite(rel, dict, sigma);
  EXPECT_EQ(result.cells_changed, 1);
  EXPECT_EQ(result.repaired.StringAt(5, 1), "a");
}

TEST(HoloCleanLiteTest, ConfidenceMarginKeepsCompetitiveValues) {
  // A near-balanced class is left alone: neither value dominates by the
  // posterior margin (this is what keeps real HoloClean's precision up).
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"x", "a"});
  rel.AppendRow({"x", "a"});
  rel.AppendRow({"x", "b"});
  Ontology dict;
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  HoloCleanLiteResult result = HoloCleanLite(rel, dict, sigma);
  EXPECT_EQ(result.cells_changed, 0);
  EXPECT_GT(result.cells_flagged, 0);
}

TEST(HoloCleanLiteTest, DictionaryBoostBreaksTies) {
  Relation rel(Schema({"X", "Y"}));
  rel.AppendRow({"x", "indict"});
  rel.AppendRow({"x", "outdict"});
  Ontology dict;
  SenseId s = dict.AddSense("s");
  dict.AddValue(s, "indict");
  SigmaSet sigma = {{AttrSet::Single(0), 1, OfdKind::kSynonym}};
  HoloCleanLiteConfig cfg;
  cfg.repair_margin = 1.5;  // Low margin: let the dictionary signal decide.
  HoloCleanLiteResult result = HoloCleanLite(rel, dict, sigma, cfg);
  EXPECT_EQ(result.repaired.StringAt(1, 1), "indict");
}

TEST(HoloCleanLiteTest, FlagsSynonymVariationAsErrors) {
  // The defining difference vs OFDClean: on a *clean* instance whose classes
  // contain synonyms, HoloCleanLite makes (false-positive) changes while
  // OFDClean changes nothing.
  DataGenConfig cfg;
  cfg.num_rows = 300;
  cfg.error_rate = 0.0;
  cfg.seed = 17;
  GeneratedData data = GenerateData(cfg);
  HoloCleanLiteResult hc = HoloCleanLite(data.rel, data.ontology, data.sigma);
  EXPECT_GT(hc.cells_changed, 0);
  RepairScore hc_score = ScoreRepair(data, hc.repaired);
  EXPECT_LT(hc_score.precision(), 0.5);  // All changes are false positives.

  OfdClean cleaner(data.rel, data.ontology, data.sigma);
  OfdCleanResult oc = cleaner.Run();
  EXPECT_EQ(oc.best.data_changes, 0);
}

}  // namespace
}  // namespace fastofd
