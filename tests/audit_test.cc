// Tests for the deep invariant auditors (common/audit.h).
//
// The validators are compiled in every build mode, so these tests run under
// plain ctest too; what FASTOFD_AUDIT adds is the hot-path hooks that abort
// on violation. Each suite checks both directions: honestly built state
// passes, and deliberately corrupted state is detected.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/audit.h"
#include "common/status.h"
#include "ofd/incremental.h"
#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

Relation SmallRelation() {
  auto rel = Relation::FromRows(Schema({"CC", "CTRY", "MED"}),
                                {{"us", "United States", "ASA"},
                                 {"us", "USA", "aspirin"},
                                 {"ca", "Canada", "ASA"},
                                 {"ca", "Canada", "ibuprofen"},
                                 {"mx", "Mexico", "advil"},
                                 {"us", "United States", "aspirin"}});
  FASTOFD_CHECK(rel.ok());
  return std::move(rel).value();
}

Ontology SmallOntology() {
  Ontology ont;
  ConceptId root = ont.AddConcept("root");
  ConceptId med = ont.AddConcept("medicine", root);
  SenseId aspirin = ont.AddSense("aspirin_sense", med);
  ont.AddValue(aspirin, "ASA");
  ont.AddValue(aspirin, "aspirin");
  SenseId ibu = ont.AddSense("ibuprofen_sense", med);
  ont.AddValue(ibu, "ibuprofen");
  ont.AddValue(ibu, "advil");
  SenseId country = ont.AddSense("country_sense");
  ont.AddValue(country, "United States");
  ont.AddValue(country, "USA");
  ont.AddValue(country, "Canada");
  ont.AddValue(country, "Mexico");
  return ont;
}

// ---------------------------------------------------------------------------
// StrippedPartition.

TEST(PartitionAuditTest, HonestPartitionsPass) {
  Relation rel = SmallRelation();
  for (AttrId a = 0; a < rel.num_attrs(); ++a) {
    StrippedPartition p = StrippedPartition::Build(rel, a);
    EXPECT_TRUE(p.AuditInvariants(rel, AttrSet().With(a)).ok());
  }
  AttrSet both = AttrSet().With(0).With(1);
  StrippedPartition product = StrippedPartition::Product(
      StrippedPartition::Build(rel, 0), StrippedPartition::Build(rel, 1));
  EXPECT_TRUE(product.AuditInvariants(rel, both).ok());
  EXPECT_TRUE(StrippedPartition::BuildForSet(rel, both)
                  .AuditInvariants(rel, both)
                  .ok());
}

TEST(PartitionAuditTest, DetectsSingletonClass) {
  Relation rel = SmallRelation();
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 1, 5}, {2}}, 4, rel.num_rows());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("singleton"), std::string::npos) << s.message();
}

TEST(PartitionAuditTest, DetectsUnsortedClass) {
  Relation rel = SmallRelation();
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{1, 0, 5}, {2, 3}}, 5, rel.num_rows());
  EXPECT_FALSE(s.ok());
}

TEST(PartitionAuditTest, DetectsOverlappingClasses) {
  Relation rel = SmallRelation();
  // Row 2 appears in both classes.
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 1, 5}, {2, 3}, {2, 3}}, 7, rel.num_rows());
  EXPECT_FALSE(s.ok());
}

TEST(PartitionAuditTest, DetectsRowOutOfRange) {
  Relation rel = SmallRelation();
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 99}}, 2, rel.num_rows());
  EXPECT_FALSE(s.ok());
}

TEST(PartitionAuditTest, DetectsClassMixingAttributeValues) {
  Relation rel = SmallRelation();
  // Rows 0 (us) and 2 (ca) do not agree on attribute 0.
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 2}, {3, 4}}, 4, rel.num_rows());
  EXPECT_FALSE(s.ok());
}

TEST(PartitionAuditTest, DetectsWrongSumSizes) {
  Relation rel = SmallRelation();
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 1, 5}, {2, 3}}, 6, rel.num_rows());
  EXPECT_FALSE(s.ok());
}

TEST(PartitionAuditTest, DeepRebuildDetectsMissingClass) {
  Relation rel = SmallRelation();
  // {2,3} ("ca") is a genuine class of Π*_CC; omitting it keeps every
  // structural invariant intact, so only the naive-rebuild cross-check
  // (active because the relation is below kDeepAuditMaxRows) catches it.
  Status s = StrippedPartition::AuditStrippedPartitionParts(
      rel, AttrSet().With(0), {{0, 1, 5}}, 3, rel.num_rows());
  ASSERT_FALSE(s.ok());
}

TEST(PartitionAuditTest, CountsChecks) {
  Relation rel = SmallRelation();
  int64_t before = audit::ChecksRun();
  StrippedPartition p = StrippedPartition::Build(rel, 0);
  EXPECT_TRUE(p.AuditInvariants(rel, AttrSet().With(0)).ok());
  EXPECT_GT(audit::ChecksRun(), before);
}

// ---------------------------------------------------------------------------
// PartitionCache.

TEST(PartitionCacheAuditTest, PassesThroughChurn) {
  Relation rel = SmallRelation();
  PartitionCache cache(rel, /*budget_bytes=*/1 << 10);
  EXPECT_TRUE(cache.AuditInvariants().ok());
  for (int round = 0; round < 3; ++round) {
    for (AttrId a = 0; a < rel.num_attrs(); ++a) {
      cache.Get(AttrSet().With(a));
      cache.Get(AttrSet().With(0).With(a));
      EXPECT_TRUE(cache.AuditInvariants().ok());
    }
    cache.Invalidate(AttrSet().With(round % rel.num_attrs()));
    EXPECT_TRUE(cache.AuditInvariants().ok());
  }
  cache.Clear();
  EXPECT_TRUE(cache.AuditInvariants().ok());
}

// ---------------------------------------------------------------------------
// Ontology / SynonymIndex.

TEST(OntologyAuditTest, CompiledIndexPasses) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  EXPECT_TRUE(AuditOntologyIndex(ont, rel.dict(), index).ok());
}

TEST(OntologyAuditTest, DetectsIndexDriftFromOntology) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  // Claim "Canada" belongs to the aspirin sense in the index only: the
  // ontology was never repaired, so the audit must flag the divergence.
  SenseId aspirin = ont.FindSense("aspirin_sense");
  ASSERT_GE(aspirin, 0);
  index.AddValue(aspirin, rel.dict().Lookup("Canada"));
  EXPECT_FALSE(AuditOntologyIndex(ont, rel.dict(), index).ok());
}

TEST(OntologyAuditTest, MirroredRepairStillPasses) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  // An ontology repair applied to *both* sides stays consistent.
  SenseId aspirin = ont.FindSense("aspirin_sense");
  ASSERT_TRUE(ont.AddValue(aspirin, "advil"));
  index.AddValue(aspirin, rel.dict().Lookup("advil"));
  EXPECT_TRUE(AuditOntologyIndex(ont, rel.dict(), index).ok());
}

TEST(OntologyAuditTest, RelaxedModeToleratesPostLoadValues) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  // A service `update` interns a value the ontology knows but the compiled
  // snapshot does not cover. Strict mode flags it; relaxed mode (what
  // Session::Audit uses) accepts it.
  SenseId aspirin = ont.FindSense("aspirin_sense");
  ASSERT_TRUE(ont.AddValue(aspirin, "acetylsalicylic acid"));
  rel.mutable_dict().Intern("acetylsalicylic acid");
  EXPECT_FALSE(AuditOntologyIndex(ont, rel.dict(), index).ok());
  EXPECT_TRUE(AuditOntologyIndex(ont, rel.dict(), index,
                                 /*allow_unindexed_values=*/true)
                  .ok());
}

// ---------------------------------------------------------------------------
// IncrementalVerifier.

SigmaSet SmallSigma() {
  SigmaSet sigma;
  sigma.push_back(Ofd{AttrSet().With(0), 1, OfdKind::kSynonym});
  sigma.push_back(Ofd{AttrSet().With(0).With(1), 2, OfdKind::kSynonym});
  return sigma;
}

TEST(IncrementalAuditTest, FreshAndUpdatedStatePasses) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  IncrementalVerifier verifier(&rel, index, SmallSigma());
  EXPECT_TRUE(verifier.AuditState().ok());
  // Consequent update, antecedent update, and a no-op, audited after each.
  verifier.UpdateCell(0, 1, rel.mutable_dict().Intern("USA"));
  EXPECT_TRUE(verifier.AuditState().ok());
  verifier.UpdateCell(2, 0, rel.mutable_dict().Intern("us"));
  EXPECT_TRUE(verifier.AuditState().ok());
  verifier.UpdateCell(2, 0, rel.At(2, 0));
  EXPECT_TRUE(verifier.AuditState().ok());
}

TEST(IncrementalAuditTest, DetectsOutOfBandRelationMutation) {
  Relation rel = SmallRelation();
  Ontology ont = SmallOntology();
  SynonymIndex index(ont, rel.dict());
  IncrementalVerifier verifier(&rel, index, SmallSigma());
  ASSERT_TRUE(verifier.AuditState().ok());
  // Mutating the relation behind the verifier's back (the exact bug class
  // the audit exists for: every write must go through UpdateCell) leaves
  // row 0 filed under a stale antecedent key.
  rel.Set(0, 0, "ca");
  EXPECT_FALSE(verifier.AuditState().ok());
}

}  // namespace
}  // namespace fastofd
