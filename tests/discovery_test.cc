// Tests for the discovery module: set-cover utilities, the seven FD-discovery
// baselines (cross-checked against brute force), and FastOFD itself
// (cross-checked against a brute-force OFD enumerator and against TANE under
// the identity ontology).

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "discovery/fastofd.h"
#include "discovery/fd_baselines.h"
#include "discovery/set_cover.h"
#include "ofd/inference.h"
#include "ofd/verifier.h"
#include "ontology/generator.h"
#include "ontology/ontology.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {
namespace {

// ---------------------------------------------------------------------------
// Set-cover utilities.

TEST(SetCoverTest, AgreeSetBasics) {
  Relation rel(Schema({"A", "B", "C"}));
  rel.AppendRow({"1", "2", "3"});
  rel.AppendRow({"1", "9", "3"});
  EXPECT_EQ(AgreeSet(rel, 0, 1), AttrSet::Of({0, 2}));
}

TEST(SetCoverTest, CandidatePairsCoverAllAgreeingPairs) {
  Rng rng(8);
  Relation rel(Schema({"A", "B", "C"}));
  for (int r = 0; r < 30; ++r) {
    rel.AppendRow({"v" + std::to_string(rng.NextUint(4)),
                   "v" + std::to_string(rng.NextUint(4)),
                   "v" + std::to_string(rng.NextUint(4))});
  }
  std::vector<std::pair<RowId, RowId>> pairs = CandidatePairs(rel);
  std::set<std::pair<RowId, RowId>> fast(pairs.begin(), pairs.end());
  for (RowId a = 0; a < rel.num_rows(); ++a) {
    for (RowId b = a + 1; b < rel.num_rows(); ++b) {
      if (!AgreeSet(rel, a, b).empty()) {
        EXPECT_TRUE(fast.count({a, b})) << a << "," << b;
      }
    }
  }
}

TEST(SetCoverTest, MaximalAndMinimalSets) {
  std::vector<AttrSet> family = {AttrSet::Of({0}), AttrSet::Of({0, 1}),
                                 AttrSet::Of({2}), AttrSet::Of({0, 1})};
  auto maximal = MaximalSets(family);
  EXPECT_EQ(maximal.size(), 2u);  // {0,1} and {2}
  auto minimal = MinimalSets(family);
  EXPECT_EQ(minimal.size(), 2u);  // {0} and {2}
}

TEST(SetCoverTest, MinimalTransversalsKnownExample) {
  // Sets {0,1}, {1,2}: minimal transversals are {1}, {0,2}.
  auto ts = MinimalTransversals({AttrSet::Of({0, 1}), AttrSet::Of({1, 2})},
                                AttrSet::All(3));
  std::set<uint64_t> masks;
  for (AttrSet t : ts) masks.insert(t.mask());
  EXPECT_EQ(masks, (std::set<uint64_t>{AttrSet::Of({1}).mask(),
                                       AttrSet::Of({0, 2}).mask()}));
}

TEST(SetCoverTest, TransversalsEmptyFamilyAndUnhittable) {
  EXPECT_EQ(MinimalTransversals({}, AttrSet::All(3)).size(), 1u);
  EXPECT_TRUE(MinimalTransversals({}, AttrSet::All(3))[0].empty());
  EXPECT_TRUE(MinimalTransversals({AttrSet::Of({5})}, AttrSet::All(3)).empty());
}

class TransversalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TransversalRandomTest, TransversalsHitEverySetAndAreMinimal) {
  Rng rng(900 + GetParam());
  AttrSet universe = AttrSet::All(6);
  std::vector<AttrSet> family;
  int n_sets = 1 + static_cast<int>(rng.NextUint(6));
  for (int i = 0; i < n_sets; ++i) {
    AttrSet s;
    for (int a = 0; a < 6; ++a) {
      if (rng.NextBernoulli(0.4)) s = s.With(a);
    }
    if (!s.empty()) family.push_back(s);
  }
  auto ts = MinimalTransversals(family, universe);
  for (AttrSet t : ts) {
    for (AttrSet s : family) EXPECT_TRUE(t.Intersects(s));
    for (AttrId a : t.ToVector()) {
      AttrSet reduced = t.Without(a);
      bool hits_all = true;
      for (AttrSet s : family) hits_all &= reduced.Intersects(s);
      EXPECT_FALSE(hits_all) << "transversal not minimal";
    }
  }
  // Completeness: any hitting set contains some minimal transversal.
  for (uint64_t mask = 0; mask < 64; ++mask) {
    AttrSet x = AttrSet::FromMask(mask);
    bool hits_all = true;
    for (AttrSet s : family) hits_all &= x.Intersects(s);
    if (!hits_all) continue;
    bool contains_transversal = false;
    for (AttrSet t : ts) contains_transversal |= t.IsSubsetOf(x);
    EXPECT_TRUE(contains_transversal);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransversalRandomTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// FD baselines.

Relation RandomRelation(uint64_t seed, int n_attrs, int n_rows, int domain) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int a = 0; a < n_attrs; ++a) names.push_back(std::string(1, static_cast<char>('A' + a)));
  Relation rel((Schema(names)));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < n_attrs; ++a) {
      row.push_back("v" + std::to_string(rng.NextUint(domain)));
    }
    rel.AppendRow(row);
  }
  return rel;
}

// Relation with planted FDs so discovery outputs are non-trivial.
Relation PlantedRelation(uint64_t seed, int n_rows) {
  Rng rng(seed);
  Relation rel(Schema({"A", "B", "C", "D", "E"}));
  for (int r = 0; r < n_rows; ++r) {
    int a = static_cast<int>(rng.NextUint(5));
    int b = static_cast<int>(rng.NextUint(3));
    int c = (a + b) % 4;            // {A,B} -> C
    int d = a % 3;                  // A -> D
    int e = static_cast<int>(rng.NextUint(8));
    rel.AppendRow({"a" + std::to_string(a), "b" + std::to_string(b),
                   "c" + std::to_string(c), "d" + std::to_string(d),
                   "e" + std::to_string(e)});
  }
  return rel;
}

class FdAlgorithmsTest : public ::testing::TestWithParam<int> {};

TEST_P(FdAlgorithmsTest, AllMinimalAlgorithmsMatchBruteForce) {
  Relation rel = GetParam() % 2 == 0
                     ? RandomRelation(100 + GetParam(), 4, 25, 3)
                     : PlantedRelation(100 + GetParam(), 40);
  FdResult expected = BruteForceFds(rel);
  for (const char* name : {"tane", "fun", "dfd", "depminer", "fastfds", "fdep"}) {
    auto algo = MakeFdAlgorithm(name);
    ASSERT_NE(algo, nullptr);
    FdResult got = algo->Discover(rel);
    EXPECT_EQ(got.fds, expected.fds) << name << " seed " << GetParam();
  }
}

TEST_P(FdAlgorithmsTest, FdMineOutputIsSoundAndComplete) {
  Relation rel = RandomRelation(200 + GetParam(), 4, 20, 3);
  FdResult expected = BruteForceFds(rel);
  FdResult got = MakeFdAlgorithm("fdmine")->Discover(rel);
  // Sound: every reported FD holds on the data.
  for (const Ofd& fd : got.fds) {
    StrippedPartition x = StrippedPartition::BuildForSet(rel, fd.lhs);
    StrippedPartition xa = StrippedPartition::BuildForSet(rel, fd.lhs.With(fd.rhs));
    EXPECT_TRUE(FdHolds(x, xa));
  }
  // Complete (as a cover): every minimal FD is implied by FDMine's output
  // under FD (transitive) implication.
  for (const Ofd& fd : expected.fds) {
    EXPECT_TRUE(ImpliesFd(got.fds, fd));
  }
  // And, per the paper's observation, the output is not smaller than the
  // minimal set.
  EXPECT_GE(got.fds.size(), expected.fds.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdAlgorithmsTest, ::testing::Range(0, 8));

TEST(FdAlgorithmsTest, ConstantColumnYieldsEmptyLhsFd) {
  Relation rel(Schema({"A", "B"}));
  rel.AppendRow({"same", "1"});
  rel.AppendRow({"same", "2"});
  rel.AppendRow({"same", "2"});
  for (const std::string& name : FdAlgorithmNames()) {
    FdResult got = MakeFdAlgorithm(name)->Discover(rel);
    bool found = false;
    for (const Ofd& fd : got.fds) {
      if (fd.rhs == 0 && fd.lhs.empty()) found = true;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(FdAlgorithmsTest, FactoryRejectsUnknownName) {
  EXPECT_EQ(MakeFdAlgorithm("nope"), nullptr);
  EXPECT_EQ(FdAlgorithmNames().size(), 7u);
}

// ---------------------------------------------------------------------------
// FastOFD.

// Brute-force OFD discovery via the verifier (reference for tests).
SigmaSet BruteForceOfds(const Relation& rel, const SynonymIndex& index) {
  OfdVerifier verifier(rel, index);
  SigmaSet out;
  const int n = rel.num_attrs();
  std::vector<AttrSet> subsets;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    subsets.push_back(AttrSet::FromMask(mask));
  }
  std::sort(subsets.begin(), subsets.end(), [](AttrSet a, AttrSet b) {
    return a.size() != b.size() ? a.size() < b.size() : a.mask() < b.mask();
  });
  for (AttrId a = 0; a < n; ++a) {
    std::vector<AttrSet> minimal_found;
    for (AttrSet lhs : subsets) {
      if (lhs.Contains(a)) continue;
      bool subsumed = false;
      for (AttrSet m : minimal_found) {
        if (m.IsSubsetOf(lhs)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
      if (verifier.Holds({lhs, a, OfdKind::kSynonym})) {
        minimal_found.push_back(lhs);
        out.push_back(Ofd{lhs, a, OfdKind::kSynonym});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Random relation whose values are drawn from a random ontology's senses
// (plus out-of-ontology noise).
struct OfdInstance {
  Relation rel;
  Ontology ontology;
};

OfdInstance RandomOfdInstance(uint64_t seed, int n_attrs, int n_rows) {
  Rng rng(seed);
  OntologyGenConfig cfg;
  cfg.num_senses = 5;
  cfg.values_per_sense = 4;
  cfg.overlap = 0.3;
  cfg.seed = seed * 31 + 7;
  Ontology ont = GenerateOntology(cfg);
  std::vector<std::string> names;
  for (int a = 0; a < n_attrs; ++a) names.push_back(std::string(1, static_cast<char>('A' + a)));
  Relation rel((Schema(names)));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < n_attrs; ++a) {
      if (rng.NextBernoulli(0.8)) {
        SenseId s = static_cast<SenseId>(rng.NextUint(ont.num_senses()));
        const auto& values = ont.SenseValues(s);
        row.push_back(values[rng.NextUint(values.size())]);
      } else {
        row.push_back("noise" + std::to_string(rng.NextUint(4)));
      }
    }
    rel.AppendRow(row);
  }
  return {std::move(rel), std::move(ont)};
}

class FastOfdRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FastOfdRandomTest, MatchesBruteForceEnumeration) {
  OfdInstance inst = RandomOfdInstance(777 + GetParam(), 4, 30);
  SynonymIndex index(inst.ontology, inst.rel.dict());
  SigmaSet expected = BruteForceOfds(inst.rel, index);
  FastOfd fastofd(inst.rel, index);
  FastOfdResult got = fastofd.Discover();
  EXPECT_EQ(got.ofds, expected);
}

TEST_P(FastOfdRandomTest, OptimizationTogglesPreserveOutput) {
  OfdInstance inst = RandomOfdInstance(888 + GetParam(), 4, 30);
  SynonymIndex index(inst.ontology, inst.rel.dict());
  FastOfdConfig base;
  SigmaSet reference = FastOfd(inst.rel, index, base).Discover().ofds;
  for (int mask = 0; mask < 8; ++mask) {
    FastOfdConfig cfg;
    cfg.opt_augmentation = mask & 1;
    cfg.opt_keys = mask & 2;
    cfg.opt_fd_reduction = mask & 4;
    SigmaSet got = FastOfd(inst.rel, index, cfg).Discover().ofds;
    EXPECT_EQ(got, reference) << "opts mask " << mask;
  }
}

TEST_P(FastOfdRandomTest, IdentityOntologyReducesToTane) {
  // With an empty ontology, synonym OFDs are exactly traditional FDs.
  Relation rel = RandomRelation(999 + GetParam(), 4, 25, 3);
  Ontology empty;
  SynonymIndex index(empty, rel.dict());
  SigmaSet ofds = FastOfd(rel, index).Discover().ofds;
  FdResult tane = MakeFdAlgorithm("tane")->Discover(rel);
  EXPECT_EQ(ofds, tane.fds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastOfdRandomTest, ::testing::Range(0, 8));

TEST(FastOfdTest, DiscoversPaperDependencies) {
  auto csv = ReadCsvFile(std::string(FASTOFD_DATA_DIR) + "/clinical_trials.csv");
  ASSERT_TRUE(csv.ok());
  // Drop the tuple-id column; restore the original MED values.
  CsvTable table = csv.value();
  table.header.erase(table.header.begin());
  for (auto& row : table.rows) row.erase(row.begin());
  auto rel_result = Relation::FromCsv(table);
  ASSERT_TRUE(rel_result.ok());
  Relation rel = std::move(rel_result).value();
  rel.Set(8, rel.schema().Find("MED"), "tiazac");
  rel.Set(10, rel.schema().Find("MED"), "tiazac");

  std::string dir(FASTOFD_DATA_DIR);
  auto merged = ParseOntology(
      WriteOntology(ReadOntologyFile(dir + "/drug_ontology.txt").value()) +
      WriteOntology(ReadOntologyFile(dir + "/country_ontology.txt").value()));
  ASSERT_TRUE(merged.ok());
  SynonymIndex index(merged.value(), rel.dict());
  FastOfdResult result = FastOfd(rel, index).Discover();

  const Schema& s = rel.schema();
  Ofd cc_ctry{AttrSet::Single(s.Find("CC")), s.Find("CTRY"), OfdKind::kSynonym};
  EXPECT_TRUE(std::find(result.ofds.begin(), result.ofds.end(), cc_ctry) !=
              result.ofds.end());
  // [SYMP,DIAG] -> MED holds; it may be subsumed by a smaller discovered OFD
  // (e.g. SYMP -> MED holds on this tiny sample), so assert implication.
  Ofd symp_diag_med{AttrSet::Of({s.Find("SYMP"), s.Find("DIAG")}), s.Find("MED"),
                    OfdKind::kSynonym};
  EXPECT_TRUE(ImpliesOfd(result.ofds, symp_diag_med));
  // Everything discovered actually holds and is minimal.
  OfdVerifier verifier(rel, index);
  for (const Ofd& ofd : result.ofds) {
    EXPECT_TRUE(verifier.Holds(ofd)) << RenderOfd(ofd, s);
    for (AttrId b : ofd.lhs.ToVector()) {
      EXPECT_FALSE(verifier.Holds({ofd.lhs.Without(b), ofd.rhs, ofd.kind}))
          << "non-minimal: " << RenderOfd(ofd, s);
    }
  }
  // Level stats add up.
  int64_t total = 0;
  for (const auto& stats : result.level_stats) total += stats.ofds_found;
  EXPECT_EQ(total, static_cast<int64_t>(result.ofds.size()));
}

TEST(FastOfdTest, MaxLevelTruncatesSearch) {
  OfdInstance inst = RandomOfdInstance(31337, 5, 40);
  SynonymIndex index(inst.ontology, inst.rel.dict());
  FastOfdConfig cfg;
  cfg.max_level = 2;
  FastOfdResult truncated = FastOfd(inst.rel, index, cfg).Discover();
  for (const Ofd& ofd : truncated.ofds) {
    EXPECT_LE(ofd.lhs.size(), 1);  // Candidates at level l have |lhs| = l-1.
  }
  EXPECT_LE(truncated.level_stats.size(), 2u);
}

TEST(FastOfdTest, ApproximateDiscoveryIsMonotoneInSupport) {
  OfdInstance inst = RandomOfdInstance(4242, 4, 50);
  SynonymIndex index(inst.ontology, inst.rel.dict());
  FastOfdConfig exact;
  FastOfdConfig approx;
  approx.min_support = 0.8;
  SigmaSet exact_set = FastOfd(inst.rel, index, exact).Discover().ofds;
  SigmaSet approx_set = FastOfd(inst.rel, index, approx).Discover().ofds;
  // Every exact OFD is implied by some approximate OFD (same or smaller lhs).
  OfdVerifier verifier(inst.rel, index);
  for (const Ofd& ofd : exact_set) {
    bool covered = false;
    for (const Ofd& ap : approx_set) {
      if (ap.rhs == ofd.rhs && ap.lhs.IsSubsetOf(ofd.lhs)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
  // Approximate OFDs meet the support threshold.
  for (const Ofd& ofd : approx_set) {
    StrippedPartition p = StrippedPartition::BuildForSet(inst.rel, ofd.lhs);
    EXPECT_GE(verifier.Support(ofd, p), 0.8);
  }
}

TEST(FastOfdTest, InheritanceDiscoveryRuns) {
  auto ont = ReadOntologyFile(std::string(FASTOFD_DATA_DIR) + "/drug_ontology.txt");
  ASSERT_TRUE(ont.ok());
  Relation rel(Schema({"G", "MED"}));
  rel.AppendRow({"g1", "tylenol"});
  rel.AppendRow({"g1", "analgesic"});
  rel.AppendRow({"g2", "ibuprofen"});
  rel.AppendRow({"g2", "naproxen"});
  SynonymIndex index(ont.value(), rel.dict());
  // At theta=2 every drug reaches the continuant_drug root, so the minimal
  // inheritance OFD is ∅ -> MED; at theta=0 the classes must share a direct
  // concept and G -> MED becomes the minimal discovery.
  FastOfdConfig loose;
  loose.kind = OfdKind::kInheritance;
  loose.theta = 2;
  FastOfdResult at2 = FastOfd(rel, index, loose, &ont.value()).Discover();
  Ofd empty_med{AttrSet(), 1, OfdKind::kInheritance};
  EXPECT_TRUE(std::find(at2.ofds.begin(), at2.ofds.end(), empty_med) !=
              at2.ofds.end());

  FastOfdConfig strict;
  strict.kind = OfdKind::kInheritance;
  strict.theta = 0;
  FastOfdResult at0 = FastOfd(rel, index, strict, &ont.value()).Discover();
  Ofd g_med{AttrSet::Single(0), 1, OfdKind::kInheritance};
  EXPECT_TRUE(std::find(at0.ofds.begin(), at0.ofds.end(), g_med) != at0.ofds.end());
  EXPECT_TRUE(std::find(at0.ofds.begin(), at0.ofds.end(), empty_med) ==
              at0.ofds.end());
}

}  // namespace
}  // namespace fastofd
