// Robustness ("fuzz-ish") tests: the text parsers must reject or accept —
// never crash on — arbitrary byte soup, and accepted inputs must round-trip.

#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/rng.h"
#include "ofd/sigma_io.h"
#include "ontology/ontology.h"
#include "relation/schema.h"

namespace fastofd {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len, const std::string& alphabet) {
  size_t len = rng->NextUint(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->NextUint(alphabet.size())]);
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(8800 + GetParam());
  const std::string alphabet = "abc,\"\n\r \t|=#->{}0123456789";
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 120, alphabet);
    auto result = ParseCsv(input);
    if (result.ok()) {
      // Accepted input round-trips through the writer.
      auto again = ParseCsv(WriteCsv(result.value()),
                            !result.value().header.empty());
      EXPECT_TRUE(again.ok());
    }
  }
}

TEST_P(FuzzTest, OntologyParserNeverCrashes) {
  Rng rng(8900 + GetParam());
  const std::string alphabet = "absdconceptparent=|: \t\n#_";
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 150, alphabet);
    auto result = ParseOntology(input);
    if (result.ok()) {
      auto again = ParseOntology(WriteOntology(result.value()));
      EXPECT_TRUE(again.ok());
      EXPECT_EQ(again.value().num_senses(), result.value().num_senses());
    }
  }
}

TEST_P(FuzzTest, SigmaParserNeverCrashes) {
  Rng rng(9000 + GetParam());
  Schema schema({"A", "B", "C"});
  const std::string alphabet = "ABC,-> inh syn{}\n# \t";
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 80, alphabet);
    auto result = ParseSigma(input, schema);
    if (result.ok()) {
      auto again = ParseSigma(WriteSigma(result.value(), schema), schema);
      EXPECT_TRUE(again.ok());
      EXPECT_EQ(again.value(), result.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace fastofd
