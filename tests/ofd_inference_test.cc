// Tests for OFD axiomatic inference: closure (Algorithm 1), implication,
// and minimal covers (Definition 3.7).

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ofd/inference.h"
#include "ofd/ofd.h"
#include "relation/schema.h"

namespace fastofd {
namespace {

// Attribute aliases for readability: A=0, B=1, C=2, D=3, E=4.
constexpr AttrId A = 0, B = 1, C = 2, D = 3, E = 4;

Dependency Dep(std::initializer_list<AttrId> lhs, std::initializer_list<AttrId> rhs) {
  return {AttrSet::Of(lhs), AttrSet::Of(rhs)};
}

TEST(ClosureTest, NoTransitivity) {
  // OFDs have no Transitivity axiom (paper §3.1): with A->B and B->C,
  // closure(A) = {A,B} — C is NOT derivable.
  std::vector<Dependency> sigma = {Dep({A}, {B}), Dep({B}, {C})};
  EXPECT_EQ(Closure(AttrSet::Of({A}), sigma), AttrSet::Of({A, B}));
  EXPECT_EQ(Closure(AttrSet::Of({B}), sigma), AttrSet::Of({B, C}));
  EXPECT_EQ(Closure(AttrSet::Of({C}), sigma), AttrSet::Of({C}));
  // The FD closure, by contrast, is transitive.
  EXPECT_EQ(FdClosure(AttrSet::Of({A}), sigma), AttrSet::Of({A, B, C}));
}

TEST(ClosureTest, MultiAttributeAntecedents) {
  // AB->C, C->D, AD->E: only AB->C fires from {A,B} (C ⊄ {A,B}).
  std::vector<Dependency> sigma = {Dep({A, B}, {C}), Dep({C}, {D}), Dep({A, D}, {E})};
  EXPECT_EQ(Closure(AttrSet::Of({A, B}), sigma), AttrSet::Of({A, B, C}));
  EXPECT_EQ(Closure(AttrSet::Of({A}), sigma), AttrSet::Of({A}));
  EXPECT_EQ(Closure(AttrSet::Of({C}), sigma), AttrSet::Of({C, D}));
  EXPECT_EQ(Closure(AttrSet::Of({A, B, D}), sigma), AttrSet::Of({A, B, C, D, E}));
  // Under FD axioms the chain completes.
  EXPECT_EQ(FdClosure(AttrSet::Of({A, B}), sigma), AttrSet::Of({A, B, C, D, E}));
}

TEST(ClosureTest, ClosureIsNotIdempotentWithoutTransitivity) {
  // closure(closure(A)) may exceed closure(A): this is exactly the
  // non-transitivity of OFD derivation.
  std::vector<Dependency> sigma = {Dep({A}, {B}), Dep({B}, {C})};
  AttrSet once = Closure(AttrSet::Of({A}), sigma);
  AttrSet twice = Closure(once, sigma);
  EXPECT_EQ(once, AttrSet::Of({A, B}));
  EXPECT_EQ(twice, AttrSet::Of({A, B, C}));
}

TEST(ClosureTest, EmptyLhsDependency) {
  // {} -> A means A is in every closure.
  std::vector<Dependency> sigma = {Dep({}, {A}), Dep({A, B}, {C})};
  EXPECT_EQ(Closure(AttrSet(), sigma), AttrSet::Of({A}));
  // {A,B} -> C does not fire from {B}: A is derived, not contained in X.
  EXPECT_EQ(Closure(AttrSet::Of({B}), sigma), AttrSet::Of({A, B}));
  // Under transitive FD closure it does fire.
  EXPECT_EQ(FdClosure(AttrSet::Of({B}), sigma), AttrSet::Of({A, B, C}));
}

TEST(ClosureTest, EmptySigma) {
  EXPECT_EQ(Closure(AttrSet::Of({A, C}), {}), AttrSet::Of({A, C}));
}

class ClosureRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosureRandomTest, LinearClosureAgreesWithNaiveFixpoint) {
  Rng rng(500 + GetParam());
  const int n_attrs = 8;
  std::vector<Dependency> sigma;
  int n_deps = static_cast<int>(rng.NextUint(12)) + 1;
  for (int i = 0; i < n_deps; ++i) {
    AttrSet lhs, rhs;
    for (int a = 0; a < n_attrs; ++a) {
      if (rng.NextBernoulli(0.25)) lhs = lhs.With(a);
      if (rng.NextBernoulli(0.25)) rhs = rhs.With(a);
    }
    sigma.push_back({lhs, rhs});
  }
  for (int trial = 0; trial < 20; ++trial) {
    AttrSet x;
    for (int a = 0; a < n_attrs; ++a) {
      if (rng.NextBernoulli(0.3)) x = x.With(a);
    }
    EXPECT_EQ(Closure(x, sigma), ClosureNaive(x, sigma));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureRandomTest, ::testing::Range(0, 15));

TEST(ClosureTest, ClosureIsExtensiveAndMonotone) {
  Rng rng(77);
  std::vector<Dependency> sigma = {Dep({A}, {B}), Dep({B, C}, {D}), Dep({D}, {E})};
  for (int trial = 0; trial < 30; ++trial) {
    AttrSet x;
    for (int a = 0; a < 5; ++a) {
      if (rng.NextBernoulli(0.4)) x = x.With(a);
    }
    AttrSet cx = Closure(x, sigma);
    EXPECT_TRUE(cx.ContainsAll(x));  // extensive
    // Monotone: a superset input yields a superset closure.
    AttrSet y = x.With(static_cast<AttrId>(rng.NextUint(5)));
    EXPECT_TRUE(Closure(y, sigma).ContainsAll(cx));
    // The FD closure always dominates the OFD closure.
    EXPECT_TRUE(FdClosure(x, sigma).ContainsAll(cx));
  }
}

TEST(ImplicationTest, FollowsFromClosure) {
  std::vector<Dependency> sigma = {Dep({A}, {B}), Dep({B}, {C})};
  // No transitivity: A -> C is not OFD-implied (but is FD-implied).
  EXPECT_FALSE(Implies(sigma, AttrSet::Of({A}), AttrSet::Of({C})));
  EXPECT_TRUE(Implies(sigma, AttrSet::Of({A}), AttrSet::Of({B})));
  EXPECT_TRUE(Implies(sigma, AttrSet::Of({A, B}), AttrSet::Of({B, C})));
  EXPECT_FALSE(Implies(sigma, AttrSet::Of({C}), AttrSet::Of({A})));
  // Reflexivity (O1 + O2): X -> subset of X always.
  EXPECT_TRUE(Implies({}, AttrSet::Of({A, B}), AttrSet::Of({A})));
}

TEST(ImplicationTest, CompositionAxiom) {
  // O3: X->Y and Z->W imply XZ->YW.
  std::vector<Dependency> sigma = {Dep({A}, {B}), Dep({C}, {D})};
  EXPECT_TRUE(Implies(sigma, AttrSet::Of({A, C}), AttrSet::Of({B, D})));
}

TEST(ImplicationTest, OfdVsFdImplication) {
  SigmaSet sigma = {{AttrSet::Of({A}), B, OfdKind::kSynonym},
                    {AttrSet::Of({B}), C, OfdKind::kSynonym}};
  Ofd transitive{AttrSet::Of({A}), C, OfdKind::kSynonym};
  EXPECT_FALSE(ImpliesOfd(sigma, transitive));  // No OFD transitivity.
  EXPECT_TRUE(ImpliesFd(sigma, transitive));    // FDs are transitive.
  EXPECT_FALSE(ImpliesOfd(sigma, {AttrSet::Of({C}), A, OfdKind::kSynonym}));
  // Augmentation still works for OFDs: AB -> B trivially, A -> B given.
  EXPECT_TRUE(ImpliesOfd(sigma, {AttrSet::Of({A, C}), B, OfdKind::kSynonym}));
}

TEST(MinimalCoverTest, PaperExample38) {
  // Σ1: CC -> CTRY; Σ2: {CC,DIAG} -> MED; Σ3: {CC,DIAG} -> {MED, CTRY}.
  // Σ3 follows from Σ1 and Σ2 by Composition, so a minimal cover drops it.
  constexpr AttrId CC = 0, CTRY = 1, DIAG = 2, MED = 3;
  SigmaSet sigma = {
      {AttrSet::Of({CC}), CTRY, OfdKind::kSynonym},
      {AttrSet::Of({CC, DIAG}), MED, OfdKind::kSynonym},
      // Σ3 normalized to single consequents:
      {AttrSet::Of({CC, DIAG}), MED, OfdKind::kSynonym},
      {AttrSet::Of({CC, DIAG}), CTRY, OfdKind::kSynonym},
  };
  SigmaSet cover = MinimalCover(sigma);
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0], (Ofd{AttrSet::Of({CC}), CTRY, OfdKind::kSynonym}));
  EXPECT_EQ(cover[1], (Ofd{AttrSet::Of({CC, DIAG}), MED, OfdKind::kSynonym}));
}

TEST(MinimalCoverTest, RemovesExtraneousLhsAttributes) {
  // A->B makes AB->... overconstrained: {A,C}->B should shrink to nothing
  // extra when A->B present; classic: A->B, AC->B  =>  {A->B}.
  SigmaSet sigma = {{AttrSet::Of({A}), B, OfdKind::kSynonym},
                    {AttrSet::Of({A, C}), B, OfdKind::kSynonym}};
  SigmaSet cover = MinimalCover(sigma);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].lhs, AttrSet::Of({A}));
  EXPECT_EQ(cover[0].rhs, B);
}

TEST(MinimalCoverTest, DropsTrivialDependencies) {
  SigmaSet sigma = {{AttrSet::Of({A, B}), A, OfdKind::kSynonym}};
  EXPECT_TRUE(MinimalCover(sigma).empty());
}

TEST(MinimalCoverTest, CoverIsEquivalentToOriginal) {
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    SigmaSet sigma;
    int n = static_cast<int>(rng.NextUint(8)) + 1;
    for (int i = 0; i < n; ++i) {
      AttrSet lhs;
      for (int a = 0; a < 6; ++a) {
        if (rng.NextBernoulli(0.3)) lhs = lhs.With(a);
      }
      AttrId rhs = static_cast<AttrId>(rng.NextUint(6));
      sigma.push_back({lhs, rhs, OfdKind::kSynonym});
    }
    SigmaSet cover = MinimalCover(sigma);
    // Every original OFD is implied by the cover, and vice versa.
    for (const Ofd& ofd : sigma) {
      EXPECT_TRUE(ImpliesOfd(cover, ofd));
    }
    for (const Ofd& ofd : cover) {
      EXPECT_TRUE(ImpliesOfd(sigma, ofd));
      // Minimality condition 3: no dependency is redundant.
      SigmaSet rest;
      for (const Ofd& other : cover) {
        if (!(other == ofd)) rest.push_back(other);
      }
      EXPECT_FALSE(ImpliesOfd(rest, ofd));
      // Minimality condition 2: no antecedent attribute is extraneous.
      for (AttrId b : ofd.lhs.ToVector()) {
        Ofd reduced{ofd.lhs.Without(b), ofd.rhs, ofd.kind};
        SigmaSet replaced = rest;
        replaced.push_back(reduced);
        EXPECT_FALSE(ImpliesOfd(cover, reduced))
            << "cover should not imply the reduced dependency";
        (void)replaced;
      }
    }
  }
}

TEST(RenderTest, RendersOfd) {
  Schema schema({"CC", "CTRY", "SYMP", "DIAG", "MED"});
  Ofd ofd{AttrSet::Of({2, 3}), 4, OfdKind::kSynonym};
  EXPECT_EQ(RenderOfd(ofd, schema), "[SYMP,DIAG] ->syn [MED]");
  Ofd inh{AttrSet::Of({0}), 1, OfdKind::kInheritance};
  EXPECT_EQ(RenderOfd(inh, schema), "[CC] ->inh [CTRY]");
}

}  // namespace
}  // namespace fastofd
