// Tests for the synthetic dataset generator and ground-truth scoring.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"

namespace fastofd {
namespace {

DataGenConfig SmallConfig() {
  DataGenConfig cfg;
  cfg.num_rows = 300;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.values_per_sense = 5;
  cfg.classes_per_antecedent = 6;
  cfg.error_rate = 0.05;
  cfg.seed = 42;
  return cfg;
}

TEST(DataGenTest, ShapeMatchesConfig) {
  DataGenConfig cfg = SmallConfig();
  cfg.num_noise_attrs = 3;
  GeneratedData data = GenerateData(cfg);
  EXPECT_EQ(data.rel.num_rows(), 300);
  EXPECT_EQ(data.rel.num_attrs(), 2 + 2 + 3);
  EXPECT_EQ(data.ontology.num_senses(), 4);
  EXPECT_EQ(data.sigma.size(), 2u);
  EXPECT_EQ(data.clean_rel.num_rows(), data.rel.num_rows());
}

TEST(DataGenTest, DeterministicInSeed) {
  GeneratedData a = GenerateData(SmallConfig());
  GeneratedData b = GenerateData(SmallConfig());
  EXPECT_EQ(a.rel.CellDistance(b.rel), 0);
  EXPECT_EQ(a.errors.size(), b.errors.size());
}

TEST(DataGenTest, PlantedOfdsHoldOnCleanData) {
  DataGenConfig cfg = SmallConfig();
  cfg.error_rate = 0.0;
  GeneratedData data = GenerateData(cfg);
  EXPECT_TRUE(data.errors.empty());
  EXPECT_EQ(data.rel.CellDistance(data.clean_rel), 0);
  SynonymIndex index(data.ontology, data.rel.dict());
  OfdVerifier verifier(data.rel, index);
  for (const Ofd& ofd : data.sigma) {
    EXPECT_TRUE(verifier.Holds(ofd));
  }
}

TEST(DataGenTest, ErrorInjectionMatchesBookkeeping) {
  GeneratedData data = GenerateData(SmallConfig());
  EXPECT_GT(data.errors.size(), 0u);
  // Every recorded error is visible as a dirty/clean mismatch.
  for (const InjectedError& e : data.errors) {
    EXPECT_EQ(data.rel.StringAt(e.row, e.attr), e.dirty);
    EXPECT_EQ(data.clean_rel.StringAt(e.row, e.attr), e.original);
    EXPECT_NE(e.dirty, e.original);
  }
  // And there are no unrecorded differences.
  EXPECT_EQ(data.rel.CellDistance(data.clean_rel),
            static_cast<int64_t>(data.errors.size()));
  // Error rate roughly honored (5% of 600 consequent cells ≈ 30).
  EXPECT_NEAR(static_cast<double>(data.errors.size()), 30.0, 20.0);
}

TEST(DataGenTest, ErrorsCanBreakPlantedOfds) {
  DataGenConfig cfg = SmallConfig();
  cfg.error_rate = 0.15;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  OfdVerifier verifier(data.rel, index);
  bool any_broken = false;
  for (const Ofd& ofd : data.sigma) any_broken |= !verifier.Holds(ofd);
  EXPECT_TRUE(any_broken);
}

TEST(DataGenTest, IncompletenessRemovesUsedValues) {
  DataGenConfig cfg = SmallConfig();
  cfg.error_rate = 0.0;
  cfg.incompleteness_rate = 0.3;
  GeneratedData data = GenerateData(cfg);
  EXPECT_GT(data.removed_values.size(), 0u);
  for (const std::string& v : data.removed_values) {
    EXPECT_FALSE(data.ontology.ContainsValue(v));
  }
  // Removed values still occur in the data (they are repair candidates).
  std::set<std::string> in_data;
  for (RowId r = 0; r < data.rel.num_rows(); ++r) {
    for (int a = 0; a < data.rel.num_attrs(); ++a) {
      in_data.insert(data.rel.StringAt(r, a));
    }
  }
  for (const std::string& v : data.removed_values) {
    EXPECT_TRUE(in_data.count(v)) << v;
  }
}

TEST(DataGenTest, TrueSensesRecordedPerClass) {
  GeneratedData data = GenerateData(SmallConfig());
  EXPECT_GT(data.true_senses.size(), 0u);
  for (const auto& [key, sense] : data.true_senses) {
    EXPECT_GE(sense, 0);
    EXPECT_LT(sense, data.ontology.num_senses());
    (void)key;
  }
}

TEST(ScoreRepairTest, PerfectRepairScoresOne) {
  GeneratedData data = GenerateData(SmallConfig());
  RepairScore score = ScoreRepair(data, data.clean_rel);
  EXPECT_EQ(score.total_errors, static_cast<int64_t>(data.errors.size()));
  EXPECT_EQ(score.correct_changes, score.total_changes);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

TEST(ScoreRepairTest, NoRepairScoresZeroRecall) {
  GeneratedData data = GenerateData(SmallConfig());
  RepairScore score = ScoreRepair(data, data.rel);
  EXPECT_EQ(score.total_changes, 0);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);  // Vacuous precision.
  EXPECT_DOUBLE_EQ(score.recall(), 0.0);
}

TEST(ScoreRepairTest, WrongChangesHurtPrecision) {
  GeneratedData data = GenerateData(SmallConfig());
  Relation bad = data.rel;
  // Change three clean cells to garbage.
  int changed = 0;
  for (RowId r = 0; r < bad.num_rows() && changed < 3; ++r) {
    if (data.rel.StringAt(r, 2) == data.clean_rel.StringAt(r, 2)) {
      bad.Set(r, 2, "garbage");
      ++changed;
    }
  }
  RepairScore score = ScoreRepair(data, bad);
  EXPECT_EQ(score.total_changes, 3);
  EXPECT_EQ(score.correct_changes, 0);
  EXPECT_DOUBLE_EQ(score.precision(), 0.0);
}

}  // namespace
}  // namespace fastofd
