// Tests for the fastofd service layer: the NDJSON codec, the in-process
// request core, and the full socket path (admission control, deadlines,
// micro-batching, graceful drain).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "ofd/sigma_io.h"
#include "service/client.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"

namespace fastofd {
namespace {

// ---------------------------------------------------------------------------
// Json codec.

TEST(JsonTest, RoundTripsScalarsAndNesting) {
  auto parsed = Json::Parse(
      R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, false, null], "e": {}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& j = parsed.value();
  EXPECT_EQ(j.Get("a").AsInt(), 1);
  EXPECT_DOUBLE_EQ(j.Get("b").AsDouble(), -2.5);
  EXPECT_EQ(j.Get("c").AsString(), "x\ny");
  EXPECT_EQ(j.Get("d").items().size(), 3u);
  EXPECT_TRUE(j.Get("d").At(0).AsBool());
  // Dump -> Parse is the identity on the tree.
  auto again = Json::Parse(j.Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().Dump(), j.Dump());
}

TEST(JsonTest, IntegersSurviveExactly) {
  auto parsed = Json::Parse(R"({"big": 1234567890123456789})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("big").AsInt(), 1234567890123456789LL);
  EXPECT_NE(parsed.value().Dump().find("1234567890123456789"),
            std::string::npos);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("{'a': 1}").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("nulll").ok());
  // Depth bomb: 100 nested arrays exceeds the parser's depth limit.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, EscapesControlCharactersAndUnicode) {
  auto parsed = Json::Parse(R"(["Aé\t"])");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().At(0).AsString(), "A\xc3\xa9\t");
}

// ---------------------------------------------------------------------------
// Fixture: a generated instance on disk + helpers.

class ServiceTest : public ::testing::Test {
 protected:
  static std::string Dir() {
    const char* t = std::getenv("TMPDIR");
    std::string dir = (t ? t : "/tmp");
    dir += "/fastofd_service_test";
    std::string cmd = "mkdir -p " + dir;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
  }

  void SetUp() override {
    dir_ = Dir();
    DataGenConfig cfg;
    cfg.num_rows = 500;
    cfg.error_rate = 0.03;
    cfg.seed = 7;
    GeneratedData data = GenerateData(cfg);
    data_path_ = dir_ + "/d.csv";
    ontology_path_ = dir_ + "/o.txt";
    sigma_path_ = dir_ + "/s.txt";
    ASSERT_TRUE(WriteCsvFile(data_path_, data.rel.ToCsv()).ok());
    WriteText(ontology_path_, WriteOntology(data.ontology));
    WriteText(sigma_path_, WriteSigma(data.sigma, data.rel.schema()));
  }

  static void WriteText(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good());
  }

  static Json Req(const std::string& op, int64_t id = 1) {
    Json r = Json::Object();
    r.Set("id", Json::Int(id));
    r.Set("op", Json::Str(op));
    return r;
  }

  Json LoadReq(const std::string& session, bool with_sigma = true) {
    Json r = Req(ops::kLoad);
    r.Set("session", Json::Str(session));
    r.Set("data", Json::Str(data_path_));
    r.Set("ontology", Json::Str(ontology_path_));
    if (with_sigma) r.Set("sigma", Json::Str(sigma_path_));
    return r;
  }

  static Json UpdateReq(const std::string& session, int64_t row,
                        const std::string& attr, const std::string& value) {
    Json r = Req(ops::kUpdate);
    r.Set("session", Json::Str(session));
    r.Set("row", Json::Int(row));
    r.Set("attr", Json::Str(attr));
    r.Set("value", Json::Str(value));
    return r;
  }

  std::string dir_, data_path_, ontology_path_, sigma_path_;
};

// ---------------------------------------------------------------------------
// In-process core (Execute bypasses the socket and queue).

TEST_F(ServiceTest, ExecuteLifecycle) {
  MetricsRegistry metrics;
  ServerConfig config;
  config.threads = 2;
  ServiceServer server(config, &metrics);

  Json loaded = server.Execute(LoadReq("s1"));
  ASSERT_TRUE(loaded.Get("ok").AsBool()) << loaded.Dump();
  EXPECT_EQ(loaded.Get("rows").AsInt(), 500);
  EXPECT_GT(loaded.Get("sigma_size").AsInt(), 0);

  // Loading the same name again conflicts.
  Json dup = server.Execute(LoadReq("s1"));
  EXPECT_FALSE(dup.Get("ok").AsBool());
  EXPECT_EQ(dup.Get("code").AsInt(), kCodeConflict);

  Json verify = server.Execute(
      [&] { Json r = Req(ops::kVerify); r.Set("session", Json::Str("s1")); return r; }());
  ASSERT_TRUE(verify.Get("ok").AsBool()) << verify.Dump();
  EXPECT_EQ(verify.Get("ofds").items().size(),
            static_cast<size_t>(loaded.Get("sigma_size").AsInt()));

  // An update against an unknown attribute 404s; a valid one applies and
  // reports incremental bookkeeping.
  Json bad = server.Execute(UpdateReq("s1", 0, "NOPE", "x"));
  EXPECT_EQ(bad.Get("code").AsInt(), kCodeNotFound);
  Json upd = server.Execute(UpdateReq("s1", 0, "CTX0", "some-new-value"));
  ASSERT_TRUE(upd.Get("ok").AsBool()) << upd.Dump();
  EXPECT_EQ(upd.Get("applied").AsInt(), 1);
  EXPECT_TRUE(upd.Has("consistent"));

  // The update dirtied CTX0: its pinned partition was invalidated.
  EXPECT_GE(upd.Get("invalidated_partitions").AsInt(), 1);

  // Verification via the incremental state agrees with a fresh verify after
  // the update (the response is freshly computed either way).
  Json verify2 = server.Execute(
      [&] { Json r = Req(ops::kVerify); r.Set("session", Json::Str("s1")); return r; }());
  ASSERT_TRUE(verify2.Get("ok").AsBool());

  Json list = server.Execute(Req(ops::kList));
  ASSERT_TRUE(list.Get("ok").AsBool());
  EXPECT_EQ(list.Get("sessions").items().size(), 1u);

  Json stats = server.Execute(Req(ops::kStats));
  ASSERT_TRUE(stats.Get("ok").AsBool());
  EXPECT_EQ(stats.Get("sessions").AsInt(), 1);

  Json unload = Req(ops::kUnload);
  unload.Set("session", Json::Str("s1"));
  ASSERT_TRUE(server.Execute(unload).Get("ok").AsBool());
  EXPECT_EQ(server.Execute(unload).Get("code").AsInt(), kCodeNotFound);
}

TEST_F(ServiceTest, ExecuteBatchedUpdatesAndUnknownOp) {
  MetricsRegistry metrics;
  ServiceServer server(ServerConfig{}, &metrics);
  ASSERT_TRUE(server.Execute(LoadReq("s")).Get("ok").AsBool());

  Json batch = Req(ops::kUpdate);
  batch.Set("session", Json::Str("s"));
  Json updates = Json::Array();
  for (int i = 0; i < 5; ++i) {
    Json u = Json::Object();
    u.Set("row", Json::Int(i));
    u.Set("attr", Json::Str("CTX0"));
    u.Set("value", Json::Str("v" + std::to_string(i)));
    updates.Push(std::move(u));
  }
  batch.Set("updates", std::move(updates));
  Json resp = server.Execute(batch);
  ASSERT_TRUE(resp.Get("ok").AsBool()) << resp.Dump();
  EXPECT_EQ(resp.Get("applied").AsInt(), 5);

  Json unknown = server.Execute(Req("frobnicate"));
  EXPECT_FALSE(unknown.Get("ok").AsBool());
  EXPECT_EQ(unknown.Get("code").AsInt(), kCodeBadRequest);
}

TEST_F(ServiceTest, UpdateRejectsHostileInputWithoutPartialApply) {
  MetricsRegistry metrics;
  ServiceServer server(ServerConfig{}, &metrics);
  ASSERT_TRUE(server.Execute(LoadReq("s")).Get("ok").AsBool());

  // A numeric-looking attr string that overflows long long must be a clean
  // 404, not an uncaught std::out_of_range that terminates the daemon.
  Json overflow = server.Execute(UpdateReq("s", 0, "99999999999999999999", "x"));
  EXPECT_FALSE(overflow.Get("ok").AsBool());
  EXPECT_EQ(overflow.Get("code").AsInt(), kCodeNotFound);

  // A row past int32 must be rejected, not truncated onto row 0.
  Json wrapped = server.Execute(UpdateReq("s", int64_t{1} << 32, "CTX0", "x"));
  EXPECT_FALSE(wrapped.Get("ok").AsBool());
  EXPECT_EQ(wrapped.Get("code").AsInt(), kCodeBadRequest);

  // A batch with one bad entry is rejected as a whole: no cells are applied
  // (the cells_updated counter stays flat) and the session stays usable.
  int64_t cells_before = metrics.Snapshot().Counter("serve.cells_updated");
  Json batch = Req(ops::kUpdate);
  batch.Set("session", Json::Str("s"));
  Json updates = Json::Array();
  Json good = Json::Object();
  good.Set("row", Json::Int(0));
  good.Set("attr", Json::Str("CTX0"));
  good.Set("value", Json::Str("poison"));
  updates.Push(std::move(good));
  Json bad = Json::Object();
  bad.Set("row", Json::Int(-5));
  bad.Set("attr", Json::Str("CTX0"));
  bad.Set("value", Json::Str("x"));
  updates.Push(std::move(bad));
  batch.Set("updates", std::move(updates));
  Json bresp = server.Execute(batch);
  EXPECT_FALSE(bresp.Get("ok").AsBool());
  EXPECT_EQ(bresp.Get("code").AsInt(), kCodeBadRequest);
  EXPECT_EQ(metrics.Snapshot().Counter("serve.cells_updated"), cells_before);

  // The session still serves valid updates and verifies after the rejects.
  Json upd = server.Execute(UpdateReq("s", 1, "CTX0", "fine"));
  ASSERT_TRUE(upd.Get("ok").AsBool()) << upd.Dump();
  EXPECT_EQ(upd.Get("applied").AsInt(), 1);
  Json verify = Req(ops::kVerify);
  verify.Set("session", Json::Str("s"));
  EXPECT_TRUE(server.Execute(verify).Get("ok").AsBool());
}

TEST_F(ServiceTest, ExecuteDiscoverAndCleanAgainstSession) {
  MetricsRegistry metrics;
  ServerConfig config;
  config.threads = 2;
  ServiceServer server(config, &metrics);
  ASSERT_TRUE(server.Execute(LoadReq("s")).Get("ok").AsBool());

  Json discover = Req(ops::kDiscover);
  discover.Set("session", Json::Str("s"));
  discover.Set("kappa", Json::Number(0.9));
  Json dresp = server.Execute(discover);
  ASSERT_TRUE(dresp.Get("ok").AsBool()) << dresp.Dump();
  EXPECT_GT(dresp.Get("candidates_checked").AsInt(), 0);

  Json clean = Req(ops::kClean);
  clean.Set("session", Json::Str("s"));
  clean.Set("out", Json::Str(dir_ + "/repaired.csv"));
  Json cresp = server.Execute(clean);
  ASSERT_TRUE(cresp.Get("ok").AsBool()) << cresp.Dump();
  EXPECT_TRUE(cresp.Get("consistent").AsBool());
  std::ifstream repaired(dir_ + "/repaired.csv");
  EXPECT_TRUE(repaired.good());
}

// ---------------------------------------------------------------------------
// Socket path.

class ServiceSocketTest : public ServiceTest {
 protected:
  void StartServer(ServerConfig config) {
    config.tcp_port = 0;  // Ephemeral.
    server_ = std::make_unique<ServiceServer>(config, &metrics_);
    ASSERT_TRUE(server_->Start().ok());
  }

  ServiceClient Connect() {
    auto client = ServiceClient::ConnectTcp(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().message();
    return std::move(client).value();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->NotifyShutdown();
      server_->Wait();
    }
  }

  MetricsRegistry metrics_;
  std::unique_ptr<ServiceServer> server_;
};

TEST_F(ServiceSocketTest, LifecycleOverTcp) {
  ServerConfig config;
  config.threads = 2;
  StartServer(config);
  ServiceClient client = Connect();

  auto loaded = client.Call(LoadReq("s1"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().Get("ok").AsBool()) << loaded.value().Dump();

  auto verify = client.Call([&] {
    Json r = Req(ops::kVerify, 2);
    r.Set("session", Json::Str("s1"));
    return r;
  }());
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().Get("ok").AsBool());
  EXPECT_EQ(verify.value().Get("id").AsInt(), 2);

  auto upd = client.Call(UpdateReq("s1", 3, "CTX0", "zzz"));
  ASSERT_TRUE(upd.ok());
  EXPECT_TRUE(upd.value().Get("ok").AsBool());

  auto stats = client.Call(Req(ops::kStats, 4));
  ASSERT_TRUE(stats.ok());
  // The wire path records per-op latency histograms.
  EXPECT_TRUE(stats.value().Get("latency").Has("load"))
      << stats.value().Dump();
  EXPECT_GT(stats.value().Get("latency").Get("load").Get("p50_ms").AsDouble(),
            0.0);
}

TEST_F(ServiceSocketTest, MalformedLineGets400WithoutKillingConnection) {
  StartServer(ServerConfig{});
  ServiceClient client = Connect();
  ASSERT_TRUE(client.Send(Req(ops::kPing)).ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().Get("ok").AsBool());

  // Raw garbage line: the reader answers 400 and keeps the connection.
  Json garbage = Json::Str("not json at all {{{");
  // Send the string value raw by writing a request whose Dump is invalid —
  // instead, go through a second connection and push bytes manually is
  // overkill; the public client always sends valid JSON, so craft the
  // garbage as a top-level scalar which the server rejects as a request.
  auto resp = client.Call(garbage);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().Get("ok").AsBool());
  EXPECT_EQ(resp.value().Get("code").AsInt(), kCodeBadRequest);

  // Connection still serves requests.
  auto again = client.Call(Req(ops::kPing, 9));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().Get("ok").AsBool());
}

TEST_F(ServiceSocketTest, QueueOverflowIsRejectedWith503) {
  ServerConfig config;
  config.queue_depth = 2;
  // Small wait list so the flood actually overflows into rejections; the
  // default (1024) would park everything and answer it all after the sleep.
  config.max_parked = 2;
  StartServer(config);

  // Park the executor in a sleep, then overfill the queue.
  ServiceClient blocker = Connect();
  Json sleep_req = Req(ops::kSleep);
  sleep_req.Set("ms", Json::Number(400));
  ASSERT_TRUE(blocker.Send(sleep_req).ok());
  // Give the executor time to pop the sleep off the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ServiceClient flood = Connect();
  const int kSent = 8;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(flood.Send(Req(ops::kPing, i)).ok());
  }
  int ok = 0, rejected = 0;
  for (int i = 0; i < kSent; ++i) {
    auto resp = flood.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "response " << i;
    if (resp.value().Get("ok").AsBool()) {
      ++ok;
    } else {
      EXPECT_EQ(resp.value().Get("code").AsInt(), kCodeOverloaded);
      // A rejection must echo the rejected request's id so pipelining
      // clients can correlate it (rejections are written out of order).
      int64_t id = resp.value().Get("id").AsInt(-1);
      EXPECT_FALSE(resp.value().Get("id").is_null());
      EXPECT_GE(id, 0);
      EXPECT_LT(id, kSent);
      ++rejected;
    }
  }
  // The shard admits queue_depth + max_parked requests (minus one queue slot
  // if the sleep had not been popped yet); everything else must have been
  // admission-rejected, and every admitted ping answered after the sleep.
  EXPECT_GE(rejected, kSent - 2 - 2 - 1);
  EXPECT_GE(ok, 3);
  EXPECT_EQ(ok + rejected, kSent);
  EXPECT_TRUE(blocker.ReadResponse().ok());
  EXPECT_GE(metrics_.Snapshot().Counter("serve.rejected"), rejected);
  // No deadlines were set, so nothing may have been shed from the wait list.
  EXPECT_EQ(metrics_.Snapshot().Counter("serve.shed"), 0);
}

TEST_F(ServiceSocketTest, ExpiredDeadlineGets504) {
  StartServer(ServerConfig{});
  ServiceClient client = Connect();

  Json sleep_req = Req(ops::kSleep);
  sleep_req.Set("ms", Json::Number(300));
  ASSERT_TRUE(client.Send(sleep_req).ok());

  Json doomed = Req(ops::kPing, 2);
  doomed.Set("deadline_ms", Json::Number(20));
  ASSERT_TRUE(client.Send(doomed).ok());

  ASSERT_TRUE(client.ReadResponse().ok());  // sleep.
  auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().Get("ok").AsBool());
  EXPECT_EQ(resp.value().Get("code").AsInt(), kCodeDeadlineExceeded);
  EXPECT_EQ(metrics_.Snapshot().Counter("serve.deadline_exceeded"), 1);
}

TEST_F(ServiceSocketTest, ParkedRequestIsShedWhenDeadlineCannotBeMet) {
  ServerConfig config;
  config.shards = 1;       // Deterministic: no thief can drain the shard.
  config.queue_depth = 1;  // One queue slot, so the probe must park.
  config.max_parked = 4;
  StartServer(config);
  ServiceClient client = Connect();

  // Occupy the executor, fill the single queue slot, then park a request
  // whose deadline expires long before the executor frees up.
  Json sleep_req = Req(ops::kSleep, 1);
  sleep_req.Set("ms", Json::Number(300));
  ASSERT_TRUE(client.Send(sleep_req).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.Send(Req(ops::kPing, 2)).ok());
  Json doomed = Req(ops::kPing, 3);
  doomed.Set("deadline_ms", Json::Number(30));
  ASSERT_TRUE(client.Send(doomed).ok());

  // All three must be answered: the shed 503 must carry the parked
  // request's id (not a 504 — it never reached an executor), and shedding
  // must not disturb the admitted requests.
  int pongs = 0;
  bool shed_seen = false;
  for (int i = 0; i < 3; ++i) {
    auto resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "response " << i;
    if (resp.value().Get("ok").AsBool()) {
      ++pongs;
    } else {
      EXPECT_EQ(resp.value().Get("code").AsInt(), kCodeOverloaded);
      EXPECT_EQ(resp.value().Get("id").AsInt(), 3);
      shed_seen = true;
    }
  }
  EXPECT_EQ(pongs, 2);
  EXPECT_TRUE(shed_seen);
  MetricsSnapshot snapshot = metrics_.Snapshot();
  EXPECT_GE(snapshot.Counter("serve.shed"), 1);
  EXPECT_EQ(snapshot.Counter("serve.deadline_exceeded"), 0);
  EXPECT_EQ(snapshot.Counter("serve.rejected"), 0);

  // The shed entry must not leak a wait-list slot: the shard reports an
  // empty wait list, and the shard still serves traffic.
  auto parked_it = snapshot.gauges.find("serve.shard.0.parked");
  ASSERT_NE(parked_it, snapshot.gauges.end());
  EXPECT_EQ(parked_it->second, 0.0);
  auto after = client.Call(Req(ops::kPing, 4));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().Get("ok").AsBool());
}

TEST_F(ServiceSocketTest, ConsecutiveUpdatesAreMicroBatched) {
  ServerConfig config;
  config.queue_depth = 64;
  // One shard: with more, an idle executor could steal the first updates
  // off the blocked shard before the whole run is queued, splitting the
  // batch this test asserts on.
  config.shards = 1;
  StartServer(config);
  ServiceClient client = Connect();
  auto loaded = client.Call(LoadReq("s"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().Get("ok").AsBool());

  // Park the executor so the updates pile up in the queue, then verify they
  // are popped as one batch but answered individually.
  Json sleep_req = Req(ops::kSleep);
  sleep_req.Set("ms", Json::Number(200));
  ASSERT_TRUE(client.Send(sleep_req).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int kUpdates = 6;
  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(
        client.Send(UpdateReq("s", i, "CTX0", "b" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(client.ReadResponse().ok());  // sleep.
  for (int i = 0; i < kUpdates; ++i) {
    auto resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().Get("ok").AsBool()) << resp.value().Dump();
    EXPECT_EQ(resp.value().Get("applied").AsInt(), 1);
  }
  EXPECT_GE(metrics_.Snapshot().Counter("serve.batches"), 1);
}

TEST_F(ServiceSocketTest, GracefulDrainAnswersEveryAcceptedRequest) {
  StartServer(ServerConfig{});
  ServiceClient client = Connect();

  // Queue real work, then request shutdown while it is still pending.
  Json sleep_req = Req(ops::kSleep);
  sleep_req.Set("ms", Json::Number(150));
  ASSERT_TRUE(client.Send(sleep_req).ok());
  const int kPings = 4;
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(client.Send(Req(ops::kPing, 10 + i)).ok());
  }
  // Let the reader enqueue everything (the sleep holds the executor, so the
  // pings are sitting in the queue) before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->NotifyShutdown();

  // Every accepted request still gets its response before the server closes
  // the connection.
  int responses = 0;
  for (int i = 0; i < 1 + kPings; ++i) {
    auto resp = client.ReadResponse();
    if (!resp.ok()) break;  // Late pings may have been 503'd before accept...
    ++responses;
    // ...but any response that arrives is either ok or an explicit 503.
    if (!resp.value().Get("ok").AsBool()) {
      EXPECT_EQ(resp.value().Get("code").AsInt(), kCodeOverloaded);
    }
  }
  EXPECT_EQ(responses, 1 + kPings);
  server_->Wait();
  server_.reset();
}

TEST_F(ServiceSocketTest, DestructionRacesInFlightReaders) {
  // Clients keep writing while the server shuts down and is destroyed. The
  // reader threads are mid-recv on live sockets when NotifyShutdown lands, so
  // Wait() must join them without racing the Connection teardown (the fd is
  // GUARDED_BY(write_mu) and snapshotted by the reader; this is the TSan
  // regression for that handoff).
  ServerConfig config;
  config.threads = 2;
  StartServer(config);

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  std::atomic<int> connected{0};
  writers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    writers.emplace_back([&, c] {
      auto client = ServiceClient::ConnectTcp(server_->port());
      if (!client.ok()) return;
      connected.fetch_add(1);
      int64_t id = c * 1000;
      while (!stop.load(std::memory_order_acquire)) {
        // Sends start failing once the server drains; that is the point —
        // the write must fail cleanly, never crash or race the dtor.
        if (!client.value().Send(Req(ops::kPing, ++id)).ok()) break;
        auto resp = client.value().ReadResponse();
        if (!resp.ok()) break;
      }
    });
  }
  // Let the connections get established and traffic flow before pulling the
  // rug. A few may fail to connect if the listener is slow; proceed anyway.
  for (int spin = 0; spin < 200 && connected.load() < kClients; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  server_->NotifyShutdown();
  server_->Wait();
  server_.reset();  // Full destruction while writers are still trying.

  stop.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
}

TEST_F(ServiceSocketTest, UnixSocketServesRequests) {
  ServerConfig config;
  std::string path = dir_ + "/test.sock";
  config.unix_socket = path;
  server_ = std::make_unique<ServiceServer>(config, &metrics_);
  ASSERT_TRUE(server_->Start().ok());

  auto client = ServiceClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().message();
  auto resp = client.value().Call(Req(ops::kPing));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().Get("ok").AsBool());

  server_->NotifyShutdown();
  server_->Wait();
  server_.reset();
  // Drain unlinks the socket file.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
}

}  // namespace
}  // namespace fastofd
