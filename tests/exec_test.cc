// Tests for the shared execution & instrumentation substrate: ThreadPool
// dispatch semantics, the MetricsRegistry, and end-to-end determinism of
// discovery and cleaning across thread counts.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clean/repair.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

namespace fastofd {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsInRangeAndWorkConserved) {
  ThreadPool pool(3);
  std::vector<std::atomic<int64_t>> per_worker(3);
  std::atomic<bool> bad_worker{false};
  pool.ParallelFor(5000, [&](size_t, int worker) {
    if (worker < 0 || worker >= 3) {
      bad_worker.store(true);
      return;
    }
    per_worker[static_cast<size_t>(worker)].fetch_add(1);
  });
  EXPECT_FALSE(bad_worker.load());
  int64_t total = 0;
  for (auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 5000);
}

TEST(ThreadPoolTest, ReusedAcrossManyJobs) {
  // The same pool serves many ParallelFor calls (this is the whole point:
  // one pool per run, not one thread-spawn per lattice level).
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  int64_t expected = 0;
  for (int job = 0; job < 200; ++job) {
    size_t n = static_cast<size_t>(job % 7);
    expected += static_cast<int64_t>(n * (n + 1) / 2);
    pool.ParallelFor(n, [&](size_t i, int) {
      sum.fetch_add(static_cast<int64_t>(i) + 1);
    });
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(64, [&](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // Safe: inline serial execution.
  });
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, EmptyJobAndClampedThreadCount) {
  ThreadPool clamped(0);  // Nonpositive counts clamp to 1.
  EXPECT_EQ(clamped.num_threads(), 1);
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, int) { ++calls; });
  clamped.ParallelFor(0, [&](size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ParallelForGrainedEveryIndexOnceAtAnyGrain) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (size_t grain : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{1000}}) {
      const size_t n = 777;
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelForGrained(n, grain, [&](size_t i, int worker) {
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, threads);
        hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "threads " << threads << " grain " << grain << " index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ConcurrentCallersBothComplete) {
  // Two external threads drive the same pool at once. The old pool queued
  // whole jobs behind a job mutex; the scheduler interleaves their tasks.
  // Either way every index of both jobs must run exactly once.
  ThreadPool pool(4);
  const size_t n = 20000;
  std::vector<std::atomic<int>> hits_a(n), hits_b(n);
  std::thread other([&] {
    pool.ParallelFor(n, [&](size_t i, int) { hits_b[i].fetch_add(1); });
  });
  pool.ParallelFor(n, [&](size_t i, int) { hits_a[i].fetch_add(1); });
  other.join();
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits_a[i].load(), 1) << i;
    ASSERT_EQ(hits_b[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, StatsCountExecutedTasksAndPublishGauges) {
  ThreadPool pool(3);
  pool.ParallelForGrained(96, /*grain=*/4, [](size_t, int) {});
  int64_t executed = 0;
  int64_t stolen = 0;
  for (const ThreadPool::WorkerStats& w : pool.Stats()) {
    executed += w.executed;
    stolen += w.stolen;
  }
  EXPECT_EQ(executed, 96 / 4);  // One task per grain block.
  EXPECT_GE(stolen, 0);
  EXPECT_LE(stolen, executed);
  MetricsRegistry reg;
  pool.PublishMetrics(&reg);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_DOUBLE_EQ(s.gauges.at("exec.workers"), 3.0);
  EXPECT_DOUBLE_EQ(s.gauges.at("exec.tasks_executed"),
                   static_cast<double>(executed));
  EXPECT_DOUBLE_EQ(s.gauges.at("exec.tasks_stolen"), static_cast<double>(stolen));
  EXPECT_EQ(s.gauges.count("exec.worker00.executed"), 1u);
  EXPECT_EQ(s.gauges.count("exec.worker02.stolen"), 1u);
  pool.PublishMetrics(nullptr);  // No-op, no crash.
}

TEST(ThreadPoolTest, PublishMetricsDuringExecution) {
  // PublishMetrics and Stats read the per-worker counters while workers are
  // actively bumping them. The counters are relaxed atomics (monotonic, no
  // cross-counter invariant), so concurrent snapshots must be race-free —
  // this is the TSan regression for that contract.
  ThreadPool pool(4);
  MetricsRegistry reg;
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      pool.PublishMetrics(&reg);
      int64_t executed = 0;
      for (const ThreadPool::WorkerStats& w : pool.Stats()) {
        executed += w.executed;
        EXPECT_GE(w.executed, 0);
        EXPECT_GE(w.stolen, 0);
      }
      EXPECT_GE(executed, 0);
      std::this_thread::yield();
    }
  });
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelForGrained(256, /*grain=*/8,
                            [&](size_t i, int) { sum.fetch_add(i); });
  }
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(sum.load(), 50 * (256 * 255 / 2));
  // A final quiescent snapshot agrees with itself.
  pool.PublishMetrics(&reg);
  MetricsSnapshot s = reg.Snapshot();
  int64_t executed = 0;
  for (const ThreadPool::WorkerStats& w : pool.Stats()) executed += w.executed;
  EXPECT_DOUBLE_EQ(s.gauges.at("exec.tasks_executed"),
                   static_cast<double>(executed));
}

TEST(TaskGroupTest, WaitWithZeroPendingTasks) {
  // Wait on a group that never received a task must return immediately (no
  // lost-wakeup hang) at every pool width, and stay idempotent.
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    group.Wait();
    group.Wait();  // Double Wait on an empty group.
    // The group is still usable after the empty Waits.
    std::atomic<int> ran{0};
    group.Submit([&ran](int) { ran.fetch_add(1); });
    group.Wait();
    EXPECT_EQ(ran.load(), 1) << "threads " << threads;
    group.Wait();  // And idempotent again once drained.
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(TaskGroupTest, SubmitFromExternalThreadRunsEverything) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    std::atomic<int64_t> sum{0};
    for (int t = 0; t < 64; ++t) {
      group.Submit([&sum, t](int worker) {
        EXPECT_GE(worker, 0);
        sum.fetch_add(t);
      });
    }
    group.Wait();
    EXPECT_EQ(sum.load(), 64 * 63 / 2) << "threads " << threads;
    group.Wait();  // Idempotent after completion.
  }
}

TEST(TaskGroupTest, NestedSubmissionFromInsideTasks) {
  // Each outer task forks its own child group — the shape a large partition
  // product takes when it splits itself mid-level. The outer Wait must see
  // all 8 * 16 leaf increments, at any thread count including serial.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::atomic<int64_t> leaves{0};
    TaskGroup outer(&pool);
    for (int t = 0; t < 8; ++t) {
      outer.Submit([&pool, &leaves](int) {
        TaskGroup inner(&pool);
        for (int u = 0; u < 16; ++u) {
          inner.Submit([&leaves](int) { leaves.fetch_add(1); });
        }
        inner.Wait();
        // The child work is visibly complete before the parent task ends.
        EXPECT_GE(leaves.load(), 16);
      });
    }
    outer.Wait();
    EXPECT_EQ(leaves.load(), 8 * 16) << "threads " << threads;
  }
}

TEST(TaskGroupTest, NestedParallelForInsideTasksCoversAllIndices) {
  // ParallelFor from inside a task parallelizes (the old pool degraded it to
  // an inline serial loop); either way indices run exactly once.
  ThreadPool pool(4);
  const size_t inner_n = 500;
  std::vector<std::atomic<int>> hits(4 * inner_n);
  TaskGroup group(&pool);
  for (size_t t = 0; t < 4; ++t) {
    group.Submit([&pool, &hits, t, inner_n](int) {
      pool.ParallelForGrained(inner_n, /*grain=*/16, [&hits, t, inner_n](size_t i, int) {
        hits[t * inner_n + i].fetch_add(1);
      });
    });
  }
  group.Wait();
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ShardedSinkTest, DrainSortedMergesConcurrentPushes) {
  ShardedSink<int> sink(/*num_stripes=*/4);
  ThreadPool pool(8);
  const size_t n = 5000;
  // Push a deterministic subset (every third seq) from many workers.
  pool.ParallelForGrained(n, /*grain=*/7, [&](size_t i, int) {
    if (i % 3 == 0) sink.Push(i, static_cast<int>(i * 2));
  });
  auto items = sink.DrainSorted();
  ASSERT_EQ(items.size(), (n + 2) / 3);
  for (size_t k = 0; k < items.size(); ++k) {
    ASSERT_EQ(items[k].first, k * 3);
    ASSERT_EQ(items[k].second, static_cast<int>(k * 3 * 2));
  }
  EXPECT_TRUE(sink.DrainSorted().empty());  // Drained.
}

TEST(OrderedReduceTest, ConsumesInIndexOrderAtEveryThreadCountAndGrain) {
  // The work-stealing schedule must never leak into the consume order: for
  // 1/2/8 threads and a spread of grains, consume sees i = 0..n-1 exactly,
  // in order, with the value produce(i) returned — i.e. the reduce is
  // deterministic even though block completion order is not.
  const size_t n = 403;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (size_t grain : {size_t{0}, size_t{1}, size_t{5}, size_t{64}, size_t{1000}}) {
      std::vector<size_t> consumed;
      consumed.reserve(n);
      OrderedReduce<int64_t>(
          &pool, n, grain,
          [](size_t i, int) { return static_cast<int64_t>(i) * 3 + 1; },
          [&consumed](size_t i, int64_t v) {
            ASSERT_EQ(v, static_cast<int64_t>(i) * 3 + 1);
            consumed.push_back(i);  // Safe: consume runs on this thread only.
          });
      ASSERT_EQ(consumed.size(), n) << "threads " << threads << " grain " << grain;
      for (size_t i = 0; i < n; ++i) ASSERT_EQ(consumed[i], i);
    }
  }
}

TEST(OrderedReduceTest, ProducersMayUseThePoolThemselves) {
  // produce() fans out again on the same pool (the discovery shape: one task
  // per product, big products split inside). The nested work must not
  // deadlock the streaming consumer.
  ThreadPool pool(4);
  const size_t n = 16;
  int64_t total = 0;
  OrderedReduce<int64_t>(
      &pool, n, /*grain=*/1,
      [&pool](size_t, int) {
        std::atomic<int64_t> part{0};
        pool.ParallelForGrained(100, /*grain=*/9,
                                [&part](size_t j, int) {
                                  part.fetch_add(static_cast<int64_t>(j));
                                });
        return part.load();
      },
      [&total](size_t, int64_t v) { total += v; });
  EXPECT_EQ(total, static_cast<int64_t>(n) * (99 * 100 / 2));
}

TEST(MetricsTest, CountersGaugesTimers) {
  MetricsRegistry reg;
  reg.Add("a.count", 0);  // Registers the counter at zero.
  reg.Add("a.count", 5);
  reg.Add("a.count", 2);
  reg.Set("g.val", 3.5);
  reg.Set("g.val", 4.5);  // Gauges overwrite.
  reg.AddTime("t.seconds", 0.25);
  reg.AddTime("t.seconds", 0.75);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.Counter("a.count"), 7);
  EXPECT_EQ(s.Counter("absent"), 0);
  EXPECT_DOUBLE_EQ(s.gauges.at("g.val"), 4.5);
  EXPECT_DOUBLE_EQ(s.TimerSeconds("t.seconds"), 1.0);
  EXPECT_EQ(s.timers.at("t.seconds").count, 2);
  reg.Clear();
  EXPECT_TRUE(reg.Snapshot().counters.empty());
}

TEST(MetricsTest, SnapshotDiffBracketsOnePhase) {
  MetricsRegistry reg;
  reg.Add("c", 3);
  reg.AddTime("t", 1.0);
  reg.Set("g", 1.0);
  MetricsSnapshot before = reg.Snapshot();
  reg.Add("c", 4);
  reg.Add("fresh", 2);  // Appears only after `before`.
  reg.AddTime("t", 0.5);
  reg.Set("g", 9.0);
  MetricsSnapshot delta = reg.Snapshot().Diff(before);
  EXPECT_EQ(delta.Counter("c"), 4);
  EXPECT_EQ(delta.Counter("fresh"), 2);
  EXPECT_DOUBLE_EQ(delta.TimerSeconds("t"), 0.5);
  EXPECT_EQ(delta.timers.at("t").count, 1);
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 9.0);  // Gauges keep latest value.
}

TEST(MetricsTest, TextAndJsonDumps) {
  MetricsRegistry reg;
  reg.Add("x.count", 2);
  reg.Set("x.gauge", 1.5);
  reg.AddTime("x.seconds", 0.5);
  std::string text = reg.ToText();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("timer"), std::string::npos);
  EXPECT_NE(text.find("x.count"), std::string::npos);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, HistogramQuantilesTrackObservations) {
  MetricsRegistry reg;
  // 1..1000 ms uniformly: quantiles must land near the true values, within
  // one log bucket (×1.35 relative error).
  for (int i = 1; i <= 1000; ++i) reg.Observe("h.lat", i * 1e-3);
  MetricsSnapshot s = reg.Snapshot();
  const HistogramStat& h = s.histograms.at("h.lat");
  EXPECT_EQ(h.count, 1000);
  EXPECT_DOUBLE_EQ(h.min, 1e-3);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
  EXPECT_NEAR(h.Quantile(0.50), 0.5, 0.5 * 0.35);
  EXPECT_NEAR(h.Quantile(0.95), 0.95, 0.95 * 0.35);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.50));
  EXPECT_LE(h.Quantile(1.0), h.max);
  EXPECT_GE(h.Quantile(0.0), h.min);

  // Diff isolates one phase's observations.
  MetricsSnapshot before = reg.Snapshot();
  for (int i = 0; i < 10; ++i) reg.Observe("h.lat", 2.0);
  HistogramStat delta = reg.Snapshot().histograms.at("h.lat").Diff(
      before.histograms.at("h.lat"));
  EXPECT_EQ(delta.count, 10);
  EXPECT_NEAR(delta.Quantile(0.5), 2.0, 2.0 * 0.35);

  // Out-of-range values clamp into the edge buckets instead of dropping.
  reg.Observe("h.edge", 0.0);
  reg.Observe("h.edge", 1e12);
  EXPECT_EQ(reg.Snapshot().histograms.at("h.edge").count, 2);

  // Histograms appear in both dump formats.
  EXPECT_NE(reg.ToText().find("hist"), std::string::npos);
  EXPECT_NE(reg.ToJson().find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, ScopedTimerRecordsOnceAndTakesNull) {
  MetricsRegistry reg;
  { ScopedTimer t(&reg, "s.seconds"); }
  EXPECT_EQ(reg.Snapshot().timers.at("s.seconds").count, 1);
  {
    ScopedTimer t(&reg, "s.seconds");
    t.Stop();  // Explicit stop; the destructor must not record again.
  }
  EXPECT_EQ(reg.Snapshot().timers.at("s.seconds").count, 2);
  ScopedTimer null_timer(nullptr, "ignored");  // No-op, no crash.
  null_timer.Stop();
}

GeneratedData MakeInstance(uint64_t seed, double error_rate,
                           double incompleteness_rate) {
  DataGenConfig cfg;
  cfg.num_rows = 400;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 3;
  cfg.num_noise_attrs = 2;
  cfg.num_senses = 4;
  cfg.error_rate = error_rate;
  cfg.incompleteness_rate = incompleteness_rate;
  cfg.seed = seed;
  return GenerateData(cfg);
}

TEST(ExecDeterminismTest, DiscoverIdenticalAcrossThreadCounts) {
  GeneratedData data = MakeInstance(/*seed=*/99, /*error_rate=*/0.02,
                                    /*incompleteness_rate=*/0.0);
  SynonymIndex index(data.ontology, data.rel.dict());
  FastOfdConfig serial;
  serial.num_threads = 1;
  FastOfdResult a = FastOfd(data.rel, index, serial).Discover();
  for (int threads : {2, 8}) {
    FastOfdConfig pcfg;
    pcfg.num_threads = threads;
    MetricsRegistry metrics;
    pcfg.metrics = &metrics;
    FastOfdResult b = FastOfd(data.rel, index, pcfg).Discover();
    EXPECT_EQ(a.ofds, b.ofds) << "threads " << threads;
    EXPECT_EQ(a.candidates_checked, b.candidates_checked);
    EXPECT_EQ(a.values_scanned, b.values_scanned);
    // The registry agrees with the result-struct convenience copies.
    MetricsSnapshot s = metrics.Snapshot();
    EXPECT_EQ(s.Counter("discover.candidates_checked"), a.candidates_checked);
    EXPECT_EQ(s.Counter("discover.values_scanned"), a.values_scanned);
    EXPECT_GT(s.TimerSeconds("discover.seconds"), 0.0);
  }
}

TEST(ExecDeterminismTest, OfdCleanIdenticalAcrossThreadCounts) {
  GeneratedData data = MakeInstance(/*seed=*/21, /*error_rate=*/0.05,
                                    /*incompleteness_rate=*/0.1);
  OfdCleanConfig serial;
  serial.num_threads = 1;
  OfdCleanResult a =
      OfdClean(data.rel, data.ontology, data.sigma, serial).Run();
  for (int threads : {2, 8}) {
    OfdCleanConfig pcfg;
    pcfg.num_threads = threads;
    OfdCleanResult b =
        OfdClean(data.rel, data.ontology, data.sigma, pcfg).Run();
    EXPECT_EQ(b.best.repaired.CellDistance(a.best.repaired), 0)
        << "threads " << threads;
    EXPECT_EQ(a.best.ontology_additions, b.best.ontology_additions);
    EXPECT_EQ(a.best.data_changes, b.best.data_changes);
    EXPECT_EQ(a.best.consistent, b.best.consistent);
    EXPECT_EQ(a.num_candidates, b.num_candidates);
    EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated);
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (size_t i = 0; i < a.pareto.size(); ++i) {
      EXPECT_EQ(a.pareto[i].ontology_changes, b.pareto[i].ontology_changes);
      EXPECT_EQ(a.pareto[i].data_changes, b.pareto[i].data_changes);
    }
  }
}

TEST(ExecDeterminismTest, SharedSubstrateAcrossPhases) {
  // One pool + one cache + one registry wired through discovery, the way the
  // CLI shares them across subphases of a command.
  GeneratedData data = MakeInstance(/*seed=*/5, /*error_rate=*/0.01,
                                    /*incompleteness_rate=*/0.0);
  SynonymIndex index(data.ontology, data.rel.dict());
  ThreadPool pool(2);
  MetricsRegistry metrics;
  PartitionCache cache(data.rel, PartitionCache::kUnbounded, &metrics);
  FastOfdConfig cfg;
  cfg.pool = &pool;
  cfg.metrics = &metrics;
  cfg.partitions = &cache;
  FastOfdResult r = FastOfd(data.rel, index, cfg).Discover();
  EXPECT_FALSE(r.ofds.empty());
  MetricsSnapshot s = metrics.Snapshot();
  EXPECT_GT(s.Counter("discover.candidates_checked"), 0);
  EXPECT_GT(s.TimerSeconds("discover.seconds"), 0.0);
  // The cache counters are registered even before traffic, and discovery's
  // base partitions route through the shared cache.
  EXPECT_EQ(s.counters.count("partition_cache.hits"), 1u);
  EXPECT_EQ(s.counters.count("partition_cache.evictions"), 1u);
  EXPECT_GT(s.Counter("partition_cache.misses"), 0);
  EXPECT_GT(cache.size(), 0u);

  // The clean phase reuses the same substrate without interference.
  OfdCleanConfig ccfg;
  ccfg.pool = &pool;
  ccfg.metrics = &metrics;
  ccfg.partitions = &cache;
  OfdCleanResult cr = OfdClean(data.rel, data.ontology, data.sigma, ccfg).Run();
  EXPECT_TRUE(cr.best.consistent);
  s = metrics.Snapshot();
  EXPECT_GT(s.TimerSeconds("clean.seconds"), 0.0);
  EXPECT_GT(s.Counter("partition_cache.hits") + s.Counter("partition_cache.misses"),
            0);
}

}  // namespace
}  // namespace fastofd
