// Cross-cutting property tests: invariants that must hold on arbitrary
// instances, swept over seeds with TEST_P. These complement the per-module
// unit tests with the algebraic laws the paper's algorithms rely on.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clean/repair.h"
#include "clean/sense_assignment.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "discovery/set_cover.h"
#include "ofd/incremental.h"
#include "ofd/inference.h"
#include "ofd/sigma_io.h"
#include "ofd/verifier.h"
#include "ontology/generator.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

namespace fastofd {
namespace {

// Shared random instance builder (relation whose consequents draw from a
// generated ontology).
struct Instance {
  Relation rel;
  Ontology ontology;
};

Instance MakeInstance(uint64_t seed, int n_attrs = 4, int n_rows = 40) {
  Rng rng(seed);
  OntologyGenConfig ocfg;
  ocfg.num_senses = 4;
  ocfg.values_per_sense = 5;
  ocfg.overlap = 0.35;
  ocfg.seed = seed * 7 + 3;
  Ontology ont = GenerateOntology(ocfg);
  std::vector<std::string> names;
  for (int a = 0; a < n_attrs; ++a) names.push_back(std::string(1, static_cast<char>('A' + a)));
  Relation rel((Schema(names)));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < n_attrs; ++a) {
      if (rng.NextBernoulli(0.75)) {
        SenseId s = static_cast<SenseId>(rng.NextUint(ont.num_senses()));
        const auto& vals = ont.SenseValues(s);
        row.push_back(vals[rng.NextUint(vals.size())]);
      } else {
        row.push_back("x" + std::to_string(rng.NextUint(5)));
      }
    }
    rel.AppendRow(row);
  }
  return {std::move(rel), std::move(ont)};
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, OfdSatisfactionIsClosedUnderAugmentation) {
  // Opt-2's soundness: if X -> A holds, every XY -> A holds.
  Instance inst = MakeInstance(3000 + GetParam());
  SynonymIndex index(inst.ontology, inst.rel.dict());
  OfdVerifier verifier(inst.rel, index);
  const int n = inst.rel.num_attrs();
  for (AttrId a = 0; a < n; ++a) {
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      AttrSet lhs = AttrSet::FromMask(mask);
      if (lhs.Contains(a)) continue;
      if (!verifier.Holds({lhs, a, OfdKind::kSynonym})) continue;
      // All supersets must hold too.
      for (AttrId b = 0; b < n; ++b) {
        if (b == a || lhs.Contains(b)) continue;
        EXPECT_TRUE(verifier.Holds({lhs.With(b), a, OfdKind::kSynonym}))
            << inst.rel.schema().Render(lhs) << " + " << b << " -> " << a;
      }
    }
  }
}

TEST_P(PropertyTest, SupportIsMonotoneUnderAugmentation) {
  Instance inst = MakeInstance(3100 + GetParam());
  SynonymIndex index(inst.ontology, inst.rel.dict());
  OfdVerifier verifier(inst.rel, index);
  const int n = inst.rel.num_attrs();
  for (AttrId a = 0; a < n; ++a) {
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      AttrSet lhs = AttrSet::FromMask(mask);
      if (lhs.Contains(a)) continue;
      Ofd ofd{lhs, a, OfdKind::kSynonym};
      StrippedPartition p = StrippedPartition::BuildForSet(inst.rel, lhs);
      double support = verifier.Support(ofd, p);
      for (AttrId b = 0; b < n; ++b) {
        if (b == a || lhs.Contains(b)) continue;
        StrippedPartition p2 = StrippedPartition::BuildForSet(inst.rel, lhs.With(b));
        EXPECT_GE(verifier.Support({lhs.With(b), a, OfdKind::kSynonym}, p2),
                  support - 1e-12);
      }
    }
  }
}

TEST_P(PropertyTest, PartitionProductIsCommutativeAndAssociative) {
  Instance inst = MakeInstance(3200 + GetParam(), 3, 50);
  StrippedPartition a = StrippedPartition::Build(inst.rel, 0);
  StrippedPartition b = StrippedPartition::Build(inst.rel, 1);
  StrippedPartition c = StrippedPartition::Build(inst.rel, 2);
  auto canon = [](const StrippedPartition& p) {
    std::set<std::set<RowId>> out;
    for (const auto& cls : p.classes()) out.insert({cls.begin(), cls.end()});
    return out;
  };
  EXPECT_EQ(canon(StrippedPartition::Product(a, b)),
            canon(StrippedPartition::Product(b, a)));
  EXPECT_EQ(canon(StrippedPartition::Product(StrippedPartition::Product(a, b), c)),
            canon(StrippedPartition::Product(a, StrippedPartition::Product(b, c))));
  // Idempotence: Π*_X · Π*_X = Π*_X.
  EXPECT_EQ(canon(StrippedPartition::Product(a, a)), canon(a));
}

TEST_P(PropertyTest, PartitionErrorIsMonotone) {
  // Adding attributes refines partitions: error can only decrease, and the
  // number of full classes can only increase.
  Instance inst = MakeInstance(3300 + GetParam(), 5, 60);
  Rng rng(42 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    AttrSet x = AttrSet::FromMask(rng.NextUint(31) + 1);
    AttrId extra = static_cast<AttrId>(rng.NextUint(5));
    StrippedPartition px = StrippedPartition::BuildForSet(inst.rel, x);
    StrippedPartition pxa = StrippedPartition::BuildForSet(inst.rel, x.With(extra));
    EXPECT_LE(pxa.error(), px.error());
    EXPECT_GE(pxa.full_num_classes(), px.full_num_classes());
  }
}

TEST_P(PropertyTest, DiscoveredOfdsHoldAndAreMinimalAndComplete) {
  Instance inst = MakeInstance(3400 + GetParam());
  SynonymIndex index(inst.ontology, inst.rel.dict());
  OfdVerifier verifier(inst.rel, index);
  FastOfdResult result = FastOfd(inst.rel, index).Discover();
  std::set<Ofd> found(result.ofds.begin(), result.ofds.end());
  // Sound + minimal.
  for (const Ofd& ofd : result.ofds) {
    EXPECT_TRUE(verifier.Holds(ofd));
    for (AttrId b : ofd.lhs.ToVector()) {
      EXPECT_FALSE(verifier.Holds({ofd.lhs.Without(b), ofd.rhs, ofd.kind}));
    }
  }
  // Complete: every holding dependency is a superset of a found one.
  const int n = inst.rel.num_attrs();
  for (AttrId a = 0; a < n; ++a) {
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      AttrSet lhs = AttrSet::FromMask(mask);
      if (lhs.Contains(a)) continue;
      if (!verifier.Holds({lhs, a, OfdKind::kSynonym})) continue;
      bool covered = false;
      for (const Ofd& ofd : result.ofds) {
        if (ofd.rhs == a && ofd.lhs.IsSubsetOf(lhs)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << inst.rel.schema().Render(lhs) << " -> " << a;
    }
  }
}

TEST_P(PropertyTest, RepairDataIsIdempotentAndConsistent) {
  DataGenConfig cfg;
  cfg.num_rows = 200;
  cfg.num_senses = 4;
  cfg.error_rate = 0.08;
  cfg.seed = 3500 + static_cast<uint64_t>(GetParam());
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  SenseSelector selector(data.rel, index, data.sigma);
  SenseAssignmentResult assignment = selector.Run();
  RepairResult first = RepairData(data.rel, index, data.sigma, assignment, 1 << 20);
  ASSERT_TRUE(first.consistent);
  // Repairing the repaired instance changes nothing.
  RepairResult second =
      RepairData(first.repaired, index, data.sigma, assignment, 1 << 20);
  EXPECT_EQ(second.data_changes, 0);
  EXPECT_TRUE(second.consistent);
}

TEST_P(PropertyTest, OfdCleanProducesConsistentParetoOrderedRepairs) {
  DataGenConfig cfg;
  cfg.num_rows = 250;
  cfg.num_senses = 4;
  cfg.error_rate = 0.05;
  cfg.incompleteness_rate = 0.1;
  cfg.seed = 3600 + static_cast<uint64_t>(GetParam());
  GeneratedData data = GenerateData(cfg);
  OfdClean cleaner(data.rel, data.ontology, data.sigma);
  OfdCleanResult result = cleaner.Run();
  EXPECT_TRUE(result.best.consistent);
  // Pareto points strictly improve data changes as ontology changes grow.
  for (size_t i = 1; i < result.pareto.size(); ++i) {
    EXPECT_GT(result.pareto[i].ontology_changes,
              result.pareto[i - 1].ontology_changes);
    EXPECT_LT(result.pareto[i].data_changes, result.pareto[i - 1].data_changes);
  }
  // Only consequent attributes were touched.
  AttrSet rhs_attrs;
  for (const Ofd& ofd : data.sigma) rhs_attrs = rhs_attrs.With(ofd.rhs);
  for (RowId r = 0; r < data.rel.num_rows(); ++r) {
    for (int a = 0; a < data.rel.num_attrs(); ++a) {
      if (!rhs_attrs.Contains(a)) {
        EXPECT_EQ(data.rel.StringAt(r, a), result.best.repaired.StringAt(r, a));
      }
    }
  }
}

TEST_P(PropertyTest, OfdCleanDeterministicAcrossThreadsAndScoringModes) {
  // The overlay-based incremental parallel beam search is an optimization,
  // not a semantics change: on arbitrary dirty instances it must reproduce
  // the serial full-rescore reference byte for byte, and feasible repairs
  // must satisfy Σ under the repaired ontology.
  DataGenConfig cfg;
  cfg.num_rows = 250;
  cfg.num_senses = 4;
  cfg.error_rate = 0.06;
  cfg.incompleteness_rate = 0.1;
  cfg.seed = 3900 + static_cast<uint64_t>(GetParam());
  GeneratedData data = GenerateData(cfg);
  auto run = [&](bool incremental, int threads) {
    OfdCleanConfig ccfg;
    ccfg.incremental_scoring = incremental;
    ccfg.num_threads = threads;
    OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
    return cleaner.Run();
  };
  OfdCleanResult reference = run(/*incremental=*/false, /*threads=*/1);
  if (reference.best.tau_feasible) {
    EXPECT_TRUE(reference.best.consistent);
    SynonymIndex repaired_index(data.ontology, data.rel.dict());
    for (const OntologyAddition& add : reference.best.ontology_additions) {
      repaired_index.AddValue(add.sense, add.value);
    }
    OfdVerifier verifier(reference.best.repaired, repaired_index);
    for (const Ofd& ofd : data.sigma) {
      EXPECT_TRUE(verifier.Holds(ofd));
    }
  }
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    OfdCleanResult got = run(/*incremental=*/true, threads);
    EXPECT_EQ(got.num_candidates, reference.num_candidates);
    EXPECT_EQ(got.nodes_evaluated, reference.nodes_evaluated);
    ASSERT_EQ(got.pareto.size(), reference.pareto.size());
    for (size_t i = 0; i < reference.pareto.size(); ++i) {
      EXPECT_EQ(got.pareto[i].ontology_changes, reference.pareto[i].ontology_changes);
      EXPECT_EQ(got.pareto[i].data_changes, reference.pareto[i].data_changes);
    }
    EXPECT_EQ(got.best.data_changes, reference.best.data_changes);
    EXPECT_TRUE(got.best.ontology_additions == reference.best.ontology_additions);
    for (RowId r = 0; r < data.rel.num_rows(); ++r) {
      for (int a = 0; a < data.rel.num_attrs(); ++a) {
        EXPECT_EQ(got.best.repaired.StringAt(r, a),
                  reference.best.repaired.StringAt(r, a));
      }
    }
  }
}

TEST_P(PropertyTest, SigmaRoundTripsThroughText) {
  Rng rng(3700 + GetParam());
  Schema schema({"CC", "CTRY", "SYMP", "DIAG", "MED", "TEST"});
  SigmaSet sigma;
  for (int i = 0; i < 8; ++i) {
    AttrSet lhs;
    for (int a = 0; a < 6; ++a) {
      if (rng.NextBernoulli(0.3)) lhs = lhs.With(a);
    }
    AttrId rhs = static_cast<AttrId>(rng.NextUint(6));
    if (lhs.Contains(rhs)) lhs = lhs.Without(rhs);
    OfdKind kind = rng.NextBernoulli(0.3) ? OfdKind::kInheritance : OfdKind::kSynonym;
    sigma.push_back(Ofd{lhs, rhs, kind});
  }
  auto round = ParseSigma(WriteSigma(sigma, schema), schema);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), sigma);
}

TEST_P(PropertyTest, MinimalCoverIsAFixpoint) {
  Rng rng(3800 + GetParam());
  SigmaSet sigma;
  int n = 2 + static_cast<int>(rng.NextUint(8));
  for (int i = 0; i < n; ++i) {
    AttrSet lhs;
    for (int a = 0; a < 6; ++a) {
      if (rng.NextBernoulli(0.35)) lhs = lhs.With(a);
    }
    sigma.push_back({lhs, static_cast<AttrId>(rng.NextUint(6)), OfdKind::kSynonym});
  }
  SigmaSet cover = MinimalCover(sigma);
  EXPECT_EQ(MinimalCover(cover), cover);
}

TEST_P(PropertyTest, TransversalDualityOnSmallFamilies) {
  // Minimal transversals are an involution on antichains:
  // Tr(Tr(F)) = minimal sets of F when F is an antichain.
  Rng rng(3900 + GetParam());
  AttrSet universe = AttrSet::All(5);
  std::vector<AttrSet> family;
  for (int i = 0; i < 4; ++i) {
    AttrSet s;
    for (int a = 0; a < 5; ++a) {
      if (rng.NextBernoulli(0.5)) s = s.With(a);
    }
    if (!s.empty()) family.push_back(s);
  }
  family = MinimalSets(std::move(family));
  if (family.empty()) return;
  std::vector<AttrSet> tr = MinimalTransversals(family, universe);
  std::vector<AttrSet> tr2 = MinimalTransversals(tr, universe);
  std::sort(tr2.begin(), tr2.end());
  std::vector<AttrSet> expected = family;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(tr2, expected);
}

TEST_P(PropertyTest, InheritanceSubsumesSynonymPerClass) {
  // Under theta >= 0 a class satisfied by a common sense is satisfied by a
  // common concept (the sense's own concept) — when senses have concepts.
  Instance inst = MakeInstance(4000 + GetParam());
  SynonymIndex index(inst.ontology, inst.rel.dict());
  OfdVerifier verifier(inst.rel, index, &inst.ontology, /*theta=*/0);
  const int n = inst.rel.num_attrs();
  for (AttrId a = 0; a < n; ++a) {
    for (AttrId x = 0; x < n; ++x) {
      if (x == a) continue;
      StrippedPartition p = StrippedPartition::BuildForSet(inst.rel, AttrSet::Single(x));
      for (const auto& rows : p.classes()) {
        if (verifier.HoldsInClass(rows, a, OfdKind::kSynonym)) {
          EXPECT_TRUE(verifier.HoldsInClass(rows, a, OfdKind::kInheritance));
        }
      }
    }
  }
}

TEST_P(PropertyTest, BurstyErrorsRepeatOneValuePerClass) {
  DataGenConfig cfg;
  cfg.num_rows = 300;
  cfg.error_rate = 0.2;
  cfg.in_domain_error_fraction = 1.0;
  cfg.bursty_errors = true;
  cfg.classes_per_antecedent = 4;
  cfg.seed = 4100 + static_cast<uint64_t>(GetParam());
  GeneratedData data = GenerateData(cfg);
  // Within one (class value, consequent) the dirty values are identical.
  std::map<std::string, std::set<std::string>> dirty_by_class;
  for (const InjectedError& e : data.errors) {
    int j = e.attr - cfg.num_antecedents;
    std::string key = std::to_string(j) + ":" +
                      data.rel.StringAt(e.row, static_cast<AttrId>(
                                                   j % cfg.num_antecedents));
    dirty_by_class[key].insert(e.dirty);
  }
  for (const auto& [key, values] : dirty_by_class) {
    // Burst value + a collision slot + (rare) out-of-domain fallbacks.
    EXPECT_LE(values.size(), 3u) << key;
  }
}

TEST_P(PropertyTest, IncrementalVerifierMatchesFullReverification) {
  // A random mixed update stream (merges, ontology values, fresh values,
  // antecedent and consequent attributes) must keep the incremental
  // verifier's cached verdicts equal to a from-scratch verification, and
  // its group maps must pass the deep audit, after every single step.
  Instance inst = MakeInstance(4200 + GetParam(), 4, 60);
  Rng rng(97 + GetParam());
  SynonymIndex index(inst.ontology, inst.rel.dict());
  SigmaSet sigma;
  sigma.push_back(Ofd{AttrSet::Single(0), 2, OfdKind::kSynonym});
  sigma.push_back(Ofd{AttrSet().With(0).With(1), 3, OfdKind::kSynonym});
  sigma.push_back(Ofd{AttrSet::Single(3), 1, OfdKind::kSynonym});
  IncrementalVerifier inc(&inst.rel, index, sigma);
  OfdVerifier full(inst.rel, index);

  const RowId n = inst.rel.num_rows();
  for (int step = 0; step < 40; ++step) {
    RowId row = static_cast<RowId>(rng.NextUint(static_cast<uint64_t>(n)));
    AttrId attr = static_cast<AttrId>(rng.NextUint(4));
    ValueId value;
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      // Copy from another cell of the same column: merges classes.
      RowId other = static_cast<RowId>(rng.NextUint(static_cast<uint64_t>(n)));
      value = inst.rel.At(other, attr);
    } else if (dice < 0.8) {
      // A value the ontology knows.
      SenseId s = static_cast<SenseId>(
          rng.NextUint(static_cast<uint64_t>(inst.ontology.num_senses())));
      const auto& vals = inst.ontology.SenseValues(s);
      value = inst.rel.mutable_dict().Intern(vals[rng.NextUint(vals.size())]);
    } else {
      // A fresh value: splits its class off.
      value = inst.rel.mutable_dict().Intern("fresh" + std::to_string(step));
    }
    inc.UpdateCell(row, attr, value);

    Status audit = inc.AuditState();
    EXPECT_TRUE(audit.ok()) << "step " << step << ": " << audit.message();
    for (size_t i = 0; i < sigma.size(); ++i) {
      StrippedPartition lhs =
          StrippedPartition::BuildForSet(inst.rel, sigma[i].lhs);
      EXPECT_EQ(inc.Holds(i), full.Holds(sigma[i], lhs))
          << "step " << step << ", ofd " << i;
    }
    if (HasFailure()) break;  // One diverged step implies cascades; stop.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace fastofd
