// Unit tests for the common substrate: rng, csv, dictionary, flags, status.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/dictionary.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"

namespace fastofd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextUintInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(19);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(50, 1.2)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 2000);
  for (const auto& [rank, _] : counts) EXPECT_LT(rank, 50u);
}

TEST(RngTest, ZipfZeroExponentIsUniformSupport) {
  Rng rng(23);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 5000; ++i) counts[rng.NextZipf(10, 0.0)]++;
  EXPECT_EQ(counts.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    ASSERT_EQ(sample.size(), k);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  ValueId a = d.Intern("alpha");
  ValueId b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, LookupMissReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.Lookup("nope"), kInvalidValue);
  d.Intern("yes");
  EXPECT_EQ(d.Lookup("yes"), 0);
}

TEST(DictionaryTest, StringRoundTrip) {
  Dictionary d;
  std::vector<std::string> words = {"a", "bb", "ccc", ""};
  for (const auto& w : words) d.Intern(w);
  for (const auto& w : words) EXPECT_EQ(d.String(d.Lookup(w)), w);
}

TEST(CsvTest, ParsesSimpleTable) {
  auto result = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(result.ok());
  const CsvTable& t = result.value();
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto result = ParseCsv("x,y\n\"hello, world\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0], "hello, world");
  EXPECT_EQ(result.value().rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, HandlesCrlfAndBlankLines) {
  auto result = ParseCsv("a,b\r\n1,2\r\n\n3,4\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[1][0], "3");
}

TEST(CsvTest, ArityMismatchIsError) {
  auto result = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto result = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, RoundTripsThroughWriter) {
  CsvTable t;
  t.header = {"name", "note"};
  t.rows = {{"x,y", "line\nbreak"}, {"plain", "quote\"inside"}};
  auto result = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().header, t.header);
  EXPECT_EQ(result.value().rows, t.rows);
}

TEST(CsvTest, NoHeaderMode) {
  auto result = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().header.empty());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status e = Status::Error("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "boom");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err(Status::Error("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().message(), "bad");
}

TEST(FlagsTest, ParsesForms) {
  const char* argv[] = {"prog", "--rows=100", "--err", "0.5", "--verbose",
                        "--no-cache", "pos1"};
  Flags f = Flags::Parse(7, const_cast<char**>(argv));
  EXPECT_EQ(f.GetInt("rows", 0), 100);
  EXPECT_DOUBLE_EQ(f.GetDouble("err", 0.0), 0.5);
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("cache", true));
  EXPECT_EQ(f.GetString("missing", "def"), "def");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(FlagsTest, NegativeSpaceSeparatedValues) {
  const char* argv[] = {"prog", "--delta", "-3",   "--tau", "-0.25",
                        "--x",  "-1e-3",   "--flag"};
  Flags f = Flags::Parse(8, const_cast<char**>(argv));
  EXPECT_EQ(f.GetInt("delta", 0), -3);
  EXPECT_DOUBLE_EQ(f.GetDouble("tau", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0.0), -1e-3);
  EXPECT_TRUE(f.GetBool("flag", false));
}

TEST(FlagsTest, DashValueThatIsNotNumericStartsNewFlag) {
  const char* argv[] = {"prog", "--metrics", "--out", "x.txt"};
  Flags f = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(f.GetBool("metrics", false));
  EXPECT_EQ(f.GetString("out", ""), "x.txt");
}

TEST(FlagsDeathTest, MalformedNumbersFailLoudly) {
  const char* argv[] = {"prog", "--rows=abc", "--err=0.5x"};
  Flags f = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_EXIT(f.GetInt("rows", 0), testing::ExitedWithCode(2), "flag --rows");
  EXPECT_EXIT(f.GetDouble("err", 0.0), testing::ExitedWithCode(2), "flag --err");
}

}  // namespace
}  // namespace fastofd
