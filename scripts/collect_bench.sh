#!/usr/bin/env bash
# Runs the benchmark harnesses that support --json and aggregates their
# tables into two machine-readable files:
#   BENCH_core.json  — core pipeline benches (scale, parallelism, incremental,
#                      flat partition micro-kernels, the OFDClean beam search)
#   BENCH_serve.json — the service-mode bench (warm sessions, update latency,
#                      closed-loop tail latency, drain)
# Each file is a JSON array of {"bench", "columns", "rows"} tables.
#
# Output goes to the repo root by default; set BENCH_OUT_DIR to write
# somewhere else (CI writes fresh JSON to a scratch dir and compares it
# against the committed baselines with tools/bench_gate.py).
#
# Usage: scripts/collect_bench.sh [build-dir] [-- extra bench flags...]

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${1:-build}"
OUT_DIR="${BENCH_OUT_DIR:-.}"
mkdir -p "$OUT_DIR"
shift || true
[ "${1:-}" = "--" ] && shift

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Wraps a stream of NDJSON table lines into one JSON array.
ndjson_to_array() {
  local first=1
  printf '['
  while IFS= read -r line; do
    [ -z "$line" ] && continue
    [ "$first" = 1 ] || printf ',\n '
    first=0
    printf '%s' "$line"
  done < "$1"
  printf ']\n'
}

CORE_BENCHES=(bench_micro_core bench_exp1_scale_n_tuples bench_ext_parallel bench_ext_incremental bench_clean)
: > "$TMP/core.ndjson"
for b in "${CORE_BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "skipping $b (not built)" >&2
    continue
  fi
  echo "running $b ..." >&2
  # A crashing or CHECK-failing bench must fail the collection (and CI)
  # instead of silently producing a truncated aggregate the gate would then
  # misread as shape drift.
  "$bin" --json "$TMP/$b.ndjson" "$@" > /dev/null || {
    status=$?
    echo "error: $b exited with status $status" >&2
    exit "$status"
  }
  cat "$TMP/$b.ndjson" >> "$TMP/core.ndjson"
done
ndjson_to_array "$TMP/core.ndjson" > "$OUT_DIR/BENCH_core.json"
echo "wrote $OUT_DIR/BENCH_core.json ($(wc -l < "$TMP/core.ndjson") tables)" >&2

SERVE_BIN="$BUILD_DIR/bench/bench_serve"
if [ -x "$SERVE_BIN" ]; then
  echo "running bench_serve ..." >&2
  "$SERVE_BIN" --json "$TMP/serve.ndjson" "$@" > /dev/null || {
    status=$?
    echo "error: bench_serve exited with status $status" >&2
    exit "$status"
  }
  ndjson_to_array "$TMP/serve.ndjson" > "$OUT_DIR/BENCH_serve.json"
  echo "wrote $OUT_DIR/BENCH_serve.json ($(wc -l < "$TMP/serve.ndjson") tables)" >&2
else
  echo "skipping bench_serve (not built)" >&2
fi
