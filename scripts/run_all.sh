#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark harness,
# and records the outputs the repository ships with:
#   test_output.txt   — ctest results
#   bench_output.txt  — all bench/ binaries, in order
#
# Usage: scripts/run_all.sh [build-dir]

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${1:-build}"

# -e ensures a failed configure/build stops here instead of running ctest
# and the benches against a stale build.
cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
bench_failures=0
for b in "$BUILD_DIR"/bench/bench_*; do
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then continue; fi
  echo "================================================================" \
    | tee -a bench_output.txt
  echo "\$ $b" | tee -a bench_output.txt
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    echo "BENCH FAILED: $b" | tee -a bench_output.txt
    bench_failures=$((bench_failures + 1))
  fi
done

if [ "$bench_failures" -ne 0 ]; then
  echo "$bench_failures bench binaries failed" >&2
  exit 1
fi
