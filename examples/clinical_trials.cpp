// Contextual cleaning walkthrough of the paper's running example
// (Examples 1.1/1.2): the updated clinical-trials table violates
// [SYMP,DIAG] ->syn [MED], and OFDClean resolves it with a Pareto set of
// ontology + data repairs.

#include <cstdio>
#include <string>

#include "clean/repair.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

using namespace fastofd;

int main() {
  std::string dir(FASTOFD_DATA_DIR);
  CsvTable table = ReadCsvFile(dir + "/clinical_trials.csv").value();
  table.header.erase(table.header.begin());
  for (auto& row : table.rows) row.erase(row.begin());
  Relation rel = Relation::FromCsv(table).value();
  Ontology ontology =
      ParseOntology(
          WriteOntology(ReadOntologyFile(dir + "/drug_ontology.txt").value()) +
          WriteOntology(ReadOntologyFile(dir + "/country_ontology.txt").value()))
          .value();

  const Schema& schema = rel.schema();
  SigmaSet sigma = {
      {AttrSet::Single(schema.Find("CC")), schema.Find("CTRY"), OfdKind::kSynonym},
      {AttrSet::Of({schema.Find("SYMP"), schema.Find("DIAG")}), schema.Find("MED"),
       OfdKind::kSynonym},
  };

  std::printf("Σ:\n");
  for (const Ofd& ofd : sigma) std::printf("  %s\n", RenderOfd(ofd, schema).c_str());

  // Detect the violation: tuples t8-t11 carry {cartia, ASA, tiazac, adizem}
  // which share no sense.
  SynonymIndex index(ontology, rel.dict());
  OfdVerifier verifier(rel, index);
  std::printf("\nBefore cleaning:\n");
  for (const Ofd& ofd : sigma) {
    std::printf("  %s : %s\n", RenderOfd(ofd, schema).c_str(),
                verifier.Holds(ofd) ? "satisfied" : "VIOLATED");
  }

  // Run OFDClean.
  OfdCleanConfig config;
  config.beam_size = 3;
  OfdClean cleaner(rel, ontology, sigma, config);
  OfdCleanResult result = cleaner.Run();

  std::printf("\nOntology-repair candidates |Cand(S)| = %lld\n",
              static_cast<long long>(result.num_candidates));
  std::printf("Pareto frontier (dist(S,S'), dist(I,I')):\n");
  for (const ParetoPoint& p : result.pareto) {
    std::printf("  (%lld ontology insertions, %lld data changes)\n",
                static_cast<long long>(p.ontology_changes),
                static_cast<long long>(p.data_changes));
  }

  std::printf("\nChosen repair:\n");
  for (const OntologyAddition& add : result.best.ontology_additions) {
    std::printf("  ontology: add '%s' under sense '%s'\n",
                rel.dict().String(add.value).c_str(),
                ontology.sense_name(add.sense).c_str());
  }
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    for (int a = 0; a < rel.num_attrs(); ++a) {
      if (rel.StringAt(r, a) != result.best.repaired.StringAt(r, a)) {
        std::printf("  data: t%d[%s] '%s' -> '%s'\n", r + 1,
                    schema.name(a).c_str(), rel.StringAt(r, a).c_str(),
                    result.best.repaired.StringAt(r, a).c_str());
      }
    }
  }

  // Verify the repaired instance.
  SynonymIndex repaired_index(ontology, rel.dict());
  for (const OntologyAddition& add : result.best.ontology_additions) {
    repaired_index.AddValue(add.sense, add.value);
  }
  OfdVerifier after(result.best.repaired, repaired_index);
  std::printf("\nAfter cleaning:\n");
  for (const Ofd& ofd : sigma) {
    std::printf("  %s : %s\n", RenderOfd(ofd, schema).c_str(),
                after.Holds(ofd) ? "satisfied" : "VIOLATED");
  }
  return 0;
}
