// Kiva-style scenario: a loans table where country names appear in several
// legitimate spellings. A traditional-FD cleaner flags every synonym as an
// error; OFDs keep them, and OFDClean only repairs genuine mistakes.
//
//   ./example_country_codes [--rows N] [--err RATE]

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "clean/holoclean_lite.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  DataGenConfig config;
  config.num_rows = static_cast<int>(flags.GetInt("rows", 2000));
  config.error_rate = flags.GetDouble("err", 0.03);
  config.num_antecedents = 2;   // e.g. country code, sector
  config.num_consequents = 2;   // e.g. country name, currency
  config.num_senses = 5;        // naming standards (ISO, UN, local, ...)
  config.values_per_sense = 6;
  config.seed = 2024;
  GeneratedData data = GenerateData(config);

  std::printf("Generated %d loans; %zu cells perturbed (err%% = %.1f%%).\n",
              data.rel.num_rows(), data.errors.size(), config.error_rate * 100);

  // How many tuples would a pure-FD cleaner flag?
  // Per class, an FD cleaner must touch every tuple deviating from the
  // majority value; an OFD cleaner only the tuples outside the best sense.
  SynonymIndex index(data.ontology, data.rel.dict());
  int64_t fd_flagged = 0, ofd_flagged = 0, total = 0;
  for (const Ofd& ofd : data.sigma) {
    StrippedPartition p = StrippedPartition::BuildForSet(data.rel, ofd.lhs);
    for (const auto& rows : p.classes()) {
      total += static_cast<int64_t>(rows.size());
      std::unordered_map<ValueId, int64_t> literal;
      std::unordered_map<SenseId, int64_t> by_sense;
      for (RowId r : rows) {
        ValueId v = data.rel.At(r, ofd.rhs);
        ++literal[v];
        for (SenseId s : index.Senses(v)) ++by_sense[s];
      }
      int64_t best_literal = 0, best_sense = 0;
      for (const auto& [_, c] : literal) best_literal = std::max(best_literal, c);
      for (const auto& [_, c] : by_sense) best_sense = std::max(best_sense, c);
      fd_flagged += static_cast<int64_t>(rows.size()) - best_literal;
      ofd_flagged += static_cast<int64_t>(rows.size()) -
                     std::max(best_literal, best_sense);
    }
  }
  std::printf("\nError detection over %lld tuples in non-singleton classes:\n",
              static_cast<long long>(total));
  std::printf("  traditional FDs flag %lld tuples (%.1f%%)\n",
              static_cast<long long>(fd_flagged),
              100.0 * static_cast<double>(fd_flagged) / static_cast<double>(total));
  std::printf("  synonym OFDs flag    %lld tuples (%.1f%%) — the difference is "
              "false positives avoided\n",
              static_cast<long long>(ofd_flagged),
              100.0 * static_cast<double>(ofd_flagged) / static_cast<double>(total));

  // Repair with OFDClean vs the HoloClean-style baseline.
  OfdClean cleaner(data.rel, data.ontology, data.sigma);
  OfdCleanResult oc = cleaner.Run();
  RepairScore oc_score = ScoreRepair(data, oc.best.repaired);

  HoloCleanLiteResult hc = HoloCleanLite(data.rel, data.ontology, data.sigma);
  RepairScore hc_score = ScoreRepair(data, hc.repaired);

  std::printf("\nRepair quality vs ground truth:\n");
  std::printf("  %-14s precision %.3f  recall %.3f  (%lld cells changed)\n",
              "OFDClean", oc_score.precision(), oc_score.recall(),
              static_cast<long long>(oc.best.data_changes));
  std::printf("  %-14s precision %.3f  recall %.3f  (%lld cells changed)\n",
              "HoloCleanLite", hc_score.precision(), hc_score.recall(),
              static_cast<long long>(hc.cells_changed));
  return 0;
}
