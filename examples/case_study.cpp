// Case study: the full contextual-cleaning workflow on a clinical-trials-
// shaped dataset — discover rules on (mostly) clean data, watch updates
// break them, inspect the sense assignment, repair, and audit the result
// against ground truth. Mirrors the narrative of the paper's §1 and §8.
//
//   ./example_case_study [--rows N] [--err RATE] [--inc RATE]

#include <cstdio>

#include "clean/repair.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ofd/sigma_io.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  DataGenConfig config;
  config.num_rows = static_cast<int>(flags.GetInt("rows", 2000));
  config.num_antecedents = 2;
  config.num_consequents = 2;
  config.num_noise_attrs = 1;
  config.num_key_attrs = 1;
  config.num_senses = 4;
  config.error_rate = flags.GetDouble("err", 0.04);
  config.incompleteness_rate = flags.GetDouble("inc", 0.06);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 2026));
  GeneratedData data = GenerateClinical(config);
  const Schema& schema = data.rel.schema();

  std::printf("== 1. The data ==\n");
  std::printf("%d clinical trial records; schema:", data.rel.num_rows());
  for (const auto& name : schema.names()) std::printf(" %s", name.c_str());
  std::printf("\nontology: %d senses over %zu medication codes (%zu codes "
              "missing after a stale sync)\n\n",
              data.ontology.num_senses(), data.ontology.num_values(),
              data.removed_values.size());

  // 2. Discover rules on the dirty instance (approximate, kappa=0.9).
  std::printf("== 2. Rule discovery (FastOFD, κ=0.9) ==\n");
  SynonymIndex index(data.ontology, data.rel.dict());
  FastOfdConfig fcfg;
  fcfg.min_support = 0.9;
  fcfg.max_level = 3;  // Compact rules only (Exp-4 guidance).
  FastOfdResult discovered = FastOfd(data.rel, index, fcfg).Discover();
  std::printf("%zu compact approximate OFDs; a curator keeps the planted "
              "business rules:\n%s\n",
              discovered.ofds.size(),
              WriteSigma(data.sigma, schema).c_str());

  // 3. Violation report.
  std::printf("== 3. Violations ==\n");
  OfdVerifier verifier(data.rel, index);
  for (const Ofd& ofd : data.sigma) {
    StrippedPartition p = StrippedPartition::BuildForSet(data.rel, ofd.lhs);
    int64_t bad = 0;
    for (const auto& rows : p.classes()) {
      bad += !verifier.HoldsInClass(rows, ofd.rhs, ofd.kind);
    }
    std::printf("  %-28s %lld of %lld classes violated (support %.3f)\n",
                RenderOfd(ofd, schema).c_str(), static_cast<long long>(bad),
                static_cast<long long>(p.num_classes()),
                verifier.Support(ofd, p));
  }

  // 4. Sense assignment.
  std::printf("\n== 4. Sense assignment ==\n");
  SenseSelector selector(data.rel, index, data.sigma);
  SenseAssignmentResult senses = selector.Run();
  int64_t assigned = 0, classes = 0;
  for (const auto& per_ofd : senses.senses) {
    for (SenseId s : per_ofd) {
      ++classes;
      assigned += (s != kInvalidSense);
    }
  }
  std::printf("%lld of %lld equivalence classes received an interpretation "
              "(%lld refinements)\n",
              static_cast<long long>(assigned), static_cast<long long>(classes),
              static_cast<long long>(senses.refinements));

  // 5. Repair.
  std::printf("\n== 5. OFDClean repair ==\n");
  OfdCleanConfig clean_config;
  // Demand candidate support in >=2 classes: a genuinely missing code
  // occurs across many trials, a one-off typo does not.
  clean_config.min_candidate_classes = 2;
  OfdClean cleaner(data.rel, data.ontology, data.sigma, clean_config);
  OfdCleanResult repair = cleaner.Run();
  std::printf("Pareto frontier:");
  for (const ParetoPoint& p : repair.pareto) {
    std::printf("  (S:%lld, I:%lld)", static_cast<long long>(p.ontology_changes),
                static_cast<long long>(p.data_changes));
  }
  std::printf("\nchosen: %zu ontology insertions + %lld cell updates (%s)\n",
              repair.best.ontology_additions.size(),
              static_cast<long long>(repair.best.data_changes),
              repair.best.consistent ? "consistent" : "NOT consistent");
  for (const OntologyAddition& add : repair.best.ontology_additions) {
    std::printf("  ontology: '%s' -> sense '%s'\n",
                data.rel.dict().String(add.value).c_str(),
                data.ontology.sense_name(add.sense).c_str());
  }

  // 6. Audit against ground truth.
  std::printf("\n== 6. Audit ==\n");
  std::vector<std::pair<std::string, std::string>> adds;
  for (const OntologyAddition& add : repair.best.ontology_additions) {
    adds.emplace_back(data.ontology.sense_name(add.sense),
                      data.rel.dict().String(add.value));
  }
  RepairScore score = ScoreFullRepair(data, repair.best.repaired, adds);
  std::printf("injected errors + missing codes: %lld; repairs made: %lld; "
              "correct: %lld\nprecision %.3f, recall %.3f\n",
              static_cast<long long>(score.total_errors),
              static_cast<long long>(score.total_changes),
              static_cast<long long>(score.correct_changes), score.precision(),
              score.recall());
  return 0;
}
