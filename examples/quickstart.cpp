// Quickstart: load a relation and an ontology, discover the OFDs that hold,
// and verify a dependency by hand.
//
//   ./example_quickstart [--data <csv>] [--ontology <txt>]
//
// Uses the paper's Table 1 clinical-trials sample by default.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "discovery/fastofd.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

using namespace fastofd;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::string dir(FASTOFD_DATA_DIR);
  std::string data_path = flags.GetString("data", dir + "/clinical_trials.csv");

  // 1. Load the relation.
  auto csv = ReadCsvFile(data_path);
  if (!csv.ok()) {
    std::fprintf(stderr, "error: %s\n", csv.status().message().c_str());
    return 1;
  }
  CsvTable table = csv.value();
  // Drop the tuple-id column of the sample file.
  if (!table.header.empty() && table.header[0] == "id") {
    table.header.erase(table.header.begin());
    for (auto& row : table.rows) row.erase(row.begin());
  }
  auto rel_result = Relation::FromCsv(table);
  if (!rel_result.ok()) {
    std::fprintf(stderr, "error: %s\n", rel_result.status().message().c_str());
    return 1;
  }
  Relation rel = std::move(rel_result).value();
  std::printf("Loaded %d tuples over %d attributes.\n", rel.num_rows(),
              rel.num_attrs());

  // 2. Load the ontology (drug + country senses merged).
  std::string ont_text;
  if (flags.Has("ontology")) {
    auto o = ReadOntologyFile(flags.GetString("ontology", ""));
    if (!o.ok()) {
      std::fprintf(stderr, "error: %s\n", o.status().message().c_str());
      return 1;
    }
    ont_text = WriteOntology(o.value());
  } else {
    ont_text = WriteOntology(ReadOntologyFile(dir + "/drug_ontology.txt").value()) +
               WriteOntology(ReadOntologyFile(dir + "/country_ontology.txt").value());
  }
  Ontology ontology = ParseOntology(ont_text).value();
  std::printf("Ontology: %d senses over %zu values.\n\n", ontology.num_senses(),
              ontology.num_values());

  // 3. Verify one OFD by hand: [CC] ->syn [CTRY].
  SynonymIndex index(ontology, rel.dict());
  OfdVerifier verifier(rel, index);
  const Schema& schema = rel.schema();
  if (schema.Find("CC") >= 0 && schema.Find("CTRY") >= 0) {
    Ofd cc_ctry{AttrSet::Single(schema.Find("CC")), schema.Find("CTRY"),
                OfdKind::kSynonym};
    std::printf("%s %s\n", RenderOfd(cc_ctry, schema).c_str(),
                verifier.Holds(cc_ctry) ? "HOLDS (synonym semantics)"
                                        : "does not hold");
  }

  // 4. Discover the complete minimal set of synonym OFDs.
  FastOfdResult result = FastOfd(rel, index).Discover();
  std::printf("\nFastOFD discovered %zu minimal OFDs (%lld candidates checked):\n",
              result.ofds.size(),
              static_cast<long long>(result.candidates_checked));
  for (const Ofd& ofd : result.ofds) {
    std::printf("  %s\n", RenderOfd(ofd, schema).c_str());
  }
  return 0;
}
