// OFD axiomatic reasoning: attribute closures, implication testing, and
// minimal covers (paper §3), on the clinical-trials schema.

#include <cstdio>

#include "ofd/inference.h"
#include "ofd/ofd.h"
#include "relation/schema.h"

using namespace fastofd;

int main() {
  Schema schema({"CC", "CTRY", "SYMP", "DIAG", "MED"});
  const AttrId CC = 0, CTRY = 1, SYMP = 2, DIAG = 3, MED = 4;

  SigmaSet sigma = {
      {AttrSet::Single(CC), CTRY, OfdKind::kSynonym},
      {AttrSet::Of({SYMP, DIAG}), MED, OfdKind::kSynonym},
      // Redundant: follows from the two above by Composition.
      {AttrSet::Of({CC, SYMP, DIAG}), CTRY, OfdKind::kSynonym},
      {AttrSet::Of({CC, SYMP, DIAG}), MED, OfdKind::kSynonym},
  };

  std::printf("Σ:\n");
  for (const Ofd& ofd : sigma) std::printf("  %s\n", RenderOfd(ofd, schema).c_str());

  // Closures (Algorithm 1).
  std::printf("\nClosures:\n");
  for (AttrSet x : {AttrSet::Single(CC), AttrSet::Of({SYMP, DIAG}),
                    AttrSet::Of({CC, SYMP, DIAG})}) {
    AttrSet closure = Closure(x, ToDependencies(sigma));
    std::printf("  %s+ = %s\n", schema.Render(x).c_str(),
                schema.Render(closure).c_str());
  }

  // Implication tests (Lemma 3.2: Σ ⊨ X→Y iff Y ⊆ X+).
  std::printf("\nImplication:\n");
  struct Query {
    Ofd ofd;
  } queries[] = {
      {{AttrSet::Of({CC, SYMP, DIAG}), MED, OfdKind::kSynonym}},
      {{AttrSet::Single(CC), MED, OfdKind::kSynonym}},
      {{AttrSet::Of({SYMP, DIAG}), CTRY, OfdKind::kSynonym}},
  };
  for (const Query& q : queries) {
    std::printf("  Σ ⊨ %s ? %s\n", RenderOfd(q.ofd, schema).c_str(),
                ImpliesOfd(sigma, q.ofd) ? "yes" : "no");
  }

  // Minimal cover (Definition 3.7): the composed OFD is dropped.
  SigmaSet cover = MinimalCover(sigma);
  std::printf("\nMinimal cover (%zu of %zu kept):\n", cover.size(), sigma.size());
  for (const Ofd& ofd : cover) std::printf("  %s\n", RenderOfd(ofd, schema).c_str());

  // Note on transitivity: unlike FDs, OFDs admit no Transitivity axiom —
  // A->B and B->C do NOT imply A->C (see §3.1 and the verifier tests).
  SigmaSet chain = {{AttrSet::Single(CC), CTRY, OfdKind::kSynonym},
                    {AttrSet::Single(CTRY), MED, OfdKind::kSynonym}};
  Ofd transitive{AttrSet::Single(CC), MED, OfdKind::kSynonym};
  std::printf("\nTransitivity probe: {CC->CTRY, CTRY->MED} ⊨ CC->MED ? %s\n",
              ImpliesOfd(chain, transitive) ? "yes" : "no (as expected)");
  return 0;
}
