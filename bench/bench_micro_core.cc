// Micro-benchmarks for the hot primitives underneath every experiment:
// the flat partition kernels (build, intersect, refine, error count) against
// an in-binary transcription of the legacy vector-of-vectors implementation,
// plus the other per-class primitives (OFD closure, synonym verification,
// approximate support, EMD, initial sense assignment).
//
// The legacy-vs-flat table makes the kernel speedup machine-independent:
// both sides run in the same process on the same data, so the `speedup`
// column is a ratio the CI bench gate can enforce (tools/bench_gate.py
// requires >= 2x on the intersection ops) without caring how fast the
// runner is.
//
//   bench_micro_core [--rows N] [--iters K] [--smoke] [--json=PATH]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "clean/emd.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "ofd/inference.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;
using namespace fastofd::bench;

namespace {

// ---------------------------------------------------------------------------
// Legacy reference: the pre-flat stripped-partition representation (one heap
// vector per class), transcribed from the original relation/partition.cc so
// the comparison measures layout + allocation strategy, not algorithm.
// ---------------------------------------------------------------------------

struct LegacyPartition {
  std::vector<std::vector<RowId>> classes;
  int64_t sum_sizes = 0;
  int64_t num_rows = 0;

  int64_t error() const {
    return sum_sizes - static_cast<int64_t>(classes.size());
  }
};

LegacyPartition LegacyBuild(const Relation& rel, AttrId attr) {
  LegacyPartition p;
  p.num_rows = rel.num_rows();
  const std::vector<ValueId>& col = rel.Column(attr);
  std::vector<std::vector<RowId>> buckets(rel.dict().size());
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    buckets[static_cast<size_t>(col[static_cast<size_t>(r)])].push_back(r);
  }
  for (auto& bucket : buckets) {
    if (bucket.size() >= 2) {
      p.sum_sizes += static_cast<int64_t>(bucket.size());
      p.classes.push_back(std::move(bucket));
    }
  }
  return p;
}

LegacyPartition LegacyProduct(const LegacyPartition& a, const LegacyPartition& b) {
  LegacyPartition out;
  out.num_rows = a.num_rows;
  std::vector<int32_t> probe(static_cast<size_t>(a.num_rows), -1);
  for (size_t ci = 0; ci < a.classes.size(); ++ci) {
    for (RowId r : a.classes[ci]) {
      probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
    }
  }
  std::vector<std::vector<RowId>> scratch(a.classes.size());
  std::vector<int32_t> touched;
  for (const auto& cls_b : b.classes) {
    touched.clear();
    for (RowId r : cls_b) {
      int32_t ci = probe[static_cast<size_t>(r)];
      if (ci < 0) continue;
      if (scratch[static_cast<size_t>(ci)].empty()) touched.push_back(ci);
      scratch[static_cast<size_t>(ci)].push_back(r);
    }
    for (int32_t ci : touched) {
      auto& group = scratch[static_cast<size_t>(ci)];
      if (group.size() >= 2) {
        out.sum_sizes += static_cast<int64_t>(group.size());
        out.classes.push_back(std::move(group));
        group = {};
      } else {
        group.clear();
      }
    }
  }
  return out;
}

GeneratedData MakeData(int rows, int classes_per_antecedent) {
  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.classes_per_antecedent = classes_per_antecedent;
  cfg.error_rate = 0.02;
  cfg.seed = 99;
  return GenerateData(cfg);
}

// Minimum of `iters` timed runs, in milliseconds.
template <typename Fn>
double MinMs(int iters, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < iters; ++i) {
    double ms = 1e3 * TimeIt(fn);
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.Has("smoke");
  const int iters = static_cast<int>(flags.GetInt("iters", smoke ? 1 : 7));
  std::vector<int> row_sizes;
  if (flags.Has("rows")) {
    row_sizes.push_back(static_cast<int>(flags.GetInt("rows", 60000)));
  } else if (smoke) {
    row_sizes = {2000};
  } else {
    row_sizes = {20000, 60000};
  }

  Banner("Micro-core", "flat partition kernels vs legacy layout + hot primitives",
         "lattice hot path (Π* products, §4.2) and per-class checks");

  // -------------------------------------------------------------------------
  // Table 1: legacy vector-of-vectors vs flat arena, same data, same process.
  // -------------------------------------------------------------------------
  Table kernels({"op", "rows", "legacy(ms)", "flat(ms)", "speedup"});
  for (int rows : row_sizes) {
    // Mid-size classes (the shape the lattice produces past level 1, and
    // the one where per-class heap allocation hurts the legacy layout
    // most). Fixed rather than scaled with rows so the speedup ratios stay
    // comparable across row counts.
    const int classes = static_cast<int>(flags.GetInt("classes", 128));
    GeneratedData data = MakeData(rows, classes);
    const Relation& rel = data.rel;

    LegacyPartition la = LegacyBuild(rel, 0);
    LegacyPartition lb = LegacyBuild(rel, 1);
    StrippedPartition fa = StrippedPartition::Build(rel, 0);
    StrippedPartition fb = StrippedPartition::Build(rel, 1);
    PartitionScratch scratch;
    StrippedPartition out;
    // Warm the scratch + output arena once so the flat columns measure
    // steady-state (zero-allocation) kernel cost, which is what the lattice
    // loop sees after its first product.
    StrippedPartition::IntersectInto(fa, fb, &scratch, &out);

    auto add_row = [&](const char* op, double legacy_ms, double flat_ms) {
      kernels.AddRow({op, Fmt("%d", rows), Fmt("%.3f", legacy_ms),
                      Fmt("%.3f", flat_ms),
                      Fmt("%.2f", flat_ms > 0 ? legacy_ms / flat_ms : 0.0)});
    };

    double legacy_build = MinMs(iters, [&] {
      LegacyPartition p = LegacyBuild(rel, 0);
      if (p.num_rows < 0) std::abort();  // Keep the result live.
    });
    double flat_build = MinMs(iters, [&] {
      StrippedPartition p = StrippedPartition::Build(rel, 0);
      if (p.num_rows() < 0) std::abort();
    });
    add_row("build", legacy_build, flat_build);

    double legacy_product = MinMs(iters, [&] {
      LegacyPartition p = LegacyProduct(la, lb);
      if (p.num_rows < 0) std::abort();
    });
    double flat_product = MinMs(iters, [&] {
      StrippedPartition::IntersectInto(fa, fb, &scratch, &out);
    });
    add_row("product", legacy_product, flat_product);

    // Refinement by a column: legacy needs the column's own partition plus a
    // product; the flat kernel groups by value id directly.
    double legacy_refine = MinMs(iters, [&] {
      LegacyPartition p = LegacyProduct(la, LegacyBuild(rel, 1));
      if (p.num_rows < 0) std::abort();
    });
    double flat_refine = MinMs(iters, [&] {
      StrippedPartition::RefineInto(fa, rel.Column(1), rel.dict().size(),
                                    &scratch, &out);
    });
    add_row("refine", legacy_refine, flat_refine);

    // Error count with the approximate-verification cutoff: the legacy path
    // materializes the full product; the flat kernel counts and aborts once
    // the threshold is crossed.
    const int64_t threshold = rows / 100;
    double legacy_error = MinMs(iters, [&] {
      LegacyPartition p = LegacyProduct(la, lb);
      if (p.error() < 0) std::abort();
    });
    double flat_error = MinMs(iters, [&] {
      int64_t e = StrippedPartition::IntersectError(fa, fb, &scratch, threshold);
      if (e < 0) std::abort();
    });
    add_row("error", legacy_error, flat_error);
  }
  kernels.Print();
  WriteJsonIfRequested(flags, "micro_partition", kernels);

  // -------------------------------------------------------------------------
  // Table 2: the remaining hot primitives (absolute times, tolerance-gated).
  // -------------------------------------------------------------------------
  Table prims({"op", "n", "time(ms)"});
  {
    const int rows = row_sizes.back();
    GeneratedData data = MakeData(rows, 16);
    SynonymIndex index(data.ontology, data.rel.dict());
    OfdVerifier verifier(data.rel, index);
    StrippedPartition p =
        StrippedPartition::BuildForSet(data.rel, data.sigma[0].lhs);

    double verify_ms = MinMs(iters, [&] {
      if (!verifier.Holds(data.sigma[0], p) && p.num_rows() < 0) std::abort();
    });
    prims.AddRow({"verify_synonym", Fmt("%d", rows), Fmt("%.3f", verify_ms)});

    double support_ms = MinMs(iters, [&] {
      if (verifier.Support(data.sigma[0], p) < 0.0) std::abort();
    });
    prims.AddRow({"support", Fmt("%d", rows), Fmt("%.3f", support_ms)});

    double support_cutoff_ms = MinMs(iters, [&] {
      if (verifier.SupportAtLeast(data.sigma[0], p, 0.999) && p.num_rows() < 0) {
        std::abort();
      }
    });
    prims.AddRow(
        {"support_cutoff", Fmt("%d", rows), Fmt("%.3f", support_cutoff_ms)});

    RowSpan cls = p.classes().front();
    double sense_ms = MinMs(iters, [&] {
      SenseSelector::InitialAssignment(data.rel, index, cls, data.sigma[0].rhs);
    });
    prims.AddRow({"sense_assignment", Fmt("%zu", cls.size()), Fmt("%.3f", sense_ms)});
  }
  {
    const int deps = smoke ? 32 : 256;
    Rng rng(4);
    std::vector<Dependency> sigma;
    for (int i = 0; i < deps; ++i) {
      AttrSet lhs, rhs;
      for (AttrId a = 0; a < 16; ++a) {
        if (rng.NextBernoulli(0.2)) lhs = lhs.With(a);
        if (rng.NextBernoulli(0.2)) rhs = rhs.With(a);
      }
      sigma.push_back({lhs, rhs});
    }
    AttrSet x = AttrSet::Of({0, 3, 5, 7, 9});
    double closure_ms = MinMs(iters, [&] {
      if (Closure(x, sigma).empty() && !sigma.empty()) std::abort();
    });
    prims.AddRow({"ofd_closure", Fmt("%d", deps), Fmt("%.4f", closure_ms)});
  }
  {
    const int vals = 256;
    Rng rng(5);
    ValueHistogram hp, hq;
    for (int i = 0; i < vals; ++i) {
      hp[static_cast<ValueId>(i)] = static_cast<int64_t>(rng.NextUint(50));
      hq[static_cast<ValueId>(rng.NextUint(static_cast<uint64_t>(vals)))] =
          static_cast<int64_t>(rng.NextUint(50));
    }
    double emd_ms = MinMs(iters, [&] {
      if (CategoricalEmd(hp, hq) < 0.0) std::abort();
    });
    prims.AddRow({"categorical_emd", Fmt("%d", vals), Fmt("%.4f", emd_ms)});
  }
  prims.Print();
  WriteJsonIfRequested(flags, "micro_primitives", prims);

  std::printf("expected shape: the flat arena wins on every kernel op — no\n"
              "per-class heap allocation, probe scratch reused across calls —\n"
              "with `speedup` >= 2 on the intersection ops (product, refine,\n"
              "error), which tools/bench_gate.py enforces in CI.\n");
  return 0;
}
