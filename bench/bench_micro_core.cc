// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// every experiment: partition construction and products, OFD closure,
// synonym-OFD verification, EMD, and initial sense assignment.

#include <benchmark/benchmark.h>

#include "clean/emd.h"
#include "clean/sense_assignment.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "ofd/inference.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

namespace fastofd {
namespace {

GeneratedData MakeData(int rows) {
  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.classes_per_antecedent = 16;
  cfg.error_rate = 0.02;
  cfg.seed = 99;
  return GenerateData(cfg);
}

void BM_PartitionBuild(benchmark::State& state) {
  GeneratedData data = MakeData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrippedPartition::Build(data.rel, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionProduct(benchmark::State& state) {
  GeneratedData data = MakeData(static_cast<int>(state.range(0)));
  StrippedPartition a = StrippedPartition::Build(data.rel, 0);
  StrippedPartition b = StrippedPartition::Build(data.rel, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrippedPartition::Product(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OfdClosure(benchmark::State& state) {
  Rng rng(4);
  std::vector<Dependency> sigma;
  for (int i = 0; i < state.range(0); ++i) {
    AttrSet lhs, rhs;
    for (int a = 0; a < 16; ++a) {
      if (rng.NextBernoulli(0.2)) lhs = lhs.With(a);
      if (rng.NextBernoulli(0.2)) rhs = rhs.With(a);
    }
    sigma.push_back({lhs, rhs});
  }
  AttrSet x = AttrSet::Of({0, 3, 5, 7, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Closure(x, sigma));
  }
}
BENCHMARK(BM_OfdClosure)->Arg(16)->Arg(256);

void BM_SynonymOfdVerification(benchmark::State& state) {
  GeneratedData data = MakeData(static_cast<int>(state.range(0)));
  SynonymIndex index(data.ontology, data.rel.dict());
  OfdVerifier verifier(data.rel, index);
  StrippedPartition p = StrippedPartition::BuildForSet(data.rel, data.sigma[0].lhs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Holds(data.sigma[0], p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SynonymOfdVerification)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ApproximateSupport(benchmark::State& state) {
  GeneratedData data = MakeData(static_cast<int>(state.range(0)));
  SynonymIndex index(data.ontology, data.rel.dict());
  OfdVerifier verifier(data.rel, index);
  StrippedPartition p = StrippedPartition::BuildForSet(data.rel, data.sigma[0].lhs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Support(data.sigma[0], p));
  }
}
BENCHMARK(BM_ApproximateSupport)->Arg(1000)->Arg(10000);

void BM_CategoricalEmd(benchmark::State& state) {
  Rng rng(5);
  ValueHistogram p, q;
  for (int i = 0; i < state.range(0); ++i) {
    p[static_cast<ValueId>(i)] = static_cast<int64_t>(rng.NextUint(50));
    q[static_cast<ValueId>(rng.NextUint(static_cast<uint64_t>(state.range(0))))] =
        static_cast<int64_t>(rng.NextUint(50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CategoricalEmd(p, q));
  }
}
BENCHMARK(BM_CategoricalEmd)->Arg(16)->Arg(256);

void BM_InitialSenseAssignment(benchmark::State& state) {
  GeneratedData data = MakeData(10000);
  SynonymIndex index(data.ontology, data.rel.dict());
  StrippedPartition p = StrippedPartition::BuildForSet(data.rel, data.sigma[0].lhs);
  const auto& rows = p.classes().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SenseSelector::InitialAssignment(data.rel, index, rows, data.sigma[0].rhs));
  }
}
BENCHMARK(BM_InitialSenseAssignment);

}  // namespace
}  // namespace fastofd

BENCHMARK_MAIN();
