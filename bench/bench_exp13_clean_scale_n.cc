// Exp-13 (Table 8): OFDClean end-to-end runtime vs number of tuples N.
// The paper sweeps 50K–250K and reports near-linear runtime growth
// (166 → 217 paper-units) with accuracy essentially flat (±1.4% precision).
// Default sweep is 10x smaller; --scale 10 reaches paper scale.
//
//   bench_exp13_clean_scale_n [--scale K] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int64_t scale = flags.GetInt("scale", 1);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 13));

  Banner("Exp-13", "OFDClean runtime vs N", "Table 8 / §8.5 Exp-13");
  std::printf("sweep N = scale * {5k,10k,15k,20k,25k}, scale=%lld\n\n",
              static_cast<long long>(scale));

  Table table({"N", "seconds", "precision", "recall", "data-repairs"});
  for (int64_t base : {5000, 10000, 15000, 20000, 25000}) {
    int64_t n = base * scale;
    DataGenConfig cfg;
    cfg.num_rows = static_cast<int>(n);
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 4;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = 20;
    cfg.error_rate = 0.03;
    cfg.incompleteness_rate = 0.02;
    cfg.in_domain_error_fraction = 0.3;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);

    OfdCleanResult result;
    double secs = TimeIt([&] {
      OfdCleanConfig ccfg;
      ccfg.min_candidate_classes = 2;
      OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
      result = cleaner.Run();
    });
    std::vector<std::pair<std::string, std::string>> adds;
    for (const OntologyAddition& add : result.best.ontology_additions) {
      adds.emplace_back(data.ontology.sense_name(add.sense),
                        data.rel.dict().String(add.value));
    }
    RepairScore score = ScoreFullRepair(data, result.best.repaired, adds);
    table.AddRow({Fmt("%lld", static_cast<long long>(n)), Fmt("%.3f", secs),
                  Fmt("%.3f", score.precision()), Fmt("%.3f", score.recall()),
                  Fmt("%lld", static_cast<long long>(result.best.data_changes))});
  }
  table.Print();
  std::printf("expected shape: near-linear runtime growth in N (Table 8) with\n"
              "accuracy flat across the sweep.\n");
  return 0;
}
