// Extension (paper §2 related work): Metric FDs vs synonym OFDs as error
// detectors. Metric FDs relax equality to edit-distance ≤ δ — enough for
// typos, not for synonyms. Sweeping δ shows the dilemma the paper points
// out: small δ keeps flagging synonyms (false positives), large δ starts
// accepting genuinely different values (false negatives), while the OFD
// flags exactly the classes with no common sense.
//
//   bench_ext_metric_fd [--rows N] [--err RATE] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ofd/metric_fd.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 4000));
  double err = flags.GetDouble("err", 0.03);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 27));

  Banner("Ext-mfd", "Metric FDs vs synonym OFDs as error detectors",
         "§2 relationship to Metric FDs");
  std::printf("rows=%d, err=%.0f%%\n\n", rows, err * 100);

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_senses = 4;
  cfg.values_per_sense = 8;
  cfg.error_rate = err;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());

  Table table({"delta", "mfd-flagged", "ofd-flagged", "mfd-false-pos",
               "mfd-missed", "tuples"});
  for (int delta : {0, 2, 4, 6, 8, 10}) {
    MetricComparison total;
    for (const Ofd& ofd : data.sigma) {
      MetricComparison cmp = CompareMetricVsOfd(data.rel, index, ofd, delta);
      total.tuples += cmp.tuples;
      total.mfd_flagged += cmp.mfd_flagged;
      total.ofd_flagged += cmp.ofd_flagged;
      total.mfd_only += cmp.mfd_only;
      total.ofd_only += cmp.ofd_only;
    }
    table.AddRow({Fmt("%d", delta),
                  Fmt("%lld", static_cast<long long>(total.mfd_flagged)),
                  Fmt("%lld", static_cast<long long>(total.ofd_flagged)),
                  Fmt("%lld", static_cast<long long>(total.mfd_only)),
                  Fmt("%lld", static_cast<long long>(total.ofd_only)),
                  Fmt("%lld", static_cast<long long>(total.tuples))});
  }
  table.Print();
  std::printf("expected shape: at δ=0 the MFD is the FD and flags every\n"
              "synonym class (max false positives); growing δ trades synonym\n"
              "false positives for missed real errors; the OFD column is flat\n"
              "— it flags exactly the classes broken by injected errors.\n");
  return 0;
}
