// OFDClean beam-search harness: measures the ontology-repair node-evaluation
// phase (the `clean.beam.seconds` timer — level-0 memoization plus every
// level's scoring, not the final materialization).
//
// Table 1 compares full per-node re-scoring against the incremental scorer
// (memoized level-0 costs + affected-class re-costing) in the same process on
// the same data, with a results-identical check; the `speedup` column is a
// machine-independent ratio that tools/bench_gate.py enforces (>= 2x).
// Table 2 scales the worker threads with incremental scoring on, again
// checking that every configuration reproduces the serial reference byte for
// byte.
//
//   bench_clean [--rows N] [--iters K] [--smoke] [--json=PATH]

#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

namespace {

// A dirty instance with both erroneous cells (data-repair work) and
// ontology incompleteness (real beam candidates): many mid-size classes, so
// full re-scoring touches far more state per node than the few classes a
// single insertion can affect.
GeneratedData MakeDirtyData(int rows) {
  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_senses = 8;
  // Fixed class size (~150 rows): the fraction of classes a candidate
  // insertion touches — what incremental scoring exploits — stays constant
  // across row counts, so the speedup column is comparable between rows.
  cfg.classes_per_antecedent = rows / 150;
  cfg.error_rate = 0.03;
  cfg.incompleteness_rate = 0.12;
  cfg.seed = 42;
  return GenerateData(cfg);
}

struct CleanRun {
  OfdCleanResult result;
  double beam_ms = 0.0;
};

// Runs the full pipeline `iters` times and keeps the minimum beam time (the
// result is identical across iterations by construction).
CleanRun RunClean(const GeneratedData& data, bool incremental, int threads,
                  int iters) {
  CleanRun run;
  for (int i = 0; i < iters; ++i) {
    MetricsRegistry metrics;
    OfdCleanConfig cfg;
    cfg.incremental_scoring = incremental;
    cfg.num_threads = threads;
    cfg.metrics = &metrics;
    OfdClean cleaner(data.rel, data.ontology, data.sigma, cfg);
    OfdCleanResult result = cleaner.Run();
    double ms = 1e3 * metrics.Snapshot().TimerSeconds("clean.beam.seconds");
    if (i == 0 || ms < run.beam_ms) run.beam_ms = ms;
    run.result = std::move(result);
  }
  return run;
}

// Byte-identical comparison: frontier, chosen insertions, and every repaired
// cell (both runs share the relation, hence the dictionary).
bool SameResults(const OfdCleanResult& a, const OfdCleanResult& b) {
  if (a.num_candidates != b.num_candidates ||
      a.nodes_evaluated != b.nodes_evaluated ||
      a.best.data_changes != b.best.data_changes ||
      a.best.ontology_additions != b.best.ontology_additions ||
      a.pareto.size() != b.pareto.size()) {
    return false;
  }
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    if (a.pareto[i].ontology_changes != b.pareto[i].ontology_changes ||
        a.pareto[i].data_changes != b.pareto[i].data_changes) {
      return false;
    }
  }
  for (RowId r = 0; r < a.best.repaired.num_rows(); ++r) {
    for (int attr = 0; attr < a.best.repaired.num_attrs(); ++attr) {
      if (a.best.repaired.At(r, attr) != b.best.repaired.At(r, attr)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.Has("smoke");
  const int iters = static_cast<int>(flags.GetInt("iters", smoke ? 1 : 3));
  std::vector<int> row_sizes;
  if (flags.Has("rows")) {
    row_sizes.push_back(static_cast<int>(flags.GetInt("rows", 30000)));
  } else if (smoke) {
    row_sizes = {2000};
  } else {
    row_sizes = {10000, 30000};
  }

  Banner("Clean-beam", "incremental + parallel ontology-repair beam search",
         "§7.1 beam search over Cand(S)");

  // -------------------------------------------------------------------------
  // Table 1: full vs incremental node scoring, serial, same process.
  // -------------------------------------------------------------------------
  Table scoring({"rows", "cands", "nodes", "full(ms)", "incremental(ms)",
                 "speedup", "identical"});
  for (int rows : row_sizes) {
    GeneratedData data = MakeDirtyData(rows);
    CleanRun full = RunClean(data, /*incremental=*/false, /*threads=*/1, iters);
    CleanRun inc = RunClean(data, /*incremental=*/true, /*threads=*/1, iters);
    scoring.AddRow(
        {Fmt("%d", rows),
         Fmt("%lld", static_cast<long long>(full.result.num_candidates)),
         Fmt("%lld", static_cast<long long>(full.result.nodes_evaluated)),
         Fmt("%.2f", full.beam_ms), Fmt("%.2f", inc.beam_ms),
         Fmt("%.2f", inc.beam_ms > 0 ? full.beam_ms / inc.beam_ms : 0.0),
         SameResults(full.result, inc.result) ? "yes" : "NO"});
  }
  scoring.Print();
  WriteJsonIfRequested(flags, "clean_beam", scoring);

  // -------------------------------------------------------------------------
  // Table 2: thread scaling of the incremental beam search.
  // -------------------------------------------------------------------------
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("NOTE: single-CPU machine — thread counts beyond 1 can only\n"
                "add overhead here; the sweep still demonstrates that output\n"
                "is identical across thread counts.\n\n");
  }
  // `hw` is the machine's hardware concurrency: tools/bench_gate.py gates a
  // scaling floor only on rows this machine can physically scale to
  // (hw >= threads); the identical check is gated unconditionally.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  Table threads_table({"threads", "hw", "rows", "beam(ms)", "speedup",
                       "identical"});
  {
    const int rows = row_sizes.back();
    GeneratedData data = MakeDirtyData(rows);
    CleanRun serial = RunClean(data, /*incremental=*/true, /*threads=*/1, iters);
    for (int threads : {1, 2, 4, 8}) {
      CleanRun run = threads == 1
                         ? serial
                         : RunClean(data, /*incremental=*/true, threads, iters);
      threads_table.AddRow(
          {Fmt("%d", threads), Fmt("%d", hw), Fmt("%d", rows),
           Fmt("%.2f", run.beam_ms),
           Fmt("%.2f", run.beam_ms > 0 ? serial.beam_ms / run.beam_ms : 0.0),
           SameResults(serial.result, run.result) ? "yes" : "NO"});
    }
  }
  threads_table.Print();
  WriteJsonIfRequested(flags, "clean_threads", threads_table);

  std::printf(
      "expected shape: incremental scoring re-costs only the few classes a\n"
      "node's insertions can affect, so its advantage grows with the class\n"
      "count; tools/bench_gate.py enforces `speedup` >= 2 on every clean_beam\n"
      "row. Both tables must report identical=yes: overlays + pre-sized\n"
      "slots make the search byte-identical for any mode or thread count.\n");
  return 0;
}
