// Shared accuracy evaluation for the sense-selection experiments
// (Exp-6..Exp-8): compares a SenseAssignmentResult with the generator's
// ground-truth senses.
//
// A class's assignment is *correct* when it names the true generating sense
// or any sense that covers every clean value of the class (overlapping
// senses can be equally valid interpretations). Recall follows the paper:
// every class that received a sense counts as recalled.

#ifndef FASTOFD_BENCH_SENSE_EVAL_H_
#define FASTOFD_BENCH_SENSE_EVAL_H_

#include <string>
#include <string_view>

#include "clean/sense_assignment.h"
#include "common/check.h"
#include "common/parse.h"
#include "datagen/datagen.h"
#include "ontology/synonym_index.h"

namespace fastofd::bench {

struct SenseAccuracy {
  int64_t classes = 0;
  int64_t assigned = 0;
  int64_t correct = 0;

  double precision() const {
    return assigned == 0 ? 1.0
                         : static_cast<double>(correct) /
                               static_cast<double>(assigned);
  }
  double recall() const {
    return classes == 0 ? 1.0
                        : static_cast<double>(assigned) /
                              static_cast<double>(classes);
  }
};

inline SenseAccuracy EvaluateSenses(const GeneratedData& data,
                                    const SynonymIndex& index,
                                    const SenseAssignmentResult& result) {
  SenseAccuracy acc;
  const Schema& schema = data.rel.schema();
  // Recover the generator's layout: antecedents CTX0..CTX{A-1}, consequent
  // column j named VALj, class key "<j>:<CTX_{j mod A} value>".
  int num_antecedents = 0;
  while (schema.Find("CTX" + std::to_string(num_antecedents)) >= 0) {
    ++num_antecedents;
  }
  for (size_t i = 0; i < data.sigma.size(); ++i) {
    const auto& classes = result.partitions[i].classes();
    AttrId rhs = data.sigma[i].rhs;
    // Generator layout guarantees the name is "VAL<j>"; a parse failure
    // here means the ground-truth schema drifted, so fail loudly.
    Result<int64_t> j_parsed =
        ParseInt64(std::string_view(schema.name(rhs)).substr(3));
    FASTOFD_CHECK(j_parsed.ok());
    int j = static_cast<int>(j_parsed.value());
    AttrId lhs = schema.Find("CTX" + std::to_string(j % num_antecedents));
    for (size_t c = 0; c < classes.size(); ++c) {
      ++acc.classes;
      SenseId assigned = result.senses[i][c];
      if (assigned == kInvalidSense) continue;
      ++acc.assigned;
      std::string key = std::to_string(j) + ":" +
                        data.rel.StringAt(classes[c][0], lhs);
      auto it = data.true_senses.find(key);
      if (it != data.true_senses.end() && it->second == assigned) {
        ++acc.correct;
        continue;
      }
      // Alternative interpretation: covers every *clean* value of the class.
      bool covers_all = true;
      for (RowId r : classes[c]) {
        ValueId v = data.clean_rel.dict().Lookup(data.clean_rel.StringAt(r, rhs));
        ValueId in_rel = data.rel.dict().Lookup(data.clean_rel.StringAt(r, rhs));
        (void)v;
        if (in_rel == kInvalidValue || !index.SenseContains(assigned, in_rel)) {
          covers_all = false;
          break;
        }
      }
      if (covers_all) ++acc.correct;
    }
  }
  return acc;
}

}  // namespace fastofd::bench

#endif  // FASTOFD_BENCH_SENSE_EVAL_H_
