// Exp-2 (Figure 6b): discovery runtime vs number of attributes n.
// All algorithms scale exponentially in n (the candidate lattice doubles per
// attribute); FastOFD stays comparable to the other lattice methods.
//
//   bench_exp2_scale_n_attrs [--rows N] [--budget SECONDS] [--max-attrs A]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "discovery/fd_baselines.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 2000));
  double budget = flags.GetDouble("budget", 5.0);
  int max_attrs = static_cast<int>(flags.GetInt("max-attrs", 10));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Banner("Exp-2", "discovery runtime vs n (attributes)", "Figure 6b / §8.2");
  std::printf("rows=%d, per-run budget %.1fs\n\n", rows, budget);

  std::vector<std::string> algos = {"fastofd"};
  for (const std::string& name : FdAlgorithmNames()) algos.push_back(name);
  std::vector<std::string> columns = {"n"};
  for (const auto& a : algos) columns.push_back(a + "(s)");
  Table table(columns);

  std::vector<bool> skipped(algos.size(), false);
  for (int n_attrs = 4; n_attrs <= max_attrs; n_attrs += 2) {
    // Grow the schema: 1/3 antecedents, 1/3 consequents, 1/3 noise.
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = n_attrs / 3 + (n_attrs % 3 > 0);
    cfg.num_consequents = n_attrs / 3 + (n_attrs % 3 > 1);
    cfg.num_noise_attrs = n_attrs / 3;
    cfg.num_senses = 4;
    cfg.classes_per_antecedent = 12;
    cfg.error_rate = 0.0;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    std::vector<std::string> row = {Fmt("%d", data.rel.num_attrs())};
    for (size_t i = 0; i < algos.size(); ++i) {
      if (skipped[i]) {
        row.push_back("-");
        continue;
      }
      double secs;
      if (algos[i] == "fastofd") {
        secs = TimeIt([&] { FastOfd(data.rel, index).Discover(); });
      } else {
        auto algo = MakeFdAlgorithm(algos[i]);
        secs = TimeIt([&] { algo->Discover(data.rel); });
      }
      row.push_back(Fmt("%.3f", secs));
      if (secs > budget) skipped[i] = true;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("expected shape: every algorithm grows ~exponentially with n;\n"
              "FastOFD tracks the lattice-based baselines (TANE/FUN/DFD) and\n"
              "discovers more dependencies (the paper reports 3.1x more).\n");
  return 0;
}
