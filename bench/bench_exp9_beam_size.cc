// Exp-9 (Figures 9a/9b): OFDClean accuracy and runtime vs beam size b.
// The paper: accuracy rises with b and plateaus once the best repair is in
// the beam (b=4 vs b=5 indistinguishable); runtime grows steeply with b
// because each level evaluates more ontology-repair combinations.
//
//   bench_exp9_beam_size [--rows N] [--inc RATE] [--err RATE] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 2000));
  double inc = flags.GetDouble("inc", 0.08);
  double err = flags.GetDouble("err", 0.03);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 9));

  Banner("Exp-9", "OFDClean accuracy/runtime vs beam size b",
         "Figures 9a/9b / §8.5");
  std::printf("rows=%d, inc=%.0f%%, err=%.0f%%\n\n", rows, inc * 100, err * 100);

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.values_per_sense = 8;
  cfg.in_domain_error_fraction = 0.3;
  cfg.classes_per_antecedent = 10;
  cfg.error_rate = err;
  cfg.incompleteness_rate = inc;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);

  Table table({"beam", "precision", "recall", "seconds", "nodes", "ont-repairs",
               "data-repairs"});
  for (int b : {1, 2, 3, 4, 5}) {
    OfdCleanConfig ccfg;
    ccfg.min_candidate_classes = 2;
    ccfg.beam_size = b;
    ccfg.max_repair_size = 10;
    OfdCleanResult result;
    double secs = TimeIt([&] {
      OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
      result = cleaner.Run();
    });
    std::vector<std::pair<std::string, std::string>> adds;
    for (const OntologyAddition& add : result.best.ontology_additions) {
      adds.emplace_back(data.ontology.sense_name(add.sense),
                        data.rel.dict().String(add.value));
    }
    RepairScore score = ScoreFullRepair(data, result.best.repaired, adds);
    table.AddRow({Fmt("%d", b), Fmt("%.3f", score.precision()),
                  Fmt("%.3f", score.recall()), Fmt("%.3f", secs),
                  Fmt("%lld", static_cast<long long>(result.nodes_evaluated)),
                  Fmt("%zu", result.best.ontology_additions.size()),
                  Fmt("%lld", static_cast<long long>(result.best.data_changes))});
  }
  table.Print();
  std::printf("expected shape: accuracy improves with b then plateaus (the\n"
              "paper sees no gain from b=4 to b=5); evaluated nodes — and thus\n"
              "runtime — grow quickly with b.\n");
  return 0;
}
