// Extension (response letter W2 / §9): the cost of antecedent synonyms.
// Validating an OFD when LHS values may be synonyms requires evaluating the
// merged partition under *every* sense — this harness measures the class
// blow-up and runtime multiplier vs plain (consequent-only) validation, the
// reason the paper scoped synonyms to the right-hand side.
//
//   bench_ext_lhs_synonyms [--rows N] [--seed S]

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ofd/lhs_synonym.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 20000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 24));

  Banner("Ext-lhs", "validation cost with antecedent synonyms",
         "response letter W2 / §9 next steps");
  std::printf("rows=%d\n\n", rows);

  Table table({"senses", "plain(ms)", "lhs-syn(ms)", "factor", "classes-plain",
               "classes-lhs"});
  for (int senses : {2, 4, 6, 8, 10}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 1;
    cfg.num_consequents = 1;
    cfg.num_senses = senses;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = 16;
    cfg.error_rate = 0.0;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());
    // Probe the planted (satisfied) OFD CTX0 -> VAL0: a holding dependency
    // forces full evaluation under every interpretation.
    Ofd ofd = data.sigma[0];
    OfdVerifier verifier(data.rel, index);
    double plain_ms = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      plain_ms = std::min(plain_ms, 1e3 * TimeIt([&] { verifier.Holds(ofd); }));
    }
    StrippedPartition p = StrippedPartition::BuildForSet(data.rel, ofd.lhs);

    LhsSynonymStats stats;
    double lhs_ms = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      LhsSynonymStats s;
      lhs_ms = std::min(
          lhs_ms, 1e3 * TimeIt([&] { HoldsWithLhsSynonyms(data.rel, index,
                                                          ofd, &s); }));
      stats = s;
    }
    table.AddRow({Fmt("%d", senses), Fmt("%.3f", plain_ms), Fmt("%.3f", lhs_ms),
                  Fmt("%.1fx", lhs_ms / plain_ms),
                  Fmt("%lld", static_cast<long long>(p.num_classes())),
                  Fmt("%lld", static_cast<long long>(stats.classes_evaluated))});
  }
  table.Print();
  std::printf("expected shape: the LHS-synonym reading evaluates ~(1 + |λ|)\n"
              "partitions, so evaluated classes and runtime grow linearly with\n"
              "the number of senses — the search-space argument the paper used\n"
              "to scope synonyms to consequents.\n");
  return 0;
}
