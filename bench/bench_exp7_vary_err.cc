// Exp-7 (Figures 7c/7d): sense-selection accuracy and runtime vs the error
// rate err% ∈ {3,6,9,12,15}. The paper: precision declines ~linearly with
// errors (overlapping erroneous values make the right sense harder to pick);
// runtime increases as more refinements are evaluated.
//
//   bench_exp7_vary_err [--rows N] [--senses K] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ontology/synonym_index.h"
#include "sense_eval.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 5000));
  int senses = static_cast<int>(flags.GetInt("senses", 4));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  Banner("Exp-7", "sense selection vs error rate err%", "Figures 7c/7d / §8.4");
  std::printf("rows=%d, senses=%d\n\n", rows, senses);

  Table table({"err%", "precision", "recall", "seconds", "refinements"});
  for (int err : {3, 6, 9, 12, 15}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = senses;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = rows / 20;
    cfg.sense_overlap = 0.4;
    cfg.plant_interacting_ofds = true;
    cfg.error_rate = err / 100.0;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    SenseAssignmentResult result;
    double secs = TimeIt([&] {
      SenseSelector selector(data.rel, index, data.sigma, SenseAssignConfig{2.0});
      result = selector.Run();
    });
    SenseAccuracy acc = EvaluateSenses(data, index, result);
    table.AddRow({Fmt("%d", err), Fmt("%.3f", acc.precision()),
                  Fmt("%.3f", acc.recall()), Fmt("%.3f", secs),
                  Fmt("%lld", static_cast<long long>(result.refinements))});
  }
  table.Print();
  std::printf("expected shape: precision declines roughly linearly with err%%;\n"
              "recall stays 1.0; runtime creeps up with the number of\n"
              "refinement evaluations.\n");
  return 0;
}
