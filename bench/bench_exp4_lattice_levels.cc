// Exp-4 (§8.2, "Efficiency over lattice levels"): OFDs found and time spent
// per lattice level. The paper observes that compact OFDs dominate: ~61% of
// discoveries land in the first 6 of 15 levels using ~25% of total time,
// motivating the max_level cutoff.
//
//   bench_exp4_lattice_levels [--rows N] [--seed S]

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 3000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  Banner("Exp-4", "OFDs and time per lattice level", "§8.2 Exp-4");

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 4;
  cfg.num_consequents = 3;
  cfg.num_noise_attrs = 3;
  cfg.num_senses = 4;
  cfg.classes_per_antecedent = 10;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  std::printf("rows=%d, attrs=%d\n\n", data.rel.num_rows(), data.rel.num_attrs());

  FastOfdResult result = FastOfd(data.rel, index).Discover();

  double total_time = 0.0;
  int64_t total_ofds = 0;
  for (const LevelStats& s : result.level_stats) {
    total_time += s.seconds;
    total_ofds += s.ofds_found;
  }

  Table table({"level", "nodes", "candidates", "ofds", "seconds", "cum-ofds%",
               "cum-time%"});
  int64_t cum_ofds = 0;
  double cum_time = 0.0;
  for (const LevelStats& s : result.level_stats) {
    cum_ofds += s.ofds_found;
    cum_time += s.seconds;
    table.AddRow({Fmt("%d", s.level), Fmt("%lld", static_cast<long long>(s.nodes)),
                  Fmt("%lld", static_cast<long long>(s.candidates_checked)),
                  Fmt("%lld", static_cast<long long>(s.ofds_found)),
                  Fmt("%.4f", s.seconds),
                  Fmt("%.1f", total_ofds ? 100.0 * static_cast<double>(cum_ofds) /
                                               static_cast<double>(total_ofds)
                                         : 0.0),
                  Fmt("%.1f", total_time > 0 ? 100.0 * cum_time / total_time : 0.0)});
  }
  table.Print();
  std::printf("total: %lld OFDs in %.3fs across %zu levels\n",
              static_cast<long long>(total_ofds), total_time,
              result.level_stats.size());
  std::printf("expected shape: the majority of (compact, interesting) OFDs are\n"
              "found in the top levels at a small fraction of total time — the\n"
              "paper reports ~61%% of OFDs in the first 6/15 levels for ~25%% of\n"
              "the time, so pruning deep levels is cheap.\n");
  return 0;
}
