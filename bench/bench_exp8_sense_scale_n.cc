// Exp-8 (Table 7): sense-assignment runtime vs number of tuples N.
// The paper sweeps 0.2M–1M tuples and reports 9.3s → 27.2s (roughly linear
// with a mild super-linear tail from overlapping classes); precision is
// insensitive to N. Default sweep is 20x smaller; use --scale 20 for paper
// scale.
//
//   bench_exp8_sense_scale_n [--scale K] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ontology/synonym_index.h"
#include "sense_eval.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int64_t scale = flags.GetInt("scale", 1);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 8));

  Banner("Exp-8", "sense-assignment runtime vs N", "Table 7 / §8.4 Exp-8");
  std::printf("sweep N = scale * {10k,20k,30k,40k,50k}, scale=%lld\n\n",
              static_cast<long long>(scale));

  Table table({"N", "seconds", "precision", "classes"});
  for (int64_t base : {10000, 20000, 30000, 40000, 50000}) {
    int64_t n = base * scale;
    DataGenConfig cfg;
    cfg.num_rows = static_cast<int>(n);
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 4;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = static_cast<int>(n / 20);
    cfg.sense_overlap = 0.4;
    cfg.plant_interacting_ofds = true;
    cfg.error_rate = 0.03;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    SenseAssignmentResult result;
    double secs = TimeIt([&] {
      SenseSelector selector(data.rel, index, data.sigma);
      result = selector.Run();
    });
    SenseAccuracy acc = EvaluateSenses(data, index, result);
    table.AddRow({Fmt("%lld", static_cast<long long>(n)), Fmt("%.3f", secs),
                  Fmt("%.3f", acc.precision()),
                  Fmt("%lld", static_cast<long long>(acc.classes))});
  }
  table.Print();
  std::printf("expected shape: runtime ~linear in N (Table 7: 9.3s → 27.2s over\n"
              "0.2M → 1M on the paper's hardware); precision stays >0.9 and\n"
              "does not depend on N.\n");
  return 0;
}
