// Extension: parallel candidate verification in FastOFD on the shared
// execution substrate. Validations of different candidates within a lattice
// level are independent; results are applied in a deterministic order, so
// output is identical for any thread count (asserted in tests). This harness
// sweeps thread counts through a shared ThreadPool and reports per-phase
// times (candidate validation vs. partition products) from the metrics
// registry instead of ad-hoc timers.
//
//   bench_ext_parallel [--rows N] [--seed S]

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "exec/thread_pool.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 20000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 25));

  Banner("Ext-par", "parallel candidate verification speedup", "extension");

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 4;
  cfg.num_noise_attrs = 2;
  cfg.num_senses = 8;
  cfg.values_per_sense = 10;
  cfg.classes_per_antecedent = 24;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  int hw = ThreadPool::DefaultThreads();
  std::printf("rows=%d, attrs=%d, hardware threads=%d\n", data.rel.num_rows(),
              data.rel.num_attrs(), hw);
  if (hw <= 1) {
    std::printf("NOTE: single-CPU machine — thread counts beyond 1 can only\n"
                "add overhead here; the sweep still demonstrates that output\n"
                "is identical across thread counts.\n");
  }
  std::printf("\n");

  // Per-phase wall-clock comes from the shared metrics registry
  // (discover.validate.seconds / discover.products.seconds), diffed around
  // each run so repetitions do not accumulate. Speedup columns are plain
  // numbers (no "x" suffix) so tools/bench_gate.py gates the scaling floors
  // without string parsing; `hw` records this machine's hardware
  // concurrency — the gate enforces a floor only on rows the machine can
  // physically scale to (hw >= threads).
  Table table({"threads", "hw", "seconds", "speedup", "validate_s",
               "validate_x", "products_s", "products_x", "identical"});
  double base = 0.0, base_validate = 0.0, base_products = 0.0;
  SigmaSet base_ofds;
  for (int threads : {1, 2, 4, 8}) {
    // One persistent pool per sweep point, shared across the run's lattice
    // levels and repetitions (the pool outlives each Discover call).
    ThreadPool pool(threads);
    MetricsRegistry metrics;
    FastOfdConfig fcfg;
    fcfg.pool = &pool;
    fcfg.metrics = &metrics;
    FastOfdResult result;
    double secs = 1e30, validate = 1e30, products = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      MetricsSnapshot before = metrics.Snapshot();
      double total = TimeIt([&] {
        result = FastOfd(data.rel, index, fcfg).Discover();
      });
      MetricsSnapshot delta = metrics.Snapshot().Diff(before);
      secs = std::min(secs, total);
      validate = std::min(validate, delta.TimerSeconds("discover.validate.seconds"));
      products = std::min(products, delta.TimerSeconds("discover.products.seconds"));
    }
    if (threads == 1) {
      base = secs;
      base_validate = validate;
      base_products = products;
      base_ofds = result.ofds;
    }
    const bool identical = result.ofds == base_ofds;
    table.AddRow({Fmt("%d", threads), Fmt("%d", hw), Fmt("%.3f", secs),
                  Fmt("%.2f", base / secs), Fmt("%.3f", validate),
                  Fmt("%.2f", base_validate / std::max(validate, 1e-12)),
                  Fmt("%.3f", products),
                  Fmt("%.2f", base_products / std::max(products, 1e-12)),
                  identical ? "yes" : "NO"});
  }
  table.Print();
  WriteJsonIfRequested(flags, "ext_parallel", table);
  std::printf("expected shape: validate speedup tracks the thread count until\n"
              "partition products (parallel but coarser-grained) dominate;\n"
              "output is identical for every thread count.\n");
  return 0;
}
