// Extension: parallel candidate verification in FastOFD. Validations of
// different candidates within a lattice level are independent; results are
// applied in a deterministic order, so output is identical for any thread
// count (asserted in tests). This harness measures the speedup.
//
//   bench_ext_parallel [--rows N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 20000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 25));

  Banner("Ext-par", "parallel candidate verification speedup", "extension");

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 4;
  cfg.num_noise_attrs = 2;
  cfg.num_senses = 8;
  cfg.values_per_sense = 10;
  cfg.classes_per_antecedent = 24;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("rows=%d, attrs=%d, hardware threads=%u\n", data.rel.num_rows(),
              data.rel.num_attrs(), hw);
  if (hw <= 1) {
    std::printf("NOTE: single-CPU machine — thread counts beyond 1 can only\n"
                "add overhead here; the sweep still demonstrates that output\n"
                "is identical across thread counts.\n");
  }
  std::printf("\n");

  Table table({"threads", "seconds", "speedup", "ofds"});
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    FastOfdConfig fcfg;
    fcfg.num_threads = threads;
    FastOfdResult result;
    double secs = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      secs = std::min(secs, TimeIt([&] {
               result = FastOfd(data.rel, index, fcfg).Discover();
             }));
    }
    if (threads == 1) base = secs;
    table.AddRow({Fmt("%d", threads), Fmt("%.3f", secs),
                  Fmt("%.2fx", base / secs), Fmt("%zu", result.ofds.size())});
  }
  table.Print();
  std::printf("expected shape: speedup grows with threads until partition\n"
              "products (serial, per level) dominate; output is identical for\n"
              "every thread count.\n");
  return 0;
}
