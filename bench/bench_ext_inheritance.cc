// Extension (paper conclusion / CIKM'17): inheritance OFD discovery.
// X ->_inh A holds when each class's consequent values share an ancestor
// concept within θ ontology levels. Sweeps θ and compares discovery cost
// against synonym OFDs and plain FDs (the earlier paper reports synonym
// ≈1.8x and inheritance ≈2.4x over FD discovery).
//
//   bench_ext_inheritance [--rows N] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "discovery/fd_baselines.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 4000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 22));

  Banner("Ext-inh", "inheritance OFD discovery vs theta",
         "§9 future work; CIKM'17 inheritance OFDs");

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 3;
  cfg.num_senses = 6;
  cfg.classes_per_antecedent = 12;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  std::printf("rows=%d, attrs=%d, concepts=%d\n\n", data.rel.num_rows(),
              data.rel.num_attrs(), data.ontology.num_concepts());

  // Baselines: plain FDs and synonym OFDs.
  double fd_secs = TimeIt([&] { MakeFdAlgorithm("tane")->Discover(data.rel); });
  FastOfdResult syn;
  double syn_secs = TimeIt([&] { syn = FastOfd(data.rel, index).Discover(); });
  std::printf("TANE (FDs): %.3fs;  FastOFD synonym: %.3fs (%.2fx), %zu OFDs\n\n",
              fd_secs, syn_secs, syn_secs / fd_secs, syn.ofds.size());

  Table table({"theta", "inh-ofds", "avg-lhs", "seconds", "vs-fd"});
  for (int theta : {0, 1, 2, 3}) {
    FastOfdConfig fcfg;
    fcfg.kind = OfdKind::kInheritance;
    fcfg.theta = theta;
    FastOfdResult result;
    double secs = TimeIt([&] {
      result = FastOfd(data.rel, index, fcfg, &data.ontology).Discover();
    });
    double avg_lhs = 0.0;
    for (const Ofd& ofd : result.ofds) avg_lhs += ofd.lhs.size();
    if (!result.ofds.empty()) avg_lhs /= static_cast<double>(result.ofds.size());
    table.AddRow({Fmt("%d", theta), Fmt("%zu", result.ofds.size()),
                  Fmt("%.2f", avg_lhs), Fmt("%.3f", secs),
                  Fmt("%.2fx", secs / fd_secs)});
  }
  table.Print();
  std::printf("expected shape: larger theta admits more (coarser) inheritance\n"
              "OFDs with smaller antecedents; inheritance verification costs\n"
              "more than synonym verification (ancestor walks), which costs\n"
              "more than plain FDs — the CIKM paper reports 2.4x and 1.8x.\n");
  return 0;
}
