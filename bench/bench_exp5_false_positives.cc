// Exp-5 (§8.3, "Eliminating false-positive data quality errors"): for each
// discovered OFD, the percentage of tuples whose consequent values are
// syntactically non-equal yet synonymous. Under FD-based cleaning these
// tuples are flagged as errors; OFDs recognize them as clean. The paper
// reports ~75% non-equal synonym values at lattice level 1, declining as
// antecedents grow.
//
//   bench_exp5_false_positives [--rows N] [--seed S]

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 3000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  Banner("Exp-5", "false positives saved by OFD semantics", "§8.3 Exp-5");

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 4;
  cfg.num_consequents = 3;
  cfg.num_noise_attrs = 1;
  cfg.num_senses = 4;
  cfg.values_per_sense = 8;
  cfg.deterministic_class_fraction = 0.25;
  cfg.classes_per_antecedent = 10;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  OfdVerifier verifier(data.rel, index);
  std::printf("rows=%d, attrs=%d\n\n", data.rel.num_rows(), data.rel.num_attrs());

  FastOfdResult result = FastOfd(data.rel, index).Discover();

  // Aggregate SynonymSavings per lattice level (level = |lhs| + 1).
  struct LevelAgg {
    int64_t ofds = 0;
    int64_t class_tuples = 0;
    int64_t saved_tuples = 0;
  };
  std::map<int, LevelAgg> by_level;
  for (const Ofd& ofd : result.ofds) {
    StrippedPartition p = StrippedPartition::BuildForSet(data.rel, ofd.lhs);
    SynonymSavings savings = verifier.Savings(ofd, p);
    LevelAgg& agg = by_level[ofd.lhs.size() + 1];
    ++agg.ofds;
    agg.class_tuples += savings.class_tuples;
    agg.saved_tuples += savings.saved_tuples;
  }

  Table table({"level", "ofds", "class-tuples", "synonym-tuples", "non-equal%"});
  for (const auto& [level, agg] : by_level) {
    double pct = agg.class_tuples
                     ? 100.0 * static_cast<double>(agg.saved_tuples) /
                           static_cast<double>(agg.class_tuples)
                     : 0.0;
    table.AddRow({Fmt("%d", level), Fmt("%lld", static_cast<long long>(agg.ofds)),
                  Fmt("%lld", static_cast<long long>(agg.class_tuples)),
                  Fmt("%lld", static_cast<long long>(agg.saved_tuples)),
                  Fmt("%.1f", pct)});
  }
  table.Print();
  std::printf("expected shape: a large share of satisfying tuples at the top\n"
              "levels contain non-equal synonym values (the paper reports 75%%\n"
              "at level 1) — all of them FD-cleaning false positives that OFDs\n"
              "avoid; the share declines as antecedents grow.\n");
  return 0;
}
