// Exp-12 (Figure 13): repair accuracy vs the number of OFDs |Σ|.
// More OFDs mean more attribute overlap (shared consequents across
// antecedents) and more interacting repairs; the paper sees both precision
// and recall decline as |Σ| grows.
//
//   bench_exp12_vary_sigma [--rows N] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 1500));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 12));

  Banner("Exp-12", "repair accuracy vs |Σ|", "Figure 13 / §8.5 Exp-12");
  std::printf("rows=%d; Σ plants one OFD per consequent over %d shared "
              "antecedents\n\n", rows, 5);

  Table table({"sigma", "precision", "recall", "seconds", "data-repairs"});
  for (int n_sigma : {10, 20, 30, 40, 50}) {
    // Σ = 2 OFDs per consequent (base + interacting), so n_sigma/2 columns.
    DataGenConfig cfg;
    cfg.num_rows = rows;
    // One OFD per consequent; 5 antecedents shared round-robin, so OFDs
    // increasingly interact through shared antecedent columns.
    cfg.num_antecedents = 5;
    cfg.num_consequents = n_sigma / 2;
    cfg.plant_interacting_ofds = true;
    cfg.num_senses = 4;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = 8;
    cfg.error_rate = 0.03;
    cfg.in_domain_error_fraction = 0.3;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);

    OfdCleanResult result;
    double secs = TimeIt([&] {
      OfdCleanConfig ccfg;
      ccfg.min_candidate_classes = 2;
      OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
      result = cleaner.Run();
    });
    std::vector<std::pair<std::string, std::string>> adds;
    for (const OntologyAddition& add : result.best.ontology_additions) {
      adds.emplace_back(data.ontology.sense_name(add.sense),
                        data.rel.dict().String(add.value));
    }
    RepairScore score = ScoreFullRepair(data, result.best.repaired, adds);
    table.AddRow({Fmt("%zu", data.sigma.size()), Fmt("%.3f", score.precision()),
                  Fmt("%.3f", score.recall()), Fmt("%.3f", secs),
                  Fmt("%lld", static_cast<long long>(result.best.data_changes))});
  }
  table.Print();
  std::printf("expected shape: precision and recall drift down as |Σ| grows\n"
              "(more interacting dependencies), runtime grows with |Σ|.\n");
  return 0;
}
