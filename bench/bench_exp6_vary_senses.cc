// Exp-6 (Figures 7a/7b): sense-selection accuracy and runtime vs the number
// of senses |λ| ∈ {2,4,6,8,10}. The paper: recall stays 100% (every class
// gets a sense); precision declines gently with more senses (more competing
// interpretations) but stays above ~80%; runtime grows ~linearly in |λ|.
//
//   bench_exp6_vary_senses [--rows N] [--err RATE] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "ontology/synonym_index.h"
#include "sense_eval.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 5000));
  double err = flags.GetDouble("err", 0.06);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 6));

  Banner("Exp-6", "sense selection vs number of senses |λ|",
         "Figures 7a/7b / §8.4");
  std::printf("rows=%d, err=%.0f%%\n\n", rows, err * 100);

  Table table({"senses", "precision", "recall", "seconds", "classes"});
  for (int senses : {2, 4, 6, 8, 10}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = senses;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = rows / 20;
    cfg.sense_overlap = 0.5;
    cfg.plant_interacting_ofds = true;
    cfg.error_rate = err;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    SenseAssignmentResult result;
    double secs = TimeIt([&] {
      SenseSelector selector(data.rel, index, data.sigma, SenseAssignConfig{2.0});
      result = selector.Run();
    });
    SenseAccuracy acc = EvaluateSenses(data, index, result);
    table.AddRow({Fmt("%d", senses), Fmt("%.3f", acc.precision()),
                  Fmt("%.3f", acc.recall()), Fmt("%.3f", secs),
                  Fmt("%lld", static_cast<long long>(acc.classes))});
  }
  table.Print();
  std::printf("expected shape: recall pinned at 1.0; precision declining\n"
              "gently with |λ| but staying high; runtime ~linear in |λ|.\n");
  return 0;
}
