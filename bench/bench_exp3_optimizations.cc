// Exp-3 (Figure 6c): benefit of the FastOFD pruning optimizations.
// Runs FastOFD with all optimizations, with each of Opt-2 (augmentation
// pruning via C+ candidate sets), Opt-3 (superkey shortcuts) and Opt-4
// (FD reduction) disabled in turn, and with none. The paper reports Opt-2
// as the largest single win (~31%), Opt-3 ~14%, Opt-4 ~27%.
//
//   bench_exp3_optimizations [--rows N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 10000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Banner("Exp-3", "FastOFD optimization ablation", "Figure 6c / §8.2 Exp-3");

  // A dataset with a key column (the clinical data's NCTID analogue) so
  // Opt-3 has pruning targets, and deterministic classes so Opt-4 has
  // syntactically-equal classes to skip.
  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 5;
  cfg.num_noise_attrs = 1;
  cfg.num_key_attrs = 1;
  cfg.num_senses = 8;
  cfg.values_per_sense = 10;
  cfg.classes_per_antecedent = 16;
  cfg.deterministic_class_fraction = 0.2;
  cfg.num_fd_consequents = 2;  // Planted traditional FDs (Opt-4 targets).
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());
  std::printf("rows=%d, attrs=%d\n\n", data.rel.num_rows(), data.rel.num_attrs());

  struct Variant {
    std::string name;
    FastOfdConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"all optimizations", {}});
  {
    FastOfdConfig c;
    c.opt_augmentation = false;
    variants.push_back({"without Opt-2 (augmentation)", c});
  }
  {
    FastOfdConfig c;
    c.opt_keys = false;
    variants.push_back({"without Opt-3 (keys)", c});
  }
  {
    FastOfdConfig c;
    c.opt_fd_reduction = false;
    variants.push_back({"without Opt-4 (FD reduction)", c});
  }
  {
    FastOfdConfig c;
    c.opt_augmentation = c.opt_keys = c.opt_fd_reduction = false;
    variants.push_back({"no optimizations", c});
  }

  Table table({"variant", "seconds", "candidates", "cells-scanned", "products",
               "ofds", "vs-all"});
  double base = 0.0;
  const int kReps = 3;  // Best-of-3 to de-noise millisecond-scale runs.
  for (const Variant& v : variants) {
    FastOfdResult result;
    double secs = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      secs = std::min(secs, TimeIt([&] {
               result = FastOfd(data.rel, index, v.config).Discover();
             }));
    }
    if (v.name == "all optimizations") base = secs;
    table.AddRow({v.name, Fmt("%.3f", secs),
                  Fmt("%lld", static_cast<long long>(result.candidates_checked)),
                  Fmt("%lld", static_cast<long long>(result.values_scanned)),
                  Fmt("%lld", static_cast<long long>(result.partition_products)),
                  Fmt("%zu", result.ofds.size()),
                  Fmt("%.2fx", secs / base)});
  }
  table.Print();
  std::printf("expected shape: disabling Opt-2 hurts the most (candidate blowup,\n"
              "the paper reports ~31%%); Opt-3 cuts partition products and Opt-4\n"
              "cuts verification cells scanned — wall-clock deltas for those two\n"
              "grow with data scale (paper: ~14%% and up to 59%%), so the work\n"
              "counters are reported alongside time. Output OFD sets are\n"
              "identical across variants.\n");
  return 0;
}
