// Extension ablations for OFDClean's sense assignment (DESIGN.md §5):
//   (a) MAD-deviation value ordering vs raw frequency ordering in
//       Initial_Assignment (the paper argues MAD is robust to outliers);
//   (b) EMD-guided local refinement on vs off.
// Measured on dirty data where bursts of identical erroneous values are
// injected (the failure mode MAD defends against).
//
//   bench_ext_ablation [--rows N] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/sense_assignment.h"
#include "common/flags.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "ontology/synonym_index.h"
#include "sense_eval.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 5000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));

  Banner("Ext-abl", "sense-assignment ablations (MAD ordering, refinement)",
         "§6.1 MAD rationale / §6.2 refinement");

  Table table({"err%", "MAD+refine P", "freq+refine P", "MAD-only P",
               "refinements"});
  for (int err : {5, 10, 15, 20}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 6;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = rows / 25;
    cfg.sense_overlap = 0.5;
    cfg.plant_interacting_ofds = true;
    cfg.error_rate = err / 100.0;
    // Bursty in-domain errors: the repeated wrong value can outnumber any
    // single correct value in a class — raw frequency ordering chases it.
    cfg.in_domain_error_fraction = 1.0;
    cfg.bursty_errors = true;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    auto run = [&](ValueOrdering ordering, bool refine) {
      SenseAssignConfig scfg;
      scfg.theta = 2.0;
      scfg.ordering = ordering;
      scfg.refine = refine;
      SenseSelector selector(data.rel, index, data.sigma, scfg);
      return selector.Run();
    };
    SenseAssignmentResult mad = run(ValueOrdering::kMadDeviation, true);
    SenseAssignmentResult freq = run(ValueOrdering::kFrequency, true);
    SenseAssignmentResult norefine = run(ValueOrdering::kMadDeviation, false);

    table.AddRow(
        {Fmt("%d", err), Fmt("%.3f", EvaluateSenses(data, index, mad).precision()),
         Fmt("%.3f", EvaluateSenses(data, index, freq).precision()),
         Fmt("%.3f", EvaluateSenses(data, index, norefine).precision()),
         Fmt("%lld", static_cast<long long>(mad.refinements))});
  }
  table.Print();
  std::printf("expected shape: MAD ordering is at least as precise as raw\n"
              "frequency ordering (and pulls ahead as bursty errors grow);\n"
              "refinement adds a small precision bonus where classes overlap.\n");
  return 0;
}
