// Exp-10 + Exp-14 (Figures 9c/9d): repair accuracy and runtime vs error
// rate, OFDClean against the HoloClean-style baseline. The paper: both
// degrade as err% grows; OFDClean beats HoloClean by ~7.4% precision and
// ~4.4% recall because senses stop legitimate synonyms from being
// "repaired"; OFDClean pays extra runtime for exploring ontology repairs.
//
//   bench_exp10_clean_err [--rows N] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "clean/holoclean_lite.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 3000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 10));

  Banner("Exp-10/14", "repair accuracy vs err%: OFDClean vs HoloCleanLite",
         "Figures 9c/9d / §8.5");
  std::printf("rows=%d\n\n", rows);

  Table table({"err%", "ofdclean-P", "ofdclean-R", "ofdclean-s", "holoclean-P",
               "holoclean-R", "holoclean-s"});
  for (int err : {3, 6, 9, 12, 15}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 4;
    cfg.values_per_sense = 6;
    cfg.classes_per_antecedent = 10;
    cfg.error_rate = err / 100.0;
    cfg.incompleteness_rate = 0.02;
    cfg.in_domain_error_fraction = 0.3;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);

    OfdCleanResult oc;
    double oc_secs = TimeIt([&] {
      OfdCleanConfig ccfg;
      ccfg.min_candidate_classes = 2;
      OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
      oc = cleaner.Run();
    });
    std::vector<std::pair<std::string, std::string>> oc_adds;
    for (const OntologyAddition& add : oc.best.ontology_additions) {
      oc_adds.emplace_back(data.ontology.sense_name(add.sense),
                           data.rel.dict().String(add.value));
    }
    RepairScore oc_score = ScoreFullRepair(data, oc.best.repaired, oc_adds);

    HoloCleanLiteResult hc;
    double hc_secs = TimeIt([&] {
      hc = HoloCleanLite(data.rel, data.ontology, data.sigma);
    });
    RepairScore hc_score = ScoreFullRepair(data, hc.repaired, {});

    table.AddRow({Fmt("%d", err), Fmt("%.3f", oc_score.precision()),
                  Fmt("%.3f", oc_score.recall()), Fmt("%.3f", oc_secs),
                  Fmt("%.3f", hc_score.precision()),
                  Fmt("%.3f", hc_score.recall()), Fmt("%.3f", hc_secs)});
  }
  table.Print();
  std::printf("expected shape: accuracy declines with err%% for both; OFDClean\n"
              "dominates HoloCleanLite on precision (no synonym false\n"
              "positives) at higher runtime (ontology-repair search).\n");
  return 0;
}
