// Exp-11 (Figure 7 inc): repair accuracy vs ontology incompleteness inc%.
// Values present in the data but missing from the ontology are resolved by
// ontology repairs. The paper: precision declines as inc% grows (some
// values land in the wrong sense); recall stays high (>85%) with a slight
// linear decline.
//
//   bench_exp11_incompleteness [--rows N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "clean/repair.h"
#include "common/flags.h"
#include "datagen/datagen.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 2000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  Banner("Exp-11", "repair accuracy vs ontology incompleteness inc%",
         "Figure 12 / §8.5 Exp-11");
  std::printf("rows=%d\n\n", rows);

  Table table({"inc%", "data-P", "data-R", "ont-adds", "ont-correct",
               "candidates", "seconds"});
  for (int inc : {2, 4, 6, 8, 10}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 4;
    cfg.values_per_sense = 12;
    cfg.classes_per_antecedent = 10;
    cfg.error_rate = 0.03;
    cfg.incompleteness_rate = inc / 100.0;
    cfg.in_domain_error_fraction = 0.3;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);

    OfdCleanConfig ccfg;
    ccfg.min_candidate_classes = 2;
    ccfg.max_repair_size = 16;
    OfdCleanResult result;
    double secs = TimeIt([&] {
      OfdClean cleaner(data.rel, data.ontology, data.sigma, ccfg);
      result = cleaner.Run();
    });
    std::vector<std::pair<std::string, std::string>> adds;
    for (const OntologyAddition& add : result.best.ontology_additions) {
      adds.emplace_back(data.ontology.sense_name(add.sense),
                        data.rel.dict().String(add.value));
    }
    RepairScore score = ScoreFullRepair(data, result.best.repaired, adds);

    // Ontology-repair accuracy: an addition is correct if it re-inserts a
    // removed value into a sense that contained it in the full ontology.
    int64_t ont_correct = 0;
    for (const OntologyAddition& add : result.best.ontology_additions) {
      const std::string& v = data.rel.dict().String(add.value);
      if (std::find(data.removed_values.begin(), data.removed_values.end(), v) ==
          data.removed_values.end()) {
        continue;
      }
      const std::string& sense_name = data.ontology.sense_name(add.sense);
      SenseId full_sense = data.full_ontology.FindSense(sense_name);
      if (full_sense != kInvalidSense &&
          data.full_ontology.SenseContains(full_sense, v)) {
        ++ont_correct;
      }
    }

    table.AddRow({Fmt("%d", inc), Fmt("%.3f", score.precision()),
                  Fmt("%.3f", score.recall()),
                  Fmt("%zu", result.best.ontology_additions.size()),
                  Fmt("%lld", static_cast<long long>(ont_correct)),
                  Fmt("%lld", static_cast<long long>(result.num_candidates)),
                  Fmt("%.3f", secs)});
  }
  table.Print();
  std::printf("expected shape: more incompleteness → more ontology-repair\n"
              "candidates and additions; precision declines as some values are\n"
              "added under the wrong sense; recall declines only slightly.\n");
  return 0;
}
