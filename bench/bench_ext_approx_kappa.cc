// Extension (paper §4 approximate OFDs / earlier work Exp-9): number of
// approximate OFDs discovered vs the minimum support κ, and the share of
// tuples a frequency-based repair could fix at each level. Approximate OFDs
// hold on at least κ·|I| tuples under the best per-class interpretation;
// lowering κ surfaces more (dirtier) dependencies.
//
//   bench_ext_approx_kappa [--rows N] [--err RATE] [--seed S]

#include <cstdio>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 3000));
  double err = flags.GetDouble("err", 0.08);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 21));

  Banner("Ext-κ", "approximate OFDs vs minimum support κ",
         "§4 (approximate discovery); CIKM'17 Exp-9");
  std::printf("rows=%d, err=%.0f%% (dirty data: exact OFDs are broken)\n\n",
              rows, err * 100);

  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 3;
  cfg.num_consequents = 3;
  cfg.num_noise_attrs = 1;
  cfg.num_senses = 4;
  cfg.classes_per_antecedent = 12;
  cfg.error_rate = err;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  SynonymIndex index(data.ontology, data.rel.dict());

  Table table({"kappa", "ofds", "candidates", "seconds"});
  for (double kappa : {1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    FastOfdConfig fcfg;
    fcfg.min_support = kappa;
    FastOfdResult result;
    double secs = TimeIt([&] {
      result = FastOfd(data.rel, index, fcfg).Discover();
    });
    table.AddRow({Fmt("%.2f", kappa), Fmt("%zu", result.ofds.size()),
                  Fmt("%lld", static_cast<long long>(result.candidates_checked)),
                  Fmt("%.3f", secs)});
  }
  table.Print();
  std::printf("expected shape: with err%%>0, exact discovery (κ=1) misses the\n"
              "planted dependencies, which approximate discovery recovers as κ\n"
              "drops; the *count of minimal OFDs* may fluctuate as antecedents\n"
              "shrink (a single small-lhs OFD replaces many wider ones), while\n"
              "candidate checks fall thanks to earlier augmentation pruning.\n");
  return 0;
}
