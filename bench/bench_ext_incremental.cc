// Extension: incremental OFD verification under updates (the paper's
// evolving-data motivation, §5). Compares maintaining the violation state
// through a stream of cell updates against full re-verification after each
// update.
//
//   bench_ext_incremental [--rows N] [--updates U] [--seed S]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "ofd/incremental.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int updates = static_cast<int>(flags.GetInt("updates", 200));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 26));

  Banner("Ext-inc", "incremental vs full re-verification under updates",
         "§5 evolving-data motivation");

  Table table({"N", "full(ms/upd)", "incremental(ms/upd)", "speedup",
               "classes-rechecked"});
  for (int rows : {5000, 10000, 20000, 40000}) {
    DataGenConfig cfg;
    cfg.num_rows = rows;
    cfg.num_antecedents = 2;
    cfg.num_consequents = 2;
    cfg.num_senses = 4;
    cfg.classes_per_antecedent = 16;
    cfg.error_rate = 0.0;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);

    // Update stream: random consequent cells flip to random domain values.
    Rng rng(seed * 31 + static_cast<uint64_t>(rows));
    struct Update {
      RowId row;
      AttrId attr;
      ValueId value;
    };
    Relation rel_inc = data.rel;
    SynonymIndex index(data.ontology, rel_inc.dict());
    std::vector<ValueId> pool;
    for (SenseId s = 0; s < index.num_senses(); ++s) {
      for (ValueId v : index.SenseValues(s)) pool.push_back(v);
    }
    std::vector<Update> stream;
    for (int u = 0; u < updates; ++u) {
      const Ofd& ofd = data.sigma[rng.NextUint(data.sigma.size())];
      stream.push_back(Update{static_cast<RowId>(rng.NextUint(rel_inc.num_rows())),
                              ofd.rhs, pool[rng.NextUint(pool.size())]});
    }

    // Incremental.
    IncrementalVerifier inc(&rel_inc, index, data.sigma);
    int64_t before = inc.classes_rechecked();
    double inc_secs = TimeIt([&] {
      for (const Update& u : stream) inc.UpdateCell(u.row, u.attr, u.value);
    });
    int64_t rechecked = inc.classes_rechecked() - before;

    // Full re-verification after every update.
    Relation rel_full = data.rel;
    OfdVerifier verifier(rel_full, index);
    std::vector<StrippedPartition> partitions;
    for (const Ofd& ofd : data.sigma) {
      partitions.push_back(StrippedPartition::BuildForSet(rel_full, ofd.lhs));
    }
    // Recompute the complete per-class violation state (what the
    // incremental verifier maintains) after every update.
    int64_t sink = 0;
    double full_secs = TimeIt([&] {
      for (const Update& u : stream) {
        rel_full.SetId(u.row, u.attr, u.value);
        for (size_t i = 0; i < data.sigma.size(); ++i) {
          for (const auto& cls : partitions[i].classes()) {
            sink += verifier.HoldsInClass(cls, data.sigma[i].rhs,
                                          data.sigma[i].kind);
          }
        }
      }
    });
    (void)sink;

    table.AddRow({Fmt("%d", rows), Fmt("%.3f", 1e3 * full_secs / updates),
                  Fmt("%.4f", 1e3 * inc_secs / updates),
                  Fmt("%.0fx", full_secs / inc_secs),
                  Fmt("%lld", static_cast<long long>(rechecked))});
  }
  table.Print();
  WriteJsonIfRequested(flags, "ext_incremental", table);
  std::printf("expected shape: full re-verification costs O(N) per update and\n"
              "grows with N; the incremental verifier re-checks one class per\n"
              "affected OFD, so its per-update cost is flat and the speedup\n"
              "grows linearly with N.\n");
  return 0;
}
