// Exp-1 (Figure 6a): discovery runtime vs number of tuples N.
// FastOFD against the seven FD-discovery baselines on a clinical-like
// synthetic dataset. The paper's shape: lattice methods (FastOFD, TANE,
// FUN, FDMine-until-memory, DFD) scale linearly in N; the pairwise methods
// (DepMiner, FastFDs, FDep) blow up quadratically and get cut off.
//
//   bench_exp1_scale_n_tuples [--scale K] [--budget SECONDS] [--seed S]
//
// Default sweep: N = K·{2000,4000,6000,8000,10000} with K=1. An algorithm
// whose previous run exceeded the per-run budget is skipped for larger N
// (printed as '-'), mirroring the paper's terminated runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "discovery/fd_baselines.h"
#include "ontology/synonym_index.h"

using namespace fastofd;
using namespace fastofd::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int64_t scale = flags.GetInt("scale", 1);
  double budget = flags.GetDouble("budget", 5.0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Banner("Exp-1", "discovery runtime vs N (tuples)", "Figure 6a / §8.2");
  std::printf("sweep scale %lldx, per-run budget %.1fs\n\n",
              static_cast<long long>(scale), budget);

  std::vector<std::string> algos = {"fastofd"};
  for (const std::string& name : FdAlgorithmNames()) algos.push_back(name);

  std::vector<std::string> columns = {"N"};
  for (const auto& a : algos) columns.push_back(a + "(s)");
  Table table(columns);

  std::vector<bool> skipped(algos.size(), false);
  for (int64_t base : {2000, 4000, 6000, 8000, 10000}) {
    int64_t n = base * scale;
    DataGenConfig cfg;
    cfg.num_rows = static_cast<int>(n);
    cfg.num_antecedents = 3;
    cfg.num_consequents = 3;
    cfg.num_noise_attrs = 2;
    cfg.num_senses = 4;
    cfg.classes_per_antecedent = 16;
    cfg.error_rate = 0.0;
    cfg.seed = seed;
    GeneratedData data = GenerateData(cfg);
    SynonymIndex index(data.ontology, data.rel.dict());

    std::vector<std::string> row = {Fmt("%lld", static_cast<long long>(n))};
    for (size_t i = 0; i < algos.size(); ++i) {
      if (skipped[i]) {
        row.push_back("-");
        continue;
      }
      double secs;
      if (algos[i] == "fastofd") {
        secs = TimeIt([&] { FastOfd(data.rel, index).Discover(); });
      } else {
        auto algo = MakeFdAlgorithm(algos[i]);
        secs = TimeIt([&] { algo->Discover(data.rel); });
      }
      row.push_back(Fmt("%.3f", secs));
      if (secs > budget) skipped[i] = true;  // Cut off, like the paper.
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  WriteJsonIfRequested(flags, "exp1_scale_n_tuples", table);
  std::printf("expected shape: lattice methods ~linear in N; pairwise methods\n"
              "(depminer/fastfds/fdep) ~quadratic; FastOFD ≈ small constant\n"
              "factor over TANE (the paper reports ~1.8x).\n");
  return 0;
}
