// Service-mode benchmark: what a resident `fastofd serve` process buys over
// per-request batch invocations, and how it behaves at saturation.
//
//   1. warm-vs-cold — a verify against a loaded session (partitions pinned
//      in the session cache) vs paying load+verify+unload per request, the
//      batch-CLI cost model.
//   2. update-latency — online incremental `update` cost as the relation
//      grows, against the full re-verification it replaces (sublinear in N:
//      the incremental path touches only the updated row's classes).
//   3. closed-loop load — a sweep of client counts (12/32/128/256, capped
//      by --clients), each point a fresh server with sharded executors and
//      bounded waiting: client-observed p50/p95/p99 latency plus 503
//      rejections. The `hw` column records the machine's hardware
//      concurrency so the CI gate can arm its rejection/p99 floors only on
//      capable runners (tools/bench_gate.py).
//   4. drain — queued requests at SIGTERM-equivalent shutdown: every
//      accepted request is answered, none lost.
//
//   bench_serve [--rows N] [--requests R] [--clients C] [--updates U]
//               [--seed S] [--queue-depth D] [--json PATH]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "exec/thread_pool.h"
#include "ofd/sigma_io.h"
#include "service/client.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"

using namespace fastofd;
using namespace fastofd::bench;

namespace {

struct Instance {
  std::string data, ontology, sigma;
};

Instance WriteInstance(const std::string& dir, int rows, uint64_t seed) {
  DataGenConfig cfg;
  cfg.num_rows = rows;
  cfg.num_antecedents = 2;
  cfg.num_consequents = 2;
  cfg.num_senses = 4;
  cfg.classes_per_antecedent = 16;
  cfg.error_rate = 0.0;
  cfg.seed = seed;
  GeneratedData data = GenerateData(cfg);
  Instance inst{dir + "/d" + std::to_string(rows) + ".csv",
                dir + "/o" + std::to_string(rows) + ".txt",
                dir + "/s" + std::to_string(rows) + ".txt"};
  if (!WriteCsvFile(inst.data, data.rel.ToCsv()).ok()) std::abort();
  auto write_text = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) std::abort();
    std::fputs(text.c_str(), f);
    std::fclose(f);
  };
  write_text(inst.ontology, WriteOntology(data.ontology));
  write_text(inst.sigma, WriteSigma(data.sigma, data.rel.schema()));
  return inst;
}

Json Req(const std::string& op, const std::string& session = "") {
  Json r = Json::Object();
  r.Set("id", Json::Int(1));
  r.Set("op", Json::Str(op));
  if (!session.empty()) r.Set("session", Json::Str(session));
  return r;
}

Json LoadReq(const std::string& session, const Instance& inst) {
  Json r = Req(ops::kLoad, session);
  r.Set("data", Json::Str(inst.data));
  r.Set("ontology", Json::Str(inst.ontology));
  r.Set("sigma", Json::Str(inst.sigma));
  return r;
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  int rows = static_cast<int>(flags.GetInt("rows", 20000));
  int requests = static_cast<int>(flags.GetInt("requests", 50));
  int clients = static_cast<int>(flags.GetInt("clients", 256));
  int updates = static_cast<int>(flags.GetInt("updates", 300));
  int queue_depth = static_cast<int>(flags.GetInt("queue-depth", 64));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 33));

  Banner("Serve", "resident service vs batch invocations, tail latency, drain",
         "service-mode extension (sessions + incremental verification)");

  const char* t = std::getenv("TMPDIR");
  std::string dir = std::string(t ? t : "/tmp") + "/fastofd_bench_serve";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) return 1;

  // -------------------------------------------------------------- 1. warm
  {
    Instance inst = WriteInstance(dir, rows, seed);
    MetricsRegistry metrics;
    ServerConfig config;
    config.threads = 2;
    ServiceServer server(config, &metrics);

    double cold_s = TimeIt([&] {
      for (int i = 0; i < requests; ++i) {
        server.Execute(LoadReq("cold", inst));
        server.Execute(Req(ops::kVerify, "cold"));
        server.Execute(Req(ops::kUnload, "cold"));
      }
    });
    server.Execute(LoadReq("warm", inst));
    double warm_s = TimeIt([&] {
      for (int i = 0; i < requests; ++i) server.Execute(Req(ops::kVerify, "warm"));
    });

    Table table({"mode", "ms/request", "speedup"});
    double cold_ms = cold_s / requests * 1e3;
    double warm_ms = warm_s / requests * 1e3;
    table.AddRow({"cold (load+verify+unload)", Fmt("%.3f", cold_ms), "1.0"});
    table.AddRow({"warm session", Fmt("%.3f", warm_ms),
                  Fmt("%.1f", cold_ms / warm_ms)});
    std::printf("\n[1] warm-session verify vs per-request state rebuild "
                "(N=%d, %d requests)\n\n", rows, requests);
    table.Print();
    WriteJsonIfRequested(flags, "serve_warm_vs_cold", table);
  }

  // ---------------------------------------------------------- 2. updates
  {
    Table table({"N", "update(ms)", "full_reverify(ms)", "speedup"});
    std::printf("[2] online update latency vs full re-verification\n\n");
    for (int n : {rows / 4, rows / 2, rows, rows * 2}) {
      if (n <= 0) continue;
      Instance inst = WriteInstance(dir, n, seed + static_cast<uint64_t>(n));
      MetricsRegistry metrics;
      ServiceServer server(ServerConfig{}, &metrics);
      Json loaded = server.Execute(LoadReq("u", inst));
      if (!loaded.Get("ok").AsBool()) std::abort();
      int attrs = static_cast<int>(loaded.Get("attrs").AsInt());

      Rng rng(seed ^ static_cast<uint64_t>(n));
      double upd_s = TimeIt([&] {
        for (int i = 0; i < updates; ++i) {
          Json r = Req(ops::kUpdate, "u");
          r.Set("row", Json::Int(static_cast<int64_t>(rng.NextUint(
                           static_cast<uint64_t>(n)))));
          r.Set("attr", Json::Int(static_cast<int64_t>(
                            rng.NextUint(static_cast<uint64_t>(attrs)))));
          r.Set("value", Json::Str("bench-v" + std::to_string(i % 23)));
          if (!server.Execute(r).Get("ok").AsBool()) std::abort();
        }
      });
      double verify_s = TimeIt([&] { server.Execute(Req(ops::kVerify, "u")); });
      double upd_ms = upd_s / updates * 1e3;
      table.AddRow({Fmt("%d", n), Fmt("%.4f", upd_ms),
                    Fmt("%.3f", verify_s * 1e3),
                    Fmt("%.1f", verify_s * 1e3 / upd_ms)});
    }
    table.Print();
    WriteJsonIfRequested(flags, "serve_update_latency", table);
  }

  // --------------------------------------------------- 3. closed-loop load
  {
    Instance inst = WriteInstance(dir, rows / 4, seed + 99);
    const int hw = ThreadPool::DefaultThreads();
    Table table({"clients", "queue_depth", "shards", "hw", "sent", "ok",
                 "rejected_503", "p50_ms", "p95_ms", "p99_ms"});
    std::printf("[3] closed-loop load over TCP (every request answered: "
                "ok + 503 = sent)\n\n");
    for (int point : {12, 32, 128, 256}) {
      if (point > clients) continue;
      // Fresh server per point so the sweep measures steady-state behaviour
      // at that concurrency, not the tail of the previous point's backlog.
      MetricsRegistry metrics;
      ServerConfig config;
      config.threads = hw;
      config.queue_depth = queue_depth;
      config.tcp_port = 0;
      ServiceServer server(config, &metrics);
      if (!server.Start().ok()) return 1;
      {
        auto admin = ServiceClient::ConnectTcp(server.port());
        if (!admin.ok() ||
            !admin.value().Call(LoadReq("hot", inst)).value().Get("ok").AsBool()) {
          return 1;
        }
      }

      std::atomic<int> ok{0}, rejected{0};
      std::vector<double> latencies_ms(
          static_cast<size_t>(point) * static_cast<size_t>(requests), 0.0);
      std::vector<std::thread> threads;
      for (int c = 0; c < point; ++c) {
        threads.emplace_back([&, c] {
          auto client = ServiceClient::ConnectTcp(server.port());
          if (!client.ok()) return;
          for (int i = 0; i < requests; ++i) {
            Timer timer;
            auto resp = client.value().Call(Req(ops::kVerify, "hot"));
            if (!resp.ok()) return;
            latencies_ms[static_cast<size_t>(c) * static_cast<size_t>(requests) +
                         static_cast<size_t>(i)] = timer.Millis();
            if (resp.value().Get("ok").AsBool()) {
              ok.fetch_add(1);
            } else {
              rejected.fetch_add(1);
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      server.NotifyShutdown();
      server.Wait();

      std::vector<double> sorted;
      for (double ms : latencies_ms) {
        if (ms > 0) sorted.push_back(ms);
      }
      std::sort(sorted.begin(), sorted.end());
      table.AddRow({Fmt("%d", point), Fmt("%d", queue_depth),
                    Fmt("%d", server.shard_count()), Fmt("%d", hw),
                    Fmt("%d", point * requests), Fmt("%d", ok.load()),
                    Fmt("%d", rejected.load()),
                    Fmt("%.3f", Quantile(sorted, 0.50)),
                    Fmt("%.3f", Quantile(sorted, 0.95)),
                    Fmt("%.3f", Quantile(sorted, 0.99))});
    }
    table.Print();
    WriteJsonIfRequested(flags, "serve_closed_loop", table);
  }

  // -------------------------------------------------------------- 4. drain
  {
    MetricsRegistry metrics;
    ServerConfig config;
    config.threads = 2;
    config.queue_depth = std::max(queue_depth, 8);
    config.tcp_port = 0;
    ServiceServer server(config, &metrics);
    if (!server.Start().ok()) return 1;
    auto client = ServiceClient::ConnectTcp(server.port());
    if (!client.ok()) return 1;
    Json sleep_req = Req(ops::kSleep);
    sleep_req.Set("ms", Json::Number(100));
    if (!client.value().Send(sleep_req).ok()) return 1;
    int queued = 4;
    for (int i = 0; i < queued; ++i) {
      if (!client.value().Send(Req(ops::kPing)).ok()) return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.NotifyShutdown();
    int answered = 0;
    for (int i = 0; i < 1 + queued; ++i) {
      if (!client.value().ReadResponse().ok()) break;
      ++answered;
    }
    server.Wait();
    Table drain({"queued_at_shutdown", "answered", "lost"});
    drain.AddRow({Fmt("%d", 1 + queued), Fmt("%d", answered),
                  Fmt("%d", 1 + queued - answered)});
    std::printf("[4] graceful drain: responses delivered for every accepted "
                "request\n\n");
    drain.Print();
    WriteJsonIfRequested(flags, "serve_drain", drain);
    if (answered != 1 + queued) {
      std::fprintf(stderr, "DRAIN LOST RESPONSES\n");
      return 1;
    }
  }
  return 0;
}
