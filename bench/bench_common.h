// Shared helpers for the experiment harnesses in bench/.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §4): it runs standalone with scaled-down defaults that finish in
// seconds, prints the paper's row/series structure as an aligned text table
// plus a machine-readable CSV block, and accepts flags (--rows, --scale,
// --seed, ...) to push towards paper scale.

#ifndef FASTOFD_BENCH_BENCH_COMMON_H_
#define FASTOFD_BENCH_BENCH_COMMON_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"

namespace fastofd::bench {

/// Prints the experiment banner.
inline void Banner(const std::string& id, const std::string& what,
                   const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Accumulates an aligned text table + CSV twin.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  /// Adds a row of preformatted cells (must match the column count).
  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Prints the aligned table followed by a CSV block.
  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(width[c], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);

    std::printf("\n# CSV\n");
    auto print_csv = [](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    print_csv(columns_);
    for (const auto& row : rows_) print_csv(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string.
inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Times a callable once, in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  Timer timer;
  fn();
  return timer.Seconds();
}

}  // namespace fastofd::bench

#endif  // FASTOFD_BENCH_BENCH_COMMON_H_
