// Shared helpers for the experiment harnesses in bench/.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §4): it runs standalone with scaled-down defaults that finish in
// seconds, prints the paper's row/series structure as an aligned text table
// plus a machine-readable CSV block, and accepts flags (--rows, --scale,
// --seed, ...) to push towards paper scale.

#ifndef FASTOFD_BENCH_BENCH_COMMON_H_
#define FASTOFD_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parse.h"
#include "common/timer.h"

namespace fastofd::bench {

/// Prints the experiment banner.
inline void Banner(const std::string& id, const std::string& what,
                   const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Accumulates an aligned text table + CSV twin.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  /// Adds a row of preformatted cells (must match the column count).
  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Prints the aligned table followed by a CSV block.
  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(width[c], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);

    std::printf("\n# CSV\n");
    auto print_csv = [](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    print_csv(columns_);
    for (const auto& row : rows_) print_csv(row);
    std::printf("\n");
  }

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// JSON-escapes a table cell; cells that parse completely as numbers are
/// emitted raw so downstream tooling gets real numbers, not strings.
inline std::string JsonCell(const std::string& cell) {
  if (!cell.empty()) {
    Result<double> parsed = ParseDouble(cell);
    if (parsed.ok() && std::isfinite(parsed.value())) return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Serializes a table as {"bench": id, "columns": [...], "rows": [[...]]}.
inline std::string TableJson(const std::string& id, const Table& table) {
  std::string out = "{\"bench\": \"" + id + "\", \"columns\": [";
  for (size_t c = 0; c < table.columns().size(); ++c) {
    out += (c ? ", " : "") + JsonCell(table.columns()[c]);
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < table.rows().size(); ++r) {
    out += r ? ", [" : "[";
    for (size_t c = 0; c < table.rows()[r].size(); ++c) {
      out += (c ? ", " : "") + JsonCell(table.rows()[r][c]);
    }
    out += "]";
  }
  out += "]}";
  return out;
}

/// Honors `--json=<path>`: writes the table (appending when the path was
/// already written to by this process, so multi-table benches emit NDJSON).
inline void WriteJsonIfRequested(const Flags& flags, const std::string& id,
                                 const Table& table) {
  static std::vector<std::string> written;
  std::string path = flags.GetString("json", "");
  if (path.empty()) return;
  bool append = false;
  for (const std::string& p : written) append |= (p == path);
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  if (!append) written.push_back(path);
  std::string json = TableJson(id, table);
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// printf-style std::string.
inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Times a callable once, in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  Timer timer;
  fn();
  return timer.Seconds();
}

}  // namespace fastofd::bench

#endif  // FASTOFD_BENCH_BENCH_COMMON_H_
