// Fuzz harness: Σ text IO (ofd/sigma_io.h).
//
// ParseSigma must reject arbitrary bytes gracefully against a fixed schema,
// and any Σ it accepts must round-trip through WriteSigma.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "ofd/sigma_io.h"
#include "relation/schema.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace fastofd;
  static const Schema& schema =
      *new Schema({"A", "B", "C", "D", "CC", "CTRY", "SYMP", "MED"});
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = ParseSigma(text, schema);
  if (!parsed.ok()) return 0;
  std::string written = WriteSigma(parsed.value(), schema);
  auto reparsed = ParseSigma(written, schema);
  FASTOFD_CHECK(reparsed.ok());
  FASTOFD_CHECK(WriteSigma(reparsed.value(), schema) == written);
  return 0;
}
