// Fuzz harness: in-process service request dispatch (service/server.h).
//
// Each input is one NDJSON request line. It is parsed with the wire codec
// and, when it parses, dispatched through ServiceServer::Execute against a
// resident server holding one small pre-loaded session — the same
// deterministic core the socket path wraps. Every reachable handler must
// return a response envelope rather than crash, whatever the field types.
//
// Ops with external effects are skipped: `load` opens fuzzer-chosen paths,
// `sleep` stalls the harness, and `shutdown` flips the drain flag for all
// subsequent inputs.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/csv.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "ofd/sigma_io.h"
#include "ontology/ontology.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"

namespace {

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  FASTOFD_CHECK(out.good());
}

// One resident server with session "s" (50 rows, with Σ), built on first use.
fastofd::ServiceServer& Server() {
  using namespace fastofd;
  static ServiceServer* server = [] {
    char tmpl[] = "/tmp/fastofd_fuzz_service_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    FASTOFD_CHECK(dir != nullptr);
    DataGenConfig cfg;
    cfg.num_rows = 50;
    cfg.error_rate = 0.05;
    cfg.seed = 11;
    GeneratedData data = GenerateData(cfg);
    std::string base(dir);
    FASTOFD_CHECK(WriteCsvFile(base + "/d.csv", data.rel.ToCsv()).ok());
    WriteText(base + "/o.txt", WriteOntology(data.ontology));
    WriteText(base + "/s.txt", WriteSigma(data.sigma, data.rel.schema()));

    static MetricsRegistry metrics;
    ServerConfig config;
    config.threads = 1;
    auto* s = new ServiceServer(config, &metrics);
    Json load = Json::Object();
    load.Set("id", Json::Int(0));
    load.Set("op", Json::Str(ops::kLoad));
    load.Set("session", Json::Str("s"));
    load.Set("data", Json::Str(base + "/d.csv"));
    load.Set("ontology", Json::Str(base + "/o.txt"));
    load.Set("sigma", Json::Str(base + "/s.txt"));
    Json response = s->Execute(load);
    FASTOFD_CHECK(response.Get("ok").AsBool());
    return s;
  }();
  return *server;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace fastofd;
  std::string_view line(reinterpret_cast<const char*>(data), size);
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) return 0;
  const std::string& op = parsed.value().Get("op").AsString();
  if (op == ops::kLoad || op == ops::kSleep || op == ops::kShutdown) return 0;
  // Skipped so session "s" stays resident: with it gone, every later
  // update/verify input would degrade to the 404 path.
  if (op == ops::kUnload) return 0;
  Json response = Server().Execute(parsed.value());
  FASTOFD_CHECK(response.Has("ok"));
  return 0;
}
