// Fuzz harness: the line-oriented ontology text format (ontology/ontology.h).
//
// ParseOntology must never crash on arbitrary bytes. Accepted ontologies
// must round-trip through WriteOntology, and compiling a SynonymIndex over
// a dictionary of every member value must pass the deep ontology audit —
// the same validator audit builds run inside OfdClean.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/dictionary.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace fastofd;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = ParseOntology(text);
  if (!parsed.ok()) return 0;
  const Ontology& ont = parsed.value();

  std::string written = WriteOntology(ont);
  auto reparsed = ParseOntology(written);
  FASTOFD_CHECK(reparsed.ok());
  FASTOFD_CHECK(WriteOntology(reparsed.value()) == written);

  Dictionary dict;
  for (SenseId s = 0; s < ont.num_senses(); ++s) {
    for (const std::string& value : ont.SenseValues(s)) dict.Intern(value);
  }
  SynonymIndex index(ont, dict);
  Status audit = AuditOntologyIndex(ont, dict, index);
  FASTOFD_CHECK(audit.ok());
  return 0;
}
