// Fuzz harness: CSV ingestion (common/csv.h) through Relation building.
//
// ParseCsv must reject malformed input with a Status, never a crash; any
// table it accepts must serialize and re-parse to the same table, and must
// be loadable as a dictionary-coded Relation whose shape matches.

#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "common/csv.h"
#include "relation/relation.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace fastofd;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  // Headerless mode: crash-freedom only.
  auto headerless = ParseCsv(text, /*has_header=*/false);
  (void)headerless;
  auto parsed = ParseCsv(text, /*has_header=*/true);
  if (!parsed.ok()) return 0;
  const CsvTable& table = parsed.value();
  auto reparsed = ParseCsv(WriteCsv(table), /*has_header=*/true);
  FASTOFD_CHECK(reparsed.ok());
  FASTOFD_CHECK(reparsed.value().header == table.header);
  FASTOFD_CHECK(reparsed.value().rows == table.rows);
  auto rel = Relation::FromCsv(table);
  if (!rel.ok()) return 0;  // E.g. duplicate attribute names.
  FASTOFD_CHECK(static_cast<size_t>(rel.value().num_rows()) ==
                table.rows.size());
  FASTOFD_CHECK(static_cast<size_t>(rel.value().num_attrs()) ==
                table.header.size());
  return 0;
}
