// Corpus-replay driver for the fuzz harnesses.
//
// When FASTOFD_LIBFUZZER is OFF (the default; libFuzzer needs clang), each
// harness links this main() instead and becomes a bounded regression test:
// every argument is a corpus file or a directory of corpus files, each of
// which is replayed through LLVMFuzzerTestOneInput. A crash or check
// failure in the harness fails the test, so past fuzzer findings stay fixed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read corpus file %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  std::sort(inputs.begin(), inputs.end());  // Deterministic replay order.
  int replayed = 0;
  for (const auto& path : inputs) {
    if (ReplayFile(path)) ++replayed;
  }
  std::printf("replayed %d corpus inputs\n", replayed);
  return replayed == static_cast<int>(inputs.size()) ? 0 : 1;
}
