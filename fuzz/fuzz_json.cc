// Fuzz harness: the NDJSON wire codec (service/json.h).
//
// Accepting arbitrary bytes from the socket, Json::Parse must never crash,
// and any document it accepts must round-trip: Dump() output re-parses to a
// byte-identical Dump(). That second property is what keeps request ids
// echoable and `stats` output machine-readable.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"
#include "service/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using fastofd::Json;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return 0;
  std::string dump = parsed.value().Dump();
  auto reparsed = Json::Parse(dump);
  FASTOFD_CHECK(reparsed.ok());
  FASTOFD_CHECK(reparsed.value().Dump() == dump);
  return 0;
}
