#include "relation/partition.h"

#include <algorithm>

#include "common/check.h"

namespace fastofd {

StrippedPartition StrippedPartition::Build(const Relation& rel, AttrId attr) {
  StrippedPartition p;
  p.num_rows_ = rel.num_rows();
  const std::vector<ValueId>& col = rel.Column(attr);
  // Group rows by value id. Value ids are dense, so bucket directly.
  std::vector<std::vector<RowId>> buckets(rel.dict().size());
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    buckets[static_cast<size_t>(col[static_cast<size_t>(r)])].push_back(r);
  }
  for (auto& bucket : buckets) {
    if (bucket.size() >= 2) {
      p.sum_sizes_ += static_cast<int64_t>(bucket.size());
      p.classes_.push_back(std::move(bucket));
    }
  }
  return p;
}

StrippedPartition StrippedPartition::BuildForSet(const Relation& rel, AttrSet attrs) {
  if (attrs.empty()) {
    StrippedPartition p;
    p.num_rows_ = rel.num_rows();
    if (rel.num_rows() >= 2) {
      std::vector<RowId> all(static_cast<size_t>(rel.num_rows()));
      for (RowId r = 0; r < rel.num_rows(); ++r) all[static_cast<size_t>(r)] = r;
      p.sum_sizes_ = rel.num_rows();
      p.classes_.push_back(std::move(all));
    }
    return p;
  }
  std::vector<AttrId> attr_list = attrs.ToVector();
  StrippedPartition p = Build(rel, attr_list[0]);
  for (size_t i = 1; i < attr_list.size(); ++i) {
    p = Product(p, Build(rel, attr_list[i]));
  }
  return p;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b) {
  FASTOFD_CHECK(a.num_rows_ == b.num_rows_);
  StrippedPartition out;
  out.num_rows_ = a.num_rows_;

  // probe[r] = index of r's class in `a`, or -1 if r is a singleton in a.
  std::vector<int32_t> probe(static_cast<size_t>(a.num_rows_), -1);
  for (size_t ci = 0; ci < a.classes_.size(); ++ci) {
    for (RowId r : a.classes_[ci]) probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
  }

  std::vector<std::vector<RowId>> scratch(a.classes_.size());
  std::vector<int32_t> touched;
  for (const auto& cls_b : b.classes_) {
    touched.clear();
    for (RowId r : cls_b) {
      int32_t ci = probe[static_cast<size_t>(r)];
      if (ci < 0) continue;
      if (scratch[static_cast<size_t>(ci)].empty()) touched.push_back(ci);
      scratch[static_cast<size_t>(ci)].push_back(r);
    }
    for (int32_t ci : touched) {
      auto& group = scratch[static_cast<size_t>(ci)];
      if (group.size() >= 2) {
        out.sum_sizes_ += static_cast<int64_t>(group.size());
        out.classes_.push_back(std::move(group));
        group = {};
      } else {
        group.clear();
      }
    }
  }
  return out;
}

const StrippedPartition& PartitionCache::Get(AttrSet attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  StrippedPartition p;
  if (attrs.size() <= 1) {
    p = StrippedPartition::BuildForSet(rel_, attrs);
  } else {
    AttrId first = attrs.First();
    const StrippedPartition& rest = Get(attrs.Without(first));
    // Note: Get() may rehash cache_, so re-fetch nothing after this point.
    StrippedPartition single = StrippedPartition::Build(rel_, first);
    p = StrippedPartition::Product(rest, single);
  }
  return cache_.emplace(attrs, std::move(p)).first->second;
}

}  // namespace fastofd
