#include "relation/partition.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/audit.h"
#include "common/check.h"
#include "common/metrics.h"
#include "exec/thread_pool.h"

namespace fastofd {

namespace {

Status AuditError(const std::string& message) {
  return audit::internal::Counted(Status::Error("partition audit: " + message));
}

}  // namespace

PartitionScratch& StrippedPartition::ThreadLocalScratch() {
  static thread_local PartitionScratch scratch;
  return scratch;
}

Status StrippedPartition::AuditFlatParts(const std::vector<RowId>& rows,
                                         const std::vector<uint32_t>& offsets,
                                         int64_t num_rows) {
  if (offsets.empty()) {
    if (!rows.empty()) {
      return AuditError("arena holds " + std::to_string(rows.size()) +
                        " rows but the offset array is empty");
    }
    return audit::internal::Counted(Status::Ok());
  }
  if (offsets.size() < 2) {
    return AuditError("offset array has a single entry (needs class bounds)");
  }
  if (offsets.front() != 0) {
    return AuditError("first offset is " + std::to_string(offsets.front()) +
                      ", expected 0");
  }
  if (offsets.back() != rows.size()) {
    return AuditError("last offset " + std::to_string(offsets.back()) +
                      " does not cover the arena of " +
                      std::to_string(rows.size()) + " rows");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1] + 2) {
      return AuditError("class " + std::to_string(i - 1) +
                        " spans fewer than 2 rows (offsets " +
                        std::to_string(offsets[i - 1]) + ".." +
                        std::to_string(offsets[i]) + ")");
    }
  }
  if (static_cast<int64_t>(rows.size()) > num_rows) {
    return AuditError("arena of " + std::to_string(rows.size()) +
                      " rows exceeds relation rows " + std::to_string(num_rows));
  }
  return audit::internal::Counted(Status::Ok());
}

Status StrippedPartition::AuditStrippedPartitionParts(
    const Relation& rel, AttrSet attrs,
    const std::vector<std::vector<RowId>>& classes, int64_t sum_sizes,
    int64_t num_rows) {
  if (num_rows != static_cast<int64_t>(rel.num_rows())) {
    return AuditError("num_rows " + std::to_string(num_rows) +
                      " != relation rows " + std::to_string(rel.num_rows()));
  }
  std::vector<char> seen(static_cast<size_t>(num_rows), 0);
  int64_t total = 0;
  for (size_t ci = 0; ci < classes.size(); ++ci) {
    const std::vector<RowId>& cls = classes[ci];
    if (cls.size() < 2) {
      return AuditError("class " + std::to_string(ci) +
                        " is a singleton (stripped partitions drop those)");
    }
    total += static_cast<int64_t>(cls.size());
    for (size_t k = 0; k < cls.size(); ++k) {
      RowId r = cls[k];
      if (r < 0 || static_cast<int64_t>(r) >= num_rows) {
        return AuditError("row id " + std::to_string(r) + " out of range");
      }
      if (k > 0 && cls[k - 1] >= r) {
        return AuditError("class " + std::to_string(ci) +
                          " not strictly ascending at position " +
                          std::to_string(k));
      }
      if (seen[static_cast<size_t>(r)] != 0) {
        return AuditError("row " + std::to_string(r) +
                          " appears in two classes");
      }
      seen[static_cast<size_t>(r)] = 1;
      // Every row of a class must agree with the class head on all of X.
      for (AttrId a : attrs.ToVector()) {
        if (rel.At(r, a) != rel.At(cls[0], a)) {
          return AuditError("class " + std::to_string(ci) +
                            " disagrees on attribute " + std::to_string(a));
        }
      }
    }
  }
  if (total != sum_sizes) {
    return AuditError("sum_sizes " + std::to_string(sum_sizes) +
                      " != actual " + std::to_string(total));
  }
  // Deep cross-check on small inputs: rebuild the partition naively and
  // compare class-by-class. This re-validates the Build/Intersect/Refine
  // fold (the probe-table product law Π*_X · Π*_Y = Π*_{X∪Y}) from first
  // principles.
  if (num_rows <= audit::kDeepAuditMaxRows) {
    std::map<std::vector<ValueId>, std::vector<RowId>> naive;
    for (RowId r = 0; r < static_cast<RowId>(num_rows); ++r) {
      std::vector<ValueId> key;
      for (AttrId a : attrs.ToVector()) key.push_back(rel.At(r, a));
      naive[key].push_back(r);
    }
    std::vector<std::vector<RowId>> expected;
    for (auto& [key, rows] : naive) {
      if (rows.size() >= 2) expected.push_back(std::move(rows));
    }
    std::vector<std::vector<RowId>> actual = classes;
    auto by_head = [](const std::vector<RowId>& a,
                      const std::vector<RowId>& b) { return a[0] < b[0]; };
    std::sort(expected.begin(), expected.end(), by_head);
    std::sort(actual.begin(), actual.end(), by_head);
    if (actual != expected) {
      return AuditError("classes disagree with naive rebuild over attr mask " +
                        std::to_string(attrs.mask()) + " (" +
                        std::to_string(actual.size()) + " vs " +
                        std::to_string(expected.size()) + " classes)");
    }
  }
  return audit::internal::Counted(Status::Ok());
}

Status StrippedPartition::AuditInvariants(const Relation& rel, AttrSet attrs) const {
  Status flat = AuditFlatParts(rows_, offsets_, num_rows_);
  if (!flat.ok()) return flat;
  return AuditStrippedPartitionParts(rel, attrs, ToClassVectors(), sum_sizes(),
                                     num_rows_);
}

std::vector<std::vector<RowId>> StrippedPartition::ToClassVectors() const {
  std::vector<std::vector<RowId>> out(NumClassesSize());
  for (size_t i = 0; i < out.size(); ++i) {
    RowSpan cls = Class(i);
    out[i].assign(cls.begin(), cls.end());
  }
  return out;
}

StrippedPartition StrippedPartition::Build(const Relation& rel, AttrId attr) {
  StrippedPartition p;
  p.num_rows_ = rel.num_rows();
  const std::vector<ValueId>& col = rel.Column(attr);
  const size_t num_values = rel.dict().size();
  // Counting sort over the dense value ids, emitted straight into the arena:
  // count each value, give every value with count >= 2 a contiguous slot
  // range, then scatter the rows (ascending r keeps classes sorted).
  std::vector<int32_t> counts(num_values, 0);
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    ++counts[static_cast<size_t>(col[static_cast<size_t>(r)])];
  }
  std::vector<int32_t> slot(num_values, -1);
  size_t pos = 0;
  size_t kept = 0;
  for (size_t v = 0; v < num_values; ++v) {
    if (counts[v] >= 2) {
      slot[v] = static_cast<int32_t>(pos);
      pos += static_cast<size_t>(counts[v]);
      ++kept;
    }
  }
  if (kept == 0) return p;
  p.rows_.resize(pos);
  p.offsets_.reserve(kept + 1);
  p.offsets_.push_back(0);
  uint32_t cum = 0;
  for (size_t v = 0; v < num_values; ++v) {
    if (counts[v] >= 2) {
      cum += static_cast<uint32_t>(counts[v]);
      p.offsets_.push_back(cum);
    }
  }
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    int32_t& s = slot[static_cast<size_t>(col[static_cast<size_t>(r)])];
    if (s >= 0) p.rows_[static_cast<size_t>(s++)] = r;
  }
  return p;
}

StrippedPartition StrippedPartition::BuildForSet(const Relation& rel, AttrSet attrs) {
  if (attrs.empty()) {
    StrippedPartition p;
    p.num_rows_ = rel.num_rows();
    if (rel.num_rows() >= 2) {
      p.rows_.resize(static_cast<size_t>(rel.num_rows()));
      for (RowId r = 0; r < rel.num_rows(); ++r) {
        p.rows_[static_cast<size_t>(r)] = r;
      }
      p.offsets_ = {0, static_cast<uint32_t>(rel.num_rows())};
    }
    return p;
  }
  std::vector<AttrId> attr_list = attrs.ToVector();
  StrippedPartition p = Build(rel, attr_list[0]);
  StrippedPartition next;
  PartitionScratch& scratch = ThreadLocalScratch();
  for (size_t i = 1; i < attr_list.size() && !p.IsSuperkey(); ++i) {
    RefineInto(p, rel.Column(attr_list[i]), rel.dict().size(), &scratch, &next);
    std::swap(p, next);
  }
  return p;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b) {
  StrippedPartition out;
  IntersectInto(a, b, &ThreadLocalScratch(), &out);
  return out;
}

StrippedPartition StrippedPartition::Refine(const StrippedPartition& a,
                                            const Relation& rel, AttrId attr) {
  StrippedPartition out;
  RefineInto(a, rel.Column(attr), rel.dict().size(), &ThreadLocalScratch(), &out);
  return out;
}

void StrippedPartition::EmitIntersection(const StrippedPartition& outer, size_t first,
                                         size_t last, const std::vector<int32_t>& probe,
                                         PartitionScratch* scratch,
                                         std::vector<RowId>* rows,
                                         std::vector<uint32_t>* offsets) {
  std::vector<int32_t>& counts = scratch->counts_;
  std::vector<int32_t>& slot = scratch->slot_;
  std::vector<int32_t>& touched = scratch->touched_;
  for (size_t oc = first; oc < last; ++oc) {
    const uint32_t begin = outer.offsets_[oc];
    const uint32_t end = outer.offsets_[oc + 1];
    // Pass 1: count this outer class's rows per probe-side class.
    for (uint32_t k = begin; k < end; ++k) {
      int32_t ci = probe[static_cast<size_t>(outer.rows_[k])];
      if (ci < 0) continue;
      if (counts[static_cast<size_t>(ci)]++ == 0) touched.push_back(ci);
    }
    if (touched.empty()) continue;
    // Assign each surviving group (count >= 2) a contiguous slot range at
    // the end of the arena; groups appear in first-touch order, which is
    // deterministic and independent of chunking.
    const size_t old_size = rows->size();
    size_t pos = old_size;
    for (int32_t ci : touched) {
      int32_t c = counts[static_cast<size_t>(ci)];
      if (c < 2) continue;
      slot[static_cast<size_t>(ci)] = static_cast<int32_t>(pos);
      pos += static_cast<size_t>(c);
      if (offsets->empty()) offsets->push_back(0);
      offsets->push_back(static_cast<uint32_t>(pos));
    }
    if (pos != old_size) {
      rows->resize(pos);
      // Pass 2: scatter. Iterating the outer class in order keeps every
      // emitted class strictly ascending.
      for (uint32_t k = begin; k < end; ++k) {
        RowId r = outer.rows_[k];
        int32_t ci = probe[static_cast<size_t>(r)];
        if (ci < 0) continue;
        int32_t& s = slot[static_cast<size_t>(ci)];
        if (s >= 0) (*rows)[static_cast<size_t>(s++)] = r;
      }
    }
    for (int32_t ci : touched) {
      counts[static_cast<size_t>(ci)] = 0;
      slot[static_cast<size_t>(ci)] = -1;
    }
    touched.clear();
  }
}

void StrippedPartition::IntersectInto(const StrippedPartition& a,
                                      const StrippedPartition& b,
                                      PartitionScratch* scratch,
                                      StrippedPartition* out) {
  FASTOFD_CHECK(a.num_rows_ == b.num_rows_);
  FASTOFD_CHECK(out != &a && out != &b);
  out->num_rows_ = a.num_rows_;
  out->rows_.clear();
  out->offsets_.clear();
  if (a.IsSuperkey() || b.IsSuperkey()) return;  // Product with ⊥ is ⊥.
  if (a.IsAllRowsClass()) {  // Product with the identity copies the operand.
    out->rows_ = b.rows_;
    out->offsets_ = b.offsets_;
    return;
  }
  if (b.IsAllRowsClass()) {
    out->rows_ = a.rows_;
    out->offsets_ = a.offsets_;
    return;
  }
  // Probe from the smaller side: the probe table costs one write per
  // probe-side row, so putting the bigger operand on the outer loop keeps
  // total work at min + max instead of 2 * max.
  const bool a_probes = a.sum_sizes() <= b.sum_sizes();
  const StrippedPartition& probe_side = a_probes ? a : b;
  const StrippedPartition& outer = a_probes ? b : a;
  scratch->EnsureRows(static_cast<size_t>(a.num_rows_));
  scratch->EnsureClasses(probe_side.NumClassesSize());
  std::vector<int32_t>& probe = scratch->probe_;
  const size_t num_probe_classes = probe_side.NumClassesSize();
  for (size_t ci = 0; ci < num_probe_classes; ++ci) {
    for (RowId r : probe_side.Class(ci)) {
      probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
    }
  }
  EmitIntersection(outer, 0, outer.NumClassesSize(), probe, scratch, &out->rows_,
                   &out->offsets_);
  // Reset only the touched probe entries so the next call starts clean
  // without an O(num_rows) clear.
  for (RowId r : probe_side.rows()) probe[static_cast<size_t>(r)] = -1;
}

void StrippedPartition::RefineInto(const StrippedPartition& a,
                                   const std::vector<ValueId>& column,
                                   size_t num_values, PartitionScratch* scratch,
                                   StrippedPartition* out) {
  FASTOFD_CHECK(out != &a);
  out->num_rows_ = a.num_rows_;
  out->rows_.clear();
  out->offsets_.clear();
  if (a.IsSuperkey()) return;
  scratch->EnsureValues(num_values);
  std::vector<int32_t>& counts = scratch->val_counts_;
  std::vector<int32_t>& slot = scratch->val_slot_;
  std::vector<ValueId>& touched = scratch->touched_vals_;
  const size_t num_classes = a.NumClassesSize();
  for (size_t ac = 0; ac < num_classes; ++ac) {
    const uint32_t begin = a.offsets_[ac];
    const uint32_t end = a.offsets_[ac + 1];
    // Same two-pass shape as EmitIntersection, but keyed by the column's
    // value id directly — the column's own partition is never built.
    for (uint32_t k = begin; k < end; ++k) {
      ValueId v = column[static_cast<size_t>(a.rows_[k])];
      if (counts[static_cast<size_t>(v)]++ == 0) touched.push_back(v);
    }
    const size_t old_size = out->rows_.size();
    size_t pos = old_size;
    for (ValueId v : touched) {
      int32_t c = counts[static_cast<size_t>(v)];
      if (c < 2) continue;
      slot[static_cast<size_t>(v)] = static_cast<int32_t>(pos);
      pos += static_cast<size_t>(c);
      if (out->offsets_.empty()) out->offsets_.push_back(0);
      out->offsets_.push_back(static_cast<uint32_t>(pos));
    }
    if (pos != old_size) {
      out->rows_.resize(pos);
      for (uint32_t k = begin; k < end; ++k) {
        RowId r = a.rows_[k];
        int32_t& s = slot[static_cast<size_t>(column[static_cast<size_t>(r)])];
        if (s >= 0) out->rows_[static_cast<size_t>(s++)] = r;
      }
    }
    for (ValueId v : touched) {
      counts[static_cast<size_t>(v)] = 0;
      slot[static_cast<size_t>(v)] = -1;
    }
    touched.clear();
  }
}

int64_t StrippedPartition::IntersectError(const StrippedPartition& a,
                                          const StrippedPartition& b,
                                          PartitionScratch* scratch,
                                          int64_t max_error) {
  FASTOFD_CHECK(a.num_rows_ == b.num_rows_);
  if (a.IsSuperkey() || b.IsSuperkey()) return 0;
  if (a.IsAllRowsClass()) return b.error();
  if (b.IsAllRowsClass()) return a.error();
  const bool a_probes = a.sum_sizes() <= b.sum_sizes();
  const StrippedPartition& probe_side = a_probes ? a : b;
  const StrippedPartition& outer = a_probes ? b : a;
  scratch->EnsureRows(static_cast<size_t>(a.num_rows_));
  scratch->EnsureClasses(probe_side.NumClassesSize());
  std::vector<int32_t>& probe = scratch->probe_;
  const size_t num_probe_classes = probe_side.NumClassesSize();
  for (size_t ci = 0; ci < num_probe_classes; ++ci) {
    for (RowId r : probe_side.Class(ci)) {
      probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
    }
  }
  std::vector<int32_t>& counts = scratch->counts_;
  std::vector<int32_t>& touched = scratch->touched_;
  int64_t err = 0;
  const size_t num_outer = outer.NumClassesSize();
  for (size_t oc = 0; oc < num_outer && err <= max_error; ++oc) {
    const uint32_t begin = outer.offsets_[oc];
    const uint32_t end = outer.offsets_[oc + 1];
    for (uint32_t k = begin; k < end; ++k) {
      int32_t ci = probe[static_cast<size_t>(outer.rows_[k])];
      if (ci < 0) continue;
      if (counts[static_cast<size_t>(ci)]++ == 0) touched.push_back(ci);
    }
    for (int32_t ci : touched) {
      int32_t c = counts[static_cast<size_t>(ci)];
      if (c >= 2) err += c - 1;
      counts[static_cast<size_t>(ci)] = 0;
    }
    touched.clear();
  }
  // err is exact when <= max_error; any larger value only signals "over
  // threshold" (the remaining outer classes were skipped).
  for (RowId r : probe_side.rows()) probe[static_cast<size_t>(r)] = -1;
  return err;
}

StrippedPartition StrippedPartition::ProductParallel(const StrippedPartition& a,
                                                     const StrippedPartition& b,
                                                     ThreadPool* pool) {
  FASTOFD_CHECK(a.num_rows_ == b.num_rows_);
  // Below this arena size the probe fill dominates; the serial kernel wins.
  constexpr int64_t kMinParallelRows = 1 << 14;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      a.sum_sizes() + b.sum_sizes() < kMinParallelRows || a.IsSuperkey() ||
      b.IsSuperkey() || a.IsAllRowsClass() || b.IsAllRowsClass()) {
    return Product(a, b);
  }
  const bool a_probes = a.sum_sizes() <= b.sum_sizes();
  const StrippedPartition& probe_side = a_probes ? a : b;
  const StrippedPartition& outer = a_probes ? b : a;
  // The probe table is shared read-only across workers; each worker emits
  // into its own chunk arena with its thread-local counts/slots. Filling it
  // parallelizes too: distinct classes hold distinct rows, so per-class
  // scatter writes never alias. This was the serial prologue that capped
  // each product's scaling before the emission chunks even started.
  std::vector<int32_t> probe(static_cast<size_t>(a.num_rows_), -1);
  const size_t num_probe_classes = probe_side.NumClassesSize();
  const size_t fill_grain = std::max<size_t>(
      1, num_probe_classes / (static_cast<size_t>(pool->num_threads()) * 4));
  pool->ParallelForGrained(num_probe_classes, fill_grain, [&](size_t ci, int) {
    for (RowId r : probe_side.Class(ci)) {
      probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
    }
  });
  // Chunk the outer classes into contiguous ranges balanced by arena rows.
  // Per-class emission is independent, so concatenating chunk outputs in
  // chunk order reproduces the serial class order byte-for-byte no matter
  // how many chunks or threads there are.
  const size_t num_classes = outer.NumClassesSize();
  const size_t num_chunks =
      std::min(num_classes, static_cast<size_t>(pool->num_threads()) * 4);
  std::vector<size_t> bounds(num_chunks + 1, 0);
  const uint64_t total_rows = outer.rows_.size();
  for (size_t i = 1; i < num_chunks; ++i) {
    const uint32_t target = static_cast<uint32_t>(total_rows * i / num_chunks);
    size_t c = static_cast<size_t>(
        std::lower_bound(outer.offsets_.begin(), outer.offsets_.end(), target) -
        outer.offsets_.begin());
    if (c > num_classes) c = num_classes;
    bounds[i] = std::max(bounds[i - 1], c);
  }
  bounds[num_chunks] = num_classes;

  struct Chunk {
    std::vector<RowId> rows;
    std::vector<uint32_t> offsets;
  };
  std::vector<Chunk> chunks(num_chunks);
  // Grain 1: the chunks above are already balanced by arena rows, and each
  // becomes one stealable task — from a lattice-level task this nests, so an
  // oversized product borrows idle workers instead of running serially.
  pool->ParallelForGrained(num_chunks, /*grain=*/1, [&](size_t i, int /*worker*/) {
    PartitionScratch& scratch = ThreadLocalScratch();
    scratch.EnsureClasses(num_probe_classes);
    EmitIntersection(outer, bounds[i], bounds[i + 1], probe, &scratch,
                     &chunks[i].rows, &chunks[i].offsets);
  });

  StrippedPartition out;
  out.num_rows_ = a.num_rows_;
  size_t out_rows = 0;
  size_t out_classes = 0;
  for (const Chunk& c : chunks) {
    out_rows += c.rows.size();
    if (!c.offsets.empty()) out_classes += c.offsets.size() - 1;
  }
  if (out_classes == 0) return out;
  out.rows_.reserve(out_rows);
  out.offsets_.reserve(out_classes + 1);
  out.offsets_.push_back(0);
  for (const Chunk& c : chunks) {
    const uint32_t base = static_cast<uint32_t>(out.rows_.size());
    out.rows_.insert(out.rows_.end(), c.rows.begin(), c.rows.end());
    for (size_t j = 1; j < c.offsets.size(); ++j) {
      out.offsets_.push_back(base + c.offsets[j]);
    }
  }
  return out;
}

PartitionCache::PartitionCache(const Relation& rel, int64_t budget_bytes,
                               MetricsRegistry* metrics)
    : rel_(rel), budget_bytes_(budget_bytes), metrics_(metrics) {
  if (metrics_ != nullptr) {
    // Register the counters at zero so every metrics dump includes them.
    metrics_->Add("partition_cache.hits", 0);
    metrics_->Add("partition_cache.misses", 0);
    metrics_->Add("partition_cache.evictions", 0);
    MutexLock lock(mu_);
    PublishGaugesLocked();
  }
}

int64_t PartitionCache::FootprintBytes(const StrippedPartition& p) {
  return static_cast<int64_t>(sizeof(StrippedPartition)) + p.AllocatedBytes();
}

void PartitionCache::PublishGaugesLocked() {
  if (metrics_ == nullptr) return;
  metrics_->Set("partition_cache.bytes", static_cast<double>(bytes_));
  metrics_->Set("partition_cache.entries", static_cast<double>(cache_.size()));
  if (budget_bytes_ != kUnbounded) {
    metrics_->Set("partition_cache.budget_bytes",
                  static_cast<double>(budget_bytes_));
  }
}

void PartitionCache::EvictToBudgetLocked(AttrSet keep) {
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    AttrSet victim = lru_.back();
    if (victim == keep) break;  // Never evict the entry just inserted.
    auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    lru_.pop_back();
    cache_.erase(it);
    ++evictions_;
    if (metrics_ != nullptr) metrics_->Add("partition_cache.evictions", 1);
  }
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(AttrSet attrs) {
  {
    MutexLock lock(mu_);
    auto it = cache_.find(attrs);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Mark as MRU.
      ++hits_;
      if (metrics_ != nullptr) metrics_->Add("partition_cache.hits", 1);
      return it->second.partition;
    }
    ++misses_;
    if (metrics_ != nullptr) metrics_->Add("partition_cache.misses", 1);
  }

  // Compute outside the lock; prefixes go through the cache recursively.
  StrippedPartition computed;
  if (attrs.size() <= 1) {
    computed = StrippedPartition::BuildForSet(rel_, attrs);
  } else {
    AttrId first = attrs.First();
    std::shared_ptr<const StrippedPartition> rest = Get(attrs.Without(first));
    computed = StrippedPartition::Refine(*rest, rel_, first);
  }
  // Cached entries are long-lived: release the kernels' growth slack so the
  // budget pays for rows actually held, not high-water capacity.
  computed.Compact();
  auto p = std::make_shared<const StrippedPartition>(std::move(computed));
  int64_t cost = FootprintBytes(*p);
  // Every partition handed out by the cache is audit-checked in audit
  // builds — this single hook covers discovery base partitions, verify,
  // clean, and the service's pinned antecedents.
  FASTOFD_AUDIT_OK(p->AuditInvariants(rel_, attrs));

  MutexLock lock(mu_);
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second.partition;  // Raced: keep theirs.
  if (cost > budget_bytes_) return p;  // Oversized: serve uncached.
  lru_.push_front(attrs);
  cache_.emplace(attrs, Entry{p, cost, lru_.begin()});
  bytes_ += cost;
  EvictToBudgetLocked(attrs);
  PublishGaugesLocked();
  FASTOFD_AUDIT_OK(AuditInvariantsLocked());
  return p;
}

void PartitionCache::Clear() {
  MutexLock lock(mu_);
  cache_.clear();
  lru_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

size_t PartitionCache::Invalidate(AttrSet touched) {
  MutexLock lock(mu_);
  size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.Intersects(touched)) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0 && metrics_ != nullptr) {
    metrics_->Add("partition_cache.invalidated",
                  static_cast<int64_t>(dropped));
  }
  PublishGaugesLocked();
  FASTOFD_AUDIT_OK(AuditInvariantsLocked());
  return dropped;
}

size_t PartitionCache::size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

int64_t PartitionCache::bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

int64_t PartitionCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

int64_t PartitionCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

int64_t PartitionCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

Status PartitionCache::AuditInvariantsLocked() const {
  if (lru_.size() != cache_.size()) {
    return AuditError("cache: lru list has " + std::to_string(lru_.size()) +
                      " entries but map has " + std::to_string(cache_.size()));
  }
  int64_t total = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto entry_it = cache_.find(*it);
    if (entry_it == cache_.end()) {
      return AuditError("cache: lru entry missing from map");
    }
    if (entry_it->second.lru_it != it) {
      return AuditError("cache: entry lru iterator does not point back");
    }
    const Entry& entry = entry_it->second;
    if (entry.partition == nullptr) {
      return AuditError("cache: null partition");
    }
    if (entry.partition->num_rows() != static_cast<int64_t>(rel_.num_rows())) {
      return AuditError("cache: partition rows stale vs relation");
    }
    if (entry.bytes != FootprintBytes(*entry.partition)) {
      return AuditError("cache: charged " + std::to_string(entry.bytes) +
                        " bytes but footprint is " +
                        std::to_string(FootprintBytes(*entry.partition)));
    }
    total += entry.bytes;
  }
  if (total != bytes_) {
    return AuditError("cache: byte total " + std::to_string(bytes_) +
                      " != sum over entries " + std::to_string(total));
  }
  // Eviction keeps the footprint under budget except when the sole
  // surviving entry is the one just inserted.
  if (bytes_ > budget_bytes_ && cache_.size() > 1) {
    return AuditError("cache: " + std::to_string(bytes_) +
                      " bytes exceeds budget " + std::to_string(budget_bytes_) +
                      " with " + std::to_string(cache_.size()) + " entries");
  }
  return audit::internal::Counted(Status::Ok());
}

Status PartitionCache::AuditInvariants() const {
  MutexLock lock(mu_);
  return AuditInvariantsLocked();
}

}  // namespace fastofd
