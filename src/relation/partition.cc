#include "relation/partition.h"

#include <algorithm>
#include <map>
#include <string>

#include "common/audit.h"
#include "common/check.h"
#include "common/metrics.h"

namespace fastofd {

namespace {

Status AuditError(const std::string& message) {
  return audit::internal::Counted(Status::Error("partition audit: " + message));
}

}  // namespace

Status StrippedPartition::AuditStrippedPartitionParts(
    const Relation& rel, AttrSet attrs,
    const std::vector<std::vector<RowId>>& classes, int64_t sum_sizes,
    int64_t num_rows) {
  if (num_rows != static_cast<int64_t>(rel.num_rows())) {
    return AuditError("num_rows " + std::to_string(num_rows) +
                      " != relation rows " + std::to_string(rel.num_rows()));
  }
  std::vector<char> seen(static_cast<size_t>(num_rows), 0);
  int64_t total = 0;
  for (size_t ci = 0; ci < classes.size(); ++ci) {
    const std::vector<RowId>& cls = classes[ci];
    if (cls.size() < 2) {
      return AuditError("class " + std::to_string(ci) +
                        " is a singleton (stripped partitions drop those)");
    }
    total += static_cast<int64_t>(cls.size());
    for (size_t k = 0; k < cls.size(); ++k) {
      RowId r = cls[k];
      if (r < 0 || static_cast<int64_t>(r) >= num_rows) {
        return AuditError("row id " + std::to_string(r) + " out of range");
      }
      if (k > 0 && cls[k - 1] >= r) {
        return AuditError("class " + std::to_string(ci) +
                          " not strictly ascending at position " +
                          std::to_string(k));
      }
      if (seen[static_cast<size_t>(r)] != 0) {
        return AuditError("row " + std::to_string(r) +
                          " appears in two classes");
      }
      seen[static_cast<size_t>(r)] = 1;
      // Every row of a class must agree with the class head on all of X.
      for (AttrId a : attrs.ToVector()) {
        if (rel.At(r, a) != rel.At(cls[0], a)) {
          return AuditError("class " + std::to_string(ci) +
                            " disagrees on attribute " + std::to_string(a));
        }
      }
    }
  }
  if (total != sum_sizes) {
    return AuditError("sum_sizes " + std::to_string(sum_sizes) +
                      " != actual " + std::to_string(total));
  }
  // Deep cross-check on small inputs: rebuild the partition naively and
  // compare class-by-class. This re-validates the Build/Product fold (the
  // probe-table product law Π*_X · Π*_Y = Π*_{X∪Y}) from first principles.
  if (num_rows <= audit::kDeepAuditMaxRows) {
    std::map<std::vector<ValueId>, std::vector<RowId>> naive;
    for (RowId r = 0; r < static_cast<RowId>(num_rows); ++r) {
      std::vector<ValueId> key;
      for (AttrId a : attrs.ToVector()) key.push_back(rel.At(r, a));
      naive[key].push_back(r);
    }
    std::vector<std::vector<RowId>> expected;
    for (auto& [key, rows] : naive) {
      if (rows.size() >= 2) expected.push_back(std::move(rows));
    }
    std::vector<std::vector<RowId>> actual = classes;
    auto by_head = [](const std::vector<RowId>& a,
                      const std::vector<RowId>& b) { return a[0] < b[0]; };
    std::sort(expected.begin(), expected.end(), by_head);
    std::sort(actual.begin(), actual.end(), by_head);
    if (actual != expected) {
      return AuditError("classes disagree with naive rebuild over attr mask " +
                        std::to_string(attrs.mask()) + " (" +
                        std::to_string(actual.size()) + " vs " +
                        std::to_string(expected.size()) + " classes)");
    }
  }
  return audit::internal::Counted(Status::Ok());
}

StrippedPartition StrippedPartition::Build(const Relation& rel, AttrId attr) {
  StrippedPartition p;
  p.num_rows_ = rel.num_rows();
  const std::vector<ValueId>& col = rel.Column(attr);
  // Group rows by value id. Value ids are dense, so bucket directly.
  std::vector<std::vector<RowId>> buckets(rel.dict().size());
  for (RowId r = 0; r < rel.num_rows(); ++r) {
    buckets[static_cast<size_t>(col[static_cast<size_t>(r)])].push_back(r);
  }
  for (auto& bucket : buckets) {
    if (bucket.size() >= 2) {
      p.sum_sizes_ += static_cast<int64_t>(bucket.size());
      p.classes_.push_back(std::move(bucket));
    }
  }
  return p;
}

StrippedPartition StrippedPartition::BuildForSet(const Relation& rel, AttrSet attrs) {
  if (attrs.empty()) {
    StrippedPartition p;
    p.num_rows_ = rel.num_rows();
    if (rel.num_rows() >= 2) {
      std::vector<RowId> all(static_cast<size_t>(rel.num_rows()));
      for (RowId r = 0; r < rel.num_rows(); ++r) all[static_cast<size_t>(r)] = r;
      p.sum_sizes_ = rel.num_rows();
      p.classes_.push_back(std::move(all));
    }
    return p;
  }
  std::vector<AttrId> attr_list = attrs.ToVector();
  StrippedPartition p = Build(rel, attr_list[0]);
  for (size_t i = 1; i < attr_list.size(); ++i) {
    p = Product(p, Build(rel, attr_list[i]));
  }
  return p;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b) {
  FASTOFD_CHECK(a.num_rows_ == b.num_rows_);
  StrippedPartition out;
  out.num_rows_ = a.num_rows_;

  // probe[r] = index of r's class in `a`, or -1 if r is a singleton in a.
  std::vector<int32_t> probe(static_cast<size_t>(a.num_rows_), -1);
  for (size_t ci = 0; ci < a.classes_.size(); ++ci) {
    for (RowId r : a.classes_[ci]) probe[static_cast<size_t>(r)] = static_cast<int32_t>(ci);
  }

  std::vector<std::vector<RowId>> scratch(a.classes_.size());
  std::vector<int32_t> touched;
  for (const auto& cls_b : b.classes_) {
    touched.clear();
    for (RowId r : cls_b) {
      int32_t ci = probe[static_cast<size_t>(r)];
      if (ci < 0) continue;
      if (scratch[static_cast<size_t>(ci)].empty()) touched.push_back(ci);
      scratch[static_cast<size_t>(ci)].push_back(r);
    }
    for (int32_t ci : touched) {
      auto& group = scratch[static_cast<size_t>(ci)];
      if (group.size() >= 2) {
        out.sum_sizes_ += static_cast<int64_t>(group.size());
        out.classes_.push_back(std::move(group));
        group = {};
      } else {
        group.clear();
      }
    }
  }
  return out;
}

PartitionCache::PartitionCache(const Relation& rel, int64_t budget_bytes,
                               MetricsRegistry* metrics)
    : rel_(rel), budget_bytes_(budget_bytes), metrics_(metrics) {
  if (metrics_ != nullptr) {
    // Register the counters at zero so every metrics dump includes them.
    metrics_->Add("partition_cache.hits", 0);
    metrics_->Add("partition_cache.misses", 0);
    metrics_->Add("partition_cache.evictions", 0);
    std::lock_guard<std::mutex> lock(mu_);
    PublishGaugesLocked();
  }
}

int64_t PartitionCache::FootprintBytes(const StrippedPartition& p) {
  return static_cast<int64_t>(sizeof(StrippedPartition)) +
         p.num_classes() * static_cast<int64_t>(sizeof(std::vector<RowId>)) +
         p.sum_sizes() * static_cast<int64_t>(sizeof(RowId));
}

void PartitionCache::PublishGaugesLocked() {
  if (metrics_ == nullptr) return;
  metrics_->Set("partition_cache.bytes", static_cast<double>(bytes_));
  metrics_->Set("partition_cache.entries", static_cast<double>(cache_.size()));
  if (budget_bytes_ != kUnbounded) {
    metrics_->Set("partition_cache.budget_bytes",
                  static_cast<double>(budget_bytes_));
  }
}

void PartitionCache::EvictToBudgetLocked(AttrSet keep) {
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    AttrSet victim = lru_.back();
    if (victim == keep) break;  // Never evict the entry just inserted.
    auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    lru_.pop_back();
    cache_.erase(it);
    ++evictions_;
    if (metrics_ != nullptr) metrics_->Add("partition_cache.evictions", 1);
  }
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(AttrSet attrs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(attrs);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Mark as MRU.
      ++hits_;
      if (metrics_ != nullptr) metrics_->Add("partition_cache.hits", 1);
      return it->second.partition;
    }
    ++misses_;
    if (metrics_ != nullptr) metrics_->Add("partition_cache.misses", 1);
  }

  // Compute outside the lock; prefixes go through the cache recursively.
  StrippedPartition computed;
  if (attrs.size() <= 1) {
    computed = StrippedPartition::BuildForSet(rel_, attrs);
  } else {
    AttrId first = attrs.First();
    std::shared_ptr<const StrippedPartition> rest = Get(attrs.Without(first));
    computed = StrippedPartition::Product(*rest,
                                          StrippedPartition::Build(rel_, first));
  }
  auto p = std::make_shared<const StrippedPartition>(std::move(computed));
  int64_t cost = FootprintBytes(*p);
  // Every partition handed out by the cache is audit-checked in audit
  // builds — this single hook covers discovery base partitions, verify,
  // clean, and the service's pinned antecedents.
  FASTOFD_AUDIT_OK(p->AuditInvariants(rel_, attrs));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second.partition;  // Raced: keep theirs.
  if (cost > budget_bytes_) return p;  // Oversized: serve uncached.
  lru_.push_front(attrs);
  cache_.emplace(attrs, Entry{p, cost, lru_.begin()});
  bytes_ += cost;
  EvictToBudgetLocked(attrs);
  PublishGaugesLocked();
  FASTOFD_AUDIT_OK(AuditInvariantsLocked());
  return p;
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

size_t PartitionCache::Invalidate(AttrSet touched) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.Intersects(touched)) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0 && metrics_ != nullptr) {
    metrics_->Add("partition_cache.invalidated",
                  static_cast<int64_t>(dropped));
  }
  PublishGaugesLocked();
  FASTOFD_AUDIT_OK(AuditInvariantsLocked());
  return dropped;
}

size_t PartitionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

int64_t PartitionCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PartitionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PartitionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PartitionCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

Status PartitionCache::AuditInvariantsLocked() const {
  if (lru_.size() != cache_.size()) {
    return AuditError("cache: lru list has " + std::to_string(lru_.size()) +
                      " entries but map has " + std::to_string(cache_.size()));
  }
  int64_t total = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto entry_it = cache_.find(*it);
    if (entry_it == cache_.end()) {
      return AuditError("cache: lru entry missing from map");
    }
    if (entry_it->second.lru_it != it) {
      return AuditError("cache: entry lru iterator does not point back");
    }
    const Entry& entry = entry_it->second;
    if (entry.partition == nullptr) {
      return AuditError("cache: null partition");
    }
    if (entry.partition->num_rows() != static_cast<int64_t>(rel_.num_rows())) {
      return AuditError("cache: partition rows stale vs relation");
    }
    if (entry.bytes != FootprintBytes(*entry.partition)) {
      return AuditError("cache: charged " + std::to_string(entry.bytes) +
                        " bytes but footprint is " +
                        std::to_string(FootprintBytes(*entry.partition)));
    }
    total += entry.bytes;
  }
  if (total != bytes_) {
    return AuditError("cache: byte total " + std::to_string(bytes_) +
                      " != sum over entries " + std::to_string(total));
  }
  // Eviction keeps the footprint under budget except when the sole
  // surviving entry is the one just inserted.
  if (bytes_ > budget_bytes_ && cache_.size() > 1) {
    return AuditError("cache: " + std::to_string(bytes_) +
                      " bytes exceeds budget " + std::to_string(budget_bytes_) +
                      " with " + std::to_string(cache_.size()) + " entries");
  }
  return audit::internal::Counted(Status::Ok());
}

Status PartitionCache::AuditInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return AuditInvariantsLocked();
}

}  // namespace fastofd
