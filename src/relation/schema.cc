#include "relation/schema.h"

#include "common/check.h"

namespace fastofd {

Schema::Schema(std::vector<std::string> names) : names_(std::move(names)) {
  FASTOFD_CHECK(names_.size() <= 64);
  for (size_t i = 0; i < names_.size(); ++i) {
    index_.emplace(names_[i], static_cast<AttrId>(i));
  }
}

const std::string& Schema::name(AttrId attr) const {
  FASTOFD_CHECK(attr >= 0 && attr < num_attrs());
  return names_[static_cast<size_t>(attr)];
}

AttrId Schema::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::Render(AttrSet attrs) const {
  std::string out = "[";
  bool first = true;
  for (AttrId a : attrs.ToVector()) {
    if (!first) out += ",";
    out += name(a);
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace fastofd
