// Columnar, dictionary-coded relation instance.
//
// All cell values are interned into a single per-relation Dictionary so that
// (a) partition algebra runs on dense integers, and (b) the ontology can be
// compiled once into a ValueId -> senses index shared by every column.

#ifndef FASTOFD_RELATION_RELATION_H_
#define FASTOFD_RELATION_RELATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/dictionary.h"
#include "common/status.h"
#include "relation/schema.h"

namespace fastofd {

/// Index of a tuple (row) within a relation.
using RowId = int32_t;

/// An in-memory relation instance: schema + dictionary-coded columns.
class Relation {
 public:
  /// Creates an empty relation over the empty schema (useful as a default
  /// member before real construction).
  Relation() : Relation(Schema()) {}

  /// Creates an empty relation over `schema`.
  explicit Relation(Schema schema);

  /// Builds a relation from a parsed CSV table (header becomes the schema).
  static Result<Relation> FromCsv(const CsvTable& table);

  /// Builds a relation from rows of strings with an explicit schema.
  static Result<Relation> FromRows(Schema schema,
                                   const std::vector<std::vector<std::string>>& rows);

  const Schema& schema() const { return schema_; }
  const Dictionary& dict() const { return dict_; }
  Dictionary& mutable_dict() { return dict_; }

  int num_attrs() const { return schema_.num_attrs(); }
  RowId num_rows() const { return num_rows_; }

  /// Appends a tuple given as strings; must match the schema arity.
  void AppendRow(const std::vector<std::string>& cells);

  /// Appends a tuple of already-interned values.
  void AppendRowIds(const std::vector<ValueId>& cells);

  /// Value id at (row, attr).
  ValueId At(RowId row, AttrId attr) const {
    return columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)];
  }

  /// String value at (row, attr).
  const std::string& StringAt(RowId row, AttrId attr) const {
    return dict_.String(At(row, attr));
  }

  /// Overwrites a single cell with a (possibly new) string value.
  void Set(RowId row, AttrId attr, std::string_view value);

  /// Overwrites a single cell with an interned value id.
  void SetId(RowId row, AttrId attr, ValueId value);

  /// Whole column, dictionary-coded.
  const std::vector<ValueId>& Column(AttrId attr) const {
    return columns_[static_cast<size_t>(attr)];
  }

  /// Number of cells in which this relation differs from `other`.
  /// Schemas and row counts must match. This is the paper's dist(I, I').
  int64_t CellDistance(const Relation& other) const;

  /// Exports to a CSV table (for examples and round-trip tests).
  CsvTable ToCsv() const;

 private:
  Schema schema_;
  Dictionary dict_;
  std::vector<std::vector<ValueId>> columns_;
  RowId num_rows_ = 0;
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_RELATION_H_
