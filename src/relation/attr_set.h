// AttrSet: a set of attribute indices packed into a 64-bit mask.
//
// The set-containment lattice that drives OFD/FD discovery manipulates huge
// numbers of attribute sets; a bitmask gives O(1) subset tests, unions,
// differences, and cheap hashing. Relations are limited to 64 attributes
// (checked at load), far above the paper's 15-attribute datasets.

#ifndef FASTOFD_RELATION_ATTR_SET_H_
#define FASTOFD_RELATION_ATTR_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace fastofd {

/// Index of an attribute (column) within a schema.
using AttrId = int;

/// An immutable-by-convention set of attributes over a ≤64-column schema.
class AttrSet {
 public:
  /// The empty set.
  constexpr AttrSet() : mask_(0) {}

  /// The set containing exactly `attr`.
  static AttrSet Single(AttrId attr) {
    FASTOFD_DCHECK(attr >= 0 && attr < 64);
    return AttrSet(uint64_t{1} << attr);
  }

  /// The full set {0, ..., n_attrs-1}.
  static AttrSet All(int n_attrs) {
    FASTOFD_DCHECK(n_attrs >= 0 && n_attrs <= 64);
    return AttrSet(n_attrs == 64 ? ~uint64_t{0} : (uint64_t{1} << n_attrs) - 1);
  }

  /// Constructs from a raw mask.
  static constexpr AttrSet FromMask(uint64_t mask) { return AttrSet(mask); }

  /// Constructs from a list of attribute ids.
  static AttrSet Of(std::initializer_list<AttrId> attrs) {
    AttrSet s;
    for (AttrId a : attrs) s = s.With(a);
    return s;
  }

  uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  bool Contains(AttrId attr) const { return (mask_ >> attr) & 1; }
  bool ContainsAll(AttrSet other) const { return (mask_ & other.mask_) == other.mask_; }
  bool IsSubsetOf(AttrSet other) const { return other.ContainsAll(*this); }
  bool Intersects(AttrSet other) const { return (mask_ & other.mask_) != 0; }

  AttrSet With(AttrId attr) const { return AttrSet(mask_ | (uint64_t{1} << attr)); }
  AttrSet Without(AttrId attr) const { return AttrSet(mask_ & ~(uint64_t{1} << attr)); }
  AttrSet Union(AttrSet other) const { return AttrSet(mask_ | other.mask_); }
  AttrSet Intersect(AttrSet other) const { return AttrSet(mask_ & other.mask_); }
  AttrSet Minus(AttrSet other) const { return AttrSet(mask_ & ~other.mask_); }

  /// The lowest attribute id in the set; set must be non-empty.
  AttrId First() const {
    FASTOFD_DCHECK(!empty());
    return std::countr_zero(mask_);
  }

  /// All member attribute ids in increasing order.
  std::vector<AttrId> ToVector() const {
    std::vector<AttrId> out;
    out.reserve(static_cast<size_t>(size()));
    for (uint64_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(std::countr_zero(m));
    }
    return out;
  }

  friend bool operator==(AttrSet a, AttrSet b) { return a.mask_ == b.mask_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.mask_ != b.mask_; }
  friend bool operator<(AttrSet a, AttrSet b) { return a.mask_ < b.mask_; }

 private:
  explicit constexpr AttrSet(uint64_t mask) : mask_(mask) {}

  uint64_t mask_;
};

/// Hash functor for unordered containers keyed by AttrSet.
struct AttrSetHash {
  size_t operator()(AttrSet s) const {
    uint64_t x = s.mask();
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_ATTR_SET_H_
