// Stripped-partition algebra (TANE-style).
//
// A partition Π_X groups tuples with equal X-values into equivalence
// classes; the *stripped* partition Π*_X drops singleton classes, which can
// never violate an FD or OFD (paper Lemma 3.8 / Opt-4 context). Products of
// stripped partitions are computed with the linear probe-table algorithm, so
// level-wise lattice search costs O(rows) per candidate.

#ifndef FASTOFD_RELATION_PARTITION_H_
#define FASTOFD_RELATION_PARTITION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

/// A stripped partition: equivalence classes of size >= 2 over some
/// attribute set, plus the statistics discovery algorithms need.
class StrippedPartition {
 public:
  /// Builds the stripped partition for a single attribute.
  static StrippedPartition Build(const Relation& rel, AttrId attr);

  /// Builds the stripped partition for an attribute set by folding products.
  /// For an empty set, returns the single all-rows class (if rows >= 2).
  static StrippedPartition BuildForSet(const Relation& rel, AttrSet attrs);

  /// Product Π*_X · Π*_Y via the TANE probe-table algorithm (linear in the
  /// stripped sizes of the operands).
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b);

  /// The stripped partition of a superkey: no classes at all.
  static StrippedPartition Empty(int64_t num_rows) {
    StrippedPartition p;
    p.num_rows_ = num_rows;
    return p;
  }

  /// Equivalence classes (row ids, ascending within a class); all sizes >= 2.
  const std::vector<std::vector<RowId>>& classes() const { return classes_; }

  /// Number of non-singleton classes, |Π*|.
  int64_t num_classes() const { return static_cast<int64_t>(classes_.size()); }

  /// Sum of class sizes, ||Π*||.
  int64_t sum_sizes() const { return sum_sizes_; }

  /// Total rows in the underlying relation.
  int64_t num_rows() const { return num_rows_; }

  /// TANE error e(X) = ||Π*|| - |Π*|: the minimum number of tuples to remove
  /// to make X a (super)key. 0 iff X is a superkey.
  int64_t error() const { return sum_sizes_ - num_classes(); }

  /// Cardinality of the *full* partition |Π_X| (counting singletons).
  int64_t full_num_classes() const {
    return num_classes() + (num_rows_ - sum_sizes_);
  }

  /// True iff X is a superkey (no class of size >= 2 remains).
  bool IsSuperkey() const { return classes_.empty(); }

 private:
  std::vector<std::vector<RowId>> classes_;
  int64_t sum_sizes_ = 0;
  int64_t num_rows_ = 0;
};

/// True iff the FD X -> A holds, given Π*_X and Π*_{X ∪ A}.
/// (TANE: the FD holds iff both partitions have equal error.)
inline bool FdHolds(const StrippedPartition& x, const StrippedPartition& xa) {
  return x.error() == xa.error();
}

/// Memoizing store of stripped partitions keyed by attribute set.
///
/// Intended for the cleaning / verification paths that revisit a modest
/// number of attribute sets; the discovery algorithms manage their own
/// two-level working set instead. Unbounded; call Clear() between phases.
class PartitionCache {
 public:
  explicit PartitionCache(const Relation& rel) : rel_(rel) {}

  /// Returns the stripped partition for `attrs`, computing (and caching)
  /// it and any missing prefixes on demand.
  const StrippedPartition& Get(AttrSet attrs);

  void Clear() { cache_.clear(); }
  size_t size() const { return cache_.size(); }

 private:
  const Relation& rel_;
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> cache_;
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_PARTITION_H_
