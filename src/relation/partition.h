// Stripped-partition algebra (TANE-style).
//
// A partition Π_X groups tuples with equal X-values into equivalence
// classes; the *stripped* partition Π*_X drops singleton classes, which can
// never violate an FD or OFD (paper Lemma 3.8 / Opt-4 context). Products of
// stripped partitions are computed with the linear probe-table algorithm, so
// level-wise lattice search costs O(rows) per candidate.

#ifndef FASTOFD_RELATION_PARTITION_H_
#define FASTOFD_RELATION_PARTITION_H_

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

/// A stripped partition: equivalence classes of size >= 2 over some
/// attribute set, plus the statistics discovery algorithms need.
class StrippedPartition {
 public:
  /// Builds the stripped partition for a single attribute.
  static StrippedPartition Build(const Relation& rel, AttrId attr);

  /// Builds the stripped partition for an attribute set by folding products.
  /// For an empty set, returns the single all-rows class (if rows >= 2).
  static StrippedPartition BuildForSet(const Relation& rel, AttrSet attrs);

  /// Product Π*_X · Π*_Y via the TANE probe-table algorithm (linear in the
  /// stripped sizes of the operands).
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b);

  /// The stripped partition of a superkey: no classes at all.
  static StrippedPartition Empty(int64_t num_rows) {
    StrippedPartition p;
    p.num_rows_ = num_rows;
    return p;
  }

  /// Equivalence classes (row ids, ascending within a class); all sizes >= 2.
  const std::vector<std::vector<RowId>>& classes() const { return classes_; }

  /// Number of non-singleton classes, |Π*|.
  int64_t num_classes() const { return static_cast<int64_t>(classes_.size()); }

  /// Sum of class sizes, ||Π*||.
  int64_t sum_sizes() const { return sum_sizes_; }

  /// Total rows in the underlying relation.
  int64_t num_rows() const { return num_rows_; }

  /// TANE error e(X) = ||Π*|| - |Π*|: the minimum number of tuples to remove
  /// to make X a (super)key. 0 iff X is a superkey.
  int64_t error() const { return sum_sizes_ - num_classes(); }

  /// Cardinality of the *full* partition |Π_X| (counting singletons).
  int64_t full_num_classes() const {
    return num_classes() + (num_rows_ - sum_sizes_);
  }

  /// True iff X is a superkey (no class of size >= 2 remains).
  bool IsSuperkey() const { return classes_.empty(); }

  /// Deep invariant audit (common/audit.h): classes pairwise disjoint,
  /// internally sorted, of size >= 2, agreeing on every attribute of
  /// `attrs`, with consistent counters; on relations at or below
  /// audit::kDeepAuditMaxRows rows, additionally cross-checked class-by-
  /// class against a naive rebuild — which re-validates the Build/Product
  /// fold this partition came from. Returns the first violation found.
  Status AuditInvariants(const Relation& rel, AttrSet attrs) const {
    return AuditStrippedPartitionParts(rel, attrs, classes_, sum_sizes_,
                                       num_rows_);
  }

  /// The audit body, exposed on raw parts so tests can feed corrupted
  /// structures and assert the violation is detected.
  static Status AuditStrippedPartitionParts(
      const Relation& rel, AttrSet attrs,
      const std::vector<std::vector<RowId>>& classes, int64_t sum_sizes,
      int64_t num_rows);

 private:
  std::vector<std::vector<RowId>> classes_;
  int64_t sum_sizes_ = 0;
  int64_t num_rows_ = 0;
};

/// True iff the FD X -> A holds, given Π*_X and Π*_{X ∪ A}.
/// (TANE: the FD holds iff both partitions have equal error.)
inline bool FdHolds(const StrippedPartition& x, const StrippedPartition& xa) {
  return x.error() == xa.error();
}

class MetricsRegistry;  // common/metrics.h

/// Memory-budgeted, LRU-evicting store of stripped partitions keyed by
/// attribute set, shared across the verify and clean phases (and, via
/// `FastOfdConfig::partitions`, the base partitions of discovery).
///
/// Entries are charged by their stripped-partition footprint — dominated by
/// ||Π*|| row-id slots — and the least-recently-used entries are evicted
/// once the byte budget is exceeded. Get() returns a shared_ptr so a caller
/// can keep using a partition after it has been evicted; re-fetching an
/// evicted set simply recomputes it (a miss). Thread-safe: a mutex guards
/// the map, and computation happens outside the lock.
///
/// Hit/miss/eviction counts and the current byte footprint are recorded in
/// an optional MetricsRegistry under `partition_cache.*`.
class PartitionCache {
 public:
  static constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max();

  explicit PartitionCache(const Relation& rel,
                          int64_t budget_bytes = kUnbounded,
                          MetricsRegistry* metrics = nullptr);

  /// Returns the stripped partition for `attrs`, computing (and caching)
  /// it and any missing prefixes on demand. A partition whose footprint
  /// alone exceeds the budget is returned but not retained.
  std::shared_ptr<const StrippedPartition> Get(AttrSet attrs);

  /// Approximate heap footprint of a stripped partition, in bytes.
  static int64_t FootprintBytes(const StrippedPartition& p);

  void Clear();

  /// Drops every cached entry whose attribute set intersects `touched`;
  /// returns the number dropped. Called after cell updates mutate the
  /// relation so stale partitions are recomputed on next Get while
  /// partitions over untouched attributes stay warm.
  size_t Invalidate(AttrSet touched);

  size_t size() const;
  /// Current total footprint of the cached entries, in bytes.
  int64_t bytes() const;
  int64_t budget_bytes() const { return budget_bytes_; }

  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;

  /// Accounting audit (common/audit.h): the LRU list and map mirror each
  /// other exactly, every entry's charged bytes match a recomputed
  /// footprint, the byte total matches the sum over entries, and the budget
  /// is respected (one oversized sole entry excepted). Returns the first
  /// violation found.
  Status AuditInvariants() const;

 private:
  struct Entry {
    std::shared_ptr<const StrippedPartition> partition;
    int64_t bytes = 0;
    std::list<AttrSet>::iterator lru_it;  // Position in lru_ (front = MRU).
  };

  // Evicts LRU entries (never `keep`) until the budget is respected.
  // Requires mu_ held.
  void EvictToBudgetLocked(AttrSet keep);
  void PublishGaugesLocked();
  Status AuditInvariantsLocked() const;

  const Relation& rel_;
  const int64_t budget_bytes_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mu_;
  std::list<AttrSet> lru_;  // Front = most recently used.
  std::unordered_map<AttrSet, Entry, AttrSetHash> cache_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_PARTITION_H_
