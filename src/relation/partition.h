// Stripped-partition algebra (TANE-style) on a flat arena layout.
//
// A partition Π_X groups tuples with equal X-values into equivalence
// classes; the *stripped* partition Π*_X drops singleton classes, which can
// never violate an FD or OFD (paper Lemma 3.8 / Opt-4 context). Products of
// stripped partitions are computed with the linear probe-table algorithm, so
// level-wise lattice search costs O(rows) per candidate.
//
// Memory layout: one contiguous RowId buffer holding every class's rows
// back to back, plus a class-offset array (class i spans
// rows[offsets[i], offsets[i+1])). No per-class heap allocation, cache-line
// friendly scans, and a PartitionScratch probe table that lets
// IntersectInto/RefineInto run with zero allocations in steady state. See
// docs/architecture.md ("Flat partition kernels") for the full picture.

#ifndef FASTOFD_RELATION_PARTITION_H_
#define FASTOFD_RELATION_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

class ThreadPool;  // exec/thread_pool.h

/// Read-only view of one equivalence class: a contiguous, strictly
/// ascending run of row ids inside a partition's arena. Implicitly
/// convertible from std::vector<RowId> so callers holding materialized row
/// lists (e.g. the incremental verifier's group maps) use the same APIs.
class RowSpan {
 public:
  constexpr RowSpan() = default;
  // explicit so a braced list like {0, 1} cannot silently bind its leading
  // literal 0 as a null data pointer.
  explicit constexpr RowSpan(const RowId* data, size_t size)
      : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): spans stand in for vectors.
  RowSpan(const std::vector<RowId>& rows) : data_(rows.data()), size_(rows.size()) {}

  const RowId* begin() const { return data_; }
  const RowId* end() const { return data_ + size_; }
  const RowId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  RowId operator[](size_t i) const { return data_[i]; }
  RowId front() const { return data_[0]; }
  RowId back() const { return data_[size_ - 1]; }

 private:
  const RowId* data_ = nullptr;
  size_t size_ = 0;
};

/// Iterable view over a flat partition's classes; `for (RowSpan cls : view)`
/// plus size()/operator[] so existing call sites read naturally.
class ClassesView {
 public:
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = RowSpan;
    using difference_type = std::ptrdiff_t;
    using pointer = const RowSpan*;
    using reference = RowSpan;

    Iterator(const RowId* rows, const uint32_t* offsets) : rows_(rows), offsets_(offsets) {}
    RowSpan operator*() const {
      return RowSpan(rows_ + offsets_[0], offsets_[1] - offsets_[0]);
    }
    Iterator& operator++() {
      ++offsets_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++offsets_;
      return tmp;
    }
    bool operator==(const Iterator& o) const { return offsets_ == o.offsets_; }
    bool operator!=(const Iterator& o) const { return offsets_ != o.offsets_; }

   private:
    const RowId* rows_;
    const uint32_t* offsets_;
  };

  ClassesView(const RowId* rows, const uint32_t* offsets, size_t num_classes)
      : rows_(rows), offsets_(offsets), num_classes_(num_classes) {}

  size_t size() const { return num_classes_; }
  bool empty() const { return num_classes_ == 0; }
  RowSpan operator[](size_t i) const {
    return RowSpan(rows_ + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  RowSpan front() const { return (*this)[0]; }
  RowSpan back() const { return (*this)[num_classes_ - 1]; }
  Iterator begin() const { return Iterator(rows_, offsets_); }
  Iterator end() const { return Iterator(rows_, offsets_ + num_classes_); }

 private:
  const RowId* rows_;
  const uint32_t* offsets_;
  size_t num_classes_;
};

/// Reusable probe-table scratch for the partition kernels. One scratch per
/// thread: after warm-up, IntersectInto/RefineInto/IntersectError allocate
/// nothing. StrippedPartition::ThreadLocalScratch() hands out a per-thread
/// instance for call sites without their own.
///
/// Internals (all lazily grown, reset between calls by touched-lists so no
/// O(capacity) clears happen on the hot path):
///   probe      row -> class index in the probe-side partition, -1 if the
///              row is stripped there (singleton).
///   counts     per probe-side class: rows seen in the current outer class.
///   slot       per probe-side class: output write cursor, -1 = dropped.
///   val_*      the same pair keyed by ValueId, for column refinement.
class PartitionScratch {
 public:
  PartitionScratch() = default;
  PartitionScratch(const PartitionScratch&) = delete;
  PartitionScratch& operator=(const PartitionScratch&) = delete;

 private:
  friend class StrippedPartition;

  void EnsureRows(size_t num_rows) {
    if (probe_.size() < num_rows) probe_.resize(num_rows, -1);
  }
  void EnsureClasses(size_t num_classes) {
    if (counts_.size() < num_classes) {
      counts_.resize(num_classes, 0);
      slot_.resize(num_classes, -1);
    }
  }
  void EnsureValues(size_t num_values) {
    if (val_counts_.size() < num_values) {
      val_counts_.resize(num_values, 0);
      val_slot_.resize(num_values, -1);
    }
  }

  std::vector<int32_t> probe_;
  std::vector<int32_t> counts_;
  std::vector<int32_t> slot_;
  std::vector<int32_t> touched_;
  std::vector<int32_t> val_counts_;
  std::vector<int32_t> val_slot_;
  std::vector<ValueId> touched_vals_;
};

/// A stripped partition: equivalence classes of size >= 2 over some
/// attribute set, stored as a flat arena (rows buffer + class offsets),
/// plus the statistics discovery algorithms need.
class StrippedPartition {
 public:
  /// Builds the stripped partition for a single attribute (counting sort
  /// over the dense dictionary codes, emitted straight into the arena).
  static StrippedPartition Build(const Relation& rel, AttrId attr);

  /// Builds the stripped partition for an attribute set by refining the
  /// first attribute's partition with each remaining column.
  /// For an empty set, returns the single all-rows class (if rows >= 2).
  static StrippedPartition BuildForSet(const Relation& rel, AttrSet attrs);

  /// Product Π*_X · Π*_Y via the probe-table algorithm (linear in the
  /// stripped sizes of the operands). Convenience wrapper over
  /// IntersectInto using the thread-local scratch.
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b);

  /// Core intersection kernel: computes a·b into `out` (which may be
  /// reused across calls — its arena capacity is retained). Probes from the
  /// smaller side, short-circuits superkeys and all-rows operands, and
  /// performs zero allocations once `scratch` and `out` are warm.
  static void IntersectInto(const StrippedPartition& a, const StrippedPartition& b,
                            PartitionScratch* scratch, StrippedPartition* out);

  /// Refines `a` in place by a dictionary-coded column: equivalent to
  /// Product(a, Build(rel, attr)) but never materializes the column's own
  /// partition. `num_values` bounds the column's value ids (dict size).
  static void RefineInto(const StrippedPartition& a, const std::vector<ValueId>& column,
                         size_t num_values, PartitionScratch* scratch,
                         StrippedPartition* out);

  /// Convenience wrapper over RefineInto with the thread-local scratch.
  static StrippedPartition Refine(const StrippedPartition& a, const Relation& rel,
                                  AttrId attr);

  /// TANE error e(a·b) = ||Π*_{a·b}|| - |Π*_{a·b}| without materializing the
  /// product, aborting early once the error exceeds `max_error` (the
  /// approximate-verification fast path: callers compare against a
  /// threshold, so any value > max_error is as good as the exact one).
  /// The returned value is exact when <= max_error.
  static int64_t IntersectError(const StrippedPartition& a, const StrippedPartition& b,
                                PartitionScratch* scratch, int64_t max_error);

  /// Product on `pool` for large operands: the outer side's classes are
  /// chunked across workers and the per-chunk arenas concatenated in class
  /// order, so the result is byte-identical to IntersectInto for any thread
  /// count. Falls back to the serial kernel for small inputs or a null /
  /// single-threaded pool.
  static StrippedPartition ProductParallel(const StrippedPartition& a,
                                           const StrippedPartition& b, ThreadPool* pool);

  /// The stripped partition of a superkey: no classes at all.
  static StrippedPartition Empty(int64_t num_rows) {
    StrippedPartition p;
    p.num_rows_ = num_rows;
    return p;
  }

  /// Per-thread PartitionScratch for the wrapper entry points; reusing it
  /// across calls is what makes Product/Refine allocation-free in steady
  /// state on every worker thread.
  static PartitionScratch& ThreadLocalScratch();

  /// Equivalence classes (row ids, ascending within a class); all sizes
  /// >= 2. Returns a lightweight view over the arena.
  ClassesView classes() const {
    return ClassesView(rows_.data(), offsets_.data(), NumClassesSize());
  }

  /// Class `i` as a span over the arena.
  RowSpan Class(size_t i) const { return classes()[i]; }

  /// The arena itself: every row of every class, class by class.
  RowSpan rows() const { return RowSpan(rows_.data(), rows_.size()); }

  /// Number of non-singleton classes, |Π*|.
  int64_t num_classes() const { return static_cast<int64_t>(NumClassesSize()); }

  /// Sum of class sizes, ||Π*||.
  int64_t sum_sizes() const { return static_cast<int64_t>(rows_.size()); }

  /// Total rows in the underlying relation.
  int64_t num_rows() const { return num_rows_; }

  /// TANE error e(X) = ||Π*|| - |Π*|: the minimum number of tuples to remove
  /// to make X a (super)key. 0 iff X is a superkey.
  int64_t error() const { return sum_sizes() - num_classes(); }

  /// Cardinality of the *full* partition |Π_X| (counting singletons).
  int64_t full_num_classes() const {
    return num_classes() + (num_rows_ - sum_sizes());
  }

  /// True iff X is a superkey (no class of size >= 2 remains).
  bool IsSuperkey() const { return rows_.empty(); }

  /// True iff this is the single all-rows class (the empty attribute set's
  /// partition) — the identity of the product.
  bool IsAllRowsClass() const {
    return num_classes() == 1 && sum_sizes() == num_rows_;
  }

  /// Releases excess arena capacity (shrink-to-fit). The cache compacts
  /// entries before charging them so the budget pays for rows actually
  /// held, not the kernels' growth high-water mark.
  void Compact() {
    rows_.shrink_to_fit();
    offsets_.shrink_to_fit();
  }

  /// Heap bytes actually allocated by the arena (vector capacities, not
  /// element counts) — what PartitionCache charges against its budget.
  int64_t AllocatedBytes() const {
    return static_cast<int64_t>(rows_.capacity() * sizeof(RowId)) +
           static_cast<int64_t>(offsets_.capacity() * sizeof(uint32_t));
  }

  /// Deep invariant audit (common/audit.h): the flat layout is well formed
  /// (offsets ascending with gaps >= 2, covering the arena exactly), classes
  /// are pairwise disjoint, internally sorted, agreeing on every attribute
  /// of `attrs`, with consistent counters; on relations at or below
  /// audit::kDeepAuditMaxRows rows, additionally cross-checked class-by-
  /// class against a naive rebuild — which re-validates the Build/Intersect/
  /// Refine fold this partition came from. Returns the first violation.
  Status AuditInvariants(const Relation& rel, AttrSet attrs) const;

  /// The flat-layout audit body, exposed on raw parts so tests can feed
  /// corrupted arenas and assert the violation is detected.
  static Status AuditFlatParts(const std::vector<RowId>& rows,
                               const std::vector<uint32_t>& offsets, int64_t num_rows);

  /// The class-structure audit body on materialized classes, kept for tests
  /// that corrupt individual classes (and reused by AuditInvariants).
  static Status AuditStrippedPartitionParts(
      const Relation& rel, AttrSet attrs,
      const std::vector<std::vector<RowId>>& classes, int64_t sum_sizes,
      int64_t num_rows);

  /// Materializes the classes as vectors (audits and tests only — the hot
  /// path never leaves the arena).
  std::vector<std::vector<RowId>> ToClassVectors() const;

 private:
  size_t NumClassesSize() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  // Shared emission loop: intersects classes [first, last) of `outer`
  // against `probe` (the probe-side class index per row, -1 = stripped),
  // appending kept classes to rows/offsets. `offsets` must carry the
  // leading 0 of its arena segment already.
  static void EmitIntersection(const StrippedPartition& outer, size_t first, size_t last,
                               const std::vector<int32_t>& probe,
                               PartitionScratch* scratch, std::vector<RowId>* rows,
                               std::vector<uint32_t>* offsets);

  // rows_ holds every class back to back; class i spans
  // rows_[offsets_[i], offsets_[i+1]). offsets_ is empty when there are no
  // classes, else has num_classes + 1 entries starting at 0.
  std::vector<RowId> rows_;
  std::vector<uint32_t> offsets_;
  int64_t num_rows_ = 0;
};

/// True iff the FD X -> A holds, given Π*_X and Π*_{X ∪ A}.
/// (TANE: the FD holds iff both partitions have equal error.)
inline bool FdHolds(const StrippedPartition& x, const StrippedPartition& xa) {
  return x.error() == xa.error();
}

class MetricsRegistry;  // common/metrics.h

/// Memory-budgeted, LRU-evicting store of stripped partitions keyed by
/// attribute set, shared across the verify and clean phases (and, via
/// `FastOfdConfig::partitions`, the base partitions of discovery).
///
/// Entries are charged by the arena bytes the partition actually allocated
/// (StrippedPartition::AllocatedBytes), and the least-recently-used entries
/// are evicted once the byte budget is exceeded. Get() returns a shared_ptr
/// so a caller can keep using a partition after it has been evicted;
/// re-fetching an evicted set simply recomputes it (a miss). Thread-safe: an
/// annotated mutex guards the map, and computation happens outside the lock.
///
/// Hit/miss/eviction counts and the current byte footprint are recorded in
/// an optional MetricsRegistry under `partition_cache.*`.
class PartitionCache {
 public:
  static constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max();

  explicit PartitionCache(const Relation& rel,
                          int64_t budget_bytes = kUnbounded,
                          MetricsRegistry* metrics = nullptr);

  /// Returns the stripped partition for `attrs`, computing (and caching)
  /// it and any missing prefixes on demand. A partition whose footprint
  /// alone exceeds the budget is returned but not retained. Recursive for
  /// prefixes, so the lock is never held across a nested Get.
  std::shared_ptr<const StrippedPartition> Get(AttrSet attrs) EXCLUDES(mu_);

  /// Heap footprint of a stripped partition, in bytes: the object header
  /// plus the arena's allocated (capacity) bytes.
  static int64_t FootprintBytes(const StrippedPartition& p);

  void Clear() EXCLUDES(mu_);

  /// Drops every cached entry whose attribute set intersects `touched`;
  /// returns the number dropped. Called after cell updates mutate the
  /// relation so stale partitions are recomputed on next Get while
  /// partitions over untouched attributes stay warm.
  size_t Invalidate(AttrSet touched) EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  /// Current total footprint of the cached entries, in bytes.
  int64_t bytes() const EXCLUDES(mu_);
  int64_t budget_bytes() const { return budget_bytes_; }

  int64_t hits() const EXCLUDES(mu_);
  int64_t misses() const EXCLUDES(mu_);
  int64_t evictions() const EXCLUDES(mu_);

  /// Accounting audit (common/audit.h): the LRU list and map mirror each
  /// other exactly, every entry's charged bytes match a recomputed
  /// footprint, the byte total matches the sum over entries, and the budget
  /// is respected (one oversized sole entry excepted). Returns the first
  /// violation found.
  Status AuditInvariants() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const StrippedPartition> partition;
    int64_t bytes = 0;
    std::list<AttrSet>::iterator lru_it;  // Position in lru_ (front = MRU).
  };

  // Evicts LRU entries (never `keep`) until the budget is respected.
  void EvictToBudgetLocked(AttrSet keep) REQUIRES(mu_);
  void PublishGaugesLocked() REQUIRES(mu_);
  Status AuditInvariantsLocked() const REQUIRES(mu_);

  const Relation& rel_;
  const int64_t budget_bytes_;
  MetricsRegistry* const metrics_;

  // mu_ is held only around map/LRU bookkeeping; partition computation and
  // nested Get calls run unlocked. The MetricsRegistry's internal lock is
  // the one lock legitimately taken under mu_ (PublishGaugesLocked).
  mutable Mutex mu_;
  std::list<AttrSet> lru_ GUARDED_BY(mu_);  // Front = most recently used.
  std::unordered_map<AttrSet, Entry, AttrSetHash> cache_ GUARDED_BY(mu_);
  int64_t bytes_ GUARDED_BY(mu_) = 0;
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
  int64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_PARTITION_H_
