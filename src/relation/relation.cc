#include "relation/relation.h"

#include "common/check.h"

namespace fastofd {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_attrs()));
}

Result<Relation> Relation::FromCsv(const CsvTable& table) {
  if (table.header.empty()) return Status::Error("CSV table has no header");
  return FromRows(Schema(table.header), table.rows);
}

Result<Relation> Relation::FromRows(Schema schema,
                                    const std::vector<std::vector<std::string>>& rows) {
  if (schema.num_attrs() == 0) return Status::Error("schema has no attributes");
  if (schema.num_attrs() > 64) return Status::Error("more than 64 attributes");
  Relation rel(std::move(schema));
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != rel.num_attrs()) {
      return Status::Error("row arity mismatch");
    }
    rel.AppendRow(row);
  }
  return rel;
}

void Relation::AppendRow(const std::vector<std::string>& cells) {
  FASTOFD_CHECK(static_cast<int>(cells.size()) == num_attrs());
  for (int a = 0; a < num_attrs(); ++a) {
    columns_[static_cast<size_t>(a)].push_back(dict_.Intern(cells[static_cast<size_t>(a)]));
  }
  ++num_rows_;
}

void Relation::AppendRowIds(const std::vector<ValueId>& cells) {
  FASTOFD_CHECK(static_cast<int>(cells.size()) == num_attrs());
  for (int a = 0; a < num_attrs(); ++a) {
    ValueId v = cells[static_cast<size_t>(a)];
    FASTOFD_DCHECK(v >= 0 && static_cast<size_t>(v) < dict_.size());
    columns_[static_cast<size_t>(a)].push_back(v);
  }
  ++num_rows_;
}

void Relation::Set(RowId row, AttrId attr, std::string_view value) {
  SetId(row, attr, dict_.Intern(value));
}

void Relation::SetId(RowId row, AttrId attr, ValueId value) {
  FASTOFD_CHECK(row >= 0 && row < num_rows_);
  FASTOFD_CHECK(attr >= 0 && attr < num_attrs());
  columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)] = value;
}

int64_t Relation::CellDistance(const Relation& other) const {
  FASTOFD_CHECK(num_rows_ == other.num_rows_);
  FASTOFD_CHECK(num_attrs() == other.num_attrs());
  int64_t diff = 0;
  for (int a = 0; a < num_attrs(); ++a) {
    for (RowId r = 0; r < num_rows_; ++r) {
      // Compare by string: the two relations may have distinct dictionaries.
      if (StringAt(r, a) != other.StringAt(r, a)) ++diff;
    }
  }
  return diff;
}

CsvTable Relation::ToCsv() const {
  CsvTable table;
  table.header = schema_.names();
  table.rows.reserve(static_cast<size_t>(num_rows_));
  for (RowId r = 0; r < num_rows_; ++r) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(num_attrs()));
    for (int a = 0; a < num_attrs(); ++a) row.push_back(StringAt(r, a));
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace fastofd
