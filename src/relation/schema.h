// Relation schema: ordered, named attributes.

#ifndef FASTOFD_RELATION_SCHEMA_H_
#define FASTOFD_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relation/attr_set.h"

namespace fastofd {

/// Named attributes of a relation, at most 64 (AttrSet limit).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names);

  int num_attrs() const { return static_cast<int>(names_.size()); }
  const std::string& name(AttrId attr) const;
  const std::vector<std::string>& names() const { return names_; }

  /// Attribute id for a name, or -1 if absent.
  AttrId Find(std::string_view name) const;

  /// Human-readable rendering of an attribute set, e.g. "[SYMP,DIAG]".
  std::string Render(AttrSet attrs) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace fastofd

#endif  // FASTOFD_RELATION_SCHEMA_H_
