// Deep invariant auditing.
//
// Sanitizers catch memory errors; they cannot catch a partition whose
// classes silently stopped covering the relation, an ontology index that
// drifted from its source tree, or an incremental verifier whose group maps
// disagree with a full re-verification — all of which produce *wrong OFDs*
// rather than crashes. Audit mode makes those invariants machine-checked at
// the hot entry points of discovery, cleaning, and the service.
//
// Each module implements validators returning Status (so tests can assert
// that corrupted state is *detected*, not just that valid state passes):
//
//   StrippedPartition::AuditInvariants   relation/partition.{h,cc}
//   PartitionCache::AuditInvariants      relation/partition.{h,cc}
//   AuditOntologyIndex                   ontology/synonym_index.{h,cc}
//   AuditSynonymIndexOverlay             ontology/synonym_index.{h,cc}
//   BeamScorer::AuditNodeScore           clean/beam_scorer.{h,cc}
//   IncrementalVerifier::AuditState      ofd/incremental.{h,cc}
//   Session::Audit / SessionRegistry::AuditInvariants  service/session.{h,cc}
//
// The validators are always compiled. The *hooks* that run them on hot
// paths are compiled in only when the FASTOFD_AUDIT CMake option defines
// FASTOFD_AUDIT: a violation then aborts with the failing invariant, source
// location, and status message. Expect audit builds to be several times
// slower — deep cross-checks re-derive state from scratch (bounded by
// kDeepAuditMaxRows so services stay usable on real data).

#ifndef FASTOFD_COMMON_AUDIT_H_
#define FASTOFD_COMMON_AUDIT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

#ifdef FASTOFD_AUDIT
#define FASTOFD_AUDIT_ENABLED 1
#else
#define FASTOFD_AUDIT_ENABLED 0
#endif

namespace fastofd::audit {

/// True in builds configured with -DFASTOFD_AUDIT=ON.
inline constexpr bool kEnabled = FASTOFD_AUDIT_ENABLED != 0;

/// Validators re-derive state from scratch (naive partition rebuild, full Σ
/// re-verification) only at or below this row count; above it they fall
/// back to the structural checks, which stay near-linear.
inline constexpr int64_t kDeepAuditMaxRows = 4096;

/// Total audit checks executed since process start (any build mode — direct
/// validator calls from tests count too). Tests use this to assert that
/// hooks actually fired on a code path.
int64_t ChecksRun();

/// Checks that returned a violation Status to their caller.
int64_t ChecksFailed();

namespace internal {

/// Records one executed check; returns `status` unchanged. Every public
/// validator funnels its result through here.
Status Counted(Status status);

[[noreturn]] void FailAbort(const char* expr, const char* file, int line,
                            const std::string& message);

}  // namespace internal
}  // namespace fastofd::audit

// Runs a Status-returning validator expression at a hot entry point. In
// audit builds a violation aborts with the expression, location, and status
// message; in normal builds the expression is not evaluated at all.
#if FASTOFD_AUDIT_ENABLED
#define FASTOFD_AUDIT_OK(expr)                                             \
  do {                                                                     \
    ::fastofd::Status fastofd_audit_status = (expr);                       \
    if (!fastofd_audit_status.ok()) {                                      \
      ::fastofd::audit::internal::FailAbort(                               \
          #expr, __FILE__, __LINE__, fastofd_audit_status.message());      \
    }                                                                      \
  } while (false)
#else
#define FASTOFD_AUDIT_OK(expr) \
  do {                         \
  } while (false)
#endif

#endif  // FASTOFD_COMMON_AUDIT_H_
