// Lightweight invariant-checking macros.
//
// The library is exception-free (Google style): recoverable failures flow
// through Status/Result (see status.h), while violated internal invariants
// abort with a source location. CHECK is always on; DCHECK compiles away in
// NDEBUG builds.

#ifndef FASTOFD_COMMON_CHECK_H_
#define FASTOFD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fastofd::internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace fastofd::internal

#define FASTOFD_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::fastofd::internal::CheckFail(#expr, __FILE__, __LINE__);     \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define FASTOFD_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define FASTOFD_DCHECK(expr) FASTOFD_CHECK(expr)
#endif

#endif  // FASTOFD_COMMON_CHECK_H_
