// Deterministic pseudo-random number generation for generators and tests.
//
// A thin wrapper around xoshiro256** with the distribution helpers the data
// generators need (uniform ints/reals, Bernoulli, Zipf, shuffling, sampling).
// All experiments in bench/ seed explicitly so runs are reproducible.

#ifndef FASTOFD_COMMON_RNG_H_
#define FASTOFD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fastofd {

/// Deterministic, seedable random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream everywhere.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextUint(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (s = 0 is uniform).
  /// Uses an inverted-CDF table cached for the (n, s) pair of the last call.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];

  // Cached Zipf CDF for the most recent (n, s) pair.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_RNG_H_
