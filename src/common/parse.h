// Checked numeric parsing.
//
// The project bans raw std::sto* / strto* / ato* outside this header
// (tools/lint.py rule `raw-numeric-parse`): those either throw (std::sto*),
// silently saturate on overflow (strto* with errno unchecked), or accept
// trailing garbage. These helpers parse the *complete* input, report
// overflow as an error, and return Status instead of throwing, so hostile
// wire input can never terminate a daemon.

#ifndef FASTOFD_COMMON_PARSE_H_
#define FASTOFD_COMMON_PARSE_H_

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

#include "common/status.h"

namespace fastofd {

/// Parses the complete string as a decimal int64. Partial parses, leading
/// whitespace or '+', and out-of-range magnitudes are all errors.
inline Result<int64_t> ParseInt64(std::string_view s) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::Error("integer out of range: '" + std::string(s) + "'");
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::Error("not an integer: '" + std::string(s) + "'");
  }
  return v;
}

/// Parses the complete string as a double (fixed or scientific notation,
/// "inf"/"nan" included). Values whose magnitude overflows or underflows a
/// double are errors rather than silently saturating to ±inf / 0.
inline Result<double> ParseDouble(std::string_view s) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec == std::errc::result_out_of_range) {
    return Status::Error("number out of range: '" + std::string(s) + "'");
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::Error("not a number: '" + std::string(s) + "'");
  }
  return v;
}

/// Parses the complete string as a 0-based index into a container of size
/// `limit`: an integer in [0, limit). Used to turn untrusted wire input
/// into RowId/AttrId without unchecked narrowing.
inline Result<int64_t> ParseIndex(std::string_view s, int64_t limit) {
  Result<int64_t> v = ParseInt64(s);
  if (!v.ok()) return v;
  if (v.value() < 0 || v.value() >= limit) {
    return Status::Error("index out of range [0, " + std::to_string(limit) +
                         "): '" + std::string(s) + "'");
  }
  return v;
}

/// True iff the complete string parses as a number (int or float). Replaces
/// the strtod idiom for "is this cell numeric?" checks.
inline bool ParsesAsNumber(std::string_view s) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return (ec == std::errc() || ec == std::errc::result_out_of_range) &&
         ptr == s.data() + s.size();
}

}  // namespace fastofd

#endif  // FASTOFD_COMMON_PARSE_H_
