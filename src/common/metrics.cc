#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace fastofd {

namespace {

std::string Fmt(const char* fmt, ...) {
  char buf[320];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Minimal JSON string escaping (metric names are plain identifiers, but be
// safe about quotes/backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int HistogramStat::BucketFor(double value) {
  if (!(value > kMin)) return 0;
  int b = static_cast<int>(std::log(value / kMin) / std::log(kGrowth));
  return std::min(std::max(b, 0), kNumBuckets - 1);
}

void HistogramStat::Observe(double value) {
  if (value < 0) value = 0;
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
  sum += value;
  ++buckets[static_cast<size_t>(BucketFor(value))];
}

double HistogramStat::Quantile(double q) const {
  if (count == 0) return 0.0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count - 1));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (seen > rank) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      double lo = kMin * std::pow(kGrowth, b);
      double mid = lo * std::sqrt(kGrowth);
      return std::min(std::max(mid, min), max);
    }
  }
  return max;
}

HistogramStat HistogramStat::Diff(const HistogramStat& earlier) const {
  HistogramStat d = *this;
  d.count -= earlier.count;
  d.sum -= earlier.sum;
  for (int b = 0; b < kNumBuckets; ++b) {
    d.buckets[static_cast<size_t>(b)] -= earlier.buckets[static_cast<size_t>(b)];
  }
  return d;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    d.counters[name] = v - (it == earlier.counters.end() ? 0 : it->second);
  }
  d.gauges = gauges;
  for (const auto& [name, t] : timers) {
    TimerStat base;
    auto it = earlier.timers.find(name);
    if (it != earlier.timers.end()) base = it->second;
    d.timers[name] = TimerStat{t.seconds - base.seconds, t.count - base.count};
  }
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    d.histograms[name] =
        it == earlier.histograms.end() ? h : h.Diff(it->second);
  }
  return d;
}

HistogramStat MetricsSnapshot::Histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? HistogramStat{} : it->second;
}

int64_t MetricsSnapshot::Counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::TimerSeconds(const std::string& name) const {
  auto it = timers.find(name);
  return it == timers.end() ? 0.0 : it->second.seconds;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  size_t width = 0;
  for (const auto& [name, _] : counters) width = std::max(width, name.size());
  for (const auto& [name, _] : gauges) width = std::max(width, name.size());
  for (const auto& [name, _] : timers) width = std::max(width, name.size());
  for (const auto& [name, _] : histograms) width = std::max(width, name.size());
  int w = static_cast<int>(width);
  for (const auto& [name, v] : counters) {
    out += Fmt("counter  %-*s  %" PRId64 "\n", w, name.c_str(), v);
  }
  for (const auto& [name, v] : gauges) {
    out += Fmt("gauge    %-*s  %.6g\n", w, name.c_str(), v);
  }
  for (const auto& [name, t] : timers) {
    out += Fmt("timer    %-*s  %.6fs  (%" PRId64 " intervals)\n", w,
               name.c_str(), t.seconds, t.count);
  }
  for (const auto& [name, h] : histograms) {
    out += Fmt("hist     %-*s  count=%" PRId64
               "  p50=%.6g  p95=%.6g  p99=%.6g  max=%.6g\n",
               w, name.c_str(), h.count, h.Quantile(0.50), h.Quantile(0.95),
               h.Quantile(0.99), h.max);
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += Fmt("%s\"%s\":%" PRId64, first ? "" : ",", JsonEscape(name).c_str(), v);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += Fmt("%s\"%s\":%.17g", first ? "" : ",", JsonEscape(name).c_str(), v);
    first = false;
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers) {
    out += Fmt("%s\"%s\":{\"seconds\":%.9f,\"count\":%" PRId64 "}",
               first ? "" : ",", JsonEscape(name).c_str(), t.seconds, t.count);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += Fmt("%s\"%s\":{\"count\":%" PRId64
               ",\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g,"
               "\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g}",
               first ? "" : ",", JsonEscape(name).c_str(), h.count, h.sum,
               h.min, h.max, h.Quantile(0.50), h.Quantile(0.95),
               h.Quantile(0.99));
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  MutexLock lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::AddTime(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  TimerStat& t = timers_[name];
  t.seconds += seconds;
  ++t.count;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  MutexLock lock(mu_);
  histograms_[name].Observe(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  return MetricsSnapshot{counters_, gauges_, timers_, histograms_};
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

}  // namespace fastofd
