#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace fastofd {

namespace {

// Appends one parsed record starting at `pos`; advances `pos` past the record
// terminator. Returns false (with error set) on malformed quoting.
bool ParseRecord(std::string_view text, size_t* pos, std::vector<std::string>* out,
                 std::string* error) {
  out->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else {
      if (c == '"') {
        if (!field.empty()) {
          *error = "quote inside unquoted field";
          return false;
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        out->push_back(std::move(field));
        field.clear();
        ++i;
      } else if (c == '\r') {
        ++i;  // Tolerate CRLF.
      } else if (c == '\n') {
        ++i;
        break;
      } else {
        field.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  out->push_back(std::move(field));
  *pos = i;
  return true;
}

bool NeedsQuoting(std::string_view s) {
  return s.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view s) {
  if (!NeedsQuoting(s)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text, bool has_header) {
  CsvTable table;
  size_t pos = 0;
  std::vector<std::string> record;
  std::string error;
  size_t arity = 0;
  bool first = true;
  while (pos < text.size()) {
    // Skip blank lines.
    if (text[pos] == '\n') {
      ++pos;
      continue;
    }
    if (!ParseRecord(text, &pos, &record, &error)) {
      return Status::Error("CSV parse error: " + error);
    }
    if (first) {
      arity = record.size();
      first = false;
      if (has_header) {
        table.header = std::move(record);
        continue;
      }
    }
    if (record.size() != arity) {
      return Status::Error("CSV arity mismatch: expected " + std::to_string(arity) +
                           " fields, got " + std::to_string(record.size()));
    }
    table.rows.push_back(std::move(record));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header);
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Error("cannot open file for writing: " + path);
  out << WriteCsv(table);
  if (!out) return Status::Error("write failed: " + path);
  return Status::Ok();
}

}  // namespace fastofd
