// Annotated synchronization primitives: the only place in the repo allowed
// to touch <mutex> / <condition_variable> directly (enforced by the
// `raw-sync` rule in tools/lint.py).
//
// Every wrapper carries Clang Thread Safety Analysis attributes (Hutchins,
// Ballman, Sutherland — "C/C++ Thread Safety Analysis", the capability
// model behind abseil's annotated Mutex), so the *locking discipline* of a
// class is part of its declaration instead of a comment:
//
//   Mutex mu_;
//   std::deque<Task> tasks_ GUARDED_BY(mu_);   // access needs mu_ held
//   void DrainLocked() REQUIRES(mu_);          // caller must hold mu_
//   void Drain() EXCLUDES(mu_);                // caller must NOT hold mu_
//
// Clang builds (-Wthread-safety -Wthread-safety-beta, wired -Werror in
// CMakeLists for Clang and gated by the thread-safety CI job) then reject
// at compile time what TSan only catches when a schedule happens to
// exercise it: unguarded reads of guarded state, calls into *Locked
// helpers without the lock, self-deadlocks on non-recursive mutexes, and
// (under -beta) ACQUIRED_AFTER lock-order inversions. On GCC and other
// compilers every macro expands to nothing and the wrappers compile down
// to the std primitives they hold.
//
// House conventions (see docs/static-analysis.md for the full list):
//   * every mutex-protected member is GUARDED_BY its mutex — atomics that
//     are deliberately read lock-free stay unannotated, with a comment
//     saying which lock (if any) serializes the writes;
//   * private helpers that assume the lock are named *Locked and annotated
//     REQUIRES(mu_); public entry points that take the lock themselves are
//     annotated EXCLUDES(mu_);
//   * condition waits are written as explicit `while (!cond) cv_.Wait(mu_)`
//     loops in REQUIRES-checked scope, never as predicate lambdas handed
//     to a raw condition variable (the analysis cannot see into them);
//   * lock order between *named* members is declared with ACQUIRED_AFTER;
//     order across the elements of a mutex array (e.g. the ThreadPool's
//     per-worker deque shards) is not expressible — such code must hold at
//     most one element lock at a time, stated in a comment at the array.

#ifndef FASTOFD_COMMON_SYNC_H_
#define FASTOFD_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>  // lint:allow(raw-sync)
#include <mutex>               // lint:allow(raw-sync)

// --- Attribute macros ------------------------------------------------------
// Exactly the set from the Clang Thread Safety Analysis documentation.
// __has_attribute keeps them active for any compiler that implements the
// capability attributes and makes them vanish everywhere else.

#if defined(__clang__) && defined(__has_attribute)
#define FASTOFD_TSA_HAS(x) __has_attribute(x)
#else
#define FASTOFD_TSA_HAS(x) 0
#endif

#if FASTOFD_TSA_HAS(capability)
#define FASTOFD_TSA(x) __attribute__((x))
#else
#define FASTOFD_TSA(x)
#endif

#define CAPABILITY(x) FASTOFD_TSA(capability(x))
#define SCOPED_CAPABILITY FASTOFD_TSA(scoped_lockable)
#define GUARDED_BY(x) FASTOFD_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) FASTOFD_TSA(pt_guarded_by(x))
#define REQUIRES(...) FASTOFD_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) FASTOFD_TSA(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) FASTOFD_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) FASTOFD_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FASTOFD_TSA(try_acquire_capability(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FASTOFD_TSA(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) FASTOFD_TSA(acquired_before(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FASTOFD_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) FASTOFD_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FASTOFD_TSA(no_thread_safety_analysis)

namespace fastofd {

class CondVar;

/// A non-recursive mutual-exclusion capability. Prefer MutexLock scopes;
/// call Lock/Unlock directly only where RAII cannot express the shape.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the calling thread holds this mutex when the proof
  /// cannot be local (e.g. a lock taken by a caller across an opaque
  /// boundary). Purely static; no runtime check.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // lint:allow(raw-sync)
};

/// RAII lock scope over a Mutex, relockable: Unlock()/Lock() may bracket a
/// region that must run unlocked (the analysis tracks the state, so a
/// guarded access inside the unlocked window is a compile error).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before a blocking call the lock must not cover).
  void Unlock() RELEASE() {
    mu_->Unlock();
    held_ = false;
  }
  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Condition variable bound to Mutex. Waits take the held Mutex itself
/// (absl style) so the REQUIRES contract is visible at every wait site;
/// the mutex is atomically released for the duration of the block and
/// re-held on return, which the analysis treats as "still held" — correct,
/// since guarded state may only be touched before/after, never during.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in a
  /// `while (!cond)` loop). The caller must hold `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);  // lint:allow(raw-sync)
    cv_.wait(native);
    // Ownership stays with the caller's MutexLock; wait() re-locked it.
    native.release();
  }

  /// Wait with a timeout; returns false on timeout, true when notified.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);  // lint:allow(raw-sync)
    bool notified = cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-sync)
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_SYNC_H_
