#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace fastofd {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint(uint64_t bound) {
  FASTOFD_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  FASTOFD_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  FASTOFD_CHECK(n > 0);
  if (s <= 0.0) return NextUint(n);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FASTOFD_CHECK(k <= n);
  if (k == 0) return {};
  // For dense samples build-and-shuffle; for sparse samples hash rejection.
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t c = static_cast<size_t>(NextUint(n));
    if (seen.insert(c).second) out.push_back(c);
  }
  return out;
}

}  // namespace fastofd
