#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/parse.h"

namespace fastofd {

namespace {

// True iff `arg` parses completely as a (possibly signed) number, so that
// `--delta -3` attaches "-3" as the value of --delta instead of starting a
// new flag.
bool LooksNumeric(std::string_view arg) { return ParsesAsNumber(arg); }

[[noreturn]] void DieMalformed(const std::string& name, const std::string& value,
                               const char* expected) {
  std::fprintf(stderr, "error: flag --%s: expected %s, got '%s'\n",
               name.c_str(), expected, value.c_str());
  std::exit(2);
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (arg.rfind("no-", 0) == 0) {
      flags.values_[std::string(arg.substr(3))] = "false";
    } else if (i + 1 < argc &&
               (argv[i + 1][0] != '-' || LooksNumeric(argv[i + 1]))) {
      flags.values_[std::string(arg)] = argv[++i];
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  Result<int64_t> v = ParseInt64(it->second);
  if (!v.ok()) DieMalformed(name, it->second, "an integer");
  return v.value();
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) DieMalformed(name, it->second, "a number");
  return v.value();
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

}  // namespace fastofd
