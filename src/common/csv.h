// Minimal RFC-4180-ish CSV reading and writing.
//
// Supports quoted fields with embedded commas/quotes/newlines, a header row,
// and both file and in-memory string sources. Deliberately small: the
// datasets this library consumes are flat tables of strings.

#ifndef FASTOFD_COMMON_CSV_H_
#define FASTOFD_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fastofd {

/// A parsed CSV table: header plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. The first record is treated as the header when
/// `has_header` is true. Every row must have the same arity as the first
/// record; a mismatch is an error.
Result<CsvTable> ParseCsv(std::string_view text, bool has_header = true);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true);

/// Serializes a table to CSV text (fields quoted only when needed).
std::string WriteCsv(const CsvTable& table);

/// Writes a table to a file. Returns an error status on I/O failure.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace fastofd

#endif  // FASTOFD_COMMON_CSV_H_
