// Minimal Status / Result<T> error-propagation types.
//
// Used at library boundaries that can fail for data-dependent reasons
// (parsing, file I/O, schema validation). Internal invariant violations use
// FASTOFD_CHECK instead.

#ifndef FASTOFD_COMMON_STATUS_H_
#define FASTOFD_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace fastofd {

/// Outcome of a fallible operation without a payload.
/// [[nodiscard]]: a dropped Status is a swallowed error; callers must at
/// least branch on ok().
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }
  static Status Ok() { return Status(); }

  bool ok() const { return message_.empty(); }
  /// Error message; empty iff ok().
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}

  std::string message_;
};

/// Outcome of a fallible operation producing a T on success.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from an error Status. `status.ok()` must be false.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    FASTOFD_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status. Must not be called when ok().
  const Status& status() const {
    FASTOFD_CHECK(!ok());
    return std::get<Status>(value_);
  }

  /// The contained value. Must not be called unless ok().
  const T& value() const& {
    FASTOFD_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    FASTOFD_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    FASTOFD_CHECK(ok());
    return std::get<T>(std::move(value_));
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_STATUS_H_
