// Tiny command-line flag parsing for the example and benchmark binaries.
//
// Supports `--name=value` and `--name value` forms plus boolean
// `--name` / `--no-name`. A space-separated value may be a negative number
// (`--delta -3`); any other argument starting with `-` begins a new flag.
// This keeps the bench harnesses dependency-free while still letting a user
// scale experiments up to paper size.

#ifndef FASTOFD_COMMON_FLAGS_H_
#define FASTOFD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fastofd {

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv. Unrecognized positional arguments are kept in
  /// positional(); malformed flags terminate the process with usage text.
  static Flags Parse(int argc, char** argv);

  /// Value accessors with defaults. GetInt/GetDouble terminate the process
  /// (exit 2, naming the flag) when the supplied value does not parse
  /// completely as a number.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  /// True if the flag was supplied on the command line.
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_FLAGS_H_
