// Instrumentation substrate: a registry of named counters, gauges, and
// wall-clock timers.
//
// Discovery, verification, and cleaning all record their telemetry here
// (naming scheme: `<phase>.<metric>`, e.g. `discover.candidates_checked`,
// `partition_cache.hits`, `clean.refine.seconds`) so the CLI and the bench
// harnesses report from one source of truth instead of hand-threading
// counters through result structs. The result structs keep convenience
// copies, filled from the registry at the end of a run.
//
// Thread-safe: a single annotated mutex guards the maps (common/sync.h —
// the registry is a leaf lock: callers such as PartitionCache publish
// gauges while holding their own locks, so nothing may block under mu_).
// Hot loops should accumulate locally (per-worker scratch) and flush once,
// as the discovery code does.

#ifndef FASTOFD_COMMON_METRICS_H_
#define FASTOFD_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/sync.h"
#include "common/timer.h"

namespace fastofd {

/// Accumulated wall-clock time for one named timer.
struct TimerStat {
  double seconds = 0.0;
  int64_t count = 0;

  friend bool operator==(const TimerStat& a, const TimerStat& b) {
    return a.seconds == b.seconds && a.count == b.count;
  }
};

/// A fixed-layout log-bucketed histogram of nonnegative samples (the service
/// records request latencies in seconds). Buckets are geometric: bucket b
/// covers [kMin * kGrowth^b, kMin * kGrowth^(b+1)), spanning ~1µs to ~200s;
/// out-of-range samples clamp to the first/last bucket. Quantiles are
/// estimated from the bucket counts (exact min/max/sum are tracked too), so
/// p50/p95/p99 carry at most one bucket width (~35%) of relative error.
struct HistogramStat {
  static constexpr int kNumBuckets = 64;
  static constexpr double kMin = 1e-6;
  static constexpr double kGrowth = 1.35;

  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<int64_t, kNumBuckets> buckets{};

  /// The bucket a sample falls into.
  static int BucketFor(double value);

  void Observe(double value);

  /// Estimated value at quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  /// This histogram minus `earlier` (bucket-wise; min/max kept from *this).
  HistogramStat Diff(const HistogramStat& earlier) const;
};

/// A point-in-time copy of a registry, with a diff for measuring one phase.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
  std::map<std::string, HistogramStat> histograms;

  /// Counter/timer/histogram deltas since `earlier`; gauges keep this
  /// snapshot's value.
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;

  /// Counter value (0 when absent).
  int64_t Counter(const std::string& name) const;
  /// Accumulated timer seconds (0 when absent).
  double TimerSeconds(const std::string& name) const;
  /// Histogram (empty when absent).
  HistogramStat Histogram(const std::string& name) const;

  /// Aligned `kind name value` lines, sorted by name within kind.
  std::string ToText() const;
  /// `{"counters":{...},"gauges":{...},"timers":{name:{seconds,count}},
  ///   "histograms":{name:{count,sum,min,max,p50,p95,p99}}}`.
  std::string ToJson() const;
};

/// Registry of named metrics shared across pipeline phases.
class MetricsRegistry {
 public:
  /// Adds `delta` to a counter, creating it at zero first. Add(name, 0)
  /// registers a counter so it appears in dumps before first use.
  void Add(const std::string& name, int64_t delta);

  /// Sets a gauge to an instantaneous value.
  void Set(const std::string& name, double value);

  /// Accumulates one timed interval into a named timer.
  void AddTime(const std::string& name, double seconds);

  /// Records one sample into a named histogram (latencies, batch sizes).
  void Observe(const std::string& name, double value);

  MetricsSnapshot Snapshot() const;
  std::string ToText() const { return Snapshot().ToText(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

  void Clear();

 private:
  mutable Mutex mu_;
  std::map<std::string, int64_t> counters_ GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ GUARDED_BY(mu_);
  std::map<std::string, TimerStat> timers_ GUARDED_BY(mu_);
  std::map<std::string, HistogramStat> histograms_ GUARDED_BY(mu_);
};

/// RAII wall-clock timer: records elapsed seconds into `registry` on
/// destruction (or Stop()). Null registry makes it a no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the interval now instead of at scope exit.
  void Stop() {
    if (registry_ != nullptr) registry_->AddTime(name_, timer_.Seconds());
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Timer timer_;
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_METRICS_H_
