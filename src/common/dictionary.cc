#include "common/dictionary.h"

#include "common/check.h"

namespace fastofd {

ValueId Dictionary::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

ValueId Dictionary::Lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kInvalidValue : it->second;
}

const std::string& Dictionary::String(ValueId id) const {
  FASTOFD_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
  return strings_[static_cast<size_t>(id)];
}

}  // namespace fastofd
