#include "common/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fastofd::audit {

namespace {

std::atomic<int64_t> g_checks_run{0};
std::atomic<int64_t> g_checks_failed{0};

}  // namespace

int64_t ChecksRun() { return g_checks_run.load(std::memory_order_relaxed); }

int64_t ChecksFailed() {
  return g_checks_failed.load(std::memory_order_relaxed);
}

namespace internal {

Status Counted(Status status) {
  g_checks_run.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) g_checks_failed.fetch_add(1, std::memory_order_relaxed);
  return status;
}

void FailAbort(const char* expr, const char* file, int line,
               const std::string& message) {
  std::fprintf(stderr, "AUDIT failed: %s at %s:%d\n  %s\n", expr, file, line,
               message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fastofd::audit
