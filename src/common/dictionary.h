// String interning: dense integer ids for attribute values.
//
// Relations are dictionary-coded so that partition algebra and OFD
// verification operate on small integers; the ontology is compiled against
// the same dictionary (ontology/synonym_index.h) so that names(v) lookups are
// O(1), matching the paper's constant-time ontology access assumption.

#ifndef FASTOFD_COMMON_DICTIONARY_H_
#define FASTOFD_COMMON_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fastofd {

/// Dense id of an interned value. Ids are assigned in first-seen order.
using ValueId = int32_t;

/// Sentinel for "value not present".
inline constexpr ValueId kInvalidValue = -1;

/// Bidirectional string <-> ValueId map.
class Dictionary {
 public:
  /// Interns `s`, returning its id (existing or newly assigned).
  ValueId Intern(std::string_view s);

  /// Returns the id of `s`, or kInvalidValue if never interned.
  ValueId Lookup(std::string_view s) const;

  /// The string for an id. `id` must be valid.
  const std::string& String(ValueId id) const;

  /// Number of distinct interned values.
  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, ValueId> ids_;
  std::vector<std::string> strings_;
};

}  // namespace fastofd

#endif  // FASTOFD_COMMON_DICTIONARY_H_
