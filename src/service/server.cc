#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "clean/repair.h"
#include "common/audit.h"
#include "common/csv.h"
#include "common/parse.h"
#include "discovery/fastofd.h"
#include "ofd/sigma_io.h"
#include "ofd/verifier.h"
#include "service/net_util.h"
#include "service/protocol.h"

namespace fastofd {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json OkResponse(const Json& request) {
  Json response = Json::Object();
  response.Set("id", request.Get("id"));
  response.Set("ok", Json::Bool(true));
  return response;
}

Json ErrResponse(const Json& request, int code, const std::string& message) {
  Json response = Json::Object();
  response.Set("id", request.Get("id"));
  response.Set("ok", Json::Bool(false));
  response.Set("code", Json::Int(code));
  response.Set("error", Json::Str(message));
  return response;
}

int ResolveShardCount(int configured) {
  if (configured > 0) return configured;
  int hw = ThreadPool::DefaultThreads();
  return std::min(std::max(1, hw / 2), 8);
}

/// Deep invariant audit (common/audit.h) for the seqlock snapshot protocol:
/// a read must run entirely against a quiescent session — version even at
/// entry and unchanged at exit (writers hold the session exclusively and
/// drain readers first, so any motion here is a shard-accounting bug).
[[maybe_unused]] Status AuditSnapshotStable(const Session& session,
                                            uint64_t entry_version) {
  auto fail = [](const std::string& message) {
    return audit::internal::Counted(Status::Error("snapshot audit: " + message));
  };
  if ((entry_version & 1) != 0) {
    return fail("read started at odd version " +
                std::to_string(entry_version) + " (writer mid-mutation)");
  }
  uint64_t exit_version = session.version();
  if (exit_version != entry_version) {
    return fail("session version moved " + std::to_string(entry_version) +
                " -> " + std::to_string(exit_version) + " under a read");
  }
  return audit::internal::Counted(Status::Ok());
}

}  // namespace

// ---------------------------------------------------------------------------
// Routing.

size_t ServiceServer::ShardOf(const std::string& session, size_t shard_count) {
  // FNV-1a, 64-bit: a stable hash (not std::hash, which may vary across
  // implementations) so session -> shard routing is deterministic for tests
  // and reproducible across runs.
  uint64_t h = 14695981039346656037ull;
  for (char c : session) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return shard_count <= 1 ? 0 : static_cast<size_t>(h % shard_count);
}

// ---------------------------------------------------------------------------
// Lifecycle.

ServiceServer::ServiceServer(ServerConfig config, MetricsRegistry* metrics)
    : config_(std::move(config)),
      metrics_(metrics),
      pool_(config_.threads),
      reads_group_(&pool_) {
  const int num_shards = ResolveShardCount(config_.shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string prefix = "serve.shard." + std::to_string(i);
    shard->depth_gauge = prefix + ".depth";
    shard->parked_gauge = prefix + ".parked";
    shard->stolen_counter = prefix + ".stolen";
    shard->executed_counter = prefix + ".executed";
    metrics_->Set(shard->depth_gauge, 0);
    metrics_->Set(shard->parked_gauge, 0);
    metrics_->Add(shard->stolen_counter, 0);
    metrics_->Add(shard->executed_counter, 0);
    shards_.push_back(std::move(shard));
  }
  // Register the fleet-facing counters at zero so the first `stats` or
  // metrics flush shows them even before traffic arrives.
  metrics_->Set("serve.shards", static_cast<double>(num_shards));
  metrics_->Add("serve.rejected", 0);
  metrics_->Add("serve.shed", 0);
  metrics_->Add("serve.snapshot_reads", 0);
  metrics_->Add("serve.deadline_exceeded", 0);
  metrics_->Add("serve.responses.ok", 0);
  metrics_->Add("serve.responses.error", 0);
  metrics_->Set("serve.queue_depth", 0);
}

ServiceServer::~ServiceServer() {
  if (started_ && !joined_) {
    NotifyShutdown();
    Wait();
  }
  for (int fd : shutdown_pipe_) {
    if (fd != -1) ::close(fd);
  }
  // Still open when Start() failed between socket() and listen(): the
  // listener thread (whose BeginDrain normally closes it) never spawned.
  if (listen_fd_ != -1) ::close(listen_fd_);
}

Status ServiceServer::Start() {
  if (::pipe(shutdown_pipe_) != 0) {
    return Status::Error("pipe: " + ErrnoString(errno));
  }
  if (!config_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket: failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Status::Error("socket path too long: " + config_.unix_socket);
    }
    std::strncpy(addr.sun_path, config_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Status::Error("bind " + config_.unix_socket + ": " +
                           ErrnoString(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket: failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Status::Error("bind port " + std::to_string(config_.tcp_port) +
                           ": " + ErrnoString(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Error("listen: " + ErrnoString(errno));
  }
  listener_ = std::thread([this] { ListenerLoop(); });
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->executor =
        std::thread([this, i] { ExecutorLoop(static_cast<int>(i)); });
  }
  started_ = true;
  return Status::Ok();
}

void ServiceServer::NotifyShutdown() {
  if (shutdown_requested_.exchange(true)) return;
  char byte = 'x';
  // Signal-safe: a single write to the self-pipe.
  [[maybe_unused]] ssize_t n = ::write(shutdown_pipe_[1], &byte, 1);
}

void ServiceServer::Wait() {
  if (!started_ || joined_) return;
  if (listener_.joinable()) listener_.join();
  // Listener closed every shard; each executor finishes every queued and
  // parked request (parked entries are promoted or shed, never dropped).
  for (auto& shard : shards_) {
    if (shard->executor.joinable()) shard->executor.join();
  }
  // Snapshot reads dispatched by the executors may still be in flight on
  // the pool; their responses must go out before connections close.
  reads_group_.Wait();
  // All responses are written; now tear down connections.
  {
    MutexLock lock(conns_mu_);
    for (auto& conn : conns_) {
      MutexLock wlock(conn->write_mu);
      if (conn->fd != -1) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    MutexLock lock(conns_mu_);
    while (readers_active_ != 0) readers_cv_.Wait(conns_mu_);
  }
  // Every reader has moved its handle to finished_readers_; join them all.
  ReapFinishedReaders();
  if (!config_.unix_socket.empty()) ::unlink(config_.unix_socket.c_str());
  joined_ = true;
}

void ServiceServer::BeginDrain() {
  draining_.store(true);
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->mu);
      shard->closed = true;
    }
    shard->work_cv.NotifyAll();
  }
  if (listen_fd_ != -1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Listener + readers.

void ServiceServer::ListenerLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {shutdown_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Shutdown requested.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    {
      MutexLock wlock(conn->write_mu);
      conn->fd = fd;
    }
    ReapFinishedReaders();  // Connection churn must not accumulate handles.
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(conn);
      ++readers_active_;
      auto self = readers_.emplace(readers_.end());
      *self = std::thread([this, conn, self] { ReaderLoop(conn, self); });
    }
    metrics_->Add("serve.connections", 1);
  }
  BeginDrain();
}

void ServiceServer::ReapFinishedReaders() {
  std::list<std::thread> finished;
  {
    MutexLock lock(conns_mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& reader : finished) reader.join();
}

void ServiceServer::ReaderLoop(std::shared_ptr<Connection> conn,
                               std::list<std::thread>::iterator self) {
  std::string buffer;
  char chunk[65536];
  // Snapshot the fd once: this reader is the only thread that ever closes
  // it (below, under write_mu), so the local cannot go stale — and the recv
  // loop must not hold write_mu, or a blocked recv would wedge every writer.
  // Wait() unblocks the recv with ::shutdown, not ::close.
  int read_fd;
  {
    MutexLock wlock(conn->write_mu);
    read_fd = conn->fd;
  }
  for (;;) {
    ssize_t n = ::recv(read_fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty()) continue;

      auto parsed = Json::Parse(line);
      if (!parsed.ok()) {
        WriteResponse(*conn, ErrResponse(Json::Object(), kCodeBadRequest,
                                         parsed.status().message()));
        continue;
      }
      Request request;
      request.msg = std::move(parsed).value();
      request.op = request.msg.Get("op").AsString();
      request.session = request.msg.Get("session").AsString();
      request.conn = conn;
      request.enqueue_seconds = NowSeconds();
      double deadline_ms = request.msg.Has("deadline_ms")
                               ? request.msg.Get("deadline_ms").AsDouble()
                               : config_.default_deadline_ms;
      if (deadline_ms > 0) {
        request.deadline_seconds = request.enqueue_seconds + deadline_ms / 1e3;
      }
      metrics_->Add("serve.requests." + request.op, 1);
      // ShardPush only consumes the request on success, so `msg` is still
      // valid when we build the rejection response below.
      const Json& msg = request.msg;
      if (!ShardPush(std::move(request))) {
        metrics_->Add("serve.rejected", 1);
        WriteResponse(*conn, ErrResponse(
                                 msg, kCodeOverloaded,
                                 draining_.load()
                                     ? "server draining"
                                     : "request queue and wait list full"));
        continue;
      }
    }
    buffer.erase(0, start);
  }
  {
    MutexLock wlock(conn->write_mu);
    if (conn->fd != -1) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  MutexLock lock(conns_mu_);
  // Drop our registry entry so a long-running daemon with connection churn
  // does not grow conns_ without bound. Queued responses still reach the
  // client through the shared_ptr each Request holds.
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  // Hand our own thread handle to the reaper (joining ourselves would
  // deadlock); splicing keeps the handle alive until someone joins it.
  finished_readers_.splice(finished_readers_.end(), readers_, self);
  --readers_active_;
  readers_cv_.NotifyAll();
}

void ServiceServer::WriteResponse(Connection& conn, const Json& response) {
  std::string line = response.Dump();
  line.push_back('\n');
  MutexLock lock(conn.write_mu);
  if (conn.fd == -1) return;  // Client already gone.
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(conn.fd, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Shards: admission, parking, shedding, eligible pops.

void ServiceServer::PublishShardGauges(int shard_index, size_t depth,
                                       size_t parked) {
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  metrics_->Set(shard.depth_gauge, static_cast<double>(depth));
  metrics_->Set(shard.parked_gauge, static_cast<double>(parked));
}

bool ServiceServer::ShardPush(Request&& request) {
  const size_t index = ShardOf(request.session, shards_.size());
  Shard& shard = *shards_[index];
  std::vector<Request> shed;
  bool admitted = false;
  size_t depth = 0;
  size_t parked = 0;
  {
    MutexLock lock(shard.mu);
    if (!shard.closed) {
      ShedExpiredLocked(shard, &shed);
      // Queue directly only when nobody is parked ahead of us — otherwise a
      // newcomer would overtake a parked request of the same session and
      // break per-session FIFO.
      if (shard.parked.empty() &&
          shard.queue.size() < static_cast<size_t>(config_.queue_depth)) {
        shard.queue.push_back(std::move(request));
        admitted = true;
      } else if (shard.parked.size() <
                 static_cast<size_t>(config_.max_parked)) {
        shard.parked.push_back(std::move(request));
        admitted = true;
      }
    }
    depth = shard.queue.size();
    parked = shard.parked.size();
  }
  if (admitted) shard.work_cv.NotifyOne();
  PublishShardGauges(static_cast<int>(index), depth, parked);
  RespondShed(shed);
  return admitted;
}

void ServiceServer::ShedExpiredLocked(Shard& shard,
                                      std::vector<Request>* shed) {
  if (shard.parked.empty()) return;
  const double now = NowSeconds();
  for (auto it = shard.parked.begin(); it != shard.parked.end();) {
    if (it->deadline_seconds > 0 && now >= it->deadline_seconds) {
      shed->push_back(std::move(*it));
      it = shard.parked.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceServer::RespondShed(std::vector<Request>& shed) {
  for (Request& request : shed) {
    metrics_->Add("serve.shed", 1);
    WriteResponse(*request.conn,
                  ErrResponse(request.msg, kCodeOverloaded,
                              "deadline cannot be met: shed from wait list"));
  }
  shed.clear();
}

bool ServiceServer::PopUnitLocked(Shard& shard, Unit* unit,
                                  std::vector<Request>* shed) {
  ShedExpiredLocked(shard, shed);
  // Promote parked requests into freed queue room, oldest first.
  while (!shard.parked.empty() &&
         shard.queue.size() < static_cast<size_t>(config_.queue_depth)) {
    shard.queue.push_back(std::move(shard.parked.front()));
    shard.parked.pop_front();
  }
  // First request whose session has no exclusive writer. Skipping a session
  // blocks every later request of that session: cross-session reordering is
  // allowed, intra-session reordering never.
  std::set<std::string> skipped;
  for (size_t i = 0; i < shard.queue.size(); ++i) {
    const std::string& session = shard.queue[i].session;
    if (shard.busy.count(session) != 0 || skipped.count(session) != 0) {
      skipped.insert(session);
      continue;
    }
    unit->home = &shard;
    unit->is_read = IsSnapshotReadOp(shard.queue[i].op);
    unit->batch.clear();
    unit->batch.push_back(std::move(shard.queue[i]));
    shard.queue.erase(shard.queue.begin() + static_cast<std::ptrdiff_t>(i));
    if (unit->is_read) {
      // Reader slot: blocks writers (they drain readers first) but not
      // other reads of the same session — that is the whole point.
      ++shard.readers[unit->batch.front().session];
    } else {
      shard.busy.insert(unit->batch.front().session);
      if (unit->batch.front().op == ops::kUpdate) {
        // Micro-batch: coalesce the run of same-session updates that
        // directly followed the popped one, so a burst of single-cell
        // updates pays one dispatch round trip.
        while (static_cast<int>(unit->batch.size()) < config_.max_update_batch &&
               i < shard.queue.size() && shard.queue[i].op == ops::kUpdate &&
               shard.queue[i].session == unit->batch.front().session) {
          unit->batch.push_back(std::move(shard.queue[i]));
          shard.queue.erase(shard.queue.begin() +
                            static_cast<std::ptrdiff_t>(i));
        }
      }
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Executors.

void ServiceServer::ExecutorLoop(int shard_index) {
  Shard& home = *shards_[static_cast<size_t>(shard_index)];
  const size_t num_shards = shards_.size();
  std::vector<Request> shed;
  for (;;) {
    Unit unit;
    bool got = false;
    bool drained_out = false;
    size_t depth = 0;
    size_t parked = 0;
    {
      MutexLock lock(home.mu);
      got = PopUnitLocked(home, &unit, &shed);
      drained_out = !got && home.closed && home.queue.empty() &&
                    home.parked.empty();
      depth = home.queue.size();
      parked = home.parked.size();
    }
    PublishShardGauges(shard_index, depth, parked);
    RespondShed(shed);
    if (got) {
      RunUnit(std::move(unit), shard_index);
      continue;
    }
    if (drained_out) break;
    // Nothing runnable at home: steal an eligible unit from another shard.
    // The busy/reader accounting stays in the victim, so per-session
    // ordering is preserved; at most one Shard::mu is held at a time.
    for (size_t off = 1; off < num_shards && !got; ++off) {
      const size_t victim_index =
          (static_cast<size_t>(shard_index) + off) % num_shards;
      Shard& victim = *shards_[victim_index];
      {
        MutexLock lock(victim.mu);
        got = PopUnitLocked(victim, &unit, &shed);
      }
      RespondShed(shed);
      if (got) {
        metrics_->Add(home.stolen_counter, 1);
        RunUnit(std::move(unit), shard_index);
      }
    }
    if (got) continue;
    // Idle: sleep briefly. The timeout doubles as the polling cadence for
    // deadline shedding of parked requests and for steal opportunities on
    // other shards (a push only notifies its own shard's executor).
    MutexLock lock(home.mu);
    if (!(home.closed && home.queue.empty() && home.parked.empty())) {
      home.work_cv.WaitFor(home.mu, std::chrono::milliseconds(2));
    }
  }
}

void ServiceServer::RunUnit(Unit unit, int executor_shard) {
  const Shard& self = *shards_[static_cast<size_t>(executor_shard)];
  metrics_->Add(self.executed_counter,
                static_cast<int64_t>(unit.batch.size()));
  if (unit.is_read) {
    DispatchRead(std::move(unit));
    return;
  }
  Shard& home = *unit.home;
  const std::string session = unit.batch.front().session;
  {
    // The session is already marked busy, so no new readers can start;
    // wait out the in-flight ones before mutating.
    MutexLock lock(home.mu);
    while (home.readers.count(session) != 0) home.drain_cv.Wait(home.mu);
  }
  if (unit.batch.size() > 1) {
    metrics_->Add("serve.batches", 1);
    metrics_->Observe("serve.batch_size",
                      static_cast<double>(unit.batch.size()));
  }
  ExecuteBatch(unit.batch);
  {
    MutexLock lock(home.mu);
    home.busy.erase(session);
  }
  // Wake the home executor (and any thief polling it): requests of this
  // session are eligible again.
  home.work_cv.NotifyAll();
}

void ServiceServer::DispatchRead(Unit unit) {
  auto request = std::make_shared<Request>(std::move(unit.batch.front()));
  Shard* home = unit.home;
  metrics_->Add("serve.snapshot_reads", 1);
  // Value captures only: the read outlives this scope (it runs on the
  // pool), so the request rides a shared_ptr and the shard by pointer.
  reads_group_.Submit([this, request, home](int) {
    ExecuteOne(*request);
    bool drained = false;
    {
      MutexLock lock(home->mu);
      auto it = home->readers.find(request->session);
      if (it != home->readers.end() && --(it->second) == 0) {
        home->readers.erase(it);
        drained = true;
      }
    }
    if (drained) home->drain_cv.NotifyAll();
  });
}

size_t ServiceServer::TotalQueued() {
  size_t total = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->queue.size() + shard->parked.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Request execution.

Status ServiceServer::AuditBatchShape(const std::vector<Request>& batch) const {
  auto fail = [](const std::string& message) {
    return audit::internal::Counted(Status::Error("batch audit: " + message));
  };
  if (batch.empty()) return fail("empty batch popped");
  if (batch.size() > 1) {
    if (static_cast<int>(batch.size()) > config_.max_update_batch) {
      return fail("batch of " + std::to_string(batch.size()) +
                  " exceeds max_update_batch " +
                  std::to_string(config_.max_update_batch));
    }
  }
  for (const Request& request : batch) {
    if (request.conn == nullptr) return fail("request without a connection");
    if (request.op != request.msg.Get("op").AsString()) {
      return fail("cached op '" + request.op +
                  "' disagrees with the request message");
    }
    if (batch.size() > 1) {
      if (request.op != ops::kUpdate) {
        return fail("multi-request batch contains non-update op '" +
                    request.op + "'");
      }
      if (request.session != batch.front().session) {
        return fail("multi-request batch mixes sessions");
      }
    }
  }
  return audit::internal::Counted(Status::Ok());
}

void ServiceServer::ExecuteBatch(std::vector<Request>& batch) {
  FASTOFD_AUDIT_OK(AuditBatchShape(batch));
  for (Request& request : batch) ExecuteOne(request);
}

void ServiceServer::ExecuteOne(Request& request) {
  double begin = NowSeconds();
  metrics_->Observe("serve.queue_wait", begin - request.enqueue_seconds);
  Json response;
  if (request.deadline_seconds > 0 && begin > request.deadline_seconds) {
    metrics_->Add("serve.deadline_exceeded", 1);
    response = ErrResponse(request.msg, kCodeDeadlineExceeded,
                           "deadline exceeded while queued");
    metrics_->Add("serve.responses.error", 1);
  } else {
    response = Execute(request.msg);
  }
  metrics_->Observe("serve.latency." + request.op,
                    NowSeconds() - request.enqueue_seconds);
  WriteResponse(*request.conn, response);
}

Json ServiceServer::Execute(const Json& request) {
  const std::string op = request.Get("op").AsString();
  Json response;
  {
    ScopedTimer timer(metrics_, "serve.exec." + op + ".seconds");
    if (op == ops::kPing) response = HandlePing(request);
    else if (op == ops::kLoad) response = HandleLoad(request);
    else if (op == ops::kUnload) response = HandleUnload(request);
    else if (op == ops::kList) response = HandleList(request);
    else if (op == ops::kVerify) response = HandleVerify(request);
    else if (op == ops::kDiscover) response = HandleDiscover(request);
    else if (op == ops::kClean) response = HandleClean(request);
    else if (op == ops::kUpdate) response = HandleUpdate(request);
    else if (op == ops::kStats) response = HandleStats(request);
    else if (op == ops::kSleep) response = HandleSleep(request);
    else if (op == ops::kShutdown) {
      NotifyShutdown();
      response = OkResponse(request);
      response.Set("draining", Json::Bool(true));
    } else {
      response = ErrResponse(request, kCodeBadRequest,
                             "unknown op '" + op + "'");
    }
  }
  metrics_->Add(response.Get("ok").AsBool() ? "serve.responses.ok"
                                            : "serve.responses.error",
                1);
  // Audit builds re-validate after each request. The deep audit is scoped
  // to the request's own session — the one this executor holds exclusively
  // (or reads under writer exclusion); auditing other sessions here would
  // race their own shards' writers.
  FASTOFD_AUDIT_OK(sessions_.AuditOne(request.Get("session").AsString()));
  return response;
}

// ---------------------------------------------------------------------------
// Handlers.

Json ServiceServer::HandlePing(const Json& request) {
  Json response = OkResponse(request);
  response.Set("pong", Json::Bool(true));
  return response;
}

Json ServiceServer::HandleSleep(const Json& request) {
  double ms = request.Get("ms").AsDouble(10.0);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
  return OkResponse(request);
}

Json ServiceServer::HandleLoad(const Json& request) {
  std::string name = request.Get("session").AsString();
  std::string data = request.Get("data").AsString();
  std::string ontology = request.Get("ontology").AsString();
  std::string sigma = request.Get("sigma").AsString();
  if (name.empty() || data.empty() || ontology.empty()) {
    return ErrResponse(request, kCodeBadRequest,
                       "load requires session, data, and ontology");
  }
  if (sessions_.Find(name) != nullptr) {
    return ErrResponse(request, kCodeConflict,
                       "session '" + name + "' already exists");
  }
  auto session = Session::Open(name, data, ontology, sigma,
                               config_.cache_budget_bytes, metrics_);
  if (!session.ok()) {
    return ErrResponse(request, kCodeInternal, session.status().message());
  }
  Json response = OkResponse(request);
  Session& s = *session.value();
  response.Set("session", Json::Str(name));
  response.Set("rows", Json::Int(s.rel().num_rows()));
  response.Set("attrs", Json::Int(s.rel().num_attrs()));
  response.Set("sigma_size", Json::Int(static_cast<int64_t>(s.sigma().size())));
  if (s.incremental() != nullptr) {
    response.Set("consistent", Json::Bool(s.incremental()->IsConsistent()));
    response.Set("violating_classes",
                 Json::Int(s.incremental()->total_violating()));
  }
  response.Set("load_seconds", Json::Number(s.load_seconds()));
  Status added = sessions_.Add(std::move(session).value());
  if (!added.ok()) {
    return ErrResponse(request, kCodeConflict, added.message());
  }
  metrics_->Set("serve.sessions", static_cast<double>(sessions_.size()));
  return response;
}

Json ServiceServer::HandleUnload(const Json& request) {
  Status removed = sessions_.Remove(request.Get("session").AsString());
  if (!removed.ok()) {
    return ErrResponse(request, kCodeNotFound, removed.message());
  }
  metrics_->Set("serve.sessions", static_cast<double>(sessions_.size()));
  return OkResponse(request);
}

Json ServiceServer::HandleList(const Json& request) {
  // `list` executes exclusively on the "" session only, so it observes
  // *other* sessions mid-traffic: the scalar state it samples is either
  // immutable after load (rows, attrs, sigma) or an internally synchronized
  // / atomic snapshot (cache accounting, incremental counters). The
  // shared_ptr from Find keeps each entry alive across a concurrent unload.
  Json sessions = Json::Array();
  for (const std::string& name : sessions_.Names()) {
    std::shared_ptr<Session> s = sessions_.Find(name);
    if (s == nullptr) continue;
    Json entry = Json::Object();
    entry.Set("session", Json::Str(name));
    entry.Set("rows", Json::Int(s->rel().num_rows()));
    entry.Set("attrs", Json::Int(s->rel().num_attrs()));
    entry.Set("sigma_size",
              Json::Int(static_cast<int64_t>(s->sigma().size())));
    entry.Set("cache_entries", Json::Int(static_cast<int64_t>(s->cache().size())));
    entry.Set("cache_bytes", Json::Int(s->cache().bytes()));
    if (s->incremental() != nullptr) {
      entry.Set("consistent", Json::Bool(s->incremental()->IsConsistent()));
      entry.Set("violating_classes",
                Json::Int(s->incremental()->total_violating()));
    }
    entry.Set("session_version",
              Json::Int(static_cast<int64_t>(s->version())));
    entry.Set("load_seconds", Json::Number(s->load_seconds()));
    sessions.Push(std::move(entry));
  }
  Json response = OkResponse(request);
  response.Set("sessions", std::move(sessions));
  return response;
}

Json ServiceServer::HandleVerify(const Json& request) {
  std::shared_ptr<Session> session =
      sessions_.Find(request.Get("session").AsString());
  if (session == nullptr) {
    return ErrResponse(request, kCodeNotFound, "unknown session");
  }
  if (!session->has_sigma()) {
    return ErrResponse(request, kCodeBadRequest, "session has no sigma");
  }
  // Snapshot read: the shard layer guarantees no writer touches this
  // session while we run; the version audit at the end proves it.
  [[maybe_unused]] const uint64_t entry_version = session->version();
  const SigmaSet& sigma = session->sigma();
  OfdVerifier verifier(session->rel(), session->index(), &session->ontology());
  struct Check {
    bool holds = false;
    double support = 0.0;
  };
  std::vector<Check> checks(sigma.size());
  PartitionCache& cache = session->cache();
  pool_.ParallelFor(sigma.size(), [&](size_t i, int) {
    const Ofd& ofd = sigma[i];
    std::shared_ptr<const StrippedPartition> p = cache.Get(ofd.lhs);
    checks[i].holds = verifier.Holds(ofd, *p);
    checks[i].support = ofd.kind == OfdKind::kSynonym
                            ? verifier.Support(ofd, *p)
                            : (checks[i].holds ? 1.0 : 0.0);
  });
  Json ofds = Json::Array();
  int violated = 0;
  for (size_t i = 0; i < sigma.size(); ++i) {
    Json entry = Json::Object();
    entry.Set("ofd", Json::Str(RenderOfd(sigma[i], session->rel().schema())));
    entry.Set("holds", Json::Bool(checks[i].holds));
    entry.Set("support", Json::Number(checks[i].support));
    ofds.Push(std::move(entry));
    violated += !checks[i].holds;
  }
  Json response = OkResponse(request);
  response.Set("ofds", std::move(ofds));
  response.Set("violated", Json::Int(violated));
  response.Set("consistent", Json::Bool(violated == 0));
  FASTOFD_AUDIT_OK(AuditSnapshotStable(*session, entry_version));
  return response;
}

Json ServiceServer::HandleDiscover(const Json& request) {
  std::shared_ptr<Session> session =
      sessions_.Find(request.Get("session").AsString());
  if (session == nullptr) {
    return ErrResponse(request, kCodeNotFound, "unknown session");
  }
  [[maybe_unused]] const uint64_t entry_version = session->version();
  FastOfdConfig config;
  config.min_support = request.Get("kappa").AsDouble(1.0);
  config.max_level = static_cast<int>(request.Get("max_level").AsInt(64));
  config.pool = &pool_;
  config.metrics = metrics_;
  config.partitions = &session->cache();
  FastOfdResult result =
      FastOfd(session->rel(), session->index(), config, nullptr).Discover();
  Json ofds = Json::Array();
  for (const Ofd& ofd : result.ofds) {
    ofds.Push(Json::Str(RenderOfd(ofd, session->rel().schema())));
  }
  Json response = OkResponse(request);
  response.Set("ofds", std::move(ofds));
  response.Set("candidates_checked", Json::Int(result.candidates_checked));
  FASTOFD_AUDIT_OK(AuditSnapshotStable(*session, entry_version));
  return response;
}

Json ServiceServer::HandleClean(const Json& request) {
  std::shared_ptr<Session> session =
      sessions_.Find(request.Get("session").AsString());
  if (session == nullptr) {
    return ErrResponse(request, kCodeNotFound, "unknown session");
  }
  if (!session->has_sigma()) {
    return ErrResponse(request, kCodeBadRequest, "session has no sigma");
  }
  OfdCleanConfig config;
  config.beam_size = static_cast<int>(request.Get("beam").AsInt(0));
  config.tau = request.Get("tau").AsDouble(0.65);
  config.pool = &pool_;
  config.metrics = metrics_;
  config.partitions = &session->cache();
  OfdClean cleaner(session->rel(), session->ontology(), session->sigma(),
                   config);
  OfdCleanResult result = cleaner.Run();

  Json pareto = Json::Array();
  for (const ParetoPoint& p : result.pareto) {
    pareto.Push(Json::Array()
                    .Push(Json::Int(p.ontology_changes))
                    .Push(Json::Int(p.data_changes)));
  }
  Json additions = Json::Array();
  for (const OntologyAddition& add : result.best.ontology_additions) {
    Json entry = Json::Object();
    entry.Set("value", Json::Str(session->rel().dict().String(add.value)));
    entry.Set("sense", Json::Str(session->ontology().sense_name(add.sense)));
    additions.Push(std::move(entry));
  }
  Json response = OkResponse(request);
  response.Set("pareto", std::move(pareto));
  response.Set("ontology_additions", std::move(additions));
  response.Set("data_changes", Json::Int(result.best.data_changes));
  response.Set("consistent", Json::Bool(result.best.consistent));
  std::string out = request.Get("out").AsString();
  if (!out.empty()) {
    Status s = WriteCsvFile(out, result.best.repaired.ToCsv());
    if (!s.ok()) return ErrResponse(request, kCodeInternal, s.message());
    response.Set("out", Json::Str(out));
  }
  return response;
}

Json ServiceServer::HandleUpdate(const Json& request) {
  std::shared_ptr<Session> session =
      sessions_.Find(request.Get("session").AsString());
  if (session == nullptr) {
    return ErrResponse(request, kCodeNotFound, "unknown session");
  }
  Relation& rel = session->rel();

  // Either a single {row, attr, value} or a batched {"updates": [...]}.
  std::vector<const Json*> updates;
  if (request.Get("updates").is_array()) {
    for (const Json& u : request.Get("updates").items()) updates.push_back(&u);
  } else if (request.Has("row")) {
    updates.push_back(&request);
  }
  if (updates.empty()) {
    return ErrResponse(request, kCodeBadRequest,
                       "update requires row/attr/value or updates[]");
  }

  // Pass 1: validate and resolve every entry before mutating anything, so an
  // invalid entry rejects the whole batch instead of leaving the session
  // half-updated (with the partition cache stale over the touched attrs).
  struct ResolvedUpdate {
    RowId row;
    AttrId attr;
    const std::string* value;
  };
  std::vector<ResolvedUpdate> resolved;
  resolved.reserve(updates.size());
  for (const Json* u : updates) {
    // Range-check as int64 before narrowing: row=4294967296 must be rejected,
    // not wrapped to 0.
    int64_t row64 = u->Get("row").AsInt(-1);
    if (row64 < 0 || row64 >= static_cast<int64_t>(rel.num_rows())) {
      return ErrResponse(request, kCodeBadRequest,
                         "row out of range: " + u->Get("row").Dump());
    }
    const Json& attr_field = u->Get("attr");
    AttrId attr = -1;
    if (attr_field.is_string()) {
      attr = rel.schema().Find(attr_field.AsString());
      const std::string& name = attr_field.AsString();
      if (attr < 0 && !name.empty()) {
        // `fastofd client update --attr 2` reaches us as the string "2".
        // ParseIndex rejects overflow and out-of-range values, so a hostile
        // attr id yields a 400 instead of terminating the daemon.
        Result<int64_t> parsed =
            ParseIndex(name, static_cast<int64_t>(rel.num_attrs()));
        if (parsed.ok()) attr = static_cast<AttrId>(parsed.value());
      }
    } else {
      int64_t attr64 = attr_field.AsInt(-1);
      if (attr64 >= 0 && attr64 < static_cast<int64_t>(rel.num_attrs())) {
        attr = static_cast<AttrId>(attr64);
      }
    }
    if (attr < 0 || attr >= rel.num_attrs()) {
      return ErrResponse(request, kCodeNotFound,
                         "unknown attribute: " + attr_field.Dump());
    }
    if (!u->Get("value").is_string()) {
      return ErrResponse(request, kCodeBadRequest,
                         "update value must be a string");
    }
    resolved.push_back(ResolvedUpdate{static_cast<RowId>(row64), attr,
                                      &u->Get("value").AsString()});
  }

  int64_t before_rechecked =
      session->incremental() != nullptr
          ? session->incremental()->classes_rechecked()
          : 0;
  // Seqlock write bracket: version goes odd while the session mutates. The
  // shard layer already drained this session's snapshot readers and blocks
  // new ones (busy), so no read ever observes the odd window — the version
  // audit in the read handlers enforces exactly that.
  session->BeginWrite();
  int applied = 0;
  for (const ResolvedUpdate& ru : resolved) {
    ValueId value = rel.mutable_dict().Intern(*ru.value);
    session->UpdateCell(ru.row, ru.attr, value);
    ++applied;
  }
  size_t invalidated = session->FlushInvalidations();
  session->EndWrite();
  metrics_->Add("serve.cells_updated", applied);
  // The update path is where incremental state drifts if it ever will:
  // re-check group maps (and on small relations, full Σ) immediately.
  FASTOFD_AUDIT_OK(session->Audit());

  Json response = OkResponse(request);
  response.Set("applied", Json::Int(applied));
  response.Set("invalidated_partitions",
               Json::Int(static_cast<int64_t>(invalidated)));
  if (session->incremental() != nullptr) {
    IncrementalVerifier* inc = session->incremental();
    response.Set("consistent", Json::Bool(inc->IsConsistent()));
    response.Set("violating_classes", Json::Int(inc->total_violating()));
    response.Set("classes_rechecked",
                 Json::Int(inc->classes_rechecked() - before_rechecked));
  }
  return response;
}

Json ServiceServer::HandleStats(const Json& request) {
  size_t queued = TotalQueued();
  metrics_->Set("serve.queue_depth", static_cast<double>(queued));
  MetricsSnapshot snapshot = metrics_->Snapshot();
  Json counters = Json::Object();
  for (const auto& [name, v] : snapshot.counters) counters.Set(name, Json::Int(v));
  Json gauges = Json::Object();
  for (const auto& [name, v] : snapshot.gauges) gauges.Set(name, Json::Number(v));
  Json timers = Json::Object();
  for (const auto& [name, t] : snapshot.timers) {
    Json entry = Json::Object();
    entry.Set("seconds", Json::Number(t.seconds));
    entry.Set("count", Json::Int(t.count));
    timers.Set(name, std::move(entry));
  }
  // Latency histograms, reported in milliseconds under their op name.
  Json latency = Json::Object();
  const std::string prefix = "serve.latency.";
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    Json entry = Json::Object();
    entry.Set("count", Json::Int(h.count));
    entry.Set("p50_ms", Json::Number(h.Quantile(0.50) * 1e3));
    entry.Set("p95_ms", Json::Number(h.Quantile(0.95) * 1e3));
    entry.Set("p99_ms", Json::Number(h.Quantile(0.99) * 1e3));
    entry.Set("max_ms", Json::Number(h.max * 1e3));
    entry.Set("mean_ms",
              Json::Number(h.count > 0 ? h.sum / static_cast<double>(h.count) * 1e3
                                       : 0.0));
    latency.Set(name.substr(prefix.size()), std::move(entry));
  }
  Json response = OkResponse(request);
  response.Set("queue_depth", Json::Int(static_cast<int64_t>(queued)));
  response.Set("shards", Json::Int(static_cast<int64_t>(shards_.size())));
  response.Set("sessions", Json::Int(static_cast<int64_t>(sessions_.size())));
  response.Set("latency", std::move(latency));
  response.Set("counters", std::move(counters));
  response.Set("gauges", std::move(gauges));
  response.Set("timers", std::move(timers));
  return response;
}

}  // namespace fastofd
