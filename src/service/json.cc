#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/parse.h"

namespace fastofd {

namespace {

const Json kNullJson;
const std::string kEmptyString;

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    j.int_ = static_cast<int64_t>(v);
    j.is_int_ = true;
  }
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = static_cast<double>(v);
  j.int_ = v;
  j.is_int_ = true;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool(bool def) const { return is_bool() ? bool_ : def; }

double Json::AsDouble(double def) const { return is_number() ? num_ : def; }

int64_t Json::AsInt(int64_t def) const {
  if (!is_number()) return def;
  return is_int_ ? int_ : static_cast<int64_t>(num_);
}

const std::string& Json::AsString() const {
  return is_string() ? str_ : kEmptyString;
}

size_t Json::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  return 0;
}

const Json& Json::At(size_t i) const {
  if (!is_array() || i >= arr_.size()) return kNullJson;
  return arr_[i];
}

Json& Json::Push(Json v) {
  FASTOFD_CHECK(is_array());
  arr_.push_back(std::move(v));
  return *this;
}

bool Json::Has(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, _] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::Get(const std::string& key) const {
  if (is_object()) {
    for (const auto& [k, v] : obj_) {
      if (k == key) return v;
    }
  }
  return kNullJson;
}

Json& Json::Set(std::string key, Json value) {
  FASTOFD_CHECK(is_object());
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      char buf[40];
      if (is_int_) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
      } else {
        std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf.
      }
      *out += buf;
      return;
    }
    case Type::kString: EscapeTo(str_, out); return;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out->push_back(',');
        arr_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out->push_back(',');
        EscapeTo(obj_[i].first, out);
        out->push_back(':');
        obj_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Error("json: trailing characters at offset " +
                           std::to_string(pos_));
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) {
    return Status::Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't':
      case 'f':
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(Json* out) {
    auto match = [&](std::string_view lit) {
      if (text_.substr(pos_, lit.size()) == lit) {
        pos_ += lit.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      *out = Json::Bool(true);
      return Status::Ok();
    }
    if (match("false")) {
      *out = Json::Bool(false);
      return Status::Ok();
    }
    if (match("null")) {
      *out = Json::Null();
      return Status::Ok();
    }
    return Fail("invalid literal");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("invalid number");
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (is_int) {
      Result<int64_t> v = ParseInt64(num);
      if (v.ok()) {
        *out = Json::Int(v.value());
        return Status::Ok();
      }
      // An integer literal too large for int64 falls through to the double
      // path (instead of silently saturating to INT64_MAX).
    }
    Result<double> v = ParseDouble(num);
    if (!v.ok()) return Fail("invalid number");
    *out = Json::Number(v.value());
    return Status::Ok();
  }

  Status ParseString(Json* out) {
    std::string s;
    Status st = ParseRawString(&s);
    if (!st.ok()) return st;
    *out = Json::Str(std::move(s));
    return Status::Ok();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — fine for the identifiers we carry).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      Json elem;
      Status s = ParseValue(&elem, depth + 1);
      if (!s.ok()) return s;
      out->Push(std::move(elem));
      SkipWs();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      std::string key;
      Status s = ParseRawString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace fastofd
