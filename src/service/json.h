// Minimal JSON value type for the fastofd service protocol.
//
// The service speaks newline-delimited JSON (docs/protocol.md); this is the
// one place in the tree that parses untrusted wire input, so the parser is
// strict (complete-input, depth-limited) and returns Status instead of
// aborting. Numbers preserve int64 exactness where possible — row ids and
// counters round-trip without float formatting.

#ifndef FASTOFD_SERVICE_JSON_H_
#define FASTOFD_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fastofd {

/// An immutable-by-convention JSON value: null, bool, number, string,
/// array, or object (insertion-ordered keys).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Int(int64_t v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Nesting is limited to 64 levels.
  static Result<Json> Parse(std::string_view text);

  /// Compact serialization (no whitespace); round-trips Parse.
  std::string Dump() const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; defaults apply on type mismatch, so callers can read
  /// optional request fields without checking types first.
  bool AsBool(bool def = false) const;
  double AsDouble(double def = 0.0) const;
  int64_t AsInt(int64_t def = 0) const;
  const std::string& AsString() const;  // Empty string on mismatch.

  // --- Arrays ---
  size_t size() const;
  /// items()[i]; Null for out-of-range or non-array.
  const Json& At(size_t i) const;
  const std::vector<Json>& items() const { return arr_; }
  Json& Push(Json v);  // Returns *this for chaining. Array only.

  // --- Objects ---
  bool Has(const std::string& key) const;
  /// Member value; Null when absent or non-object.
  const Json& Get(const std::string& key) const;
  Json& Set(std::string key, Json value);  // Returns *this. Object only.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;  // Number fits an int64 exactly.
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_JSON_H_
