#include "service/session.h"

#include <utility>

#include "common/audit.h"
#include "common/csv.h"
#include "common/timer.h"
#include "ofd/sigma_io.h"

namespace fastofd {

Session::Session(std::string name, Relation rel, Ontology ontology,
                 int64_t cache_budget_bytes, MetricsRegistry* metrics)
    : name_(std::move(name)),
      rel_(std::move(rel)),
      ontology_(std::move(ontology)),
      index_(ontology_, rel_.dict()),
      cache_(rel_, cache_budget_bytes, metrics) {}

Result<std::unique_ptr<Session>> Session::Open(
    std::string name, const std::string& data_path,
    const std::string& ontology_path, const std::string& sigma_path,
    int64_t cache_budget_bytes, MetricsRegistry* metrics) {
  Timer timer;
  auto csv = ReadCsvFile(data_path);
  if (!csv.ok()) return csv.status();
  auto rel = Relation::FromCsv(csv.value());
  if (!rel.ok()) return rel.status();
  auto ont = ReadOntologyFile(ontology_path);
  if (!ont.ok()) return ont.status();

  std::unique_ptr<Session> session(
      new Session(std::move(name), std::move(rel).value(),
                  std::move(ont).value(), cache_budget_bytes, metrics));

  if (!sigma_path.empty()) {
    auto sigma = ReadSigmaFile(sigma_path, session->rel_.schema());
    if (!sigma.ok()) return sigma.status();
    session->sigma_ = std::move(sigma).value();
    session->incremental_ = std::make_unique<IncrementalVerifier>(
        &session->rel_, session->index_, session->sigma_);
    // Pin every antecedent partition: verify requests against this session
    // start from cache hits instead of rebuilding Π*_X.
    for (const Ofd& ofd : session->sigma_) session->cache_.Get(ofd.lhs);
  }
  session->load_seconds_ = timer.Seconds();
  FASTOFD_AUDIT_OK(session->Audit());
  return session;
}

void Session::UpdateCell(RowId row, AttrId attr, ValueId value) {
  if (incremental_ != nullptr) {
    incremental_->UpdateCell(row, attr, value);
  } else {
    rel_.SetId(row, attr, value);
  }
  dirty_attrs_ = dirty_attrs_.With(attr);
}

size_t Session::FlushInvalidations() {
  if (dirty_attrs_.empty()) return 0;
  size_t dropped = cache_.Invalidate(dirty_attrs_);
  dirty_attrs_ = AttrSet();
  return dropped;
}

Status Session::Audit() const {
  // Post-load updates intern new dictionary values without recompiling the
  // index (snapshot semantics), so the relaxed containment audit applies.
  Status index_ok =
      AuditOntologyIndex(ontology_, rel_.dict(), index_,
                         /*allow_unindexed_values=*/true);
  if (!index_ok.ok()) return index_ok;
  Status cache_ok = cache_.AuditInvariants();
  if (!cache_ok.ok()) return cache_ok;
  if (incremental_ != nullptr) return incremental_->AuditState();
  return Status::Ok();
}

Status SessionRegistry::Add(std::unique_ptr<Session> session) {
  MutexLock lock(mu_);
  const std::string& name = session->name();
  if (sessions_.count(name) != 0) {
    return Status::Error("session '" + name + "' already exists");
  }
  sessions_.emplace(name, std::move(session));
  return Status::Ok();
}

Status SessionRegistry::Remove(const std::string& name) {
  MutexLock lock(mu_);
  if (sessions_.erase(name) == 0) {
    return Status::Error("session '" + name + "' not found");
  }
  return Status::Ok();
}

std::shared_ptr<Session> SessionRegistry::Find(const std::string& name) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::string> SessionRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, _] : sessions_) names.push_back(name);
  return names;
}

size_t SessionRegistry::size() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

Status SessionRegistry::AuditInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [name, session] : sessions_) {
    if (session == nullptr) {
      return audit::internal::Counted(
          Status::Error("registry audit: null session under '" + name + "'"));
    }
    if (session->name() != name) {
      return audit::internal::Counted(
          Status::Error("registry audit: session '" + session->name() +
                        "' registered under key '" + name + "'"));
    }
    Status session_ok = session->Audit();
    if (!session_ok.ok()) return session_ok;
  }
  return audit::internal::Counted(Status::Ok());
}

Status SessionRegistry::AuditOne(const std::string& name) const {
  std::shared_ptr<Session> target;
  {
    MutexLock lock(mu_);
    for (const auto& [key, session] : sessions_) {
      if (session == nullptr) {
        return audit::internal::Counted(
            Status::Error("registry audit: null session under '" + key + "'"));
      }
      if (session->name() != key) {
        return audit::internal::Counted(
            Status::Error("registry audit: session '" + session->name() +
                          "' registered under key '" + key + "'"));
      }
    }
    auto it = sessions_.find(name);
    if (it != sessions_.end()) target = it->second;
  }
  // Deep audit outside mu_: the shared_ptr pins the session, and the caller
  // holds it exclusively (writer) or under writer exclusion (reader), so
  // the state cannot mutate underneath the audit.
  if (target != nullptr) {
    Status session_ok = target->Audit();
    if (!session_ok.ok()) return session_ok;
  }
  return audit::internal::Counted(Status::Ok());
}

}  // namespace fastofd
