// Sessions: loaded relation + ontology + Σ kept hot between requests.
//
// A batch CLI invocation pays CSV parsing, dictionary interning, index
// compilation, and partition building on every call and then throws the
// state away. A Session pays them once at `load` and keeps the stripped
// partitions of every OFD antecedent pinned in a memory-budgeted
// PartitionCache, plus an IncrementalVerifier so `update` requests maintain
// violation state online instead of re-verifying from scratch.

#ifndef FASTOFD_SERVICE_SESSION_H_
#define FASTOFD_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "ofd/incremental.h"
#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

/// One loaded (relation, ontology, Σ) triple with warm derived state.
///
/// Concurrency contract (enforced by ServiceServer's shard layer, not by
/// locks in here): mutating requests (`update`, `load`, `unload`) hold the
/// session exclusively — the owning shard marks the session busy and drains
/// every in-flight snapshot reader first — while read-only requests
/// (`verify`, `discover`) may run concurrently with each other against the
/// quiescent state. The seqlock-style version() counter makes the contract
/// checkable: writers bracket mutations with BeginWrite()/EndWrite() (odd =
/// mutating), and readers audit that the version is even and unchanged
/// across their whole computation.
class Session {
 public:
  /// Loads the files, compiles the index, builds the incremental verifier
  /// (when Σ is given), and pre-warms the partition cache with every OFD
  /// antecedent. `sigma_path` may be empty: verify/update then require Σ to
  /// be supplied later or fail, but discover works.
  static Result<std::unique_ptr<Session>> Open(std::string name,
                                               const std::string& data_path,
                                               const std::string& ontology_path,
                                               const std::string& sigma_path,
                                               int64_t cache_budget_bytes,
                                               MetricsRegistry* metrics);

  const std::string& name() const { return name_; }
  Relation& rel() { return rel_; }
  const Ontology& ontology() const { return ontology_; }
  const SynonymIndex& index() const { return index_; }
  PartitionCache& cache() { return cache_; }
  const SigmaSet& sigma() const { return sigma_; }
  bool has_sigma() const { return !sigma_.empty(); }

  /// Null iff no Σ was loaded.
  IncrementalVerifier* incremental() { return incremental_.get(); }

  /// Seqlock-style session version: even = quiescent, odd = an exclusive
  /// writer is mutating. Reads are lock-free; writes are serialized by the
  /// server's per-session exclusivity, so fetch_add never races fetch_add.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  /// Writer entry: version becomes odd. Call only under session exclusivity.
  void BeginWrite() { version_.fetch_add(1, std::memory_order_acq_rel); }
  /// Writer exit: version becomes even again.
  void EndWrite() { version_.fetch_add(1, std::memory_order_release); }

  /// Applies one cell update through the incremental verifier and records
  /// the touched attribute for partition-cache invalidation at batch end.
  void UpdateCell(RowId row, AttrId attr, ValueId value);

  /// Invalidates cached partitions over attributes touched since the last
  /// call; returns how many entries were dropped.
  size_t FlushInvalidations();

  /// Wall-clock seconds spent inside Open() (reported by `list`).
  double load_seconds() const { return load_seconds_; }

  /// Deep invariant audit (common/audit.h): the compiled synonym index
  /// agrees with the ontology (relaxed for values interned after load — see
  /// AuditOntologyIndex), the partition cache's accounting matches its
  /// contents, and, when Σ is loaded, the incremental verifier's group maps
  /// pass AuditState. Returns the first violation found.
  Status Audit() const;

 private:
  Session(std::string name, Relation rel, Ontology ontology,
          int64_t cache_budget_bytes, MetricsRegistry* metrics);

  std::string name_;
  Relation rel_;
  Ontology ontology_;
  SynonymIndex index_;
  PartitionCache cache_;
  SigmaSet sigma_;
  std::unique_ptr<IncrementalVerifier> incremental_;
  AttrSet dirty_attrs_;
  double load_seconds_ = 0.0;
  // Lock-free seqlock counter; writes serialized by session exclusivity.
  std::atomic<uint64_t> version_{0};
};

/// Name -> Session map guarding the service's `load`/`unload`/`list` ops.
/// Thread-safe for registration and lookup from any executor shard. Find
/// hands out shared ownership so `list` (which walks every session from one
/// shard) can never observe a concurrent `unload` from another shard as a
/// use-after-free: the map entry disappears immediately, the storage
/// survives until the last in-flight reference drops.
class SessionRegistry {
 public:
  /// Fails with "exists" if the name is taken.
  Status Add(std::unique_ptr<Session> session) EXCLUDES(mu_);

  /// Fails with "not found" if absent.
  Status Remove(const std::string& name) EXCLUDES(mu_);

  /// Nullptr when absent.
  std::shared_ptr<Session> Find(const std::string& name) EXCLUDES(mu_);

  std::vector<std::string> Names() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

  /// Deep invariant audit (common/audit.h): every registered session is
  /// non-null, keyed by its own name, and passes Session::Audit. Returns
  /// the first violation found. Only safe when no session is concurrently
  /// mutating (e.g. tests, or a drained server).
  Status AuditInvariants() const EXCLUDES(mu_);

  /// Per-request audit scope for the sharded executor: structural checks on
  /// the whole registry (null entries, key/name agreement) under the lock,
  /// then a deep Session::Audit of `name` only — the one session the
  /// requesting shard holds exclusively (or reads while writers are
  /// excluded), so the deep audit cannot race another shard's writer.
  /// Unknown or empty names get the structural pass alone.
  Status AuditOne(const std::string& name) const EXCLUDES(mu_);

 private:
  // Lock order: mu_ is held across Session::Audit in AuditInvariants, so it
  // sits outside each session's PartitionCache::mu_ (which in turn sits
  // outside the MetricsRegistry lock). AuditOne runs the deep audit after
  // releasing mu_ (the shared_ptr keeps the session alive), so concurrent
  // Find/Add/Remove from other shards never stall behind it.
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_ GUARDED_BY(mu_);
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_SESSION_H_
