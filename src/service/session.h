// Sessions: loaded relation + ontology + Σ kept hot between requests.
//
// A batch CLI invocation pays CSV parsing, dictionary interning, index
// compilation, and partition building on every call and then throws the
// state away. A Session pays them once at `load` and keeps the stripped
// partitions of every OFD antecedent pinned in a memory-budgeted
// PartitionCache, plus an IncrementalVerifier so `update` requests maintain
// violation state online instead of re-verifying from scratch.

#ifndef FASTOFD_SERVICE_SESSION_H_
#define FASTOFD_SERVICE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "ofd/incremental.h"
#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

/// One loaded (relation, ontology, Σ) triple with warm derived state.
/// Sessions are owned by the SessionRegistry and used by one request at a
/// time (the service executor serializes request execution), so the session
/// itself needs no internal locking.
class Session {
 public:
  /// Loads the files, compiles the index, builds the incremental verifier
  /// (when Σ is given), and pre-warms the partition cache with every OFD
  /// antecedent. `sigma_path` may be empty: verify/update then require Σ to
  /// be supplied later or fail, but discover works.
  static Result<std::unique_ptr<Session>> Open(std::string name,
                                               const std::string& data_path,
                                               const std::string& ontology_path,
                                               const std::string& sigma_path,
                                               int64_t cache_budget_bytes,
                                               MetricsRegistry* metrics);

  const std::string& name() const { return name_; }
  Relation& rel() { return rel_; }
  const Ontology& ontology() const { return ontology_; }
  const SynonymIndex& index() const { return index_; }
  PartitionCache& cache() { return cache_; }
  const SigmaSet& sigma() const { return sigma_; }
  bool has_sigma() const { return !sigma_.empty(); }

  /// Null iff no Σ was loaded.
  IncrementalVerifier* incremental() { return incremental_.get(); }

  /// Applies one cell update through the incremental verifier and records
  /// the touched attribute for partition-cache invalidation at batch end.
  void UpdateCell(RowId row, AttrId attr, ValueId value);

  /// Invalidates cached partitions over attributes touched since the last
  /// call; returns how many entries were dropped.
  size_t FlushInvalidations();

  /// Wall-clock seconds spent inside Open() (reported by `list`).
  double load_seconds() const { return load_seconds_; }

  /// Deep invariant audit (common/audit.h): the compiled synonym index
  /// agrees with the ontology (relaxed for values interned after load — see
  /// AuditOntologyIndex), the partition cache's accounting matches its
  /// contents, and, when Σ is loaded, the incremental verifier's group maps
  /// pass AuditState. Returns the first violation found.
  Status Audit() const;

 private:
  Session(std::string name, Relation rel, Ontology ontology,
          int64_t cache_budget_bytes, MetricsRegistry* metrics);

  std::string name_;
  Relation rel_;
  Ontology ontology_;
  SynonymIndex index_;
  PartitionCache cache_;
  SigmaSet sigma_;
  std::unique_ptr<IncrementalVerifier> incremental_;
  AttrSet dirty_attrs_;
  double load_seconds_ = 0.0;
};

/// Name -> Session map guarding the service's `load`/`unload`/`list` ops.
/// Thread-safe for registration; the returned Session pointers are only
/// dereferenced by the executor thread.
class SessionRegistry {
 public:
  /// Fails with "exists" if the name is taken.
  Status Add(std::unique_ptr<Session> session) EXCLUDES(mu_);

  /// Fails with "not found" if absent.
  Status Remove(const std::string& name) EXCLUDES(mu_);

  /// Nullptr when absent.
  Session* Find(const std::string& name) EXCLUDES(mu_);

  std::vector<std::string> Names() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

  /// Deep invariant audit (common/audit.h): every registered session is
  /// non-null, keyed by its own name, and passes Session::Audit. Returns
  /// the first violation found.
  Status AuditInvariants() const EXCLUDES(mu_);

 private:
  // Lock order: mu_ is held across Session::Audit in AuditInvariants, so it
  // sits outside each session's PartitionCache::mu_ (which in turn sits
  // outside the MetricsRegistry lock).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_ GUARDED_BY(mu_);
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_SESSION_H_
