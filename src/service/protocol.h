// Wire protocol constants for the fastofd cleaning service.
//
// The service speaks newline-delimited JSON over a UNIX-domain or TCP
// socket: one request object per line in, one response object per line out.
// docs/protocol.md documents every request/response shape; this header pins
// the op names and error codes both sides compile against.
//
// Request envelope:  {"id": <any>, "op": "<name>", ...op fields}
// Response envelope: {"id": <echoed>, "ok": true, ...}            on success
//                    {"id": <echoed>, "ok": false,
//                     "code": <int>, "error": "<message>"}        on failure

#ifndef FASTOFD_SERVICE_PROTOCOL_H_
#define FASTOFD_SERVICE_PROTOCOL_H_

#include <string>

namespace fastofd {

/// HTTP-flavoured error codes carried in failure responses.
enum ServiceCode {
  kCodeBadRequest = 400,       // Malformed JSON / missing or invalid fields.
  kCodeNotFound = 404,         // Unknown session or attribute name.
  kCodeConflict = 409,         // Session name already loaded.
  kCodeOverloaded = 503,       // Wait list full, server draining, or the
                               // request was shed from the wait list because
                               // its deadline could no longer be met.
  kCodeDeadlineExceeded = 504, // Deadline elapsed while queued (the request
                               // reached an executor, too late to run).
  kCodeInternal = 500,         // Library-level failure.
};

/// Request op names.
namespace ops {
inline constexpr char kPing[] = "ping";         // Liveness probe.
inline constexpr char kLoad[] = "load";         // Open a session from files.
inline constexpr char kUnload[] = "unload";     // Drop a session.
inline constexpr char kList[] = "list";         // Enumerate sessions.
inline constexpr char kVerify[] = "verify";     // Verify Σ against a session.
inline constexpr char kDiscover[] = "discover"; // Run OFD discovery.
inline constexpr char kClean[] = "clean";       // Run OFDClean (read-only).
inline constexpr char kUpdate[] = "update";     // Apply cell updates online.
inline constexpr char kStats[] = "stats";       // Metrics + latency quantiles.
inline constexpr char kSleep[] = "sleep";       // Debug: hold the executor.
inline constexpr char kShutdown[] = "shutdown"; // Begin graceful drain.
}  // namespace ops

/// True for ops the sharded executor may run as concurrent snapshot reads:
/// they never mutate the named session, so any number of them can run
/// against its quiescent state while writers are excluded. Everything else
/// (including sessionless ops like `list`, which serialize on the "" key)
/// executes exclusively. See docs/architecture.md "Service layer".
inline bool IsSnapshotReadOp(const std::string& op) {
  return op == ops::kVerify || op == ops::kDiscover;
}

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_PROTOCOL_H_
