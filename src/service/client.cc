#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "service/net_util.h"

namespace fastofd {

ServiceClient::~ServiceClient() { Close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void ServiceClient::Close() {
  if (fd_ != -1) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ServiceClient> ServiceClient::ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Error("socket: failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::Error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Error("connect " + path + ": " + ErrnoString(errno));
  }
  ServiceClient client;
  client.fd_ = fd;
  return client;
}

Result<ServiceClient> ServiceClient::ConnectTcp(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Error("socket: failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Error("connect 127.0.0.1:" + std::to_string(port) + ": " +
                         ErrnoString(errno));
  }
  ServiceClient client;
  client.fd_ = fd;
  return client;
}

Status ServiceClient::Send(const Json& request) {
  if (fd_ == -1) return Status::Error("client not connected");
  std::string line = request.Dump();
  line.push_back('\n');
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      Close();
      return Status::Error("send failed: connection closed");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Json> ServiceClient::ReadResponse() {
  if (fd_ == -1) return Status::Error("client not connected");
  char chunk[65536];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Json::Parse(line);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      return Status::Error("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Json> ServiceClient::Call(const Json& request) {
  Status sent = Send(request);
  if (!sent.ok()) return sent;
  return ReadResponse();
}

}  // namespace fastofd
