// Small shared helpers for the service's socket code.

#ifndef FASTOFD_SERVICE_NET_UTIL_H_
#define FASTOFD_SERVICE_NET_UTIL_H_

#include <string.h>

#include <string>

namespace fastofd {
namespace internal {

// strerror_r comes in two flavours; these overloads dispatch on whichever
// one the libc provides. XSI: int return, message written into buf. GNU:
// char* return (possibly a static string, buf may be unused).
inline std::string ErrnoResult(int rc, const char* buf, int err) {
  return rc == 0 ? std::string(buf)
                 : "errno " + std::to_string(err);
}
inline std::string ErrnoResult(const char* message, const char* /*buf*/,
                               int /*err*/) {
  return message;
}

}  // namespace internal

/// Thread-safe strerror(err): the plain strerror writes into shared static
/// storage (clang-tidy concurrency-mt-unsafe), and error paths here run on
/// listener/reader/executor threads concurrently.
inline std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return internal::ErrnoResult(strerror_r(err, buf, sizeof(buf)), buf, err);
}

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_NET_UTIL_H_
