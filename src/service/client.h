// Minimal NDJSON client for the fastofd service: one blocking request /
// response call at a time over a UNIX-domain or TCP connection. Used by the
// `fastofd client` subcommand, the service tests, and bench_serve.

#ifndef FASTOFD_SERVICE_CLIENT_H_
#define FASTOFD_SERVICE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "service/json.h"

namespace fastofd {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  static Result<ServiceClient> ConnectUnix(const std::string& path);
  static Result<ServiceClient> ConnectTcp(int port);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  /// Sends one request line and blocks for the next response line. Safe
  /// with a single outstanding request (the next line must answer it), but
  /// pipelining clients should match responses to requests by `id`: the
  /// sharded executor preserves per-session FIFO for mutating ops, while
  /// rejections, shed 503s, and concurrent snapshot reads (verify/discover)
  /// may complete out of order relative to other outstanding requests.
  Result<Json> Call(const Json& request);

  /// Sends a request without waiting for the response (fire-and-forget
  /// writes; pair with ReadResponse to pipeline).
  Status Send(const Json& request);

  /// Blocks for the next response line.
  Result<Json> ReadResponse();

  bool connected() const { return fd_ != -1; }
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_CLIENT_H_
