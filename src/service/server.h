// The fastofd cleaning service: a resident daemon answering NDJSON requests
// over a UNIX-domain or TCP socket.
//
// Threading model (see docs/protocol.md for the wire format):
//
//   listener ──accept──► one reader thread per connection
//                              │  parse line → Request
//                              ▼
//                     bounded RequestQueue          (admission control:
//                              │                     full → 503, closed
//                              ▼                     while draining → 503)
//                      one executor thread
//                        · pops requests FIFO, micro-batching consecutive
//                          `update` requests on the same session
//                        · checks the per-request deadline (expired → 504)
//                        · runs handlers; compute-heavy ops fan out on the
//                          shared ThreadPool
//                        · writes each response back on the request's
//                          connection
//
// Graceful drain: NotifyShutdown() (async-signal-safe; SIGTERM handlers and
// the `shutdown` op call it) stops the listener, closes the queue so new
// requests are rejected with 503, lets the executor finish every queued
// request, and only then tears connections down — no accepted request loses
// its response. Wait() returns once the drain completes; the caller then
// flushes metrics.
//
// Observability: per-op request counters and latency histograms
// (p50/p95/p99 via `stats`), a queue-depth gauge, queue-wait and batch-size
// histograms, and rejection/deadline counters, all in the shared
// MetricsRegistry under `serve.*`.

#ifndef FASTOFD_SERVICE_SERVER_H_
#define FASTOFD_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/thread_pool.h"
#include "relation/partition.h"
#include "service/json.h"
#include "service/session.h"

namespace fastofd {

/// Service tunables, mirrored by `fastofd serve` flags.
struct ServerConfig {
  /// Path for a UNIX-domain socket; empty selects TCP.
  std::string unix_socket;
  /// TCP port on 127.0.0.1 (0 = ephemeral, see ServiceServer::port()).
  int tcp_port = 0;
  /// Worker threads of the shared execution pool.
  int threads = 1;
  /// Admission control: maximum queued (not yet executing) requests.
  int queue_depth = 64;
  /// Default per-request deadline in ms (0 = none); requests may override
  /// with a `deadline_ms` field. The deadline covers time spent queued.
  double default_deadline_ms = 0.0;
  /// Maximum consecutive same-session `update` requests coalesced into one
  /// executor batch.
  int max_update_batch = 64;
  /// Partition-cache budget per session, in bytes.
  int64_t cache_budget_bytes = PartitionCache::kUnbounded;
};

class ServiceServer {
 public:
  /// `metrics` must outlive the server.
  ServiceServer(ServerConfig config, MetricsRegistry* metrics);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the listener + executor threads.
  Status Start();

  /// Begins a graceful drain. Async-signal-safe (writes one byte to an
  /// internal pipe); idempotent.
  void NotifyShutdown();

  /// Blocks until the drain completes and all threads are joined.
  void Wait();

  /// Bound TCP port (valid after Start() when configured for TCP).
  int port() const { return port_; }

  /// Executes one request inline on the calling thread, bypassing the
  /// socket and queue — the deterministic core the wire path wraps.
  /// Exposed for tests and the in-process bench.
  Json Execute(const Json& request);

 private:
  // write_mu serializes writers and guards fd against the reader's close.
  // Lock order: always taken *inside* conns_mu_ (Wait() iterates conns_
  // under conns_mu_ and locks each write_mu nested) — not expressible as an
  // attribute across classes, so stated here. The owning reader snapshots
  // fd into a local for its recv loop: it is the only thread that ever
  // closes the fd, so the snapshot cannot go stale under it.
  struct Connection {
    Mutex write_mu;
    int fd GUARDED_BY(write_mu) = -1;
  };

  struct Request {
    Json msg;
    std::string op;
    std::string session;
    std::shared_ptr<Connection> conn;
    double enqueue_seconds = 0.0;
    double deadline_seconds = 0.0;  // Absolute; 0 = none.
  };

  /// Bounded MPSC queue with admission control.
  class Queue {
   public:
    explicit Queue(size_t depth) : depth_(depth) {}
    /// False when full or closed (caller responds 503). The request is only
    /// consumed on success; on rejection the caller's object is untouched so
    /// it can still build the error response (echoing the request id).
    bool Push(Request&& request) EXCLUDES(mu_);
    /// Pops one request, or a run of consecutive same-session `update`
    /// requests (at most `max_updates`). False when closed and empty.
    bool PopBatch(std::vector<Request>* out, int max_updates) EXCLUDES(mu_);
    void Close() EXCLUDES(mu_);
    size_t size() const EXCLUDES(mu_);

   private:
    const size_t depth_;
    mutable Mutex mu_;  // Leaf lock: nothing is acquired under it.
    CondVar cv_;
    std::deque<Request> items_ GUARDED_BY(mu_);
    bool closed_ GUARDED_BY(mu_) = false;
  };

  void ListenerLoop();
  /// `self` is this reader's handle in readers_; on exit the reader moves it
  /// to finished_readers_ for the listener (or Wait) to join.
  void ReaderLoop(std::shared_ptr<Connection> conn,
                  std::list<std::thread>::iterator self);
  void ExecutorLoop();
  void BeginDrain();
  /// Joins every reader thread that has finished its loop. Cheap: joined
  /// threads have already exited.
  void ReapFinishedReaders();

  void WriteResponse(Connection& conn, const Json& response);
  void ExecuteBatch(std::vector<Request>& batch);

  /// Deep invariant audit (common/audit.h): a popped batch is non-empty,
  /// within the micro-batch bound, every request carries a live connection
  /// and an op matching its message, and multi-request batches are runs of
  /// same-session updates — the shape Queue::PopBatch promises.
  Status AuditBatchShape(const std::vector<Request>& batch) const;

  // --- Handlers (executor thread) ---
  Json HandlePing(const Json& request);
  Json HandleLoad(const Json& request);
  Json HandleUnload(const Json& request);
  Json HandleList(const Json& request);
  Json HandleVerify(const Json& request);
  Json HandleDiscover(const Json& request);
  Json HandleClean(const Json& request);
  Json HandleUpdate(const Json& request);
  Json HandleStats(const Json& request);
  Json HandleSleep(const Json& request);

  const ServerConfig config_;
  MetricsRegistry* const metrics_;
  ThreadPool pool_;
  SessionRegistry sessions_;
  Queue queue_;

  // listen_fd_ is single-threaded by phase: written by Start() before any
  // thread exists, then owned by the listener thread (ListenerLoop /
  // BeginDrain), and read by the destructor only after every thread joined.
  int listen_fd_ = -1;
  int port_ = 0;
  int shutdown_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::thread listener_;
  std::thread executor_;

  // Guards the connection registry and reader-thread accounting. Lock order:
  // conns_mu_ before any Connection::write_mu (see Connection above).
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);
  // Reader threads are joined, never detached: live handles sit in readers_,
  // and each reader moves its own handle to finished_readers_ on exit.
  std::list<std::thread> readers_ GUARDED_BY(conns_mu_);
  std::list<std::thread> finished_readers_ GUARDED_BY(conns_mu_);
  int readers_active_ GUARDED_BY(conns_mu_) = 0;
  CondVar readers_cv_;

  bool started_ = false;
  bool joined_ = false;
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_SERVER_H_
