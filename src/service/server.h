// The fastofd cleaning service: a resident daemon answering NDJSON requests
// over a UNIX-domain or TCP socket.
//
// Threading model (see docs/protocol.md for the wire format and
// docs/architecture.md "Service layer" for the shard diagram):
//
//   listener ──accept──► one reader thread per connection
//                              │  parse line → Request
//                              │  route: FNV-1a(session) % num_shards
//                              ▼
//        ┌─ shard 0 ─────────┐ ┌─ shard 1 ─────────┐  … N shards, default
//        │ queue   (bounded) │ │ queue   (bounded) │  min(hw/2, 8)
//        │ parked  (bounded) │ │ parked  (bounded) │
//        │ busy / readers    │ │ busy / readers    │
//        │ executor thread ◄─┼─┼── steals when idle│
//        └───────────────────┘ └───────────────────┘
//
// Admission (reader thread): a request is queued while the shard's bounded
// queue has room, *parked* in the shard's bounded wait list when it does
// not, and rejected 503 only when the wait list is also full (or the server
// is draining). Parked requests are shed 503 the moment their deadline can
// no longer be met — load-shedding by deadline, not by instantaneous depth.
//
// Execution (per-shard executor threads): each executor pops the first
// request of its shard whose session has no exclusive writer, preserving
// per-session FIFO order (skipping a session blocks all its later
// requests). Mutating ops mark the session busy and run exclusively, with
// consecutive same-session `update` requests micro-batched; read-only ops
// (`verify`/`discover`) take a reader slot and fan out to the shared
// work-stealing ThreadPool, so concurrent clients on one hot session no
// longer serialize — a writer drains the session's readers (drain_cv)
// before mutating, and Session::version() seqlock-audits the quiescence.
// An executor with an empty shard steals eligible requests from other
// shards (busy/reader accounting stays in the victim shard, so per-session
// ordering survives stealing).
//
// Graceful drain: NotifyShutdown() (async-signal-safe; SIGTERM handlers and
// the `shutdown` op call it) stops the listener, closes every shard so new
// requests are rejected with 503, lets each executor finish every queued
// *and parked* request, waits out in-flight snapshot reads, and only then
// tears connections down — no accepted request loses its response. Wait()
// returns once the drain completes; the caller then flushes metrics.
//
// Observability: per-op request counters and latency histograms
// (p50/p95/p99 via `stats`), per-shard depth/parked gauges and
// stolen/executed counters under `serve.shard.<i>.*`, queue-wait and
// batch-size histograms, and rejection/shed/deadline counters, all in the
// shared MetricsRegistry under `serve.*`.

#ifndef FASTOFD_SERVICE_SERVER_H_
#define FASTOFD_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "relation/partition.h"
#include "service/json.h"
#include "service/session.h"

namespace fastofd {

/// Service tunables, mirrored by `fastofd serve` flags.
struct ServerConfig {
  /// Path for a UNIX-domain socket; empty selects TCP.
  std::string unix_socket;
  /// TCP port on 127.0.0.1 (0 = ephemeral, see ServiceServer::port()).
  int tcp_port = 0;
  /// Worker threads of the shared execution pool.
  int threads = 1;
  /// Session-shard executors (0 = auto: min(max(1, hw/2), 8)). Requests
  /// route to shards by a stable hash of the session id.
  int shards = 0;
  /// Admission control: maximum queued (not yet executing) requests per
  /// shard.
  int queue_depth = 64;
  /// Bounded wait list per shard: requests that find the queue full park
  /// here until capacity frees or their deadline can no longer be met
  /// (shed 503). 0 disables parking (hard 503 at queue_depth).
  int max_parked = 1024;
  /// Default per-request deadline in ms (0 = none); requests may override
  /// with a `deadline_ms` field. The deadline covers time spent queued.
  double default_deadline_ms = 0.0;
  /// Maximum consecutive same-session `update` requests coalesced into one
  /// executor batch.
  int max_update_batch = 64;
  /// Partition-cache budget per session, in bytes.
  int64_t cache_budget_bytes = PartitionCache::kUnbounded;
};

class ServiceServer {
 public:
  /// `metrics` must outlive the server.
  ServiceServer(ServerConfig config, MetricsRegistry* metrics);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the listener + per-shard executor threads.
  Status Start();

  /// Begins a graceful drain. Async-signal-safe (writes one byte to an
  /// internal pipe); idempotent.
  void NotifyShutdown();

  /// Blocks until the drain completes and all threads are joined.
  void Wait();

  /// Bound TCP port (valid after Start() when configured for TCP).
  int port() const { return port_; }

  /// Executes one request inline on the calling thread, bypassing the
  /// socket and shard queues — the deterministic core the wire path wraps.
  /// Exposed for tests and the in-process bench. Not safe concurrently
  /// with itself or with a started server's traffic.
  Json Execute(const Json& request);

  /// The stable session → shard routing (FNV-1a over the session id).
  /// Exposed so tests can construct colliding / non-colliding session
  /// names deterministically.
  static size_t ShardOf(const std::string& session, size_t shard_count);

  /// Number of shard executors this server resolved (>= 1).
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  // write_mu serializes writers and guards fd against the reader's close.
  // Lock order: always taken *inside* conns_mu_ (Wait() iterates conns_
  // under conns_mu_ and locks each write_mu nested) — not expressible as an
  // attribute across classes, so stated here. The owning reader snapshots
  // fd into a local for its recv loop: it is the only thread that ever
  // closes the fd, so the snapshot cannot go stale under it.
  struct Connection {
    Mutex write_mu;
    int fd GUARDED_BY(write_mu) = -1;
  };

  struct Request {
    Json msg;
    std::string op;
    std::string session;
    std::shared_ptr<Connection> conn;
    double enqueue_seconds = 0.0;
    double deadline_seconds = 0.0;  // Absolute; 0 = none.
  };

  /// One session shard: a bounded admitted queue, a bounded wait list, the
  /// per-session exclusion state, and the executor thread that drains them.
  ///
  /// Shard mutexes form an *unordered family*: code must hold at most one
  /// Shard::mu at a time (a thief locks only the victim's mu, never its own
  /// alongside), because lock order across the elements of a mutex array is
  /// not expressible to the analysis — see src/common/sync.h.
  struct Shard {
    Mutex mu;
    /// Executor sleep/wake: notified on push, busy-clear, and close.
    CondVar work_cv;
    /// Writers wait here until the session's snapshot readers drain.
    CondVar drain_cv;
    /// Admitted, not yet executing; at most config.queue_depth entries.
    std::deque<Request> queue GUARDED_BY(mu);
    /// Bounded wait list: admitted but waiting for queue room; shed 503
    /// when the deadline passes. At most config.max_parked entries.
    std::deque<Request> parked GUARDED_BY(mu);
    /// Sessions currently held by an exclusive writer (possibly executing
    /// on a *different* shard's executor after a steal — the accounting
    /// stays here, in the session's home shard).
    std::set<std::string> busy GUARDED_BY(mu);
    /// Session → number of in-flight snapshot reads on the shared pool.
    std::map<std::string, int> readers GUARDED_BY(mu);
    bool closed GUARDED_BY(mu) = false;
    std::thread executor;
    // Precomputed metric names (constant after construction, unguarded):
    // building "serve.shard.<i>.depth" per request would allocate on the
    // admission hot path.
    std::string depth_gauge;
    std::string parked_gauge;
    std::string stolen_counter;
    std::string executed_counter;
  };

  /// One unit of work popped from a shard: either a single snapshot-read
  /// request (a readers[] slot is already held in `home`) or an exclusive
  /// batch (the session is marked busy in `home`). `home` is the shard the
  /// unit was popped from — the victim, under stealing.
  struct Unit {
    std::vector<Request> batch;
    bool is_read = false;
    Shard* home = nullptr;
  };

  void ListenerLoop();
  /// `self` is this reader's handle in readers_; on exit the reader moves it
  /// to finished_readers_ for the listener (or Wait) to join.
  void ReaderLoop(std::shared_ptr<Connection> conn,
                  std::list<std::thread>::iterator self);
  /// Drains shards_[shard_index], stealing from other shards when idle.
  void ExecutorLoop(int shard_index);
  void BeginDrain();
  /// Joins every reader thread that has finished its loop. Cheap: joined
  /// threads have already exited.
  void ReapFinishedReaders();

  /// Admission (reader threads): queue, else park, else reject (false).
  /// The request is only consumed on success; on rejection the caller's
  /// object is untouched so it can still build the 503 (echoing the id).
  /// Also sheds expired parked requests as a side effect.
  bool ShardPush(Request&& request);
  /// Pops the next eligible unit: sheds expired parked entries into *shed,
  /// promotes parked → queue while there is room, then takes the first
  /// queued request whose session has no exclusive writer (skipping a
  /// session blocks all its later requests — per-session FIFO). Marks the
  /// reader slot / busy entry in `shard` before returning.
  bool PopUnitLocked(Shard& shard, Unit* unit, std::vector<Request>* shed)
      REQUIRES(shard.mu);
  /// Moves parked requests whose deadline can no longer be met into *shed.
  void ShedExpiredLocked(Shard& shard, std::vector<Request>* shed)
      REQUIRES(shard.mu);
  /// Writes the 503 shed responses. Call with no shard mutex held.
  void RespondShed(std::vector<Request>& shed);
  /// Executes one popped unit on the calling executor thread (exclusive
  /// batches run inline after draining the session's readers; snapshot
  /// reads dispatch to the shared pool and return immediately).
  void RunUnit(Unit unit, int executor_shard);
  /// Submits a snapshot read to the pool; the completion releases the
  /// reader slot in unit.home and notifies its drain_cv.
  void DispatchRead(Unit unit);
  /// Publishes the shard's depth/parked gauges. Call outside shard.mu with
  /// sizes snapshotted under it.
  void PublishShardGauges(int shard_index, size_t depth, size_t parked);
  /// Sum of queued + parked requests across shards (locks one at a time).
  size_t TotalQueued();

  void WriteResponse(Connection& conn, const Json& response);
  /// Runs a batch of requests inline: per-request queue-wait/deadline
  /// accounting around Execute, responses written in order.
  void ExecuteBatch(std::vector<Request>& batch);
  /// One request of a batch: deadline check (expired → 504), Execute,
  /// latency observation, response write.
  void ExecuteOne(Request& request);

  /// Deep invariant audit (common/audit.h): a popped batch is non-empty,
  /// within the micro-batch bound, every request carries a live connection
  /// and an op matching its message, and multi-request batches are runs of
  /// same-session updates — the shape PopUnitLocked promises.
  Status AuditBatchShape(const std::vector<Request>& batch) const;

  // --- Handlers (executor threads; verify/discover also pool workers) ---
  Json HandlePing(const Json& request);
  Json HandleLoad(const Json& request);
  Json HandleUnload(const Json& request);
  Json HandleList(const Json& request);
  Json HandleVerify(const Json& request);
  Json HandleDiscover(const Json& request);
  Json HandleClean(const Json& request);
  Json HandleUpdate(const Json& request);
  Json HandleStats(const Json& request);
  Json HandleSleep(const Json& request);

  const ServerConfig config_;
  MetricsRegistry* const metrics_;
  ThreadPool pool_;
  // Long-lived group for in-flight snapshot reads. Declared after pool_ so
  // its destructor (which waits for the reads) runs before the pool's.
  TaskGroup reads_group_;
  SessionRegistry sessions_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // listen_fd_ is single-threaded by phase: written by Start() before any
  // thread exists, then owned by the listener thread (ListenerLoop /
  // BeginDrain), and read by the destructor only after every thread joined.
  int listen_fd_ = -1;
  int port_ = 0;
  int shutdown_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::thread listener_;

  // Guards the connection registry and reader-thread accounting. Lock order:
  // conns_mu_ before any Connection::write_mu (see Connection above).
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);
  // Reader threads are joined, never detached: live handles sit in readers_,
  // and each reader moves its own handle to finished_readers_ on exit.
  std::list<std::thread> readers_ GUARDED_BY(conns_mu_);
  std::list<std::thread> finished_readers_ GUARDED_BY(conns_mu_);
  int readers_active_ GUARDED_BY(conns_mu_) = 0;
  CondVar readers_cv_;

  bool started_ = false;
  bool joined_ = false;
};

}  // namespace fastofd

#endif  // FASTOFD_SERVICE_SERVER_H_
