// Synthetic dataset generation with planted OFDs, controlled error
// injection, and ground-truth bookkeeping (stand-ins for the paper's
// Clinical/LinkedCT and Kiva datasets; see DESIGN.md §1).
//
// A generated instance consists of:
//   - a Relation whose consequent columns draw values from ontology senses
//     (each equivalence class of a planted OFD is generated under one
//     *true* sense — the ground truth for sense-selection accuracy);
//   - the Ontology itself;
//   - the planted OFD set Σ;
//   - the list of injected errors (cell, original value) so repairs can be
//     scored with precision/recall;
//   - the values removed from the ontology by incompleteness injection.

#ifndef FASTOFD_DATAGEN_DATAGEN_H_
#define FASTOFD_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "relation/relation.h"

namespace fastofd {

/// One injected cell error.
struct InjectedError {
  RowId row = 0;
  AttrId attr = 0;
  std::string original;  ///< Ground-truth (clean) value.
  std::string dirty;     ///< Value now in the relation.
};

/// Knobs for dataset generation (paper Table 6 parameters).
struct DataGenConfig {
  /// Number of tuples, the paper's N.
  int num_rows = 1000;
  /// Number of antecedent attribute groups ("context" columns).
  int num_antecedents = 3;
  /// Number of consequent columns whose values come from ontology senses.
  int num_consequents = 2;
  /// Extra unconstrained noise columns (to reach the paper's 15 attributes).
  int num_noise_attrs = 0;
  /// Key-like columns with unique per-row values (the clinical data's
  /// NCTID/OrgStudyID analogues; exercises superkey pruning, Opt-3).
  int num_key_attrs = 0;
  /// Fraction of (class, consequent) pairs generated with a single fixed
  /// value instead of random synonyms — classes that are clean even under
  /// plain FD semantics (tunes the Exp-5 non-equal percentage).
  double deterministic_class_fraction = 0.0;
  /// Of the consequent columns, the last `num_fd_consequents` are fully
  /// deterministic: the planted dependency holds as a traditional FD (the
  /// paper's "five defined FDs" for the Opt-4 experiment).
  int num_fd_consequents = 0;
  /// Number of senses |λ|.
  int num_senses = 4;
  /// Synonym-class size per sense.
  int values_per_sense = 6;
  /// Distinct antecedent values per antecedent column (equivalence classes).
  int classes_per_antecedent = 8;
  /// Error rate err% in [0,1]: fraction of consequent cells perturbed.
  double error_rate = 0.03;
  /// Of the injected errors, fraction changed to an existing domain value
  /// (the rest become brand-new out-of-domain values).
  double in_domain_error_fraction = 0.5;
  /// When true, all in-domain errors within one (class, consequent) reuse
  /// the same wrong value — the repeated-typo burst that frequency-based
  /// value ranking chases and MAD-based ranking resists.
  bool bursty_errors = false;
  /// Incompleteness rate inc% in [0,1]: fraction of ontology values removed
  /// after data generation (candidates for ontology repair).
  double incompleteness_rate = 0.0;
  /// Zipf exponent for antecedent-class sizes (0 = uniform).
  double skew = 0.5;
  /// Fraction of each sense's values shared with other senses (cross-sense
  /// ambiguity: higher overlap makes sense selection harder).
  double sense_overlap = 0.25;
  /// When true, for each consequent j an additional interacting OFD
  /// [CTX_a, CTX_b] -> VAL_j is planted (same consequent, refined classes):
  /// it also holds on clean data and creates the dependency-graph edges the
  /// refinement step works on.
  bool plant_interacting_ofds = false;
  uint64_t seed = 1;
};

/// A generated instance plus its ground truth.
struct GeneratedData {
  Relation rel;
  Ontology ontology;
  /// The ontology before incompleteness injection (used for scoring:
  /// repairing an error cell to any synonym of the truth is correct).
  Ontology full_ontology;
  /// Planted OFDs (each antecedent column -> each consequent column).
  SigmaSet sigma;
  /// The clean relation before error injection.
  Relation clean_rel;
  /// Injected errors, in injection order.
  std::vector<InjectedError> errors;
  /// True sense chosen for each (ofd index, antecedent class value string).
  std::unordered_map<std::string, SenseId> true_senses;
  /// Values removed from the ontology by incompleteness injection.
  std::vector<std::string> removed_values;
};

/// Generates a synthetic instance per `config` (deterministic in the seed).
/// Schema: CTX0..CTXk antecedents, VAL0..VALm consequents, NOISE0.. noise
/// columns, KEY0.. key columns.
GeneratedData GenerateData(const DataGenConfig& config);

/// Flavoured wrappers: the same generator with themed attribute names for
/// readable examples/CLI output (LinkedCT- and Kiva-shaped schemas). Note
/// that bench/sense_eval.h expects the generic CTX/VAL names.
GeneratedData GenerateClinical(DataGenConfig config);
GeneratedData GenerateKiva(DataGenConfig config);

/// Precision/recall of a repair against ground truth: a repaired relation
/// is compared cell-by-cell with the dirty and clean versions. A change is
/// correct when it restores the clean value exactly, or — for a cell that
/// really was dirty — restores a value synonymous with the clean value
/// under the full ontology (OFD semantics treat those as equivalent).
struct RepairScore {
  /// Cells changed by the repairer that match the ground truth.
  int64_t correct_changes = 0;
  /// Cells changed by the repairer in total.
  int64_t total_changes = 0;
  /// Cells that were actually dirty.
  int64_t total_errors = 0;

  double precision() const {
    return total_changes == 0 ? 1.0
                              : static_cast<double>(correct_changes) /
                                    static_cast<double>(total_changes);
  }
  double recall() const {
    return total_errors == 0 ? 1.0
                             : static_cast<double>(correct_changes) /
                                   static_cast<double>(total_errors);
  }
};

/// Scores `repaired` against the generated ground truth.
RepairScore ScoreRepair(const GeneratedData& data, const Relation& repaired);

/// Combined data + ontology repair score. Ontology additions are given as
/// (sense name, value) pairs; an addition is correct when the full
/// (pre-incompleteness) ontology contained that value in that sense. The
/// recall denominator counts injected cell errors plus the removed ontology
/// values that occur in the data (each needs one re-insertion).
RepairScore ScoreFullRepair(
    const GeneratedData& data, const Relation& repaired,
    const std::vector<std::pair<std::string, std::string>>& ontology_additions);

}  // namespace fastofd

#endif  // FASTOFD_DATAGEN_DATAGEN_H_
