#include "datagen/datagen.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace fastofd {

namespace {

// Builds the sense/value pool. Senses share values with probability
// `overlap`, which is what makes sense selection non-trivial.
Ontology BuildOntology(Rng* rng, int num_senses, int values_per_sense,
                       double overlap) {
  Ontology ont;
  ConceptId root = ont.AddConcept("gen_root");
  std::vector<std::string> used;
  int fresh = 0;
  for (int s = 0; s < num_senses; ++s) {
    ConceptId c = ont.AddConcept("gen_concept" + std::to_string(s), root);
    SenseId sense = ont.AddSense("sense" + std::to_string(s), c);
    int added = 0;
    while (added < values_per_sense) {
      if (!used.empty() && rng->NextBernoulli(overlap)) {
        if (ont.AddValue(sense, used[rng->NextUint(used.size())])) ++added;
        // A duplicate pick retries.
      } else {
        // Word-like names: distinct values are far apart in edit distance
        // (as real drug/country names are), which matters for the Metric FD
        // comparison.
        std::string v = "med" + std::to_string(fresh++) + "_";
        for (int k = 0; k < 6; ++k) {
          v.push_back(static_cast<char>('a' + rng->NextUint(26)));
        }
        ont.AddValue(sense, v);
        used.push_back(v);
        ++added;
      }
    }
  }
  ont.MarkPristine();
  return ont;
}

}  // namespace

GeneratedData GenerateData(const DataGenConfig& config) {
  FASTOFD_CHECK(config.num_rows > 0);
  FASTOFD_CHECK(config.num_antecedents > 0);
  FASTOFD_CHECK(config.num_consequents > 0);
  FASTOFD_CHECK(config.num_senses > 0);
  Rng rng(config.seed);

  Ontology ontology = BuildOntology(&rng, config.num_senses,
                                    config.values_per_sense, config.sense_overlap);

  // Schema: CTX0..  VAL0..  NOISE0..
  std::vector<std::string> names;
  for (int i = 0; i < config.num_antecedents; ++i) {
    names.push_back("CTX" + std::to_string(i));
  }
  for (int j = 0; j < config.num_consequents; ++j) {
    names.push_back("VAL" + std::to_string(j));
  }
  for (int k = 0; k < config.num_noise_attrs; ++k) {
    names.push_back("NOISE" + std::to_string(k));
  }
  for (int k = 0; k < config.num_key_attrs; ++k) {
    names.push_back("KEY" + std::to_string(k));
  }
  Relation rel((Schema(names)));

  GeneratedData out{std::move(rel), std::move(ontology), Ontology(),
                    {},             Relation(Schema(names)), {}, {}, {}};
  out.full_ontology = out.ontology;

  // Planted Σ: CTX_{j mod A} -> VAL_j for every consequent column j, plus —
  // when requested — an interacting [CTX_a, CTX_b] -> VAL_j with the same
  // consequent (holds by augmentation on clean data).
  const int A = config.num_antecedents;
  for (int j = 0; j < config.num_consequents; ++j) {
    AttrId lhs = static_cast<AttrId>(j % A);
    AttrId rhs = static_cast<AttrId>(A + j);
    out.sigma.push_back(Ofd{AttrSet::Single(lhs), rhs, OfdKind::kSynonym});
    if (config.plant_interacting_ofds && A >= 2) {
      AttrId lhs2 = static_cast<AttrId>((j + 1) % A);
      out.sigma.push_back(
          Ofd{AttrSet::Of({lhs, lhs2}), rhs, OfdKind::kSynonym});
    }
  }

  // Row generation: each antecedent class of a planted OFD is produced
  // under one true sense.
  std::unordered_map<std::string, bool> deterministic_class;
  for (int r = 0; r < config.num_rows; ++r) {
    std::vector<std::string> row;
    std::vector<std::string> ctx(static_cast<size_t>(A));
    for (int i = 0; i < A; ++i) {
      uint64_t cls = rng.NextZipf(
          static_cast<uint64_t>(config.classes_per_antecedent), config.skew);
      ctx[static_cast<size_t>(i)] = "c" + std::to_string(i) + "_" + std::to_string(cls);
      row.push_back(ctx[static_cast<size_t>(i)]);
    }
    for (int j = 0; j < config.num_consequents; ++j) {
      const std::string& cls = ctx[static_cast<size_t>(j % A)];
      std::string key = std::to_string(j) + ":" + cls;
      auto it = out.true_senses.find(key);
      SenseId sense;
      bool deterministic;
      if (it == out.true_senses.end()) {
        sense = static_cast<SenseId>(rng.NextUint(
            static_cast<uint64_t>(out.ontology.num_senses())));
        out.true_senses.emplace(key, sense);
        deterministic = j >= config.num_consequents - config.num_fd_consequents ||
                        rng.NextBernoulli(config.deterministic_class_fraction);
        deterministic_class[key] = deterministic;
      } else {
        sense = it->second;
        deterministic = deterministic_class[key];
      }
      const auto& values = out.ontology.SenseValues(sense);
      row.push_back(deterministic ? values[0] : values[rng.NextUint(values.size())]);
    }
    for (int k = 0; k < config.num_noise_attrs; ++k) {
      row.push_back("n" + std::to_string(rng.NextUint(20)));
    }
    for (int k = 0; k < config.num_key_attrs; ++k) {
      row.push_back("id" + std::to_string(k) + "_" + std::to_string(r));
    }
    out.rel.AppendRow(row);
    out.clean_rel.AppendRow(row);
  }

  // Error injection into consequent cells (paper: either an existing domain
  // value or a brand-new out-of-domain value).
  std::vector<std::string> domain_pool;
  for (SenseId s = 0; s < out.ontology.num_senses(); ++s) {
    for (const auto& v : out.ontology.SenseValues(s)) domain_pool.push_back(v);
  }
  int err_counter = 0;
  std::unordered_map<std::string, std::string> burst_value;
  for (RowId r = 0; r < out.rel.num_rows(); ++r) {
    for (int j = 0; j < config.num_consequents; ++j) {
      if (!rng.NextBernoulli(config.error_rate)) continue;
      AttrId attr = static_cast<AttrId>(A + j);
      InjectedError err;
      err.row = r;
      err.attr = attr;
      err.original = out.rel.StringAt(r, attr);
      if (rng.NextBernoulli(config.in_domain_error_fraction)) {
        // Pick a wrong existing domain value; under bursty_errors the same
        // wrong value is reused per (class, consequent), with one fallback
        // slot for rows whose clean value collides with the burst value.
        auto random_wrong = [&]() -> std::string {
          for (int attempt = 0; attempt < 8; ++attempt) {
            const std::string& pick = domain_pool[rng.NextUint(domain_pool.size())];
            if (pick != err.original) return pick;
          }
          return "errv" + std::to_string(err_counter++);
        };
        if (config.bursty_errors) {
          std::string base_key = std::to_string(j) + ":" +
                                 out.rel.StringAt(r, static_cast<AttrId>(j % A));
          for (const char* suffix : {"", "#2"}) {
            std::string key = base_key + suffix;
            auto it = burst_value.find(key);
            if (it == burst_value.end()) {
              err.dirty = random_wrong();
              burst_value.emplace(key, err.dirty);
              break;
            }
            if (it->second != err.original) {
              err.dirty = it->second;
              break;
            }
          }
          if (err.dirty.empty()) err.dirty = "errv" + std::to_string(err_counter++);
        } else {
          err.dirty = random_wrong();
        }
      } else {
        err.dirty = "errv" + std::to_string(err_counter++);
      }
      out.rel.Set(r, attr, err.dirty);
      out.errors.push_back(std::move(err));
    }
  }

  // Ontology incompleteness: remove inc% of the *used* ontology values and
  // rebuild S. Removed values stay in the data and become ontology-repair
  // candidates.
  if (config.incompleteness_rate > 0.0) {
    std::unordered_set<std::string> used_values;
    for (int j = 0; j < config.num_consequents; ++j) {
      AttrId attr = static_cast<AttrId>(A + j);
      for (RowId r = 0; r < out.rel.num_rows(); ++r) {
        const std::string& v = out.rel.StringAt(r, attr);
        if (out.ontology.ContainsValue(v)) used_values.insert(v);
      }
    }
    std::vector<std::string> candidates(used_values.begin(), used_values.end());
    std::sort(candidates.begin(), candidates.end());
    size_t n_remove = static_cast<size_t>(
        config.incompleteness_rate * static_cast<double>(candidates.size()));
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(candidates.size(), n_remove);
    std::unordered_set<std::string> removed;
    for (size_t p : picks) {
      removed.insert(candidates[p]);
      out.removed_values.push_back(candidates[p]);
    }
    // Rebuild the ontology without the removed values.
    Ontology rebuilt;
    for (ConceptId c = 0; c < out.ontology.num_concepts(); ++c) {
      rebuilt.AddConcept(out.ontology.concept_name(c), out.ontology.parent(c));
    }
    for (SenseId s = 0; s < out.ontology.num_senses(); ++s) {
      SenseId ns = rebuilt.AddSense(out.ontology.sense_name(s),
                                    out.ontology.sense_concept(s));
      for (const auto& v : out.ontology.SenseValues(s)) {
        if (!removed.count(v)) rebuilt.AddValue(ns, v);
      }
    }
    rebuilt.MarkPristine();
    out.ontology = std::move(rebuilt);
  }

  return out;
}

RepairScore ScoreRepair(const GeneratedData& data, const Relation& repaired) {
  RepairScore score;
  FASTOFD_CHECK(repaired.num_rows() == data.rel.num_rows());
  FASTOFD_CHECK(repaired.num_attrs() == data.rel.num_attrs());
  // Two values are equivalent when some sense of the full (pre-
  // incompleteness) ontology contains both.
  auto synonymous = [&](const std::string& a, const std::string& b) {
    std::vector<SenseId> sa = data.full_ontology.NamesOf(a);
    std::vector<SenseId> sb = data.full_ontology.NamesOf(b);
    for (SenseId x : sa) {
      for (SenseId y : sb) {
        if (x == y) return true;
      }
    }
    return false;
  };
  for (RowId r = 0; r < repaired.num_rows(); ++r) {
    for (int a = 0; a < repaired.num_attrs(); ++a) {
      const std::string& dirty = data.rel.StringAt(r, a);
      const std::string& clean = data.clean_rel.StringAt(r, a);
      const std::string& fixed = repaired.StringAt(r, a);
      if (dirty != clean) ++score.total_errors;
      if (fixed != dirty) {
        ++score.total_changes;
        if (fixed == clean || (dirty != clean && synonymous(fixed, clean))) {
          ++score.correct_changes;
        }
      }
    }
  }
  return score;
}

namespace {

// Rebuilds a relation under a renamed schema (values unchanged).
Relation Rename(const Relation& rel, const std::vector<std::string>& names) {
  FASTOFD_CHECK(static_cast<int>(names.size()) == rel.num_attrs());
  CsvTable t = rel.ToCsv();
  t.header = names;
  return Relation::FromCsv(t).value();
}

GeneratedData Flavour(GeneratedData data, const std::vector<std::string>& ante,
                      const std::vector<std::string>& cons,
                      const std::vector<std::string>& noise,
                      const std::vector<std::string>& keys,
                      const DataGenConfig& config) {
  std::vector<std::string> names;
  auto pick = [](const std::vector<std::string>& pool, int i,
                 const std::string& fallback) {
    return i < static_cast<int>(pool.size()) ? pool[static_cast<size_t>(i)]
                                             : fallback + std::to_string(i);
  };
  for (int i = 0; i < config.num_antecedents; ++i) {
    names.push_back(pick(ante, i, "CTX"));
  }
  for (int j = 0; j < config.num_consequents; ++j) {
    names.push_back(pick(cons, j, "VAL"));
  }
  for (int k = 0; k < config.num_noise_attrs; ++k) {
    names.push_back(pick(noise, k, "NOISE"));
  }
  for (int k = 0; k < config.num_key_attrs; ++k) {
    names.push_back(pick(keys, k, "KEY"));
  }
  data.rel = Rename(data.rel, names);
  data.clean_rel = Rename(data.clean_rel, names);
  return data;
}

}  // namespace

GeneratedData GenerateClinical(DataGenConfig config) {
  GeneratedData data = GenerateData(config);
  return Flavour(std::move(data), {"CC", "SYMP", "TEST", "AGE_GROUP", "SEX"},
                 {"CTRY", "MED", "DIAG", "TREATMENT", "OUTCOME"},
                 {"SITE", "PHASE", "SPONSOR"}, {"NCTID", "OrgStudyID"}, config);
}

GeneratedData GenerateKiva(DataGenConfig config) {
  GeneratedData data = GenerateData(config);
  return Flavour(std::move(data), {"CC", "SECTOR", "ACTIVITY", "PARTNER"},
                 {"CTRY", "CURRENCY", "REGION", "USE"},
                 {"AMOUNT_BAND", "TERM", "GENDER"}, {"LOAN_ID"}, config);
}

RepairScore ScoreFullRepair(
    const GeneratedData& data, const Relation& repaired,
    const std::vector<std::pair<std::string, std::string>>& ontology_additions) {
  RepairScore score = ScoreRepair(data, repaired);
  // Ontology side: each removed value that still occurs in the data needs
  // re-insertion; an addition is correct iff the full ontology had it under
  // that sense.
  std::unordered_set<std::string> in_data;
  for (RowId r = 0; r < data.rel.num_rows(); ++r) {
    for (int a = 0; a < data.rel.num_attrs(); ++a) {
      in_data.insert(data.rel.StringAt(r, a));
    }
  }
  for (const std::string& v : data.removed_values) {
    if (in_data.count(v)) ++score.total_errors;
  }
  for (const auto& [sense_name, value] : ontology_additions) {
    ++score.total_changes;
    SenseId full_sense = data.full_ontology.FindSense(sense_name);
    if (full_sense != kInvalidSense &&
        data.full_ontology.SenseContains(full_sense, value)) {
      ++score.correct_changes;
    }
  }
  return score;
}

}  // namespace fastofd
