// Tree-shaped, multi-sense ontology (paper §2, "Sense").
//
// An ontology S consists of concepts arranged in an is-a tree. Each concept
// carries one synonym class per *sense* (interpretation): e.g. the concept
// "diltiazem hydrochloride" has synonyms {cartia, tiazac} under the FDA sense
// and {cartia, ASA} under the MoH sense. Following the paper's algorithms,
// a sense λ is materialized as the set of values that are mutually synonymous
// under that interpretation:
//
//   synonyms(E)   -> Ontology::SenseValues(sense)
//   names(v)      -> Ontology::NamesOf(value)   (all senses containing v)
//   descendants(E)-> Ontology::Descendants(concept)
//
// Ontology repair (paper §5) inserts new values into an existing sense;
// Ontology::AddValue implements exactly that and dist(S, S') is the number
// of insertions (num_added_values()).

#ifndef FASTOFD_ONTOLOGY_ONTOLOGY_H_
#define FASTOFD_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace fastofd {

/// Identifier of a sense (an interpretation-scoped synonym class).
using SenseId = int32_t;
/// Identifier of a concept (a node of the is-a tree).
using ConceptId = int32_t;

inline constexpr SenseId kInvalidSense = -1;
inline constexpr ConceptId kInvalidConcept = -1;

/// A multi-sense ontology over string values.
class Ontology {
 public:
  Ontology() = default;

  // ----- Concepts (is-a tree) ------------------------------------------

  /// Adds a concept; parent = kInvalidConcept makes it a root.
  ConceptId AddConcept(std::string name, ConceptId parent = kInvalidConcept);

  /// Concept id by name, or kInvalidConcept.
  ConceptId FindConcept(std::string_view name) const;

  const std::string& concept_name(ConceptId c) const;
  ConceptId parent(ConceptId c) const;
  const std::vector<ConceptId>& children(ConceptId c) const;
  int num_concepts() const { return static_cast<int>(concepts_.size()); }

  // ----- Senses ----------------------------------------------------------

  /// Adds a sense, optionally attached to a concept node.
  SenseId AddSense(std::string name, ConceptId concept_id = kInvalidConcept);

  /// Sense id by name, or kInvalidSense.
  SenseId FindSense(std::string_view name) const;

  const std::string& sense_name(SenseId s) const;
  ConceptId sense_concept(SenseId s) const;
  int num_senses() const { return static_cast<int>(senses_.size()); }

  // ----- Values ------------------------------------------------------------

  /// Inserts `value` into sense `s` (the paper's ontology-repair operation).
  /// Idempotent; returns true if the value was newly added.
  bool AddValue(SenseId s, std::string_view value);

  /// Values synonymous under sense `s` — the paper's synonyms(E).
  const std::vector<std::string>& SenseValues(SenseId s) const;

  /// All senses containing `value` — the paper's names(v). Empty if the
  /// value is unknown to the ontology.
  std::vector<SenseId> NamesOf(std::string_view value) const;

  /// True iff `value` appears in sense `s`.
  bool SenseContains(SenseId s, std::string_view value) const;

  /// True iff `value` appears in any sense.
  bool ContainsValue(std::string_view value) const;

  /// All values of senses attached to `c` or any descendant concept —
  /// the paper's descendants(E).
  std::vector<std::string> Descendants(ConceptId c) const;

  /// Number of distinct values across all senses.
  size_t num_values() const { return value_senses_.size(); }

  /// Number of values inserted via AddValue after the last MarkPristine()
  /// call — dist(S, S') for ontology repairs.
  int64_t num_added_values() const { return num_added_values_; }

  /// Resets the repair counter (call after initial construction).
  void MarkPristine() { num_added_values_ = 0; }

 private:
  struct Concept {
    std::string name;
    ConceptId parent = kInvalidConcept;
    std::vector<ConceptId> children;
  };
  struct Sense {
    std::string name;
    ConceptId concept_id = kInvalidConcept;
    std::vector<std::string> values;
    std::unordered_set<std::string> value_set;
  };

  std::vector<Concept> concepts_;
  std::vector<Sense> senses_;
  std::unordered_map<std::string, ConceptId> concept_index_;
  std::unordered_map<std::string, SenseId> sense_index_;
  // value -> senses containing it, in insertion order.
  std::unordered_map<std::string, std::vector<SenseId>> value_senses_;
  int64_t num_added_values_ = 0;
};

/// Parses the line-oriented ontology text format:
///
///   # comment
///   concept <name> [parent=<name>]
///   sense <name> [concept=<name>] : value1 | value2 | ...
///
/// Values are trimmed; '|' separates them (values may contain spaces).
Result<Ontology> ParseOntology(std::string_view text);

/// Reads and parses an ontology file.
Result<Ontology> ReadOntologyFile(const std::string& path);

/// Serializes an ontology back to the text format (round-trips ParseOntology).
std::string WriteOntology(const Ontology& ontology);

}  // namespace fastofd

#endif  // FASTOFD_ONTOLOGY_ONTOLOGY_H_
