// Synthetic ontology generation.
//
// Stands in for the paper's U.S. National Library of Medicine and WordNet
// ontologies: produces a tree of concepts with per-sense synonym classes,
// with controllable sense count, synonym-class size, and value overlap
// across senses (overlap is what makes sense selection non-trivial).

#ifndef FASTOFD_ONTOLOGY_GENERATOR_H_
#define FASTOFD_ONTOLOGY_GENERATOR_H_

#include <cstdint>
#include <string>

#include "ontology/ontology.h"

namespace fastofd {

/// Knobs for GenerateOntology.
struct OntologyGenConfig {
  /// Number of senses (interpretations), the paper's |λ|.
  int num_senses = 4;
  /// Synonym-class size per sense.
  int values_per_sense = 6;
  /// Fraction of each sense's values drawn from previously used values
  /// (creates the cross-sense ambiguity that sense selection must resolve).
  double overlap = 0.25;
  /// Number of is-a tree concepts; senses attach to random concepts.
  int num_concepts = 8;
  /// Prefix for generated value strings.
  std::string value_prefix = "val";
  uint64_t seed = 1;
};

/// Generates a random ontology per `config`. Deterministic in the seed.
Ontology GenerateOntology(const OntologyGenConfig& config);

}  // namespace fastofd

#endif  // FASTOFD_ONTOLOGY_GENERATOR_H_
