#include "ontology/synonym_index.h"

#include <algorithm>

#include "common/check.h"

namespace fastofd {

SynonymIndex::SynonymIndex(const Ontology& ontology, const Dictionary& dict) {
  value_senses_.resize(dict.size());
  sense_values_.resize(static_cast<size_t>(ontology.num_senses()));
  for (SenseId s = 0; s < ontology.num_senses(); ++s) {
    for (const std::string& value : ontology.SenseValues(s)) {
      ValueId v = dict.Lookup(value);
      if (v == kInvalidValue) continue;
      value_senses_[static_cast<size_t>(v)].push_back(s);
      sense_values_[static_cast<size_t>(s)].push_back(v);
    }
  }
  for (auto& senses : value_senses_) std::sort(senses.begin(), senses.end());
}

bool SynonymIndex::SenseContains(SenseId s, ValueId v) const {
  const std::vector<SenseId>& senses = Senses(v);
  return std::binary_search(senses.begin(), senses.end(), s);
}

void SynonymIndex::AddValue(SenseId s, ValueId v) {
  FASTOFD_CHECK(s >= 0 && static_cast<size_t>(s) < sense_values_.size());
  FASTOFD_CHECK(v >= 0);
  if (static_cast<size_t>(v) >= value_senses_.size()) {
    value_senses_.resize(static_cast<size_t>(v) + 1);
  }
  auto& senses = value_senses_[static_cast<size_t>(v)];
  auto it = std::lower_bound(senses.begin(), senses.end(), s);
  if (it != senses.end() && *it == s) return;
  senses.insert(it, s);
  sense_values_[static_cast<size_t>(s)].push_back(v);
}

void SynonymIndex::RemoveValue(SenseId s, ValueId v) {
  if (v < 0 || static_cast<size_t>(v) >= value_senses_.size()) return;
  auto& senses = value_senses_[static_cast<size_t>(v)];
  auto it = std::lower_bound(senses.begin(), senses.end(), s);
  if (it == senses.end() || *it != s) return;
  senses.erase(it);
  auto& values = sense_values_[static_cast<size_t>(s)];
  values.erase(std::find(values.begin(), values.end(), v));
}

}  // namespace fastofd
