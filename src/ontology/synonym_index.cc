#include "ontology/synonym_index.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/audit.h"
#include "common/check.h"

namespace fastofd {

SynonymIndex::SynonymIndex(const Ontology& ontology, const Dictionary& dict) {
  value_senses_.resize(dict.size());
  sense_values_.resize(static_cast<size_t>(ontology.num_senses()));
  for (SenseId s = 0; s < ontology.num_senses(); ++s) {
    for (const std::string& value : ontology.SenseValues(s)) {
      ValueId v = dict.Lookup(value);
      if (v == kInvalidValue) continue;
      value_senses_[static_cast<size_t>(v)].push_back(s);
      sense_values_[static_cast<size_t>(s)].push_back(v);
    }
  }
  for (auto& senses : value_senses_) std::sort(senses.begin(), senses.end());
}

bool SynonymIndex::SenseContains(SenseId s, ValueId v) const {
  const std::vector<SenseId>& senses = Senses(v);
  return std::binary_search(senses.begin(), senses.end(), s);
}

bool SynonymIndex::AddValue(SenseId s, ValueId v) {
  FASTOFD_CHECK(s >= 0 && static_cast<size_t>(s) < sense_values_.size());
  FASTOFD_CHECK(v >= 0);
  if (static_cast<size_t>(v) >= value_senses_.size()) {
    value_senses_.resize(static_cast<size_t>(v) + 1);
  }
  auto& senses = value_senses_[static_cast<size_t>(v)];
  auto it = std::lower_bound(senses.begin(), senses.end(), s);
  if (it != senses.end() && *it == s) return false;
  senses.insert(it, s);
  sense_values_[static_cast<size_t>(s)].push_back(v);
  return true;
}

void SynonymIndex::RemoveValue(SenseId s, ValueId v) {
  if (v < 0 || static_cast<size_t>(v) >= value_senses_.size()) return;
  auto& senses = value_senses_[static_cast<size_t>(v)];
  auto it = std::lower_bound(senses.begin(), senses.end(), s);
  if (it == senses.end() || *it != s) return;
  senses.erase(it);
  auto& values = sense_values_[static_cast<size_t>(s)];
  auto vit = std::find(values.begin(), values.end(), v);
  // The two maps mirror each other: a sense listed for v must list v back.
  FASTOFD_CHECK(vit != values.end());
  values.erase(vit);
}

bool SynonymIndexOverlay::Add(SenseId s, ValueId v) {
  FASTOFD_CHECK(s >= 0 && s < base_->num_senses());
  FASTOFD_CHECK(v >= 0);
  if (SenseContains(s, v)) return false;
  added_.emplace_back(s, v);
  return true;
}

std::vector<SenseId> SynonymIndexOverlay::Senses(ValueId v) const {
  std::vector<SenseId> merged = base_->Senses(v);
  for (const auto& [as, av] : added_) {
    if (av != v) continue;
    merged.insert(std::lower_bound(merged.begin(), merged.end(), as), as);
  }
  return merged;
}

std::vector<ValueId> SynonymIndexOverlay::SenseValues(SenseId s) const {
  std::vector<ValueId> merged = base_->SenseValues(s);
  for (const auto& [as, av] : added_) {
    if (as == s) merged.push_back(av);
  }
  return merged;
}

bool SynonymIndexOverlay::SenseHasValues(SenseId s) const {
  if (!base_->SenseValues(s).empty()) return true;
  for (const auto& add : added_) {
    if (add.first == s) return true;
  }
  return false;
}

namespace {

Status OntologyAuditError(const std::string& message) {
  return audit::internal::Counted(Status::Error("ontology audit: " + message));
}

Status OverlayAuditError(const std::string& message) {
  return audit::internal::Counted(Status::Error("overlay audit: " + message));
}

}  // namespace

Status AuditSynonymIndexOverlay(const SynonymIndexOverlay& overlay) {
  const SynonymIndex& base = overlay.base();
  const auto& added = overlay.additions();
  for (size_t i = 0; i < added.size(); ++i) {
    auto [s, v] = added[i];
    if (s < 0 || s >= base.num_senses() || v < 0) {
      return OverlayAuditError("addition " + std::to_string(i) +
                               " out of range");
    }
    if (base.SenseContains(s, v)) {
      return OverlayAuditError("addition (" + std::to_string(s) + ", " +
                               std::to_string(v) +
                               ") already present in the base index");
    }
    for (size_t j = i + 1; j < added.size(); ++j) {
      if (added[j] == added[i]) {
        return OverlayAuditError("addition (" + std::to_string(s) + ", " +
                                 std::to_string(v) + ") listed twice");
      }
    }
  }
  // Read-through accessors must agree with a materialized copy of the base
  // that had the additions applied via AddValue.
  SynonymIndex materialized = base;
  for (const auto& [s, v] : added) {
    if (!materialized.AddValue(s, v)) {
      return OverlayAuditError("materializing addition (" + std::to_string(s) +
                               ", " + std::to_string(v) + ") was a no-op");
    }
  }
  for (const auto& [s, v] : added) {
    if (!overlay.SenseContains(s, v)) {
      return OverlayAuditError("SenseContains misses addition (" +
                               std::to_string(s) + ", " + std::to_string(v) +
                               ")");
    }
    if (overlay.Senses(v) != materialized.Senses(v)) {
      return OverlayAuditError("Senses(" + std::to_string(v) +
                               ") disagrees with the materialized index");
    }
    if (overlay.SenseValues(s) != materialized.SenseValues(s)) {
      return OverlayAuditError("SenseValues(" + std::to_string(s) +
                               ") disagrees with the materialized index");
    }
    if (!overlay.SenseHasValues(s)) {
      return OverlayAuditError("SenseHasValues(" + std::to_string(s) +
                               ") false despite addition");
    }
  }
  return audit::internal::Counted(Status::Ok());
}

Status AuditOntologyIndex(const Ontology& ontology, const Dictionary& dict,
                          const SynonymIndex& index,
                          bool allow_unindexed_values) {
  // --- Is-a tree shape: parent/child agreement, ids in range, acyclic. ---
  for (ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    ConceptId p = ontology.parent(c);
    if (p != kInvalidConcept) {
      if (p < 0 || p >= ontology.num_concepts()) {
        return OntologyAuditError("concept " + std::to_string(c) +
                                  " has out-of-range parent");
      }
      const std::vector<ConceptId>& siblings = ontology.children(p);
      if (std::count(siblings.begin(), siblings.end(), c) != 1) {
        return OntologyAuditError("concept " + std::to_string(c) +
                                  " not listed exactly once under its parent");
      }
    }
    for (ConceptId child : ontology.children(c)) {
      if (child < 0 || child >= ontology.num_concepts() ||
          ontology.parent(child) != c) {
        return OntologyAuditError("child list of concept " + std::to_string(c) +
                                  " disagrees with parent pointers");
      }
    }
    // Walking parents must reach a root within num_concepts steps.
    ConceptId cur = c;
    for (int steps = 0; cur != kInvalidConcept; ++steps) {
      if (steps > ontology.num_concepts()) {
        return OntologyAuditError("is-a cycle reachable from concept " +
                                  std::to_string(c));
      }
      cur = ontology.parent(cur);
    }
  }
  // Senses must reference valid concepts.
  for (SenseId s = 0; s < ontology.num_senses(); ++s) {
    ConceptId c = ontology.sense_concept(s);
    if (c != kInvalidConcept && (c < 0 || c >= ontology.num_concepts())) {
      return OntologyAuditError("sense " + std::to_string(s) +
                                " attached to out-of-range concept");
    }
  }

  // --- Index vs ontology, sense direction. ---
  if (index.num_senses() != ontology.num_senses()) {
    return OntologyAuditError("index has " + std::to_string(index.num_senses()) +
                              " senses, ontology has " +
                              std::to_string(ontology.num_senses()));
  }
  for (SenseId s = 0; s < index.num_senses(); ++s) {
    std::unordered_set<ValueId> members;
    for (ValueId v : index.SenseValues(s)) {
      if (v < 0 || static_cast<size_t>(v) >= dict.size()) {
        return OntologyAuditError("sense " + std::to_string(s) +
                                  " lists out-of-dictionary value id " +
                                  std::to_string(v));
      }
      if (!members.insert(v).second) {
        return OntologyAuditError("sense " + std::to_string(s) +
                                  " lists value id " + std::to_string(v) +
                                  " twice");
      }
      if (!ontology.SenseContains(s, dict.String(v))) {
        return OntologyAuditError("index puts '" + dict.String(v) +
                                  "' in sense " + std::to_string(s) +
                                  " but the ontology does not");
      }
      if (!index.SenseContains(s, v)) {
        return OntologyAuditError("sense_values/value_senses disagree for '" +
                                  dict.String(v) + "'");
      }
    }
    // Every dictionary-present ontology member must be indexed.
    size_t expected = 0;
    for (const std::string& value : ontology.SenseValues(s)) {
      if (dict.Lookup(value) != kInvalidValue) ++expected;
    }
    bool complete = allow_unindexed_values ? expected >= members.size()
                                           : expected == members.size();
    if (!complete) {
      return OntologyAuditError("sense " + std::to_string(s) + " indexes " +
                                std::to_string(members.size()) +
                                " values but the ontology has " +
                                std::to_string(expected) +
                                " dictionary-present members");
    }
  }

  // --- Index vs ontology, value direction: Senses(v) == sorted names(v). ---
  for (ValueId v = 0; static_cast<size_t>(v) < dict.size(); ++v) {
    const std::vector<SenseId>& senses = index.Senses(v);
    for (size_t i = 1; i < senses.size(); ++i) {
      if (senses[i - 1] >= senses[i]) {
        return OntologyAuditError("Senses('" + dict.String(v) +
                                  "') not strictly ascending");
      }
    }
    if (allow_unindexed_values && senses.empty()) continue;
    std::vector<SenseId> expected = ontology.NamesOf(dict.String(v));
    std::sort(expected.begin(), expected.end());
    if (senses != expected) {
      return OntologyAuditError("names('" + dict.String(v) +
                                "') disagree between index and ontology");
    }
  }
  return audit::internal::Counted(Status::Ok());
}

}  // namespace fastofd
