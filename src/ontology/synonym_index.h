// SynonymIndex: the ontology compiled against a relation's dictionary.
//
// Discovery and cleaning touch names(v) for millions of cells; resolving
// strings each time would dominate runtime. The index snapshots
// ValueId -> sorted senses and SenseId -> interned values, realizing the
// paper's assumption that "values in the ontology are indexed and can be
// accessed in constant time".

#ifndef FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_
#define FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_

#include <utility>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "ontology/ontology.h"

namespace fastofd {

/// Immutable-by-default compiled view of an ontology over a dictionary.
/// Rebuild (or apply AddValue) after repairing the ontology.
class SynonymIndex {
 public:
  /// Compiles `ontology` against `dict`. Only values present in the
  /// dictionary are indexed (others cannot occur in the relation).
  SynonymIndex(const Ontology& ontology, const Dictionary& dict);

  /// Senses containing the value, ascending — the paper's names(v).
  /// Empty for values outside the ontology.
  const std::vector<SenseId>& Senses(ValueId v) const {
    static const std::vector<SenseId> kEmpty;
    if (v < 0 || static_cast<size_t>(v) >= value_senses_.size()) return kEmpty;
    return value_senses_[static_cast<size_t>(v)];
  }

  /// True iff the value appears in at least one sense.
  bool InOntology(ValueId v) const { return !Senses(v).empty(); }

  /// True iff sense `s` contains value `v`.
  bool SenseContains(SenseId s, ValueId v) const;

  /// Interned values of sense `s` (restricted to the dictionary).
  const std::vector<ValueId>& SenseValues(SenseId s) const {
    return sense_values_[static_cast<size_t>(s)];
  }

  int num_senses() const { return static_cast<int>(sense_values_.size()); }

  /// Incrementally records that `v` now belongs to sense `s` (mirrors an
  /// Ontology::AddValue repair without a full rebuild). Idempotent; returns
  /// true iff the mapping was newly inserted. A caller that mutates and
  /// restores the index must only RemoveValue mappings it actually inserted,
  /// or it would delete a pre-existing ontology mapping.
  bool AddValue(SenseId s, ValueId v);

  /// Undoes AddValue(s, v) — used when materializing an ontology repair
  /// against a shared index. No-op if the mapping is absent.
  void RemoveValue(SenseId s, ValueId v);

 private:
  // value id -> sorted senses containing it.
  std::vector<std::vector<SenseId>> value_senses_;
  // sense id -> interned member values.
  std::vector<std::vector<ValueId>> sense_values_;
};

/// A side-effect-free view of a SynonymIndex plus a small set of candidate
/// (sense, value) insertions — the ontology-repair beam search evaluates one
/// node by layering the node's insertions over the shared base index instead
/// of mutating it (AddValue/RemoveValue), so nodes can be scored
/// concurrently. Reads go through to the base; the addition set is expected
/// to stay small (bounded by the beam depth, ≤ ~12), so membership probes
/// are linear scans.
class SynonymIndexOverlay {
 public:
  explicit SynonymIndexOverlay(const SynonymIndex& base) : base_(&base) {}

  /// Layers the insertion (s, v) over the base. Ignored (returns false) when
  /// the base already contains the mapping or it was already added.
  bool Add(SenseId s, ValueId v);

  /// Drops all additions (the view reverts to the plain base).
  void Clear() { added_.clear(); }

  /// True iff sense `s` contains value `v` in the base or the additions.
  bool SenseContains(SenseId s, ValueId v) const {
    if (base_->SenseContains(s, v)) return true;
    for (const auto& [as, av] : added_) {
      if (as == s && av == v) return true;
    }
    return false;
  }

  /// Merged names(v): base senses plus added senses, ascending.
  std::vector<SenseId> Senses(ValueId v) const;

  /// Merged member values of sense `s`: base values then added values (in
  /// addition order).
  std::vector<ValueId> SenseValues(SenseId s) const;

  /// True iff sense `s` has at least one member value (base or added) —
  /// cheaper than SenseValues(s).empty(), which materializes the merge.
  bool SenseHasValues(SenseId s) const;

  int num_senses() const { return base_->num_senses(); }
  const SynonymIndex& base() const { return *base_; }
  const std::vector<std::pair<SenseId, ValueId>>& additions() const {
    return added_;
  }

 private:
  const SynonymIndex* base_;
  std::vector<std::pair<SenseId, ValueId>> added_;
};

/// Deep invariant audit for an overlay: every addition must be absent from
/// the base (Add() dedups), in-range, and free of duplicates, and the
/// read-through accessors must agree with a copy of the base index that had
/// the additions applied via AddValue.
Status AuditSynonymIndexOverlay(const SynonymIndexOverlay& overlay);

/// Deep invariant audit (common/audit.h): the ontology's is-a tree is
/// well-formed (parent/child lists agree, no cycles) and the compiled index
/// agrees with the ontology in both directions — every posting in
/// value->senses is sorted and matches names(v), and every sense's member
/// list is exactly its dictionary-present ontology values. Returns the
/// first violation found.
///
/// `allow_unindexed_values` relaxes the equality checks to containment for
/// values the index does not cover: the service interns new dictionary
/// values on `update` without recompiling the session's index (a deliberate
/// snapshot semantics), so a post-load value may legitimately be known to
/// the ontology yet absent from the index.
Status AuditOntologyIndex(const Ontology& ontology, const Dictionary& dict,
                          const SynonymIndex& index,
                          bool allow_unindexed_values = false);

}  // namespace fastofd

#endif  // FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_
