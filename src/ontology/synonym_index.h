// SynonymIndex: the ontology compiled against a relation's dictionary.
//
// Discovery and cleaning touch names(v) for millions of cells; resolving
// strings each time would dominate runtime. The index snapshots
// ValueId -> sorted senses and SenseId -> interned values, realizing the
// paper's assumption that "values in the ontology are indexed and can be
// accessed in constant time".

#ifndef FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_
#define FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_

#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "ontology/ontology.h"

namespace fastofd {

/// Immutable-by-default compiled view of an ontology over a dictionary.
/// Rebuild (or apply AddValue) after repairing the ontology.
class SynonymIndex {
 public:
  /// Compiles `ontology` against `dict`. Only values present in the
  /// dictionary are indexed (others cannot occur in the relation).
  SynonymIndex(const Ontology& ontology, const Dictionary& dict);

  /// Senses containing the value, ascending — the paper's names(v).
  /// Empty for values outside the ontology.
  const std::vector<SenseId>& Senses(ValueId v) const {
    static const std::vector<SenseId> kEmpty;
    if (v < 0 || static_cast<size_t>(v) >= value_senses_.size()) return kEmpty;
    return value_senses_[static_cast<size_t>(v)];
  }

  /// True iff the value appears in at least one sense.
  bool InOntology(ValueId v) const { return !Senses(v).empty(); }

  /// True iff sense `s` contains value `v`.
  bool SenseContains(SenseId s, ValueId v) const;

  /// Interned values of sense `s` (restricted to the dictionary).
  const std::vector<ValueId>& SenseValues(SenseId s) const {
    return sense_values_[static_cast<size_t>(s)];
  }

  int num_senses() const { return static_cast<int>(sense_values_.size()); }

  /// Incrementally records that `v` now belongs to sense `s` (mirrors an
  /// Ontology::AddValue repair without a full rebuild). Idempotent.
  void AddValue(SenseId s, ValueId v);

  /// Undoes AddValue(s, v) — used by the ontology-repair beam search to
  /// explore candidate repairs without copying the index. No-op if absent.
  void RemoveValue(SenseId s, ValueId v);

 private:
  // value id -> sorted senses containing it.
  std::vector<std::vector<SenseId>> value_senses_;
  // sense id -> interned member values.
  std::vector<std::vector<ValueId>> sense_values_;
};

/// Deep invariant audit (common/audit.h): the ontology's is-a tree is
/// well-formed (parent/child lists agree, no cycles) and the compiled index
/// agrees with the ontology in both directions — every posting in
/// value->senses is sorted and matches names(v), and every sense's member
/// list is exactly its dictionary-present ontology values. Returns the
/// first violation found.
///
/// `allow_unindexed_values` relaxes the equality checks to containment for
/// values the index does not cover: the service interns new dictionary
/// values on `update` without recompiling the session's index (a deliberate
/// snapshot semantics), so a post-load value may legitimately be known to
/// the ontology yet absent from the index.
Status AuditOntologyIndex(const Ontology& ontology, const Dictionary& dict,
                          const SynonymIndex& index,
                          bool allow_unindexed_values = false);

}  // namespace fastofd

#endif  // FASTOFD_ONTOLOGY_SYNONYM_INDEX_H_
