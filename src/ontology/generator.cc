#include "ontology/generator.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fastofd {

Ontology GenerateOntology(const OntologyGenConfig& config) {
  FASTOFD_CHECK(config.num_senses > 0);
  FASTOFD_CHECK(config.values_per_sense > 0);
  FASTOFD_CHECK(config.num_concepts > 0);
  Rng rng(config.seed);
  Ontology ont;

  // Tree of concepts: each node's parent is a random earlier node.
  ont.AddConcept(config.value_prefix + "_root");
  for (int c = 1; c < config.num_concepts; ++c) {
    ConceptId parent = static_cast<ConceptId>(rng.NextUint(static_cast<uint64_t>(c)));
    ont.AddConcept(config.value_prefix + "_concept" + std::to_string(c), parent);
  }

  std::vector<std::string> used_values;
  int fresh_counter = 0;
  for (int s = 0; s < config.num_senses; ++s) {
    ConceptId concept_id =
        static_cast<ConceptId>(rng.NextUint(static_cast<uint64_t>(config.num_concepts)));
    SenseId sense =
        ont.AddSense(config.value_prefix + "_sense" + std::to_string(s), concept_id);
    for (int v = 0; v < config.values_per_sense; ++v) {
      // Each sense receives exactly values_per_sense distinct values; a
      // duplicate reuse pick falls back to a fresh value.
      bool added = false;
      if (!used_values.empty() && rng.NextBernoulli(config.overlap)) {
        const std::string& pick =
            used_values[rng.NextUint(used_values.size())];
        added = ont.AddValue(sense, pick);
      }
      if (!added) {
        std::string fresh =
            config.value_prefix + "_" + std::to_string(fresh_counter++);
        ont.AddValue(sense, fresh);
        used_values.push_back(fresh);
      }
    }
  }
  ont.MarkPristine();
  return ont;
}

}  // namespace fastofd
