#include "ontology/ontology.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace fastofd {

ConceptId Ontology::AddConcept(std::string name, ConceptId parent) {
  FASTOFD_CHECK(concept_index_.count(name) == 0);
  ConceptId id = static_cast<ConceptId>(concepts_.size());
  Concept c;
  c.name = std::move(name);
  c.parent = parent;
  if (parent != kInvalidConcept) {
    FASTOFD_CHECK(parent >= 0 && parent < num_concepts());
    concepts_[static_cast<size_t>(parent)].children.push_back(id);
  }
  concept_index_.emplace(c.name, id);
  concepts_.push_back(std::move(c));
  return id;
}

ConceptId Ontology::FindConcept(std::string_view name) const {
  auto it = concept_index_.find(std::string(name));
  return it == concept_index_.end() ? kInvalidConcept : it->second;
}

const std::string& Ontology::concept_name(ConceptId c) const {
  FASTOFD_CHECK(c >= 0 && c < num_concepts());
  return concepts_[static_cast<size_t>(c)].name;
}

ConceptId Ontology::parent(ConceptId c) const {
  FASTOFD_CHECK(c >= 0 && c < num_concepts());
  return concepts_[static_cast<size_t>(c)].parent;
}

const std::vector<ConceptId>& Ontology::children(ConceptId c) const {
  FASTOFD_CHECK(c >= 0 && c < num_concepts());
  return concepts_[static_cast<size_t>(c)].children;
}

SenseId Ontology::AddSense(std::string name, ConceptId concept_id) {
  FASTOFD_CHECK(sense_index_.count(name) == 0);
  SenseId id = static_cast<SenseId>(senses_.size());
  Sense s;
  s.name = std::move(name);
  s.concept_id = concept_id;
  sense_index_.emplace(s.name, id);
  senses_.push_back(std::move(s));
  return id;
}

SenseId Ontology::FindSense(std::string_view name) const {
  auto it = sense_index_.find(std::string(name));
  return it == sense_index_.end() ? kInvalidSense : it->second;
}

const std::string& Ontology::sense_name(SenseId s) const {
  FASTOFD_CHECK(s >= 0 && s < num_senses());
  return senses_[static_cast<size_t>(s)].name;
}

ConceptId Ontology::sense_concept(SenseId s) const {
  FASTOFD_CHECK(s >= 0 && s < num_senses());
  return senses_[static_cast<size_t>(s)].concept_id;
}

bool Ontology::AddValue(SenseId s, std::string_view value) {
  FASTOFD_CHECK(s >= 0 && s < num_senses());
  Sense& sense = senses_[static_cast<size_t>(s)];
  std::string v(value);
  if (!sense.value_set.insert(v).second) return false;
  sense.values.push_back(v);
  value_senses_[v].push_back(s);
  ++num_added_values_;
  return true;
}

const std::vector<std::string>& Ontology::SenseValues(SenseId s) const {
  FASTOFD_CHECK(s >= 0 && s < num_senses());
  return senses_[static_cast<size_t>(s)].values;
}

std::vector<SenseId> Ontology::NamesOf(std::string_view value) const {
  auto it = value_senses_.find(std::string(value));
  if (it == value_senses_.end()) return {};
  return it->second;
}

bool Ontology::SenseContains(SenseId s, std::string_view value) const {
  FASTOFD_CHECK(s >= 0 && s < num_senses());
  return senses_[static_cast<size_t>(s)].value_set.count(std::string(value)) > 0;
}

bool Ontology::ContainsValue(std::string_view value) const {
  return value_senses_.count(std::string(value)) > 0;
}

std::vector<std::string> Ontology::Descendants(ConceptId c) const {
  FASTOFD_CHECK(c >= 0 && c < num_concepts());
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  std::vector<ConceptId> stack = {c};
  while (!stack.empty()) {
    ConceptId cur = stack.back();
    stack.pop_back();
    for (const Sense& s : senses_) {
      if (s.concept_id != cur) continue;
      for (const std::string& v : s.values) {
        if (seen.insert(v).second) out.push_back(v);
      }
    }
    for (ConceptId child : concepts_[static_cast<size_t>(cur)].children) {
      stack.push_back(child);
    }
  }
  return out;
}

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Splits "key=value" tokens after the entity name, e.g.
// "sense FDA concept=drug : a | b".
struct HeadParse {
  std::string name;
  std::string attr_key;
  std::string attr_value;
};

HeadParse ParseHead(std::string_view head) {
  HeadParse out;
  std::istringstream in{std::string(head)};
  std::string token;
  in >> out.name;
  while (in >> token) {
    auto eq = token.find('=');
    if (eq != std::string::npos) {
      out.attr_key = token.substr(0, eq);
      out.attr_value = token.substr(eq + 1);
    }
  }
  return out;
}

}  // namespace

Result<Ontology> ParseOntology(std::string_view text) {
  Ontology ont;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;

    auto error = [line_no](const std::string& msg) {
      return Status::Error("ontology parse error (line " + std::to_string(line_no) +
                           "): " + msg);
    };

    if (line.rfind("concept ", 0) == 0) {
      HeadParse head = ParseHead(line.substr(8));
      if (head.name.empty()) return error("concept needs a name");
      if (ont.FindConcept(head.name) != kInvalidConcept) {
        return error("duplicate concept '" + head.name + "'");
      }
      ConceptId parent = kInvalidConcept;
      if (head.attr_key == "parent") {
        parent = ont.FindConcept(head.attr_value);
        if (parent == kInvalidConcept) {
          return error("unknown parent concept '" + head.attr_value + "'");
        }
      }
      ont.AddConcept(head.name, parent);
    } else if (line.rfind("sense ", 0) == 0) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) return error("sense needs ': values'");
      HeadParse head = ParseHead(Trim(line.substr(6, colon - 6)));
      if (head.name.empty()) return error("sense needs a name");
      if (ont.FindSense(head.name) != kInvalidSense) {
        return error("duplicate sense '" + head.name + "'");
      }
      ConceptId concept_id = kInvalidConcept;
      if (head.attr_key == "concept") {
        concept_id = ont.FindConcept(head.attr_value);
        if (concept_id == kInvalidConcept) {
          return error("unknown concept '" + head.attr_value + "'");
        }
      }
      SenseId s = ont.AddSense(head.name, concept_id);
      std::string_view values = line.substr(colon + 1);
      size_t vpos = 0;
      while (vpos <= values.size()) {
        size_t bar = values.find('|', vpos);
        std::string_view v = values.substr(
            vpos, bar == std::string_view::npos ? values.size() - vpos : bar - vpos);
        vpos = (bar == std::string_view::npos) ? values.size() + 1 : bar + 1;
        v = Trim(v);
        if (!v.empty()) ont.AddValue(s, v);
      }
    } else {
      return error("unrecognized directive: " + std::string(line.substr(0, 20)));
    }
  }
  ont.MarkPristine();
  return ont;
}

Result<Ontology> ReadOntologyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open ontology file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseOntology(buf.str());
}

std::string WriteOntology(const Ontology& ont) {
  std::string out;
  for (ConceptId c = 0; c < ont.num_concepts(); ++c) {
    out += "concept " + ont.concept_name(c);
    if (ont.parent(c) != kInvalidConcept) {
      out += " parent=" + ont.concept_name(ont.parent(c));
    }
    out += "\n";
  }
  for (SenseId s = 0; s < ont.num_senses(); ++s) {
    out += "sense " + ont.sense_name(s);
    if (ont.sense_concept(s) != kInvalidConcept) {
      out += " concept=" + ont.concept_name(ont.sense_concept(s));
    }
    out += " :";
    bool first = true;
    for (const std::string& v : ont.SenseValues(s)) {
      out += first ? " " : " | ";
      out += v;
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace fastofd
