#include "exec/task_group.h"

namespace fastofd {

void TaskGroup::Submit(std::function<void(int)> fn) {
  if (pool_->num_threads() <= 1) {
    // Serial pool: run inline immediately (worker 0), preserving the pool's
    // inline-in-order contract. Nested submissions recurse, depth-bounded by
    // the nesting structure of the algorithm.
    fn(0);
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Enqueue(this, std::move(fn));
}

void TaskGroup::OnTaskDone() {
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  // Every completion (not just the last) wakes sleepers: an ordered-reduce
  // consumer may be waiting on one specific block's flag, and a nested
  // waiter may now find a newly stealable task. Tasks are coarse, so one
  // notify per completion is cheap.
  pool_->NotifyStateChange();
}

void TaskGroup::Wait() {
  if (pool_->num_threads() <= 1) return;  // Everything already ran inline.
  while (pending_.load(std::memory_order_acquire) > 0) {
    const uint64_t seen = pool_->StateEpoch();
    if (pool_->HelpExecuteOne(this)) continue;
    pool_->WaitEpochChangeOr(seen, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
}

}  // namespace fastofd
