// Shared execution substrate: a persistent work-stealing task scheduler.
//
// Every compute-heavy phase (candidate validation, partition products, beam
// expansion, sense assignment, EMD edge weights, conflict-graph
// construction) runs on one ThreadPool created once per Discover()/Clean()
// invocation — or shared across invocations by the caller — instead of
// spawning and joining fresh std::threads per lattice level.
//
// The original pool ran one flat ParallelFor job at a time behind a job
// mutex, with contiguous chunks claimed off a shared atomic counter. That
// shape cannot express the two-level parallelism the hot phases need (many
// partition products per lattice level, each itself splittable) and it
// serialized concurrent callers such as the cleaning service. The pool is
// now a task scheduler:
//
//   * every worker owns a deque of tasks: newly submitted work is pushed to
//     the back and popped from the back by the owner (LIFO, for cache
//     locality), while idle workers steal from the *front* of a victim's
//     deque (FIFO, so the oldest — typically largest — task migrates);
//   * tasks belong to TaskGroups (exec/task_group.h) which support nested
//     submission: a task may open its own group, submit subtasks, and
//     help-execute them while waiting, which is how one huge partition
//     product splits itself while its sibling products run;
//   * there is no per-job mutex: tasks from concurrent callers interleave
//     at task granularity instead of whole jobs queueing behind each other.
//
// Worker identity: construction spawns exactly `num_threads` OS threads
// (named fastofd-w<N>) when num_threads >= 2; external caller threads
// submit and wait but never execute task bodies, so a worker id uniquely
// identifies an OS thread and per-worker scratch is collision-free even
// with concurrent callers. With num_threads <= 1 no threads are spawned
// and everything runs inline and serially on the caller (worker 0).
//
// The house determinism contract is unchanged: parallel stages *compute*
// into pre-sized slots (or push into sequence-tagged sinks, see
// exec/task_group.h) and results are *applied* sequentially in a fixed
// order, so output is byte-identical for any thread count, grain size, or
// steal schedule.

#ifndef FASTOFD_EXEC_THREAD_POOL_H_
#define FASTOFD_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace fastofd {

class MetricsRegistry;
class TaskGroup;

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency level of the pool, always >= 1. For num_threads() >= 2 this
  /// is the number of spawned worker threads; 1 means inline serial.
  int num_threads() const { return num_threads_; }

  /// Worker index of the calling thread on *this* pool, in
  /// [0, num_threads()), or -1 when the caller is not one of its workers.
  int current_worker() const;

  /// Runs body(index, worker) for every index in [0, n); blocks until all
  /// indices complete. Indices are dispatched in contiguous blocks of
  /// `grain` (grain == 0 picks an automatic size of ~8 blocks per worker).
  /// `worker` is in [0, num_threads()) and is unique per OS thread — use it
  /// to index per-thread scratch. The body must not touch shared mutable
  /// state without synchronization; writing to a distinct slot per index is
  /// the intended pattern. Nested calls (from inside a task body on this
  /// pool) parallelize too: the inner blocks become stealable subtasks.
  void ParallelForGrained(size_t n, size_t grain,
                          const std::function<void(size_t index, int worker)>& body);

  /// ParallelForGrained with the automatic grain.
  void ParallelFor(size_t n, const std::function<void(size_t index, int worker)>& body);

  /// Per-worker scheduler counters: tasks executed, and the subset that was
  /// taken from somewhere other than the worker's own deque (a steal from a
  /// victim's deque or a grab from the external-submission queue).
  struct WorkerStats {
    int64_t executed = 0;
    int64_t stolen = 0;
  };
  std::vector<WorkerStats> Stats() const;

  /// Publishes scheduler gauges (exec.workers, exec.tasks_executed,
  /// exec.tasks_stolen, exec.worker<NN>.executed/.stolen) into `metrics`.
  /// Gauges overwrite, so republishing after each phase is safe. No-op when
  /// metrics is null.
  void PublishMetrics(MetricsRegistry* metrics) const;

  /// A reasonable default worker count for this machine.
  static int DefaultThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  // --- Scheduler internals exposed for the exec primitives ---------------
  // (TaskGroup::Wait and OrderedReduce's streaming consumer; not intended
  // for general use.)

  /// Monotonic counter bumped on every submission and task completion.
  /// Snapshot it *before* probing queue state, then sleep on the snapshot:
  /// any concurrent state change invalidates it, so no wakeup is missed.
  uint64_t StateEpoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Blocks until the epoch differs from `seen` or `ready()` holds (ready
  /// is re-evaluated under the scheduler's wake lock, so it must only read
  /// atomics — it must not take locks or touch guarded state).
  void WaitEpochChangeOr(uint64_t seen, const std::function<bool()>& ready)
      EXCLUDES(wake_mu_);

  /// If the calling thread is a worker of this pool and a task belonging to
  /// `group` is available (own deque first, then steal), executes it and
  /// returns true. Returns false otherwise. The group filter keeps nested
  /// waits from recursing into unrelated coarse tasks.
  bool HelpExecuteOne(TaskGroup* group);

 private:
  friend class TaskGroup;

  struct Task {
    TaskGroup* group = nullptr;
    std::function<void(int worker)> fn;
  };
  // One deque per worker plus the inject queue for submissions from threads
  // the pool does not own. Each shard has its own mutex: the striping keeps
  // submission and stealing lock-cheap. Lock-order contract: a thread holds
  // at most ONE shard mutex at a time (TSA cannot order the elements of a
  // mutex array, so TryGetTask/Enqueue enforce this structurally — every
  // shard lock is a self-contained scope), and never a shard mutex under
  // wake_mu_ (see wake_mu_'s ACQUIRED_AFTER below).
  struct Shard {
    Mutex mu;
    std::deque<Task> tasks GUARDED_BY(mu);
  };

  // Enqueues a task (own deque for workers, inject queue otherwise) and
  // wakes sleepers. Called by TaskGroup::Submit after bumping its pending
  // count.
  void Enqueue(TaskGroup* group, std::function<void(int)> fn)
      EXCLUDES(wake_mu_);
  // Pops a task: `self`'s own deque back first, then round-robin steals from
  // other shards' fronts (the inject queue last-but-one in rotation). With
  // `only_group` set, skips tasks from other groups. Returns false when
  // nothing eligible is queued.
  bool TryGetTask(int self, const TaskGroup* only_group, Task* out);
  // Runs the task, destroys its closure, then credits the owning group.
  // The body may submit more work, so the wake lock must not be held.
  void ExecuteTask(Task& task, int worker) EXCLUDES(wake_mu_);
  void NotifyStateChange() EXCLUDES(wake_mu_);
  void WorkerLoop(int worker) EXCLUDES(wake_mu_);
  // The shard `self` submits to and pops from: its own deque for workers,
  // the inject queue for external threads.
  Shard& HomeShard(int self) {
    return self >= 0 ? deques_[static_cast<size_t>(self)] : inject_;
  }
  // Victim rotation for stealing: indexes [0, num_threads_) are worker
  // deques, index num_threads_ is the inject queue.
  Shard& ShardAt(size_t index) {
    return index == static_cast<size_t>(num_threads_)
               ? inject_
               : deques_[index];
  }

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::unique_ptr<Shard[]> deques_;  // num_threads_ worker deques.
  Shard inject_;                     // Submissions from external threads.
  std::unique_ptr<std::atomic<int64_t>[]> executed_;
  std::unique_ptr<std::atomic<int64_t>[]> stolen_;

  // The sleep/wake protocol's lock. Innermost: taken only after every shard
  // lock has been released (declared for the named inject_ shard; the array
  // shards follow the same order by the structural rule above), and nothing
  // blocks under it — WaitEpochChangeOr predicates read atomics only.
  Mutex wake_mu_ ACQUIRED_AFTER(inject_.mu);
  CondVar wake_cv_;
  std::atomic<uint64_t> epoch_{0};  // Written under wake_mu_; read lock-free.
  bool stop_ GUARDED_BY(wake_mu_) = false;
};

}  // namespace fastofd

#endif  // FASTOFD_EXEC_THREAD_POOL_H_
