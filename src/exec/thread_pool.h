// Shared execution substrate: a persistent worker pool.
//
// Every compute-heavy phase (candidate validation, partition products,
// sense assignment, EMD edge weights, conflict-graph construction) runs on
// one ThreadPool created once per Discover()/Clean() invocation — or shared
// across invocations by the caller — instead of spawning and joining fresh
// std::threads per lattice level. The house determinism contract: work items
// are *computed* in parallel into pre-sized slots and *applied* sequentially
// in a fixed order, so output is byte-identical for any thread count.

#ifndef FASTOFD_EXEC_THREAD_POOL_H_
#define FASTOFD_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fastofd {

/// A fixed-size pool of persistent workers with chunked parallel-for
/// dispatch. Construction spawns `num_threads - 1` workers; the calling
/// thread participates in every ParallelFor as worker 0, so concurrency is
/// exactly `num_threads`. With num_threads <= 1 no threads are spawned and
/// ParallelFor degenerates to an inline serial loop.
///
/// The pool runs one job at a time, but is safe to share between threads:
/// ParallelFor calls from distinct threads serialize on an internal job
/// mutex (the cleaning service submits every request's parallel work to one
/// shared pool this way). A *nested* call — ParallelFor from inside a body
/// running on this pool — runs the inner loop inline and serially on the
/// calling worker instead of deadlocking.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count (including the calling thread), always >= 1.
  int num_threads() const { return num_threads_; }

  /// Runs body(index, worker) for every index in [0, n), distributing
  /// contiguous chunks over the workers; blocks until all indices complete.
  /// `worker` is in [0, num_threads()) — use it to index per-thread scratch.
  /// The body must not touch shared mutable state without synchronization;
  /// writing to a distinct slot per index is the intended pattern.
  void ParallelFor(size_t n, const std::function<void(size_t index, int worker)>& body);

  /// A reasonable default worker count for this machine.
  static int DefaultThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void WorkerLoop(int worker);
  // Claims chunks of the current job until indices are exhausted.
  void RunChunks(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex job_mu_;                 // Serializes whole jobs across callers.
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: new job or stop.
  std::condition_variable done_cv_;   // Signals the caller: job finished.
  const std::function<void(size_t, int)>* body_ = nullptr;
  size_t job_size_ = 0;
  size_t chunk_size_ = 1;
  uint64_t epoch_ = 0;                // Bumped per job; workers wait on it.
  int active_workers_ = 0;            // Workers still inside the current job.
  std::atomic<size_t> next_index_{0};
  bool stop_ = false;
};

}  // namespace fastofd

#endif  // FASTOFD_EXEC_THREAD_POOL_H_
