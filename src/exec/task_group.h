// Structured task submission and deterministic result collection on top of
// the work-stealing ThreadPool (exec/thread_pool.h).
//
// Three primitives:
//
//   * TaskGroup — a fork/join scope: submit any number of tasks (from any
//     thread, including from inside a running task) and Wait() for all of
//     them. A worker that waits help-executes tasks *of the same group*
//     while blocked, so nested submission composes without deadlock and
//     without unbounded recursion into unrelated work.
//
//   * ShardedSink<T> — a mutex-striped sink for results whose count is not
//     known up front. Producers Push(seq, value) with a deterministic
//     sequence key (e.g. the candidate's canonical lattice index);
//     DrainSorted() merges every stripe and returns values ordered by seq,
//     so downstream application is byte-identical for any thread count or
//     steal schedule.
//
//   * OrderedReduce — produce/consume over [0, n): `produce(i, worker)`
//     runs as parallel block tasks into pre-sized slots; `consume(i, T)` is
//     called on the *calling* thread strictly in index order, streaming — a
//     block is consumed as soon as it (and all earlier blocks) finished, so
//     ordered application overlaps with tail computation instead of
//     waiting behind a barrier. consume must not mutate state that produce
//     reads.

#ifndef FASTOFD_EXEC_TASK_GROUP_H_
#define FASTOFD_EXEC_TASK_GROUP_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "exec/thread_pool.h"

namespace fastofd {

/// A set of tasks with a shared completion count. Submission is allowed
/// from any thread at any time before Wait() returns, including from inside
/// one of the group's own tasks (nested submission). On a serial pool
/// (num_threads() == 1) Submit runs the task inline immediately, preserving
/// the pool's inline-in-order contract.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) { FASTOFD_CHECK(pool != nullptr); }
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules fn(worker) to run on the pool. `worker` is the executing
  /// worker's id in [0, pool->num_threads()), unique per OS thread.
  void Submit(std::function<void(int worker)> fn);

  /// Blocks until every submitted task has finished. On a worker thread of
  /// the pool this help-executes queued tasks of this group (so a task
  /// waiting on its own subtasks makes progress instead of deadlocking);
  /// external threads sleep until the count drains.
  void Wait();

 private:
  friend class ThreadPool;
  void OnTaskDone();

  ThreadPool* pool_;
  std::atomic<int64_t> pending_{0};
};

/// Mutex-striped collection of (seq, value) pairs; Push is safe from any
/// number of producers concurrently, DrainSorted returns everything ordered
/// by seq. Stripes are keyed by seq so two producers rarely contend.
template <typename T>
class ShardedSink {
 public:
  explicit ShardedSink(int num_stripes)
      : num_stripes_(static_cast<size_t>(std::max(1, num_stripes))),
        stripes_(std::make_unique<Stripe[]>(num_stripes_)) {}

  void Push(uint64_t seq, T value) {
    Stripe& s = stripes_[seq % num_stripes_];
    MutexLock lock(s.mu);
    s.items.emplace_back(seq, std::move(value));
  }

  /// Empties every stripe and returns the items sorted ascending by seq.
  /// Each stripe is drained under its lock, so overlapping with a straggler
  /// Push is a data-race-free (if nondeterministic) snapshot — callers
  /// should still quiesce producers (group.Wait()) first so the contents
  /// are deterministic.
  std::vector<std::pair<uint64_t, T>> DrainSorted() {
    std::vector<std::pair<uint64_t, T>> out;
    size_t total = 0;
    for (size_t s = 0; s < num_stripes_; ++s) {
      Stripe& st = stripes_[s];
      MutexLock lock(st.mu);
      total += st.items.size();
    }
    out.reserve(total);
    for (size_t s = 0; s < num_stripes_; ++s) {
      Stripe& st = stripes_[s];
      MutexLock lock(st.mu);
      std::move(st.items.begin(), st.items.end(), std::back_inserter(out));
      st.items.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

 private:
  // Lock-order contract: stripe locks are leaves — at most one is held at a
  // time, and nothing is called under one (TSA cannot order elements of a
  // mutex array; see src/common/sync.h).
  struct Stripe {
    Mutex mu;
    std::vector<std::pair<uint64_t, T>> items GUARDED_BY(mu);
  };
  size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

/// Parallel produce, ordered streaming consume. produce(i, worker) -> T
/// fills slot i (blocks of `grain` indices per task; grain == 0 picks one
/// block per ~2 per worker); consume(i, T) runs on the calling thread for
/// i = 0, 1, ..., n-1 in that exact order, each block as soon as it and all
/// earlier blocks are done. produce may itself use the pool (e.g. a nested
/// ParallelFor): its subtasks are stealable. consume must not mutate
/// anything produce reads.
template <typename T, typename ProduceFn, typename ConsumeFn>
void OrderedReduce(ThreadPool* pool, size_t n, size_t grain,
                   const ProduceFn& produce, const ConsumeFn& consume) {
  FASTOFD_CHECK(pool != nullptr);
  if (n == 0) return;
  if (grain == 0) {
    grain = std::max<size_t>(
        1, n / (static_cast<size_t>(pool->num_threads()) * 2));
  }
  if (pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) consume(i, produce(i, /*worker=*/0));
    return;
  }
  std::vector<T> slots(n);
  const size_t num_blocks = (n + grain - 1) / grain;
  // One release-stored flag per block; the consumer's acquire load makes the
  // block's slot writes visible without any lock.
  std::vector<std::atomic<uint8_t>> done(num_blocks);
  TaskGroup group(pool);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * grain;
    const size_t end = std::min(n, begin + grain);
    group.Submit([&produce, &slots, &done, b, begin, end](int worker) {
      for (size_t i = begin; i < end; ++i) slots[i] = produce(i, worker);
      done[b].store(1, std::memory_order_release);
    });
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    while (done[b].load(std::memory_order_acquire) == 0) {
      // Snapshot the epoch *before* re-probing so a completion that lands
      // between the probe and the sleep still wakes us.
      const uint64_t seen = pool->StateEpoch();
      if (done[b].load(std::memory_order_acquire) != 0) break;
      if (!pool->HelpExecuteOne(&group)) {
        pool->WaitEpochChangeOr(seen, [&done, b] {
          return done[b].load(std::memory_order_acquire) != 0;
        });
      }
    }
    const size_t begin = b * grain;
    const size_t end = std::min(n, begin + grain);
    for (size_t i = begin; i < end; ++i) consume(i, std::move(slots[i]));
  }
  group.Wait();
}

}  // namespace fastofd

#endif  // FASTOFD_EXEC_TASK_GROUP_H_
