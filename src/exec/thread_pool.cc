#include "exec/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace fastofd {

namespace {
// The pool whose job the current thread is executing a body for (nullptr
// outside ParallelFor). Lets a nested ParallelFor on the same pool detect
// itself and degrade to an inline serial loop instead of deadlocking on
// job_mu_.
thread_local const ThreadPool* tls_running_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunChunks(int worker) {
  const ThreadPool* prev = tls_running_pool;
  tls_running_pool = this;
  size_t i;
  while ((i = next_index_.fetch_add(chunk_size_, std::memory_order_relaxed)) <
         job_size_) {
    size_t end = std::min(job_size_, i + chunk_size_);
    for (; i < end; ++i) (*body_)(i, worker);
  }
  tls_running_pool = prev;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    RunChunks(worker);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, int)>& body) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1 || tls_running_pool == this) {
    // Serial pools, trivial jobs, and nested calls all run inline.
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  // One job at a time: concurrent callers queue up here.
  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    FASTOFD_CHECK(body_ == nullptr);
    body_ = &body;
    job_size_ = n;
    // Several chunks per worker for load balance without contention on the
    // shared index counter.
    chunk_size_ = std::max<size_t>(
        1, n / (static_cast<size_t>(num_threads_) * 8));
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = num_threads_ - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(/*worker=*/0);  // The caller participates as worker 0.
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    body_ = nullptr;
    job_size_ = 0;
  }
}

}  // namespace fastofd
