#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/check.h"
#include "common/metrics.h"
#include "exec/task_group.h"

namespace fastofd {

namespace {
// Identity of the worker thread: which pool owns it and its id there. Set
// once at WorkerLoop entry; threads the pool does not own keep the default.
thread_local const ThreadPool* tls_worker_pool = nullptr;
thread_local int tls_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  deques_ = std::make_unique<Shard[]>(static_cast<size_t>(num_threads_));
  executed_ = std::make_unique<std::atomic<int64_t>[]>(static_cast<size_t>(num_threads_));
  stolen_ = std::make_unique<std::atomic<int64_t>[]>(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    executed_[static_cast<size_t>(w)].store(0, std::memory_order_relaxed);
    stolen_[static_cast<size_t>(w)].store(0, std::memory_order_relaxed);
  }
  if (num_threads_ >= 2) {
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int w = 0; w < num_threads_; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  wake_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

int ThreadPool::current_worker() const {
  return tls_worker_pool == this ? tls_worker_id : -1;
}

void ThreadPool::NotifyStateChange() {
  {
    MutexLock lock(wake_mu_);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  wake_cv_.NotifyAll();
}

void ThreadPool::WaitEpochChangeOr(uint64_t seen, const std::function<bool()>& ready) {
  MutexLock lock(wake_mu_);
  // Explicit loop (not a predicate lambda) so the guarded read of stop_ is
  // in analysis-checked scope; ready() reads atomics only, per the header.
  while (!stop_ && epoch_.load(std::memory_order_acquire) == seen && !ready()) {
    wake_cv_.Wait(wake_mu_);
  }
}

void ThreadPool::Enqueue(TaskGroup* group, std::function<void(int)> fn) {
  {
    Shard& home = HomeShard(current_worker());
    MutexLock lock(home.mu);
    home.tasks.push_back(Task{group, std::move(fn)});
  }
  NotifyStateChange();
}

bool ThreadPool::TryGetTask(int self, const TaskGroup* only_group, Task* out) {
  FASTOFD_CHECK(self >= 0 && self < num_threads_);
  const size_t shard_count = static_cast<size_t>(num_threads_) + 1;
  // Own deque first, newest task first (LIFO): a nested wait finds the
  // subtasks it just pushed while they are still hot in cache.
  {
    Shard& own = deques_[static_cast<size_t>(self)];
    MutexLock lock(own.mu);
    for (auto it = own.tasks.rbegin(); it != own.tasks.rend(); ++it) {
      if (only_group == nullptr || it->group == only_group) {
        *out = std::move(*it);
        own.tasks.erase(std::next(it).base());
        return true;
      }
    }
  }
  // Then steal round-robin starting past self, oldest task first (FIFO): the
  // front of a victim's deque is the task it queued earliest, typically the
  // coarsest remaining work. Taking from the inject shard is normal dispatch
  // of externally submitted work, not a steal — only tasks lifted from
  // another worker's deque count, so the stolen/executed ratio measures how
  // much the scheduler actually rebalanced.
  for (size_t off = 1; off < shard_count; ++off) {
    const size_t victim_index = (static_cast<size_t>(self) + off) % shard_count;
    Shard& victim = ShardAt(victim_index);
    MutexLock lock(victim.mu);
    for (auto it = victim.tasks.begin(); it != victim.tasks.end(); ++it) {
      if (only_group == nullptr || it->group == only_group) {
        *out = std::move(*it);
        victim.tasks.erase(it);
        if (victim_index != static_cast<size_t>(num_threads_)) {
          stolen_[static_cast<size_t>(self)].fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::ExecuteTask(Task& task, int worker) {
  task.fn(worker);
  executed_[static_cast<size_t>(worker)].fetch_add(1, std::memory_order_relaxed);
  TaskGroup* group = task.group;
  // Destroy the closure (and anything it captured by value) *before*
  // crediting the group: once Wait() returns, the caller may free state the
  // closure referenced.
  task.fn = nullptr;
  group->OnTaskDone();
}

bool ThreadPool::HelpExecuteOne(TaskGroup* group) {
  const int self = current_worker();
  if (self < 0) return false;
  Task task;
  if (!TryGetTask(self, group, &task)) return false;
  ExecuteTask(task, self);
  return true;
}

void ThreadPool::WorkerLoop(int worker) {
  tls_worker_pool = this;
  tls_worker_id = worker;
#if defined(__linux__)
  char name[16];
  std::snprintf(name, sizeof(name), "fastofd-w%d", worker);
  pthread_setname_np(pthread_self(), name);
#endif
  for (;;) {
    // Epoch snapshot precedes the probe: a submission landing after a failed
    // probe bumps the epoch, so the wait below returns immediately.
    const uint64_t seen = epoch_.load(std::memory_order_acquire);
    Task task;
    if (TryGetTask(worker, /*only_group=*/nullptr, &task)) {
      ExecuteTask(task, worker);
      continue;
    }
    MutexLock lock(wake_mu_);
    while (!stop_ && epoch_.load(std::memory_order_acquire) == seen) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stop_) return;
  }
}

void ThreadPool::ParallelForGrained(size_t n, size_t grain,
                                    const std::function<void(size_t, int)>& body) {
  if (n == 0) return;
  if (grain == 0) {
    // ~8 blocks per worker: enough slack for stealing to balance uneven
    // bodies without swamping the deques.
    grain = std::max<size_t>(1, n / (static_cast<size_t>(num_threads_) * 8));
  }
  const int self = current_worker();
  if (num_threads_ <= 1 || (self >= 0 && n <= grain)) {
    // Serial pools run inline on the caller (in order, as worker 0); a
    // nested single-block call runs inline under the worker's own id. An
    // *external* caller never runs bodies inline — its thread has no
    // reserved worker id, and borrowing one could collide with that
    // worker's scratch while other jobs are in flight.
    const int w = self >= 0 ? self : 0;
    for (size_t i = 0; i < n; ++i) body(i, w);
    return;
  }
  TaskGroup group(this);
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(n, begin + grain);
    group.Submit([&body, begin, end](int worker) {
      for (size_t i = begin; i < end; ++i) body(i, worker);
    });
  }
  group.Wait();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, int)>& body) {
  ParallelForGrained(n, /*grain=*/0, body);
}

std::vector<ThreadPool::WorkerStats> ThreadPool::Stats() const {
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    stats[static_cast<size_t>(w)].executed =
        executed_[static_cast<size_t>(w)].load(std::memory_order_relaxed);
    stats[static_cast<size_t>(w)].stolen =
        stolen_[static_cast<size_t>(w)].load(std::memory_order_relaxed);
  }
  return stats;
}

void ThreadPool::PublishMetrics(MetricsRegistry* metrics) const {
  // Safe to call while workers are executing: the per-worker counters are
  // atomics (each worker is the sole writer of its slot), so the relaxed
  // loads here are race-free snapshots — tested under TSan by
  // PublishMetricsDuringExecution in tests/exec_test.cc.
  if (metrics == nullptr) return;
  metrics->Set("exec.workers", static_cast<double>(num_threads_));
  int64_t total_executed = 0;
  int64_t total_stolen = 0;
  char name[64];
  for (int w = 0; w < num_threads_; ++w) {
    const int64_t ex = executed_[static_cast<size_t>(w)].load(std::memory_order_relaxed);
    const int64_t st = stolen_[static_cast<size_t>(w)].load(std::memory_order_relaxed);
    total_executed += ex;
    total_stolen += st;
    std::snprintf(name, sizeof(name), "exec.worker%02d.executed", w);
    metrics->Set(name, static_cast<double>(ex));
    std::snprintf(name, sizeof(name), "exec.worker%02d.stolen", w);
    metrics->Set(name, static_cast<double>(st));
  }
  metrics->Set("exec.tasks_executed", static_cast<double>(total_executed));
  metrics->Set("exec.tasks_stolen", static_cast<double>(total_stolen));
}

}  // namespace fastofd
