// Data verification of OFDs (paper Definition 2.1 and §4.3).
//
// Unlike FDs, OFDs cannot be checked on tuple pairs: a class may satisfy the
// dependency pairwise while the intersection of all senses is empty (paper
// Table 2). Verification therefore scans each equivalence class of Π*_X and
// checks for a sense covering *all distinct* consequent values, via a
// counting pass over a sense->count hash map — linear in the class size under
// the indexed-ontology assumption.

#ifndef FASTOFD_OFD_VERIFIER_H_
#define FASTOFD_OFD_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

/// Statistics for the paper's Exp-5 ("eliminating false-positive errors"):
/// how many tuples satisfy an OFD only thanks to synonyms (a pure-FD cleaner
/// would flag them as errors).
struct SynonymSavings {
  /// Classes of Π*_X examined (non-singleton).
  int64_t classes = 0;
  /// Classes whose consequent values are NOT all syntactically equal but
  /// which still satisfy the OFD via a shared sense.
  int64_t synonym_classes = 0;
  /// Tuples inside those synonym_classes — the false positives saved.
  int64_t saved_tuples = 0;
  /// Tuples in all examined classes.
  int64_t class_tuples = 0;
};

/// Verifies synonym (and, as an extension, inheritance) OFDs over a relation.
class OfdVerifier {
 public:
  /// `ontology` may be null; it is only needed for inheritance OFDs.
  /// `theta` bounds the ancestor distance for inheritance checks.
  OfdVerifier(const Relation& rel, const SynonymIndex& index,
              const Ontology* ontology = nullptr, int theta = 2)
      : rel_(rel), index_(index), ontology_(ontology), theta_(theta) {}

  /// Exact satisfaction check; computes Π*_lhs internally.
  bool Holds(const Ofd& ofd) const;

  /// Exact satisfaction check against a precomputed Π*_lhs (discovery path).
  bool Holds(const Ofd& ofd, const StrippedPartition& lhs_partition) const;

  /// Satisfaction within one equivalence class (rows of the class).
  bool HoldsInClass(RowSpan rows, AttrId rhs, OfdKind kind) const;

  /// Approximate-OFD support s(φ)/|I| (paper §4): the max fraction of tuples
  /// retaining which the OFD holds, computed per class as the best of
  /// (a) the most frequent sense's tuple coverage and (b) the most frequent
  /// single literal value.
  double Support(const Ofd& ofd, const StrippedPartition& lhs_partition) const;

  /// Early-exit form of Support for the discovery hot path: returns
  /// Support(...) >= kappa, but stops scanning classes as soon as the
  /// tuples already lost exceed the (1 - kappa) * |I| error budget — the
  /// e(X->A) > threshold cutoff for approximate verification. Agrees with
  /// Support on the boundary (same final comparison when no early exit
  /// fires).
  bool SupportAtLeast(const Ofd& ofd, const StrippedPartition& lhs_partition,
                      double kappa) const;

  /// Exp-5 statistic for a (presumably satisfied) OFD.
  SynonymSavings Savings(const Ofd& ofd, const StrippedPartition& lhs_partition) const;

  const Relation& relation() const { return rel_; }
  const SynonymIndex& index() const { return index_; }

 private:
  bool SynonymClassHolds(const std::vector<ValueId>& distinct) const;
  bool InheritanceClassHolds(const std::vector<ValueId>& distinct) const;

  const Relation& rel_;
  const SynonymIndex& index_;
  const Ontology* ontology_;
  int theta_;
};

}  // namespace fastofd

#endif  // FASTOFD_OFD_VERIFIER_H_
