// Metric Functional Dependencies (Koudas et al. 2009), the closest relative
// the paper compares against (§2 "Relationship to other dependencies").
//
// A Metric FD X -> A (δ) holds when any two tuples agreeing on X have
// A-values within distance δ under some metric — here Levenshtein edit
// distance, the standard instantiation. The paper's arguments reproduce:
//   - MFDs capture small syntactic variation ("IBM" vs "IBM Inc.") but NOT
//     semantic equivalence: "USA" and "America" are far apart in edit
//     distance yet synonymous, so MFD-based cleaning still flags synonyms;
//   - OFDs cannot be reduced to MFDs because ontological similarity is not
//     a metric (synonyms violate the identity of indiscernibles: distinct
//     strings at semantic distance zero), and values may have multiple
//     senses so no canonicalization fixes this.
// Verification is pairwise within each equivalence class.

#ifndef FASTOFD_OFD_METRIC_FD_H_
#define FASTOFD_OFD_METRIC_FD_H_

#include <cstdint>
#include <string_view>

#include "ofd/ofd.h"
#include "ontology/synonym_index.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
int EditDistance(std::string_view a, std::string_view b);

/// True iff the Metric FD lhs -> rhs (delta) holds: within every equivalence
/// class of Π_lhs, all pairs of consequent values are within edit distance
/// `delta`. delta = 0 is the traditional FD.
bool MetricFdHolds(const Relation& rel, AttrSet lhs, AttrId rhs, int delta);

/// Tuple-level comparison of MFD and OFD error flagging. Within each class,
/// the MFD flags tuples whose value lies beyond edit distance delta from
/// the class's majority value; the OFD flags tuples outside the class's
/// best sense (and different from the majority value).
struct MetricComparison {
  int64_t tuples = 0;       ///< Tuples in non-singleton classes.
  int64_t mfd_flagged = 0;  ///< Tuples the Metric FD would repair.
  int64_t ofd_flagged = 0;  ///< Tuples the OFD would repair.
  /// Flagged by the MFD only: synonyms whose surface forms are far apart —
  /// the MFD's false positives under OFD semantics.
  int64_t mfd_only = 0;
  /// Flagged by the OFD only: semantically wrong values that happen to be
  /// within delta of the majority — errors the MFD misses.
  int64_t ofd_only = 0;
};

/// Evaluates `ofd` under both Metric-FD (edit distance ≤ delta) and synonym
/// OFD semantics, class by class.
MetricComparison CompareMetricVsOfd(const Relation& rel, const SynonymIndex& index,
                                    const Ofd& ofd, int delta);

}  // namespace fastofd

#endif  // FASTOFD_OFD_METRIC_FD_H_
