// Synonym relationships in ANTECEDENT attributes — the paper's stated next
// step (§9 and response-letter W2).
//
// When antecedent values may themselves be synonyms, each sense λ induces a
// coarser partition: X-values synonymous under λ collapse to one class.
// Following the response letter, validation must consider *every*
// interpretation — under each sense λ the merged classes must satisfy the
// consequent condition — which multiplies the number of equivalence classes
// evaluated (the cost that made the paper defer antecedent synonyms).
// Merged classes are unions of literal classes, so satisfaction here is
// strictly stronger than the plain OFD: a violation can hide across two
// literal classes that a sense merges (see the response letter's Table 9).

#ifndef FASTOFD_OFD_LHS_SYNONYM_H_
#define FASTOFD_OFD_LHS_SYNONYM_H_

#include <cstdint>

#include "ofd/ofd.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {

/// Cost accounting for LHS-synonym validation.
struct LhsSynonymStats {
  /// Interpretations (senses) evaluated.
  int64_t interpretations = 0;
  /// Equivalence classes examined across all interpretations (compare with
  /// the plain OFD's single partition).
  int64_t classes_evaluated = 0;
};

/// True iff `ofd` holds when antecedent values are interpreted under every
/// sense: for each sense λ, the partition of X with λ-synonymous values
/// merged must satisfy the consequent-common-sense condition. `stats` may
/// be null.
bool HoldsWithLhsSynonyms(const Relation& rel, const SynonymIndex& index,
                          const Ofd& ofd, LhsSynonymStats* stats = nullptr);

}  // namespace fastofd

#endif  // FASTOFD_OFD_LHS_SYNONYM_H_
