// Incremental OFD verification under cell updates.
//
// The paper motivates OFD maintenance with evolving data ("data naturally
// evolve due to updates...", §5). Re-verifying Σ from scratch after every
// update costs O(|I|) per OFD; this class maintains per-class satisfaction
// state and re-checks only the equivalence classes an update touches, making
// interactive cleaning loops and the `fastofd serve` update path cheap.
//
// Unlike the paper's OFDClean scope (§5.1, consequents only), updates may
// touch *any* attribute: classes are kept in a hash map from antecedent
// key to equivalence class, so an antecedent update moves the row between
// classes (re-checking the shrunken source and grown destination class) and
// Σ may freely overlap — one attribute can be an antecedent of one OFD and
// the consequent of another.

#ifndef FASTOFD_OFD_INCREMENTAL_H_
#define FASTOFD_OFD_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ofd/ofd.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {

/// Maintains the satisfaction state of a set of OFDs under cell updates.
/// Holds a reference to the relation; apply updates exclusively through
/// UpdateCell so the cached state stays coherent.
class IncrementalVerifier {
 public:
  /// Builds per-OFD class maps and initial per-class state.
  IncrementalVerifier(Relation* rel, const SynonymIndex& index, SigmaSet sigma);

  /// True iff every OFD in Σ is satisfied.
  bool IsConsistent() const { return total_violating() == 0; }

  /// True iff Σ[ofd_index] is satisfied.
  bool Holds(size_t ofd_index) const {
    return states_[ofd_index].violating == 0;
  }

  /// Number of violating classes of Σ[ofd_index].
  int violating_classes(size_t ofd_index) const {
    return states_[ofd_index].violating;
  }

  /// Total violating classes across Σ. Safe to read lock-free (relaxed
  /// atomic): the service's `list`/`stats` ops sample it while an exclusive
  /// writer on another executor shard may be mid-update, so the value is a
  /// point-in-time snapshot, not a fence.
  int total_violating() const {
    return total_violating_.load(std::memory_order_relaxed);
  }

  /// Applies rel->SetId(row, attr, value) and re-checks only the classes
  /// containing `row`: for OFDs with consequent `attr` the row's class, for
  /// OFDs with `attr` in the antecedent the classes the row leaves and
  /// joins. A no-op when the cell already holds `value`.
  void UpdateCell(RowId row, AttrId attr, ValueId value);

  /// Classes re-checked since construction (the work a full re-verification
  /// would multiply by the class count). Lock-free snapshot, like
  /// total_violating().
  int64_t classes_rechecked() const {
    return classes_rechecked_.load(std::memory_order_relaxed);
  }

  const SigmaSet& sigma() const { return sigma_; }

  /// Deep invariant audit (common/audit.h). Structural: per OFD, the groups
  /// partition all rows, the key map and row->group map agree with the
  /// relation's current antecedent values, free-list entries are empty and
  /// unreferenced, and the violation counters match the per-group flags.
  /// On relations at or below audit::kDeepAuditMaxRows rows, additionally
  /// cross-checks every group's satisfaction bit — and each OFD's overall
  /// Holds() — against a full from-scratch re-verification. Returns the
  /// first violation found.
  Status AuditState() const;

 private:
  /// The dictionary-coded antecedent values of one row — the identity of its
  /// equivalence class.
  using LhsKey = std::vector<ValueId>;

  struct LhsKeyHash {
    size_t operator()(const LhsKey& key) const {
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      for (ValueId v : key) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(v)) + 0x9E3779B9U +
             (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  /// One equivalence class of Π_lhs (singletons included, so rows can move
  /// in and out without rebuilding).
  struct Group {
    std::vector<RowId> rows;
    bool ok = true;       // Satisfaction; vacuously true for size < 2.
    bool counted = false; // Currently counted in `violating`.
  };

  struct OfdState {
    std::vector<AttrId> lhs_attrs;  // ofd.lhs in ascending order.
    std::unordered_map<LhsKey, int32_t, LhsKeyHash> key_to_group;
    std::vector<Group> groups;      // Indexed by the map; holes on free list.
    std::vector<int32_t> free_groups;
    std::vector<int32_t> row_group; // row -> group index.
    int violating = 0;
  };

  LhsKey KeyFor(const OfdState& state, RowId row) const;
  /// Re-checks group `g` (if it still has >= 2 rows) and updates the
  /// violating counters.
  void RefreshGroup(OfdState& state, const Ofd& ofd, int32_t g);
  void SetCounted(OfdState& state, Group& group, bool counted);
  /// Moves `row` from its old group (keyed with `old_value` at `attr`) to
  /// the group matching its current antecedent values.
  void MoveRow(OfdState& state, const Ofd& ofd, RowId row, AttrId attr,
               ValueId old_value);

  Relation* rel_;
  const SynonymIndex& index_;
  SigmaSet sigma_;
  OfdVerifier verifier_;
  std::vector<OfdState> states_;
  // Atomic only so concurrent `list`/`stats` snapshots are race-free; all
  // *writes* stay serialized by the service's per-session write exclusivity
  // (UpdateCell is never concurrent with itself on one session).
  std::atomic<int> total_violating_{0};
  std::atomic<int64_t> classes_rechecked_{0};
};

}  // namespace fastofd

#endif  // FASTOFD_OFD_INCREMENTAL_H_
