// Incremental OFD verification under cell updates.
//
// The paper motivates OFD maintenance with evolving data ("data naturally
// evolve due to updates...", §5). Re-verifying Σ from scratch after every
// update costs O(|I|) per OFD; this class maintains per-class satisfaction
// state and re-checks only the single equivalence class an update touches,
// making interactive cleaning loops (apply one repair, observe the new
// violation set) cheap.
//
// Scope matches OFDClean's (paper §5.1): updates may only touch attributes
// that appear as consequents — antecedents are immutable, so Π*_X never
// changes and class membership is a fixed row -> class map.

#ifndef FASTOFD_OFD_INCREMENTAL_H_
#define FASTOFD_OFD_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "ofd/ofd.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

/// Maintains the satisfaction state of a set of OFDs under consequent-cell
/// updates. Holds a reference to the relation; apply updates exclusively
/// through UpdateCell so the cached state stays coherent.
class IncrementalVerifier {
 public:
  /// Builds partitions and initial per-class state. CHECKs the paper's
  /// scope assumption (no attribute both antecedent and consequent).
  IncrementalVerifier(Relation* rel, const SynonymIndex& index, SigmaSet sigma);

  /// True iff every OFD in Σ is satisfied.
  bool IsConsistent() const { return total_violating_ == 0; }

  /// True iff Σ[ofd_index] is satisfied.
  bool Holds(size_t ofd_index) const {
    return states_[ofd_index].violating == 0;
  }

  /// Number of violating classes of Σ[ofd_index].
  int violating_classes(size_t ofd_index) const {
    return states_[ofd_index].violating;
  }

  /// Applies rel->SetId(row, attr, value) and re-checks only the classes
  /// containing `row` for OFDs whose consequent is `attr`.
  void UpdateCell(RowId row, AttrId attr, ValueId value);

  /// Classes re-checked since construction (the work a full re-verification
  /// would multiply by the class count).
  int64_t classes_rechecked() const { return classes_rechecked_; }

  const SigmaSet& sigma() const { return sigma_; }

 private:
  struct OfdState {
    StrippedPartition partition;
    /// row -> class index within partition.classes(), -1 for singletons.
    std::vector<int32_t> row_class;
    std::vector<bool> class_ok;
    int violating = 0;
  };

  Relation* rel_;
  const SynonymIndex& index_;
  SigmaSet sigma_;
  OfdVerifier verifier_;
  std::vector<OfdState> states_;
  int total_violating_ = 0;
  int64_t classes_rechecked_ = 0;
};

}  // namespace fastofd

#endif  // FASTOFD_OFD_INCREMENTAL_H_
