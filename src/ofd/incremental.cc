#include "ofd/incremental.h"

#include <algorithm>

#include "common/check.h"

namespace fastofd {

IncrementalVerifier::IncrementalVerifier(Relation* rel, const SynonymIndex& index,
                                         SigmaSet sigma)
    : rel_(rel),
      index_(index),
      sigma_(std::move(sigma)),
      verifier_(*rel, index) {
  states_.reserve(sigma_.size());
  const RowId n = rel_->num_rows();
  for (const Ofd& ofd : sigma_) {
    OfdState state;
    state.lhs_attrs = ofd.lhs.ToVector();
    state.row_group.assign(static_cast<size_t>(n), -1);
    for (RowId r = 0; r < n; ++r) {
      LhsKey key = KeyFor(state, r);
      auto [it, inserted] =
          state.key_to_group.try_emplace(std::move(key),
                                         static_cast<int32_t>(state.groups.size()));
      if (inserted) state.groups.emplace_back();
      state.groups[static_cast<size_t>(it->second)].rows.push_back(r);
      state.row_group[static_cast<size_t>(r)] = it->second;
    }
    states_.push_back(std::move(state));
    OfdState& st = states_.back();
    for (size_t g = 0; g < st.groups.size(); ++g) {
      RefreshGroup(st, ofd, static_cast<int32_t>(g));
    }
  }
}

IncrementalVerifier::LhsKey IncrementalVerifier::KeyFor(const OfdState& state,
                                                        RowId row) const {
  LhsKey key;
  key.reserve(state.lhs_attrs.size());
  for (AttrId a : state.lhs_attrs) key.push_back(rel_->At(row, a));
  return key;
}

void IncrementalVerifier::SetCounted(OfdState& state, Group& group, bool counted) {
  if (group.counted == counted) return;
  group.counted = counted;
  state.violating += counted ? 1 : -1;
  total_violating_ += counted ? 1 : -1;
}

void IncrementalVerifier::RefreshGroup(OfdState& state, const Ofd& ofd, int32_t g) {
  Group& group = state.groups[static_cast<size_t>(g)];
  if (group.rows.size() < 2) {
    group.ok = true;  // Singletons (and empty groups) cannot violate.
  } else {
    group.ok = verifier_.HoldsInClass(group.rows, ofd.rhs, ofd.kind);
    ++classes_rechecked_;
  }
  SetCounted(state, group, group.rows.size() >= 2 && !group.ok);
}

void IncrementalVerifier::MoveRow(OfdState& state, const Ofd& ofd, RowId row,
                                  AttrId attr, ValueId old_value) {
  // The relation already holds the new value; reconstruct the old key by
  // substituting the previous value at the updated attribute.
  LhsKey new_key = KeyFor(state, row);
  LhsKey old_key = new_key;
  size_t pos = static_cast<size_t>(
      std::find(state.lhs_attrs.begin(), state.lhs_attrs.end(), attr) -
      state.lhs_attrs.begin());
  old_key[pos] = old_value;

  // Leave the old group.
  int32_t g_old = state.row_group[static_cast<size_t>(row)];
  Group& old_group = state.groups[static_cast<size_t>(g_old)];
  old_group.rows.erase(
      std::find(old_group.rows.begin(), old_group.rows.end(), row));
  if (old_group.rows.empty()) {
    SetCounted(state, old_group, false);
    state.key_to_group.erase(old_key);
    state.free_groups.push_back(g_old);
  } else {
    // Removing a row can fix a violation (or leave one); re-check.
    RefreshGroup(state, ofd, g_old);
  }

  // Join (or create) the new group.
  auto it = state.key_to_group.find(new_key);
  int32_t g_new;
  if (it == state.key_to_group.end()) {
    if (state.free_groups.empty()) {
      g_new = static_cast<int32_t>(state.groups.size());
      state.groups.emplace_back();
    } else {
      g_new = state.free_groups.back();
      state.free_groups.pop_back();
      state.groups[static_cast<size_t>(g_new)] = Group{};
    }
    state.key_to_group.emplace(std::move(new_key), g_new);
    state.groups[static_cast<size_t>(g_new)].rows.push_back(row);
    // A fresh singleton: vacuously satisfied, nothing to check.
  } else {
    g_new = it->second;
    state.groups[static_cast<size_t>(g_new)].rows.push_back(row);
    RefreshGroup(state, ofd, g_new);
  }
  state.row_group[static_cast<size_t>(row)] = g_new;
}

void IncrementalVerifier::UpdateCell(RowId row, AttrId attr, ValueId value) {
  FASTOFD_CHECK(row >= 0 && row < rel_->num_rows());
  ValueId old_value = rel_->At(row, attr);
  if (old_value == value) return;
  rel_->SetId(row, attr, value);
  for (size_t i = 0; i < sigma_.size(); ++i) {
    const Ofd& ofd = sigma_[i];
    OfdState& state = states_[i];
    if (ofd.lhs.Contains(attr)) {
      MoveRow(state, ofd, row, attr, old_value);
    } else if (ofd.rhs == attr) {
      int32_t g = state.row_group[static_cast<size_t>(row)];
      RefreshGroup(state, ofd, g);
    }
  }
}

}  // namespace fastofd
