#include "ofd/incremental.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/audit.h"
#include "common/check.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

Status IncAuditError(const std::string& message) {
  return audit::internal::Counted(
      Status::Error("incremental audit: " + message));
}

}  // namespace

Status IncrementalVerifier::AuditState() const {
  const int64_t n = static_cast<int64_t>(rel_->num_rows());
  const bool deep = n <= audit::kDeepAuditMaxRows;
  int total_counted = 0;
  for (size_t i = 0; i < sigma_.size(); ++i) {
    const Ofd& ofd = sigma_[i];
    const OfdState& state = states_[i];
    const std::string tag = "ofd " + std::to_string(i) + ": ";
    if (state.lhs_attrs != ofd.lhs.ToVector()) {
      return IncAuditError(tag + "lhs_attrs drifted from Σ");
    }
    if (state.row_group.size() != static_cast<size_t>(n)) {
      return IncAuditError(tag + "row_group has wrong size");
    }
    std::unordered_set<int32_t> free_set(state.free_groups.begin(),
                                         state.free_groups.end());
    if (free_set.size() != state.free_groups.size()) {
      return IncAuditError(tag + "duplicate entries on the group free list");
    }
    std::vector<char> seen(static_cast<size_t>(n), 0);
    int counted = 0;
    size_t non_empty = 0;
    for (size_t g = 0; g < state.groups.size(); ++g) {
      const Group& group = state.groups[g];
      if (free_set.count(static_cast<int32_t>(g)) != 0 &&
          (!group.rows.empty() || group.counted)) {
        return IncAuditError(tag + "free-listed group " + std::to_string(g) +
                             " is not empty and uncounted");
      }
      if (!group.rows.empty()) {
        ++non_empty;
        LhsKey head_key = KeyFor(state, group.rows[0]);
        auto it = state.key_to_group.find(head_key);
        if (it == state.key_to_group.end() ||
            it->second != static_cast<int32_t>(g)) {
          return IncAuditError(tag + "group " + std::to_string(g) +
                               " unreachable under its own antecedent key");
        }
        for (RowId r : group.rows) {
          if (r < 0 || static_cast<int64_t>(r) >= n) {
            return IncAuditError(tag + "row id out of range");
          }
          if (seen[static_cast<size_t>(r)] != 0) {
            return IncAuditError(tag + "row " + std::to_string(r) +
                                 " appears in two groups");
          }
          seen[static_cast<size_t>(r)] = 1;
          if (state.row_group[static_cast<size_t>(r)] !=
              static_cast<int32_t>(g)) {
            return IncAuditError(tag + "row_group[" + std::to_string(r) +
                                 "] disagrees with group membership");
          }
          if (KeyFor(state, r) != head_key) {
            return IncAuditError(tag + "group " + std::to_string(g) +
                                 " mixes antecedent keys");
          }
        }
      }
      if (group.counted != (group.rows.size() >= 2 && !group.ok)) {
        return IncAuditError(tag + "group " + std::to_string(g) +
                             " counted flag inconsistent with ok/size");
      }
      counted += group.counted ? 1 : 0;
      if (deep && group.rows.size() >= 2) {
        if (verifier_.HoldsInClass(group.rows, ofd.rhs, ofd.kind) !=
            group.ok) {
          return IncAuditError(tag + "group " + std::to_string(g) +
                               " satisfaction bit disagrees with " +
                               "re-verification");
        }
      }
    }
    for (size_t r = 0; r < seen.size(); ++r) {
      if (seen[r] == 0) {
        return IncAuditError(tag + "row " + std::to_string(r) +
                             " missing from every group");
      }
    }
    if (state.key_to_group.size() != non_empty) {
      return IncAuditError(tag + "key map has " +
                           std::to_string(state.key_to_group.size()) +
                           " keys for " + std::to_string(non_empty) +
                           " non-empty groups");
    }
    if (counted != state.violating) {
      return IncAuditError(tag + "violating counter " +
                           std::to_string(state.violating) +
                           " != counted groups " + std::to_string(counted));
    }
    total_counted += counted;
    if (deep) {
      // Group maps vs full re-verification: the cached per-OFD verdict must
      // match a from-scratch check over a freshly built Π*_lhs.
      StrippedPartition lhs = StrippedPartition::BuildForSet(*rel_, ofd.lhs);
      if (verifier_.Holds(ofd, lhs) != (state.violating == 0)) {
        return IncAuditError(tag + "cached verdict disagrees with full " +
                             "re-verification");
      }
    }
  }
  if (total_counted != total_violating()) {
    return IncAuditError("total_violating " + std::to_string(total_violating()) +
                         " != sum over OFDs " + std::to_string(total_counted));
  }
  return audit::internal::Counted(Status::Ok());
}

IncrementalVerifier::IncrementalVerifier(Relation* rel, const SynonymIndex& index,
                                         SigmaSet sigma)
    : rel_(rel),
      index_(index),
      sigma_(std::move(sigma)),
      verifier_(*rel, index) {
  states_.reserve(sigma_.size());
  const RowId n = rel_->num_rows();
  for (const Ofd& ofd : sigma_) {
    OfdState state;
    state.lhs_attrs = ofd.lhs.ToVector();
    state.row_group.assign(static_cast<size_t>(n), -1);
    for (RowId r = 0; r < n; ++r) {
      LhsKey key = KeyFor(state, r);
      auto [it, inserted] =
          state.key_to_group.try_emplace(std::move(key),
                                         static_cast<int32_t>(state.groups.size()));
      if (inserted) state.groups.emplace_back();
      state.groups[static_cast<size_t>(it->second)].rows.push_back(r);
      state.row_group[static_cast<size_t>(r)] = it->second;
    }
    states_.push_back(std::move(state));
    OfdState& st = states_.back();
    for (size_t g = 0; g < st.groups.size(); ++g) {
      RefreshGroup(st, ofd, static_cast<int32_t>(g));
    }
  }
}

IncrementalVerifier::LhsKey IncrementalVerifier::KeyFor(const OfdState& state,
                                                        RowId row) const {
  LhsKey key;
  key.reserve(state.lhs_attrs.size());
  for (AttrId a : state.lhs_attrs) key.push_back(rel_->At(row, a));
  return key;
}

void IncrementalVerifier::SetCounted(OfdState& state, Group& group, bool counted) {
  if (group.counted == counted) return;
  group.counted = counted;
  state.violating += counted ? 1 : -1;
  total_violating_.fetch_add(counted ? 1 : -1, std::memory_order_relaxed);
}

void IncrementalVerifier::RefreshGroup(OfdState& state, const Ofd& ofd, int32_t g) {
  Group& group = state.groups[static_cast<size_t>(g)];
  if (group.rows.size() < 2) {
    group.ok = true;  // Singletons (and empty groups) cannot violate.
  } else {
    group.ok = verifier_.HoldsInClass(group.rows, ofd.rhs, ofd.kind);
    classes_rechecked_.fetch_add(1, std::memory_order_relaxed);
  }
  SetCounted(state, group, group.rows.size() >= 2 && !group.ok);
}

void IncrementalVerifier::MoveRow(OfdState& state, const Ofd& ofd, RowId row,
                                  AttrId attr, ValueId old_value) {
  // The relation already holds the new value; reconstruct the old key by
  // substituting the previous value at the updated attribute.
  LhsKey new_key = KeyFor(state, row);
  LhsKey old_key = new_key;
  size_t pos = static_cast<size_t>(
      std::find(state.lhs_attrs.begin(), state.lhs_attrs.end(), attr) -
      state.lhs_attrs.begin());
  old_key[pos] = old_value;

  // Leave the old group.
  int32_t g_old = state.row_group[static_cast<size_t>(row)];
  Group& old_group = state.groups[static_cast<size_t>(g_old)];
  old_group.rows.erase(
      std::find(old_group.rows.begin(), old_group.rows.end(), row));
  if (old_group.rows.empty()) {
    SetCounted(state, old_group, false);
    state.key_to_group.erase(old_key);
    state.free_groups.push_back(g_old);
  } else {
    // Removing a row can fix a violation (or leave one); re-check.
    RefreshGroup(state, ofd, g_old);
  }

  // Join (or create) the new group.
  auto it = state.key_to_group.find(new_key);
  int32_t g_new;
  if (it == state.key_to_group.end()) {
    if (state.free_groups.empty()) {
      g_new = static_cast<int32_t>(state.groups.size());
      state.groups.emplace_back();
    } else {
      g_new = state.free_groups.back();
      state.free_groups.pop_back();
      state.groups[static_cast<size_t>(g_new)] = Group{};
    }
    state.key_to_group.emplace(std::move(new_key), g_new);
    state.groups[static_cast<size_t>(g_new)].rows.push_back(row);
    // A fresh singleton: vacuously satisfied, nothing to check.
  } else {
    g_new = it->second;
    state.groups[static_cast<size_t>(g_new)].rows.push_back(row);
    RefreshGroup(state, ofd, g_new);
  }
  state.row_group[static_cast<size_t>(row)] = g_new;
}

void IncrementalVerifier::UpdateCell(RowId row, AttrId attr, ValueId value) {
  FASTOFD_CHECK(row >= 0 && row < rel_->num_rows());
  ValueId old_value = rel_->At(row, attr);
  if (old_value == value) return;
  rel_->SetId(row, attr, value);
  for (size_t i = 0; i < sigma_.size(); ++i) {
    const Ofd& ofd = sigma_[i];
    OfdState& state = states_[i];
    if (ofd.lhs.Contains(attr)) {
      MoveRow(state, ofd, row, attr, old_value);
    } else if (ofd.rhs == attr) {
      int32_t g = state.row_group[static_cast<size_t>(row)];
      RefreshGroup(state, ofd, g);
    }
  }
}

}  // namespace fastofd
