#include "ofd/incremental.h"

#include "common/check.h"

namespace fastofd {

IncrementalVerifier::IncrementalVerifier(Relation* rel, const SynonymIndex& index,
                                         SigmaSet sigma)
    : rel_(rel),
      index_(index),
      sigma_(std::move(sigma)),
      verifier_(*rel, index) {
  AttrSet lhs_attrs, rhs_attrs;
  for (const Ofd& ofd : sigma_) {
    lhs_attrs = lhs_attrs.Union(ofd.lhs);
    rhs_attrs = rhs_attrs.With(ofd.rhs);
  }
  FASTOFD_CHECK(!lhs_attrs.Intersects(rhs_attrs));

  states_.reserve(sigma_.size());
  for (const Ofd& ofd : sigma_) {
    OfdState state;
    state.partition = StrippedPartition::BuildForSet(*rel_, ofd.lhs);
    state.row_class.assign(static_cast<size_t>(rel_->num_rows()), -1);
    const auto& classes = state.partition.classes();
    state.class_ok.resize(classes.size());
    for (size_t c = 0; c < classes.size(); ++c) {
      for (RowId r : classes[c]) {
        state.row_class[static_cast<size_t>(r)] = static_cast<int32_t>(c);
      }
      bool ok = verifier_.HoldsInClass(classes[c], ofd.rhs, ofd.kind);
      state.class_ok[c] = ok;
      state.violating += !ok;
      ++classes_rechecked_;
    }
    total_violating_ += state.violating;
    states_.push_back(std::move(state));
  }
}

void IncrementalVerifier::UpdateCell(RowId row, AttrId attr, ValueId value) {
  FASTOFD_CHECK(row >= 0 && row < rel_->num_rows());
  rel_->SetId(row, attr, value);
  for (size_t i = 0; i < sigma_.size(); ++i) {
    if (sigma_[i].rhs != attr) continue;
    OfdState& state = states_[i];
    int32_t c = state.row_class[static_cast<size_t>(row)];
    if (c < 0) continue;  // Singleton class: always satisfied.
    bool ok = verifier_.HoldsInClass(state.partition.classes()[static_cast<size_t>(c)],
                                     attr, sigma_[i].kind);
    ++classes_rechecked_;
    bool was_ok = state.class_ok[static_cast<size_t>(c)];
    if (ok != was_ok) {
      state.class_ok[static_cast<size_t>(c)] = ok;
      state.violating += ok ? -1 : 1;
      total_violating_ += ok ? -1 : 1;
    }
  }
}

}  // namespace fastofd
