#include "ofd/metric_fd.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ofd/verifier.h"
#include "relation/partition.h"

namespace fastofd {

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  std::vector<int> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    int prev_diag = row[0];
    row[0] = static_cast<int>(j);
    for (size_t i = 1; i <= m; ++i) {
      int subst = prev_diag + (a[i - 1] != b[j - 1]);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[m];
}

bool MetricFdHolds(const Relation& rel, AttrSet lhs, AttrId rhs, int delta) {
  StrippedPartition p = StrippedPartition::BuildForSet(rel, lhs);
  for (const auto& rows : p.classes()) {
    // Pairwise over the *distinct* values of the class.
    std::vector<ValueId> distinct;
    distinct.reserve(rows.size());
    for (RowId r : rows) distinct.push_back(rel.At(r, rhs));
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    for (size_t i = 0; i < distinct.size(); ++i) {
      for (size_t j = i + 1; j < distinct.size(); ++j) {
        if (EditDistance(rel.dict().String(distinct[i]),
                         rel.dict().String(distinct[j])) > delta) {
          return false;
        }
      }
    }
  }
  return true;
}

MetricComparison CompareMetricVsOfd(const Relation& rel, const SynonymIndex& index,
                                    const Ofd& ofd, int delta) {
  MetricComparison cmp;
  StrippedPartition p = StrippedPartition::BuildForSet(rel, ofd.lhs);
  std::unordered_map<ValueId, int64_t> freq;
  std::unordered_map<SenseId, int64_t> sense_cover;
  for (const auto& rows : p.classes()) {
    cmp.tuples += static_cast<int64_t>(rows.size());
    freq.clear();
    sense_cover.clear();
    for (RowId r : rows) {
      ValueId v = rel.At(r, ofd.rhs);
      ++freq[v];
      for (SenseId s : index.Senses(v)) ++sense_cover[s];
    }
    // Majority value (the MFD/FD repair anchor) and best sense (the OFD
    // interpretation).
    ValueId majority = kInvalidValue;
    int64_t majority_count = -1;
    for (const auto& [v, c] : freq) {
      if (c > majority_count || (c == majority_count && v < majority)) {
        majority = v;
        majority_count = c;
      }
    }
    SenseId best_sense = kInvalidSense;
    int64_t best_cover = 0;
    for (const auto& [s, c] : sense_cover) {
      if (c > best_cover || (c == best_cover && s < best_sense)) {
        best_sense = s;
        best_cover = c;
      }
    }
    const std::string& majority_str = rel.dict().String(majority);
    for (RowId r : rows) {
      ValueId v = rel.At(r, ofd.rhs);
      bool mfd_flag =
          v != majority && EditDistance(rel.dict().String(v), majority_str) > delta;
      bool ofd_flag = v != majority &&
                      !(best_sense != kInvalidSense &&
                        index.SenseContains(best_sense, v) &&
                        index.SenseContains(best_sense, majority));
      cmp.mfd_flagged += mfd_flag;
      cmp.ofd_flagged += ofd_flag;
      cmp.mfd_only += (mfd_flag && !ofd_flag);
      cmp.ofd_only += (ofd_flag && !mfd_flag);
    }
  }
  return cmp;
}

}  // namespace fastofd
