#include "ofd/ofd.h"

namespace fastofd {

std::string RenderOfd(const Ofd& ofd, const Schema& schema) {
  std::string arrow = ofd.kind == OfdKind::kSynonym ? " ->syn " : " ->inh ";
  return schema.Render(ofd.lhs) + arrow + schema.Render(AttrSet::Single(ofd.rhs));
}

}  // namespace fastofd
