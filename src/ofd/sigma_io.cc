#include "ofd/sigma_io.h"

#include <fstream>
#include <sstream>

namespace fastofd {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

Result<SigmaSet> ParseSigma(std::string_view text, const Schema& schema) {
  SigmaSet sigma;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;

    auto error = [line_no](const std::string& msg) {
      return Status::Error("sigma parse error (line " + std::to_string(line_no) +
                           "): " + msg);
    };

    OfdKind kind = OfdKind::kSynonym;
    size_t arrow = line.find("->inh");
    size_t arrow_len = 5;
    if (arrow != std::string_view::npos) {
      kind = OfdKind::kInheritance;
    } else {
      arrow = line.find("->syn");
      if (arrow == std::string_view::npos) {
        arrow = line.find("->");
        arrow_len = 2;
      }
    }
    if (arrow == std::string_view::npos) return error("missing '->'");

    std::string_view lhs_text = Trim(line.substr(0, arrow));
    std::string_view rhs_text = Trim(line.substr(arrow + arrow_len));
    if (rhs_text.empty()) return error("missing consequent");

    AttrSet lhs;
    if (lhs_text != "{}") {
      size_t p = 0;
      while (p <= lhs_text.size()) {
        size_t comma = lhs_text.find(',', p);
        std::string_view name = Trim(lhs_text.substr(
            p, comma == std::string_view::npos ? lhs_text.size() - p : comma - p));
        p = (comma == std::string_view::npos) ? lhs_text.size() + 1 : comma + 1;
        if (name.empty()) continue;
        AttrId a = schema.Find(name);
        if (a < 0) return error("unknown attribute '" + std::string(name) + "'");
        lhs = lhs.With(a);
      }
    }
    AttrId rhs = schema.Find(rhs_text);
    if (rhs < 0) {
      return error("unknown attribute '" + std::string(rhs_text) + "'");
    }
    if (lhs.Contains(rhs)) return error("trivial dependency (consequent in antecedent)");
    sigma.push_back(Ofd{lhs, rhs, kind});
  }
  return sigma;
}

Result<SigmaSet> ReadSigmaFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open sigma file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSigma(buf.str(), schema);
}

std::string WriteSigma(const SigmaSet& sigma, const Schema& schema) {
  std::string out;
  for (const Ofd& ofd : sigma) {
    if (ofd.lhs.empty()) {
      out += "{}";
    } else {
      bool first = true;
      for (AttrId a : ofd.lhs.ToVector()) {
        if (!first) out += ", ";
        out += schema.name(a);
        first = false;
      }
    }
    out += ofd.kind == OfdKind::kSynonym ? " ->syn " : " ->inh ";
    out += schema.name(ofd.rhs);
    out += "\n";
  }
  return out;
}

}  // namespace fastofd
