// Axiomatic inference for OFDs (paper §3).
//
// OFD axioms (Theorem 3.3): Identity, Decomposition, Composition. These are
// provably equivalent to Lien's NFD axioms (Theorem 3.6), so logical
// inference reduces to closure computation exactly as for FDs — even though
// *data verification* of OFDs differs (it needs whole equivalence classes,
// not tuple pairs; see verifier.h).
//
// This module provides:
//   - Closure(X, Σ): the attribute closure X+ (paper Algorithm 1), in time
//     linear in the total size of Σ (Beeri–Bernstein counter algorithm);
//   - Implies / ImpliesOfd: Σ ⊨ X→Y iff Y ⊆ X+ (paper Lemma 3.2);
//   - MinimalCover: an equivalent Σ that is minimal per Definition 3.7
//     (single consequents, no extraneous antecedent attributes, no
//     redundant dependencies).

#ifndef FASTOFD_OFD_INFERENCE_H_
#define FASTOFD_OFD_INFERENCE_H_

#include <vector>

#include "ofd/ofd.h"
#include "relation/attr_set.h"

namespace fastofd {

/// A (possibly multi-consequent) dependency X -> Y used by the inference
/// machinery; semantically an OFD whose consequent set is Y.
struct Dependency {
  AttrSet lhs;
  AttrSet rhs;

  friend bool operator==(const Dependency& a, const Dependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// Computes the OFD closure X+ of `x` under `sigma` (paper Algorithm 1).
///
/// CRUCIAL: OFDs have no Transitivity axiom, so a dependency V -> Z fires
/// only when V ⊆ X — the *original* attribute set, not the accumulating
/// closure. (With {A->B, B->C}, closure(A) = {A,B}: A->C is NOT derivable,
/// matching the semantic counterexample in §3.1.) Linear in ||sigma||.
AttrSet Closure(AttrSet x, const std::vector<Dependency>& sigma);

/// Reference implementation of paper Algorithm 1 with the explicit
/// unused-set loop. Exposed for testing and documentation.
AttrSet ClosureNaive(AttrSet x, const std::vector<Dependency>& sigma);

/// Classic *transitive* FD closure (Beeri–Bernstein counter algorithm, also
/// linear). This is the closure for traditional FDs — used when reasoning
/// about the FD-discovery baselines, NOT for OFD implication.
AttrSet FdClosure(AttrSet x, const std::vector<Dependency>& sigma);

/// True iff sigma ⊨ lhs -> rhs under OFD axioms (Lemma 3.2).
bool Implies(const std::vector<Dependency>& sigma, AttrSet lhs, AttrSet rhs);

/// True iff sigma ⊨ ofd, treating each OFD in sigma as a dependency.
bool ImpliesOfd(const SigmaSet& sigma, const Ofd& ofd);

/// FD implication (transitive) between sets of single-consequent FDs.
bool ImpliesFd(const SigmaSet& sigma, const Ofd& fd);

/// Computes a minimal cover of `sigma` (Definition 3.7): every consequent a
/// single attribute, no antecedent attribute removable, no dependency
/// removable. Ties are broken deterministically by input order.
SigmaSet MinimalCover(const SigmaSet& sigma);

/// Converts OFDs to generic dependencies (kind is erased: inference is the
/// same for synonym and inheritance OFDs, per the shared axiom system).
std::vector<Dependency> ToDependencies(const SigmaSet& sigma);

}  // namespace fastofd

#endif  // FASTOFD_OFD_INFERENCE_H_
