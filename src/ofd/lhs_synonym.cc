#include "ofd/lhs_synonym.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace fastofd {

namespace {

// Canonical representative of v under sense s: the sense's smallest member
// when v belongs to s, v itself otherwise.
ValueId CanonicalUnder(const SynonymIndex& index, SenseId s, ValueId v) {
  if (!index.SenseContains(s, v)) return v;
  const std::vector<ValueId>& members = index.SenseValues(s);
  return *std::min_element(members.begin(), members.end());
}

// Checks the consequent condition over one merged class given its rows.
bool ClassSatisfies(const Relation& rel, const SynonymIndex& index,
                    const std::vector<RowId>& rows, AttrId rhs) {
  std::vector<ValueId> distinct;
  distinct.reserve(rows.size());
  for (RowId r : rows) distinct.push_back(rel.At(r, rhs));
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.size() <= 1) return true;
  std::unordered_map<SenseId, size_t> counts;
  for (ValueId v : distinct) {
    const std::vector<SenseId>& senses = index.Senses(v);
    if (senses.empty()) return false;
    for (SenseId s : senses) ++counts[s];
  }
  for (const auto& [_, c] : counts) {
    if (c == distinct.size()) return true;
  }
  return false;
}

}  // namespace

bool HoldsWithLhsSynonyms(const Relation& rel, const SynonymIndex& index,
                          const Ofd& ofd, LhsSynonymStats* stats) {
  FASTOFD_CHECK(ofd.kind == OfdKind::kSynonym);
  std::vector<AttrId> lhs_attrs = ofd.lhs.ToVector();

  // Interpretation loop: the literal reading (sense = kInvalidSense) plus
  // every ontology sense. A sense merging no antecedent values degenerates
  // to the literal partition, so the literal case is subsumed — but senses
  // may not exist at all, hence the explicit first iteration.
  std::vector<SenseId> interpretations = {kInvalidSense};
  for (SenseId s = 0; s < index.num_senses(); ++s) interpretations.push_back(s);

  std::map<std::vector<ValueId>, std::vector<RowId>> classes;
  std::vector<ValueId> key(lhs_attrs.size());
  for (SenseId lambda : interpretations) {
    if (stats) ++stats->interpretations;
    classes.clear();
    for (RowId r = 0; r < rel.num_rows(); ++r) {
      for (size_t i = 0; i < lhs_attrs.size(); ++i) {
        ValueId v = rel.At(r, lhs_attrs[i]);
        if (lambda != kInvalidSense) v = CanonicalUnder(index, lambda, v);
        key[i] = v;
      }
      classes[key].push_back(r);
    }
    for (const auto& [_, rows] : classes) {
      if (rows.size() < 2) continue;
      if (stats) ++stats->classes_evaluated;
      if (!ClassSatisfies(rel, index, rows, ofd.rhs)) return false;
    }
  }
  return true;
}

}  // namespace fastofd
