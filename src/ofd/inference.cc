#include "ofd/inference.h"

#include <algorithm>

#include "common/check.h"

namespace fastofd {

AttrSet ClosureNaive(AttrSet x, const std::vector<Dependency>& sigma) {
  // Paper Algorithm 1: repeatedly apply any unused dependency whose
  // antecedent is contained in X (the ORIGINAL set — no transitivity).
  AttrSet closure = x;
  std::vector<bool> used(sigma.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < sigma.size(); ++i) {
      if (used[i]) continue;
      if (x.ContainsAll(sigma[i].lhs)) {
        closure = closure.Union(sigma[i].rhs);
        used[i] = true;
        changed = true;
      }
    }
  }
  return closure;
}

AttrSet Closure(AttrSet x, const std::vector<Dependency>& sigma) {
  // Without Transitivity the closure is a single pass: V -> Z contributes
  // iff V ⊆ X. Linear in the total size of sigma.
  AttrSet closure = x;
  for (const Dependency& dep : sigma) {
    if (x.ContainsAll(dep.lhs)) closure = closure.Union(dep.rhs);
  }
  return closure;
}

AttrSet FdClosure(AttrSet x, const std::vector<Dependency>& sigma) {
  // Beeri–Bernstein LINCLOSURE: counters per dependency, attribute -> list
  // of dependencies mentioning it on the left. Linear in ||sigma||.
  AttrSet closure = x;
  std::vector<int> counter(sigma.size());
  std::vector<std::vector<int>> watch(64);
  for (size_t i = 0; i < sigma.size(); ++i) {
    counter[i] = sigma[i].lhs.size();
    if (counter[i] == 0) closure = closure.Union(sigma[i].rhs);
    for (AttrId a : sigma[i].lhs.ToVector()) {
      watch[static_cast<size_t>(a)].push_back(static_cast<int>(i));
    }
  }
  std::vector<AttrId> queue = x.ToVector();
  for (AttrId a : closure.Minus(x).ToVector()) queue.push_back(a);
  AttrSet processed;
  while (!queue.empty()) {
    AttrId a = queue.back();
    queue.pop_back();
    if (processed.Contains(a)) continue;
    processed = processed.With(a);
    for (int i : watch[static_cast<size_t>(a)]) {
      if (--counter[static_cast<size_t>(i)] == 0) {
        for (AttrId add : sigma[static_cast<size_t>(i)].rhs.ToVector()) {
          if (!closure.Contains(add)) {
            closure = closure.With(add);
            queue.push_back(add);
          }
        }
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<Dependency>& sigma, AttrSet lhs, AttrSet rhs) {
  return Closure(lhs, sigma).ContainsAll(rhs);
}

std::vector<Dependency> ToDependencies(const SigmaSet& sigma) {
  std::vector<Dependency> out;
  out.reserve(sigma.size());
  for (const Ofd& ofd : sigma) {
    out.push_back({ofd.lhs, AttrSet::Single(ofd.rhs)});
  }
  return out;
}

bool ImpliesOfd(const SigmaSet& sigma, const Ofd& ofd) {
  return Implies(ToDependencies(sigma), ofd.lhs, AttrSet::Single(ofd.rhs));
}

bool ImpliesFd(const SigmaSet& sigma, const Ofd& fd) {
  return FdClosure(fd.lhs, ToDependencies(sigma)).Contains(fd.rhs);
}

SigmaSet MinimalCover(const SigmaSet& sigma) {
  // Step 1: consequents are already single attributes (SigmaSet invariant);
  // drop exact duplicates and trivial dependencies (A ∈ X).
  SigmaSet work;
  for (const Ofd& ofd : sigma) {
    if (ofd.lhs.Contains(ofd.rhs)) continue;  // Trivial by Reflexivity.
    if (std::find(work.begin(), work.end(), ofd) == work.end()) work.push_back(ofd);
  }

  // Step 2: remove extraneous antecedent attributes. B is extraneous in
  // X -> A iff A ∈ closure(X \ B) under the current set (which may use
  // X -> A itself). Shrinking one dependency can enable shrinking another,
  // so iterate to a global fixpoint.
  bool any_shrunk = true;
  while (any_shrunk) {
    any_shrunk = false;
    for (size_t i = 0; i < work.size(); ++i) {
      bool shrunk = true;
      while (shrunk) {
        shrunk = false;
        for (AttrId b : work[i].lhs.ToVector()) {
          AttrSet reduced = work[i].lhs.Without(b);
          if (Closure(reduced, ToDependencies(work)).Contains(work[i].rhs)) {
            work[i].lhs = reduced;
            shrunk = true;
            any_shrunk = true;
            break;
          }
        }
      }
    }
  }

  // Shrinking can create duplicates; drop them before redundancy removal.
  SigmaSet dedup;
  for (const Ofd& ofd : work) {
    if (std::find(dedup.begin(), dedup.end(), ofd) == dedup.end()) {
      dedup.push_back(ofd);
    }
  }
  work = std::move(dedup);

  // Step 3: remove redundant dependencies. X -> A is redundant iff
  // A ∈ closure(X) under Σ \ {X -> A}.
  for (size_t i = 0; i < work.size();) {
    SigmaSet rest;
    rest.reserve(work.size() - 1);
    for (size_t j = 0; j < work.size(); ++j) {
      if (j != i) rest.push_back(work[j]);
    }
    if (Closure(work[i].lhs, ToDependencies(rest)).Contains(work[i].rhs)) {
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return work;
}

}  // namespace fastofd
