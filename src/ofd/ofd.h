// Ontology Functional Dependencies (paper Definition 2.1).
//
// A synonym OFD X ->_syn A holds over instance I w.r.t. ontology S iff for
// every equivalence class x of Π_X(I) there exists a sense under which all
// A-values of tuples in x are synonyms. Per the axioms (Theorem 3.3,
// Decomposition/Composition), dependencies normalize to a single consequent
// attribute; the general multi-attribute form used by the inference machinery
// lives in inference.h.

#ifndef FASTOFD_OFD_OFD_H_
#define FASTOFD_OFD_OFD_H_

#include <string>
#include <vector>

#include "relation/attr_set.h"
#include "relation/schema.h"

namespace fastofd {

/// The kind of ontological relationship on the consequent.
enum class OfdKind {
  /// X ->_syn A: consequent values share a sense (the paper's focus).
  kSynonym,
  /// X ->_inh A: consequent values share an ancestor concept within theta
  /// ontology levels (the earlier work's inheritance variant; extension).
  kInheritance,
};

/// A normalized OFD: antecedent attribute set, single consequent attribute.
struct Ofd {
  AttrSet lhs;
  AttrId rhs = -1;
  OfdKind kind = OfdKind::kSynonym;

  friend bool operator==(const Ofd& a, const Ofd& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs && a.kind == b.kind;
  }
  friend bool operator<(const Ofd& a, const Ofd& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    if (a.rhs != b.rhs) return a.rhs < b.rhs;
    return a.kind < b.kind;
  }
};

/// Renders an OFD like "[SYMP,DIAG] ->syn [MED]".
std::string RenderOfd(const Ofd& ofd, const Schema& schema);

/// A set Σ of OFDs.
using SigmaSet = std::vector<Ofd>;

}  // namespace fastofd

#endif  // FASTOFD_OFD_OFD_H_
