// Text serialization for sets of OFDs.
//
// Line format (one dependency per line, '#' comments allowed):
//
//   CC -> CTRY
//   SYMP, DIAG ->syn MED
//   GROUP ->inh MED
//
// '->' and '->syn' both denote synonym OFDs; '->inh' denotes inheritance.
// An empty antecedent is written as '{}' (constant-column dependency).

#ifndef FASTOFD_OFD_SIGMA_IO_H_
#define FASTOFD_OFD_SIGMA_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "ofd/ofd.h"
#include "relation/schema.h"

namespace fastofd {

/// Parses a Σ file against a schema (attribute names must resolve).
Result<SigmaSet> ParseSigma(std::string_view text, const Schema& schema);

/// Reads and parses a Σ file.
Result<SigmaSet> ReadSigmaFile(const std::string& path, const Schema& schema);

/// Serializes Σ (round-trips ParseSigma).
std::string WriteSigma(const SigmaSet& sigma, const Schema& schema);

}  // namespace fastofd

#endif  // FASTOFD_OFD_SIGMA_IO_H_
