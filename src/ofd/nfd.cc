#include "ofd/nfd.h"

#include "common/dictionary.h"

namespace fastofd {

bool NfdHolds(const Relation& rel, AttrSet lhs, AttrId rhs,
              const std::string& null_token) {
  ValueId null_id = rel.dict().Lookup(null_token);
  auto is_null = [null_id](ValueId v) { return v == null_id; };

  for (RowId a = 0; a < rel.num_rows(); ++a) {
    for (RowId b = a + 1; b < rel.num_rows(); ++b) {
      // Agreement on X: equal wherever *both* are non-null; Lien's weak
      // reading treats a null as compatible with anything.
      bool x_agree = true;
      for (AttrId attr : lhs.ToVector()) {
        ValueId va = rel.At(a, attr);
        ValueId vb = rel.At(b, attr);
        if (is_null(va) || is_null(vb)) continue;
        if (va != vb) {
          x_agree = false;
          break;
        }
      }
      if (!x_agree) continue;
      ValueId ya = rel.At(a, rhs);
      ValueId yb = rel.At(b, rhs);
      if (is_null(ya) || is_null(yb)) continue;  // Partial consequents allowed.
      if (ya != yb) return false;
    }
  }
  return true;
}

}  // namespace fastofd
