#include "ofd/verifier.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace fastofd {

namespace {

// Distinct values of `attr` among `rows` (sorted).
std::vector<ValueId> DistinctValues(const Relation& rel, RowSpan rows,
                                    AttrId attr) {
  std::vector<ValueId> vals;
  vals.reserve(rows.size());
  for (RowId r : rows) vals.push_back(rel.At(r, attr));
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

}  // namespace

bool OfdVerifier::SynonymClassHolds(const std::vector<ValueId>& distinct) const {
  if (distinct.size() <= 1) return true;  // FD reduction (Opt-4).
  // Count, for each sense, how many of the distinct values it contains.
  // The OFD holds in this class iff some sense contains them all
  // (non-empty intersection of names(v), Definition 2.1).
  std::unordered_map<SenseId, size_t> counts;
  for (ValueId v : distinct) {
    const std::vector<SenseId>& senses = index_.Senses(v);
    if (senses.empty()) return false;  // Value outside the ontology.
    for (SenseId s : senses) ++counts[s];
  }
  for (const auto& [sense, count] : counts) {
    if (count == distinct.size()) return true;
  }
  return false;
}

bool OfdVerifier::InheritanceClassHolds(const std::vector<ValueId>& distinct) const {
  if (distinct.size() <= 1) return true;
  FASTOFD_CHECK(ontology_ != nullptr);
  // Each value reaches the concepts of its senses plus up to theta ancestors;
  // the class satisfies iff some concept is reachable from every value.
  std::unordered_map<ConceptId, size_t> counts;
  for (ValueId v : distinct) {
    const std::vector<SenseId>& senses = index_.Senses(v);
    if (senses.empty()) return false;
    // Collect this value's reachable concepts (dedup before counting).
    std::vector<ConceptId> reach;
    for (SenseId s : senses) {
      ConceptId c = ontology_->sense_concept(s);
      for (int hop = 0; hop <= theta_ && c != kInvalidConcept; ++hop) {
        reach.push_back(c);
        c = ontology_->parent(c);
      }
    }
    std::sort(reach.begin(), reach.end());
    reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
    for (ConceptId c : reach) ++counts[c];
  }
  for (const auto& [c, count] : counts) {
    if (count == distinct.size()) return true;
  }
  return false;
}

bool OfdVerifier::HoldsInClass(RowSpan rows, AttrId rhs, OfdKind kind) const {
  std::vector<ValueId> distinct = DistinctValues(rel_, rows, rhs);
  return kind == OfdKind::kSynonym ? SynonymClassHolds(distinct)
                                   : InheritanceClassHolds(distinct);
}

bool OfdVerifier::Holds(const Ofd& ofd) const {
  return Holds(ofd, StrippedPartition::BuildForSet(rel_, ofd.lhs));
}

bool OfdVerifier::Holds(const Ofd& ofd, const StrippedPartition& lhs_partition) const {
  for (const auto& cls : lhs_partition.classes()) {
    if (!HoldsInClass(cls, ofd.rhs, ofd.kind)) return false;
  }
  return true;
}

double OfdVerifier::Support(const Ofd& ofd,
                            const StrippedPartition& lhs_partition) const {
  FASTOFD_CHECK(ofd.kind == OfdKind::kSynonym);
  if (rel_.num_rows() == 0) return 1.0;
  // Singleton classes (stripped away) are trivially satisfied.
  int64_t satisfied = lhs_partition.num_rows() - lhs_partition.sum_sizes();
  std::unordered_map<SenseId, int64_t> sense_tuples;
  std::unordered_map<ValueId, int64_t> literal_tuples;
  for (const auto& cls : lhs_partition.classes()) {
    sense_tuples.clear();
    literal_tuples.clear();
    for (RowId r : cls) {
      ValueId v = rel_.At(r, ofd.rhs);
      ++literal_tuples[v];
      for (SenseId s : index_.Senses(v)) ++sense_tuples[s];
    }
    // Best interpretation: a single sense, or a single literal value
    // (covers values outside the ontology).
    int64_t best = 0;
    for (const auto& [_, n] : literal_tuples) best = std::max(best, n);
    for (const auto& [_, n] : sense_tuples) best = std::max(best, n);
    satisfied += best;
  }
  return static_cast<double>(satisfied) / static_cast<double>(rel_.num_rows());
}

bool OfdVerifier::SupportAtLeast(const Ofd& ofd,
                                 const StrippedPartition& lhs_partition,
                                 double kappa) const {
  FASTOFD_CHECK(ofd.kind == OfdKind::kSynonym);
  if (rel_.num_rows() == 0) return 1.0 >= kappa;
  const double num_rows = static_cast<double>(rel_.num_rows());
  int64_t satisfied = lhs_partition.num_rows() - lhs_partition.sum_sizes();
  // Tuples in classes not yet scanned; even if every one of them were
  // satisfiable, support tops out at (satisfied + remaining) / |I|.
  int64_t remaining = lhs_partition.sum_sizes();
  std::unordered_map<SenseId, int64_t> sense_tuples;
  std::unordered_map<ValueId, int64_t> literal_tuples;
  for (const auto& cls : lhs_partition.classes()) {
    sense_tuples.clear();
    literal_tuples.clear();
    for (RowId r : cls) {
      ValueId v = rel_.At(r, ofd.rhs);
      ++literal_tuples[v];
      for (SenseId s : index_.Senses(v)) ++sense_tuples[s];
    }
    int64_t best = 0;
    for (const auto& [_, n] : literal_tuples) best = std::max(best, n);
    for (const auto& [_, n] : sense_tuples) best = std::max(best, n);
    satisfied += best;
    remaining -= static_cast<int64_t>(cls.size());
    if (static_cast<double>(satisfied + remaining) / num_rows < kappa) {
      return false;  // Error budget exceeded: no later class can recover.
    }
  }
  // No early exit: identical comparison to Support(...) >= kappa.
  return static_cast<double>(satisfied) / num_rows >= kappa;
}

SynonymSavings OfdVerifier::Savings(const Ofd& ofd,
                                    const StrippedPartition& lhs_partition) const {
  SynonymSavings stats;
  for (const auto& cls : lhs_partition.classes()) {
    ++stats.classes;
    stats.class_tuples += static_cast<int64_t>(cls.size());
    std::vector<ValueId> distinct = DistinctValues(rel_, cls, ofd.rhs);
    if (distinct.size() <= 1) continue;  // Syntactically clean class.
    bool holds = ofd.kind == OfdKind::kSynonym ? SynonymClassHolds(distinct)
                                               : InheritanceClassHolds(distinct);
    if (holds) {
      ++stats.synonym_classes;
      stats.saved_tuples += static_cast<int64_t>(cls.size());
    }
  }
  return stats;
}

}  // namespace fastofd
