// Null Functional Dependencies (Lien 1982), the comparison class of paper
// §3 (Theorems 3.4–3.6).
//
// An NFD X -> Y holds when any two tuples that agree on the *non-null*
// values of X agree on Y. The paper proves that the OFD axiom system
// {Identity, Decomposition, Composition} is equivalent to Lien's NFD system
// {Reflexivity, Append, Union, Simplification} — so logical inference
// coincides (see inference.h) — while the *data semantics* differ in both
// directions:
//   - [CC] -> [CTRY] in Table 1 holds as an OFD (synonyms) but fails as an
//     NFD (no nulls, syntactically distinct values);
//   - with nulls, an NFD can hold where the corresponding OFD fails
//     (a null matches everything for the NFD, but is just a value outside
//     the ontology for the OFD).
// NFD verification is pairwise; OFD verification needs whole classes.

#ifndef FASTOFD_OFD_NFD_H_
#define FASTOFD_OFD_NFD_H_

#include <string>

#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

/// True iff the NFD lhs -> rhs holds over `rel`, treating cells equal to
/// `null_token` as unknown. O(N^2) pairwise semantics (kept simple: this
/// class exists for the semantic comparison, not for discovery).
bool NfdHolds(const Relation& rel, AttrSet lhs, AttrId rhs,
              const std::string& null_token = "");

}  // namespace fastofd

#endif  // FASTOFD_OFD_NFD_H_
