// Pairwise FD-discovery baselines: DepMiner, FastFDs, FDep. All three derive
// dependencies from tuple-pair evidence (agree / difference sets), which is
// what gives them their ~quadratic-in-N profile in the paper's Exp-1.

#include <algorithm>
#include <functional>
#include <vector>

#include "discovery/fd_baselines.h"
#include "discovery/set_cover.h"
#include "relation/attr_set.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

// True iff the column is constant (∅ -> A case, handled up front by all
// pairwise algorithms).
bool IsConstantColumn(const Relation& rel, AttrId a) {
  if (rel.num_rows() == 0) return true;
  ValueId first = rel.At(0, a);
  for (RowId r = 1; r < rel.num_rows(); ++r) {
    if (rel.At(r, a) != first) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// DepMiner (Lopes et al. 2000): agree sets from stripped partitions,
// maximal sets per consequent, minimal FDs as minimal transversals of the
// complements of the maximal sets.

class DepMiner : public FdAlgorithm {
 public:
  std::string name() const override { return "depminer"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();

    std::vector<std::pair<RowId, RowId>> pairs = CandidatePairs(rel);
    result.work = static_cast<int64_t>(pairs.size());
    std::vector<AttrSet> agree_sets;
    agree_sets.reserve(pairs.size());
    for (const auto& [r1, r2] : pairs) agree_sets.push_back(AgreeSet(rel, r1, r2));
    std::sort(agree_sets.begin(), agree_sets.end());
    agree_sets.erase(std::unique(agree_sets.begin(), agree_sets.end()),
                     agree_sets.end());

    for (AttrId a = 0; a < n; ++a) {
      if (IsConstantColumn(rel, a)) {
        result.fds.push_back(Ofd{AttrSet(), a, OfdKind::kSynonym});
        continue;
      }
      AttrSet universe = AttrSet::All(n).Without(a);
      // max(a): maximal agree sets of pairs that differ on a. The empty
      // agree set is always included for non-constant columns: ∅ -> A is
      // invalid, which forces antecedents to be non-empty (pairs agreeing
      // nowhere are not enumerated by CandidatePairs).
      std::vector<AttrSet> family = {AttrSet()};
      for (AttrSet ag : agree_sets) {
        if (!ag.Contains(a)) family.push_back(ag);
      }
      family = MaximalSets(std::move(family));
      std::vector<AttrSet> complements;
      complements.reserve(family.size());
      for (AttrSet m : family) complements.push_back(universe.Minus(m));
      for (AttrSet lhs : MinimalTransversals(complements, universe)) {
        result.fds.push_back(Ofd{lhs, a, OfdKind::kSynonym});
      }
    }
    std::sort(result.fds.begin(), result.fds.end());
    return result;
  }
};

// --------------------------------------------------------------------------
// FastFDs (Wyss et al. 2001): minimal difference sets per consequent, then a
// depth-first search for minimal covers ordered by coverage counts.

class FastFds : public FdAlgorithm {
 public:
  std::string name() const override { return "fastfds"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();
    const AttrSet all = AttrSet::All(n);

    std::vector<std::pair<RowId, RowId>> pairs = CandidatePairs(rel);
    result.work = static_cast<int64_t>(pairs.size());
    std::vector<AttrSet> diff_sets;  // R \ agree-set per pair.
    diff_sets.reserve(pairs.size());
    for (const auto& [r1, r2] : pairs) {
      diff_sets.push_back(all.Minus(AgreeSet(rel, r1, r2)));
    }
    std::sort(diff_sets.begin(), diff_sets.end());
    diff_sets.erase(std::unique(diff_sets.begin(), diff_sets.end()),
                    diff_sets.end());

    for (AttrId a = 0; a < n; ++a) {
      if (IsConstantColumn(rel, a)) {
        result.fds.push_back(Ofd{AttrSet(), a, OfdKind::kSynonym});
        continue;
      }
      AttrSet universe = all.Without(a);
      // D_A: difference sets of pairs differing on a, minus a itself; the
      // full universe stands in for not-enumerated pairs that agree nowhere.
      std::vector<AttrSet> da = {universe};
      for (AttrSet d : diff_sets) {
        if (d.Contains(a)) da.push_back(d.Without(a));
      }
      da = MinimalSets(std::move(da));

      // DFS for minimal covers, attributes ordered by coverage count.
      std::vector<AttrSet> covers;
      std::function<void(const std::vector<AttrSet>&, AttrSet, AttrSet)> search =
          [&](const std::vector<AttrSet>& uncovered, AttrSet path, AttrSet allowed) {
            if (uncovered.empty()) {
              // Minimality check: every chosen attribute must uniquely cover
              // some difference set.
              for (AttrId b : path.ToVector()) {
                AttrSet without = path.Without(b);
                bool still_cover = true;
                for (AttrSet d : da) {
                  if (!d.Intersects(without)) {
                    still_cover = false;
                    break;
                  }
                }
                if (still_cover) return;  // b redundant: not minimal.
              }
              covers.push_back(path);
              return;
            }
            // Order candidate attributes by how many uncovered sets they hit.
            std::vector<std::pair<int, AttrId>> ranked;
            for (AttrId b : allowed.ToVector()) {
              int cover_count = 0;
              for (AttrSet d : uncovered) cover_count += d.Contains(b);
              if (cover_count > 0) ranked.emplace_back(cover_count, b);
            }
            std::sort(ranked.begin(), ranked.end(), [](auto& x, auto& y) {
              if (x.first != y.first) return x.first > y.first;
              return x.second < y.second;
            });
            AttrSet remaining = allowed;
            for (const auto& [_, b] : ranked) {
              remaining = remaining.Without(b);
              std::vector<AttrSet> next;
              for (AttrSet d : uncovered) {
                if (!d.Contains(b)) next.push_back(d);
              }
              search(next, path.With(b), remaining);
            }
          };
      search(da, AttrSet(), universe);
      covers = MinimalSets(std::move(covers));
      for (AttrSet lhs : covers) {
        result.fds.push_back(Ofd{lhs, a, OfdKind::kSynonym});
      }
    }
    std::sort(result.fds.begin(), result.fds.end());
    return result;
  }
};

// --------------------------------------------------------------------------
// FDep (Flach & Savnik 1999): negative cover from an explicit scan over all
// tuple pairs, then specialization of {∅ -> A} against each invalid agree
// set to obtain the positive cover.

class FDep : public FdAlgorithm {
 public:
  std::string name() const override { return "fdep"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();

    // Negative cover: for each consequent, the maximal agree sets of pairs
    // that differ on it. FDep scans all O(N^2) pairs directly.
    std::vector<std::vector<AttrSet>> neg(static_cast<size_t>(n));
    for (RowId r1 = 0; r1 < rel.num_rows(); ++r1) {
      for (RowId r2 = r1 + 1; r2 < rel.num_rows(); ++r2) {
        ++result.work;
        AttrSet ag = AgreeSet(rel, r1, r2);
        for (AttrId a = 0; a < n; ++a) {
          if (!ag.Contains(a)) neg[static_cast<size_t>(a)].push_back(ag);
        }
      }
    }

    for (AttrId a = 0; a < n; ++a) {
      if (IsConstantColumn(rel, a)) {
        result.fds.push_back(Ofd{AttrSet(), a, OfdKind::kSynonym});
        continue;
      }
      AttrSet universe = AttrSet::All(n).Without(a);
      std::vector<AttrSet> invalid = MaximalSets(std::move(neg[static_cast<size_t>(a)]));
      // Positive cover by specialization: start from ∅ -> A; for each
      // invalid set M, replace every cover element X ⊆ M by its minimal
      // specializations X ∪ {B}, B ∉ M.
      std::vector<AttrSet> cover = {AttrSet()};
      for (AttrSet m : invalid) {
        std::vector<AttrSet> keep;
        std::vector<AttrSet> violating;
        for (AttrSet x : cover) {
          (x.IsSubsetOf(m) ? violating : keep).push_back(x);
        }
        if (violating.empty()) continue;
        for (AttrSet x : violating) {
          for (AttrId b : universe.Minus(m).ToVector()) {
            AttrSet specialized = x.With(b);
            bool subsumed = false;
            for (AttrSet y : keep) {
              if (y.IsSubsetOf(specialized)) {
                subsumed = true;
                break;
              }
            }
            if (!subsumed) keep.push_back(specialized);
          }
        }
        cover = MinimalSets(std::move(keep));
      }
      for (AttrSet lhs : cover) {
        result.fds.push_back(Ofd{lhs, a, OfdKind::kSynonym});
      }
    }
    std::sort(result.fds.begin(), result.fds.end());
    return result;
  }
};

}  // namespace

std::unique_ptr<FdAlgorithm> MakeDepMiner() { return std::make_unique<DepMiner>(); }
std::unique_ptr<FdAlgorithm> MakeFastFds() { return std::make_unique<FastFds>(); }
std::unique_ptr<FdAlgorithm> MakeFDep() { return std::make_unique<FDep>(); }

}  // namespace fastofd
