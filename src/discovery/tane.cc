// TANE (Huhtala et al. 1999): level-wise FD discovery with stripped
// partitions, candidate sets C+(X) with the RHS+ pruning rule, and key
// pruning.

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <vector>

#include "discovery/fd_baselines.h"
#include "relation/attr_set.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

struct TaneNode {
  StrippedPartition partition;
  AttrSet cand;
};

using TaneLevel = std::unordered_map<AttrSet, TaneNode, AttrSetHash>;

class Tane : public FdAlgorithm {
 public:
  std::string name() const override { return "tane"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();
    const AttrSet all = AttrSet::All(n);

    TaneLevel prev;
    {
      TaneNode empty;
      empty.partition = StrippedPartition::BuildForSet(rel, AttrSet());
      empty.cand = all;
      prev.emplace(AttrSet(), std::move(empty));
    }
    TaneLevel cur;
    for (AttrId a = 0; a < n; ++a) {
      TaneNode node;
      node.partition = StrippedPartition::Build(rel, a);
      node.cand = all;
      cur.emplace(AttrSet::Single(a), std::move(node));
    }

    int level = 1;
    while (!cur.empty()) {
      // COMPUTE_DEPENDENCIES.
      for (auto& [attrs, node] : cur) {
        AttrSet cand = all;
        for (AttrId a : attrs.ToVector()) {
          auto it = prev.find(attrs.Without(a));
          cand = it == prev.end() ? AttrSet() : cand.Intersect(it->second.cand);
        }
        node.cand = cand;
        for (AttrId a : attrs.Intersect(node.cand).ToVector()) {
          auto parent = prev.find(attrs.Without(a));
          if (parent == prev.end()) continue;
          ++result.work;
          if (parent->second.partition.error() == node.partition.error()) {
            result.fds.push_back(Ofd{attrs.Without(a), a, OfdKind::kSynonym});
            node.cand = node.cand.Without(a);
            // RHS+ rule: remove all B in R \ X.
            node.cand = node.cand.Intersect(attrs);
          }
        }
      }

      // PRUNE. Outputs for key nodes are computed against the intact level
      // (they read sibling candidate sets), then deletions are applied.
      std::vector<AttrSet> to_erase;
      for (auto& [attrs, node] : cur) {
        if (node.cand.empty()) {
          to_erase.push_back(attrs);
          continue;
        }
        if (node.partition.IsSuperkey()) {
          for (AttrId a : node.cand.Minus(attrs).ToVector()) {
            // X -> A is minimal iff A ∈ ∩_{B∈X} C+(X ∪ {A} \ {B}).
            bool minimal = true;
            for (AttrId b : attrs.ToVector()) {
              AttrSet sibling = attrs.With(a).Without(b);
              auto sit = cur.find(sibling);
              if (sit == cur.end() || !sit->second.cand.Contains(a)) {
                minimal = false;
                break;
              }
            }
            if (minimal) {
              result.fds.push_back(Ofd{attrs, a, OfdKind::kSynonym});
            }
          }
          to_erase.push_back(attrs);
        }
      }
      for (AttrSet attrs : to_erase) cur.erase(attrs);

      // GENERATE_NEXT_LEVEL via prefix blocks.
      TaneLevel next;
      if (level < n) {
        std::unordered_map<uint64_t, std::vector<AttrSet>> blocks;
        for (const auto& [attrs, _] : cur) {
          uint64_t mask = attrs.mask();
          uint64_t prefix = mask & ~(uint64_t{1} << (63 - std::countl_zero(mask)));
          blocks[prefix].push_back(attrs);
        }
        for (auto& [_, members] : blocks) {
          std::sort(members.begin(), members.end());
          for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
              AttrSet combined = members[i].Union(members[j]);
              if (next.count(combined)) continue;
              bool ok = true;
              for (AttrId a : combined.ToVector()) {
                if (!cur.count(combined.Without(a))) {
                  ok = false;
                  break;
                }
              }
              if (!ok) continue;
              TaneNode node;
              node.partition = StrippedPartition::Product(
                  cur.at(members[i]).partition, cur.at(members[j]).partition);
              next.emplace(combined, std::move(node));
            }
          }
        }
      }
      prev = std::move(cur);
      cur = std::move(next);
      ++level;
    }
    std::sort(result.fds.begin(), result.fds.end());
    return result;
  }
};

}  // namespace

std::unique_ptr<FdAlgorithm> MakeTane() { return std::make_unique<Tane>(); }

}  // namespace fastofd
