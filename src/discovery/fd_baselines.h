// Classical FD-discovery baselines (the seven comparators of paper Exp-1/2).
//
// All algorithms discover the complete set of *minimal* FDs X -> A over a
// relation (including ∅ -> A for constant columns), except FDMine which —
// faithfully to the original — reports valid but possibly non-minimal
// dependencies (the paper observes ~24x larger outputs).
//
// Performance profiles intentionally mirror the originals:
//   TANE      level-wise lattice + stripped partitions + C+ pruning
//   FUN       level-wise cardinality counting over free sets
//   FDMine    level-wise without minimality pruning (larger output/memory)
//   DFD       per-consequent random-walk lattice search with memoization
//   DepMiner  agree sets -> maximal sets -> minimal transversals
//   FastFDs   difference sets -> DFS minimal-cover search
//   FDep      pairwise negative cover -> specialization to positive cover
// so Exp-1's shape (linear in N for lattice methods, ~quadratic for the
// pairwise ones) reproduces.

#ifndef FASTOFD_DISCOVERY_FD_BASELINES_H_
#define FASTOFD_DISCOVERY_FD_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "ofd/ofd.h"
#include "relation/relation.h"

namespace fastofd {

/// Output of an FD-discovery run.
struct FdResult {
  /// Discovered FDs, sorted. Kind is always kSynonym (an FD is an OFD under
  /// the identity ontology).
  SigmaSet fds;
  /// Algorithm-specific work counter (candidate checks / pairs examined).
  int64_t work = 0;
};

/// Abstract FD-discovery algorithm.
class FdAlgorithm {
 public:
  virtual ~FdAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual FdResult Discover(const Relation& rel) = 0;
};

/// Factory. Names: "tane", "fun", "fdmine", "dfd", "depminer", "fastfds",
/// "fdep". Returns nullptr for unknown names.
std::unique_ptr<FdAlgorithm> MakeFdAlgorithm(const std::string& name);

/// All registered algorithm names, in the paper's order.
std::vector<std::string> FdAlgorithmNames();

/// Reference implementation: brute-force minimal FDs by enumerating every
/// candidate and checking it with partitions. For tests only (exponential).
FdResult BruteForceFds(const Relation& rel);

}  // namespace fastofd

#endif  // FASTOFD_DISCOVERY_FD_BASELINES_H_
