// Set-family utilities shared by the pairwise FD-discovery baselines:
// agree/difference sets, maximal/minimal set filtering, and minimal
// hitting-set (transversal) computation.

#ifndef FASTOFD_DISCOVERY_SET_COVER_H_
#define FASTOFD_DISCOVERY_SET_COVER_H_

#include <utility>
#include <vector>

#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fastofd {

/// The agree set of two tuples: attributes on which they are equal.
AttrSet AgreeSet(const Relation& rel, RowId a, RowId b);

/// All tuple pairs with a non-empty agree set, computed from the stripped
/// partitions of single attributes (DepMiner's trick: pairs agreeing
/// nowhere contribute no constraints on non-empty antecedents).
std::vector<std::pair<RowId, RowId>> CandidatePairs(const Relation& rel);

/// Keeps only the ⊆-maximal sets of the family.
std::vector<AttrSet> MaximalSets(std::vector<AttrSet> sets);

/// Keeps only the ⊆-minimal sets of the family.
std::vector<AttrSet> MinimalSets(std::vector<AttrSet> sets);

/// Minimal transversals (hitting sets) of `sets` over `universe`, via the
/// incremental Berge construction. Every returned set intersects every
/// input set and is minimal with that property. An empty family yields {∅}.
/// Exponential in the worst case (as is the FD-discovery output itself).
std::vector<AttrSet> MinimalTransversals(const std::vector<AttrSet>& sets,
                                         AttrSet universe);

}  // namespace fastofd

#endif  // FASTOFD_DISCOVERY_SET_COVER_H_
