// DFD (Abedjan et al. 2014)-style discovery: per consequent attribute, a
// randomized traversal of the antecedent lattice with memoized partition
// checks. Maximal non-dependencies are grown by random upward walks; the
// candidate minimal dependencies are the minimal transversals of their
// complements, re-seeded until every candidate verifies. Classification
// inference (supersets of dependencies are dependencies, subsets of
// non-dependencies are non-dependencies) is implicit in the
// transversal/maximality bookkeeping.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "discovery/fd_baselines.h"
#include "discovery/set_cover.h"
#include "relation/attr_set.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

class Dfd : public FdAlgorithm {
 public:
  std::string name() const override { return "dfd"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    rel_ = &rel;
    partitions_.clear();
    work_ = 0;
    Rng rng(0xDFD);
    const int n = rel.num_attrs();

    for (AttrId a = 0; a < n; ++a) {
      AttrSet universe = AttrSet::All(n).Without(a);
      if (Partition(AttrSet::Single(a)).full_num_classes() == 1) {
        result.fds.push_back(Ofd{AttrSet(), a, OfdKind::kSynonym});
        continue;
      }
      std::vector<AttrSet> max_non_deps;
      std::unordered_set<uint64_t> verified_deps;
      bool progress = true;
      std::vector<AttrSet> candidates;
      while (progress) {
        progress = false;
        std::vector<AttrSet> complements;
        complements.reserve(max_non_deps.size());
        for (AttrSet nd : max_non_deps) complements.push_back(universe.Minus(nd));
        candidates = MinimalTransversals(complements, universe);
        for (AttrSet x : candidates) {
          if (verified_deps.count(x.mask())) continue;
          if (IsDependency(x, a)) {
            verified_deps.insert(x.mask());
            continue;
          }
          // Random upward walk: grow X into a maximal non-dependency.
          AttrSet nd = x;
          std::vector<AttrId> extra = universe.Minus(nd).ToVector();
          rng.Shuffle(&extra);
          for (AttrId b : extra) {
            if (!IsDependency(nd.With(b), a)) nd = nd.With(b);
          }
          max_non_deps.push_back(nd);
          max_non_deps = MaximalSets(std::move(max_non_deps));
          progress = true;
          break;  // Re-seed from the updated non-dependency border.
        }
      }
      for (AttrSet x : candidates) {
        result.fds.push_back(Ofd{x, a, OfdKind::kSynonym});
      }
    }
    result.work = work_;
    std::sort(result.fds.begin(), result.fds.end());
    return result;
  }

 private:
  bool IsDependency(AttrSet lhs, AttrId rhs) {
    ++work_;
    return Partition(lhs).error() == Partition(lhs.With(rhs)).error();
  }

  const StrippedPartition& Partition(AttrSet x) {
    auto it = partitions_.find(x);
    if (it != partitions_.end()) return it->second;
    StrippedPartition p;
    if (x.size() <= 1) {
      p = StrippedPartition::BuildForSet(*rel_, x);
    } else {
      AttrId first = x.First();
      const StrippedPartition& rest = Partition(x.Without(first));
      // Refine directly by the column: skips building the single-attribute
      // partition that Product would need.
      p = StrippedPartition::Refine(rest, *rel_, first);
    }
    return partitions_.emplace(x, std::move(p)).first->second;
  }

  const Relation* rel_ = nullptr;
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> partitions_;
  int64_t work_ = 0;
};

}  // namespace

std::unique_ptr<FdAlgorithm> MakeDfd() { return std::make_unique<Dfd>(); }

}  // namespace fastofd
