#include "discovery/set_cover.h"

#include <algorithm>

#include "relation/partition.h"

namespace fastofd {

AttrSet AgreeSet(const Relation& rel, RowId a, RowId b) {
  AttrSet s;
  for (int attr = 0; attr < rel.num_attrs(); ++attr) {
    if (rel.At(a, attr) == rel.At(b, attr)) s = s.With(attr);
  }
  return s;
}

std::vector<std::pair<RowId, RowId>> CandidatePairs(const Relation& rel) {
  std::vector<std::pair<RowId, RowId>> pairs;
  for (int attr = 0; attr < rel.num_attrs(); ++attr) {
    StrippedPartition p = StrippedPartition::Build(rel, attr);
    for (const auto& cls : p.classes()) {
      for (size_t i = 0; i < cls.size(); ++i) {
        for (size_t j = i + 1; j < cls.size(); ++j) {
          pairs.emplace_back(cls[i], cls[j]);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::vector<AttrSet> MaximalSets(std::vector<AttrSet> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<AttrSet> out;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[i] != sets[j] && sets[i].IsSubsetOf(sets[j])) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.push_back(sets[i]);
  }
  return out;
}

std::vector<AttrSet> MinimalSets(std::vector<AttrSet> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<AttrSet> out;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool minimal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[j].IsSubsetOf(sets[i]) && sets[i] != sets[j]) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(sets[i]);
  }
  return out;
}

std::vector<AttrSet> MinimalTransversals(const std::vector<AttrSet>& sets,
                                         AttrSet universe) {
  std::vector<AttrSet> result = {AttrSet()};
  for (const AttrSet& s : sets) {
    AttrSet restricted = s.Intersect(universe);
    if (restricted.empty()) return {};  // Unhittable set.
    std::vector<AttrSet> next;
    for (const AttrSet& t : result) {
      if (t.Intersects(restricted)) {
        next.push_back(t);
      } else {
        for (AttrId a : restricted.ToVector()) next.push_back(t.With(a));
      }
    }
    result = MinimalSets(std::move(next));
  }
  return result;
}

}  // namespace fastofd
