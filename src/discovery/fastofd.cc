#include "discovery/fastofd.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/audit.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace fastofd {

namespace {

// Metric name for a per-level timer: discover.level03.seconds.
std::string LevelTimerName(int level) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "discover.level%02d.seconds", level);
  return buf;
}

// A lattice node: the stripped partition of its attribute set plus the
// candidate consequents C+(X).
struct Node {
  StrippedPartition partition;
  AttrSet cand;
  bool superkey = false;
};

using Level = std::unordered_map<AttrSet, Node, AttrSetHash>;

}  // namespace

FastOfd::FastOfd(const Relation& rel, const SynonymIndex& index, FastOfdConfig config,
                 const Ontology* ontology)
    : rel_(rel),
      index_(index),
      config_(config),
      verifier_(rel, index, ontology, config.theta) {
  if (config_.kind == OfdKind::kInheritance) {
    FASTOFD_CHECK(ontology != nullptr);
  }
}

FastOfdResult FastOfd::Discover() {
  const int n = rel_.num_attrs();
  const AttrSet all = AttrSet::All(n);
  FastOfdResult result;

  // Execution & instrumentation substrate: one pool for the whole run
  // (validation and partition products, every level), one registry as the
  // single source of truth for telemetry. Both may be shared by the caller.
  MetricsRegistry local_metrics;
  MetricsRegistry& metrics =
      config_.metrics != nullptr ? *config_.metrics : local_metrics;
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    owned_pool.emplace(config_.num_threads);
    pool = &*owned_pool;
  }
  ScopedTimer discover_timer(&metrics, "discover.seconds");

  // Base (≤1-attribute) partitions go through the shared cache when one is
  // provided, so verify/clean phases over the same relation reuse them.
  auto base_partition = [&](AttrSet attrs) -> StrippedPartition {
    if (config_.partitions != nullptr) return *config_.partitions->Get(attrs);
    return StrippedPartition::BuildForSet(rel_, attrs);
  };

  // Per-thread scratch for candidate validation.
  struct Scratch {
    std::unordered_map<SenseId, size_t> counts;
    std::vector<ValueId> distinct;
    int64_t values_scanned = 0;
  };

  // Validates candidate lhs -> rhs against Π*_lhs. Opt-4 (FD reduction):
  // when the traditional FD lhs -> rhs already holds — an O(1) check given
  // both partitions — every class is syntactically equal on the consequent
  // and the sense-intersection scan is skipped entirely. Thread-safe: all
  // mutable state lives in `scratch`.
  auto candidate_valid = [&](const StrippedPartition& lhs_partition,
                             const StrippedPartition& node_partition, AttrId rhs,
                             Scratch& scratch) -> bool {
    if (config_.opt_fd_reduction && FdHolds(lhs_partition, node_partition)) {
      return true;  // FD satisfied => OFD satisfied (any support level).
    }
    if (config_.min_support < 1.0) {
      Ofd ofd{AttrSet(), rhs, config_.kind};
      // Early-exit form: abandons the class scan once the remaining tuples
      // cannot lift support back over the threshold.
      return verifier_.SupportAtLeast(ofd, lhs_partition, config_.min_support);
    }
    for (const auto& cls : lhs_partition.classes()) {
      scratch.values_scanned += static_cast<int64_t>(cls.size());
      auto& distinct = scratch.distinct;
      distinct.clear();
      for (RowId r : cls) distinct.push_back(rel_.At(r, rhs));
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
      if (distinct.size() == 1) continue;  // Equal values: class satisfied.
      if (config_.kind == OfdKind::kInheritance) {
        if (!verifier_.HoldsInClass(cls, rhs, config_.kind)) return false;
        continue;
      }
      // Synonym check: some sense must cover every distinct value.
      auto& counts = scratch.counts;
      counts.clear();
      bool missing_value = false;
      for (ValueId v : distinct) {
        const std::vector<SenseId>& senses = index_.Senses(v);
        if (senses.empty()) missing_value = true;
        for (SenseId s : senses) ++counts[s];
      }
      bool covered = false;
      if (!missing_value) {
        for (const auto& [_, c] : counts) {
          if (c == distinct.size()) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) return false;
    }
    return true;
  };

  // Σ subset check used when Opt-2 is disabled: a valid candidate is
  // minimal iff no already-found OFD has the same consequent and an
  // antecedent subset.
  auto minimal_against_sigma = [&](AttrSet lhs, AttrId rhs) {
    for (const Ofd& ofd : result.ofds) {
      if (ofd.rhs == rhs && ofd.lhs.IsSubsetOf(lhs)) return false;
    }
    return true;
  };

  // Level 0: the empty attribute set.
  Level prev;
  {
    Node empty;
    empty.partition = base_partition(AttrSet());
    empty.superkey = empty.partition.IsSuperkey();
    empty.cand = all;
    prev.emplace(AttrSet(), std::move(empty));
  }

  // Level 1: single attributes.
  Level cur;
  for (AttrId a = 0; a < n; ++a) {
    Node node;
    node.partition = base_partition(AttrSet::Single(a));
    node.superkey = node.partition.IsSuperkey();
    node.cand = all;
    cur.emplace(AttrSet::Single(a), std::move(node));
  }

  int level = 1;
  while (!cur.empty() && level <= config_.max_level) {
    Timer timer;
    LevelStats stats;
    stats.level = level;
    stats.nodes = static_cast<int64_t>(cur.size());

    // computeOFDs(L_l): candidate sets, then candidate validation.
    for (auto& [attrs, node] : cur) {
      if (config_.opt_augmentation) {
        AttrSet cand = all;
        for (AttrId a : attrs.ToVector()) {
          auto it = prev.find(attrs.Without(a));
          // A pruned parent had an empty candidate set (anti-monotone).
          cand = it == prev.end() ? AttrSet() : cand.Intersect(it->second.cand);
        }
        node.cand = cand;
      } else {
        node.cand = all;
      }
    }

    // Collect this level's candidates in a deterministic order, validate
    // them (optionally in parallel — validations are independent), then
    // apply the results sequentially so output and pruning are identical
    // for any thread count.
    struct Candidate {
      AttrSet attrs;
      AttrId a;
      Node* node;
      const StrippedPartition* lhs_partition;
    };
    std::vector<Candidate> candidates;
    for (auto& [attrs, node] : cur) {
      for (AttrId a : attrs.Intersect(node.cand).ToVector()) {
        auto parent_it = prev.find(attrs.Without(a));
        if (parent_it == prev.end()) continue;  // Parent pruned: non-minimal.
        candidates.push_back(
            Candidate{attrs, a, &node, &parent_it->second.partition});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.attrs != y.attrs) return x.attrs < y.attrs;
                return x.a < y.a;
              });
    stats.candidates_checked = static_cast<int64_t>(candidates.size());

    // Valid candidates land in a mutex-striped sink tagged with their
    // canonical index; draining sorts by that index, so the apply loop below
    // sees the same order as a serial run regardless of which worker
    // validated what. Only validated candidates pay a (striped) lock.
    ShardedSink<uint32_t> valid_sink(pool->num_threads());
    {
      ScopedTimer validate_timer(&metrics, "discover.validate.seconds");
      std::vector<Scratch> scratches(static_cast<size_t>(pool->num_threads()));
      const size_t grain =
          config_.validate_grain > 0
              ? static_cast<size_t>(config_.validate_grain)
              : std::max<size_t>(1, candidates.size() /
                                        (static_cast<size_t>(pool->num_threads()) * 16));
      pool->ParallelForGrained(candidates.size(), grain, [&](size_t i, int worker) {
        if (candidate_valid(*candidates[i].lhs_partition,
                            candidates[i].node->partition, candidates[i].a,
                            scratches[static_cast<size_t>(worker)])) {
          valid_sink.Push(i, static_cast<uint32_t>(i));
        }
      });
      for (const Scratch& s : scratches) {
        result.values_scanned += s.values_scanned;
      }
    }

    for (const auto& [seq, idx] : valid_sink.DrainSorted()) {
      (void)seq;
      const size_t i = idx;
      AttrSet lhs = candidates[i].attrs.Without(candidates[i].a);
      if (!config_.opt_augmentation && !minimal_against_sigma(lhs, candidates[i].a)) {
        continue;
      }
      result.ofds.push_back(Ofd{lhs, candidates[i].a, config_.kind});
      candidates[i].node->cand = candidates[i].node->cand.Without(candidates[i].a);
      ++stats.ofds_found;
    }

    // Prune nodes with empty candidate sets (nothing minimal above them).
    if (config_.opt_augmentation) {
      for (auto it = cur.begin(); it != cur.end();) {
        if (it->second.cand.empty()) {
          it = cur.erase(it);
        } else {
          ++it;
        }
      }
    }

    // calculateNextLevel(L_l): prefix blocks — two sets combine iff they
    // share all attributes except their highest one. The partition products
    // of distinct children are independent, so they are computed in
    // parallel when num_threads > 1.
    Level next;
    if (level < n && level < config_.max_level) {
      std::unordered_map<uint64_t, std::vector<AttrSet>> blocks;
      for (const auto& [attrs, _] : cur) {
        uint64_t mask = attrs.mask();
        uint64_t prefix = mask & ~(uint64_t{1} << (63 - std::countl_zero(mask)));
        blocks[prefix].push_back(attrs);
      }
      struct Pending {
        AttrSet combined;
        const Node* left;
        const Node* right;
      };
      std::vector<Pending> pending;
      for (auto& [_, members] : blocks) {
        std::sort(members.begin(), members.end());
        for (size_t i = 0; i < members.size(); ++i) {
          for (size_t j = i + 1; j < members.size(); ++j) {
            AttrSet combined = members[i].Union(members[j]);
            if (next.count(combined)) continue;
            // All l-subsets must be present (respects pruning).
            bool ok = true;
            for (AttrId a : combined.ToVector()) {
              if (!cur.count(combined.Without(a))) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            const Node& left = cur.at(members[i]);
            const Node& right = cur.at(members[j]);
            if (config_.opt_keys && (left.superkey || right.superkey)) {
              // Opt-3: a superset of a superkey is a superkey; skip the
              // partition product entirely.
              Node node;
              node.partition = StrippedPartition::Empty(rel_.num_rows());
              node.superkey = true;
              next.emplace(combined, std::move(node));
            } else {
              next.emplace(combined, Node{});  // Reserve; filled below.
              pending.push_back(Pending{combined, &left, &right});
            }
          }
        }
      }
      result.partition_products += static_cast<int64_t>(pending.size());
      // Canonical lattice order: the ordered reduce consumes results by
      // this index, so `next` fills identically for any thread count, grain,
      // or steal schedule.
      std::sort(pending.begin(), pending.end(),
                [](const Pending& x, const Pending& y) {
                  return x.combined < y.combined;
                });
      ScopedTimer products_timer(&metrics, "discover.products.seconds");
      // Level-wide task parallelism: one task per product, every pending
      // node in flight at once. A product whose operands are large splits
      // *itself* further — ProductParallel's chunks become nested, stealable
      // subtasks — so both levels of parallelism compose instead of the old
      // either/or (wide across products XOR wide inside one product).
      OrderedReduce<StrippedPartition>(
          pool, pending.size(), /*grain=*/1,
          [&](size_t i, int) {
            const Pending& p = pending[i];
            return StrippedPartition::ProductParallel(p.left->partition,
                                                      p.right->partition, pool);
          },
          [&](size_t i, StrippedPartition part) {
            const Pending& p = pending[i];
            Node& node = next.at(p.combined);
            node.partition = std::move(part);
            node.superkey = node.partition.IsSuperkey();
            // Audit builds re-check every product against the partition laws
            // (and, on small relations, against a naive rebuild of Π*_X).
            FASTOFD_AUDIT_OK(node.partition.AuditInvariants(rel_, p.combined));
          });
    }

    stats.seconds = timer.Seconds();
    metrics.AddTime(LevelTimerName(level), stats.seconds);
    metrics.Add("discover.nodes", stats.nodes);
    metrics.Add("discover.candidates_checked", stats.candidates_checked);
    metrics.Add("discover.ofds_found", stats.ofds_found);
    result.candidates_checked += stats.candidates_checked;
    result.level_stats.push_back(stats);
    prev = std::move(cur);
    cur = std::move(next);
    ++level;
  }

  std::sort(result.ofds.begin(), result.ofds.end());
  pool->PublishMetrics(&metrics);
  metrics.Add("discover.levels", static_cast<int64_t>(result.level_stats.size()));
  metrics.Add("discover.values_scanned", result.values_scanned);
  metrics.Add("discover.partition_products", result.partition_products);
  return result;
}

}  // namespace fastofd
