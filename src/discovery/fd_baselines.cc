#include "discovery/fd_baselines.h"

#include <algorithm>

#include "relation/partition.h"

namespace fastofd {

// Factories defined in the per-algorithm translation units.
std::unique_ptr<FdAlgorithm> MakeTane();
std::unique_ptr<FdAlgorithm> MakeFun();
std::unique_ptr<FdAlgorithm> MakeFdMine();
std::unique_ptr<FdAlgorithm> MakeDfd();
std::unique_ptr<FdAlgorithm> MakeDepMiner();
std::unique_ptr<FdAlgorithm> MakeFastFds();
std::unique_ptr<FdAlgorithm> MakeFDep();

std::unique_ptr<FdAlgorithm> MakeFdAlgorithm(const std::string& name) {
  if (name == "tane") return MakeTane();
  if (name == "fun") return MakeFun();
  if (name == "fdmine") return MakeFdMine();
  if (name == "dfd") return MakeDfd();
  if (name == "depminer") return MakeDepMiner();
  if (name == "fastfds") return MakeFastFds();
  if (name == "fdep") return MakeFDep();
  return nullptr;
}

std::vector<std::string> FdAlgorithmNames() {
  return {"tane", "fun", "fdmine", "dfd", "depminer", "fastfds", "fdep"};
}

FdResult BruteForceFds(const Relation& rel) {
  FdResult result;
  const int n = rel.num_attrs();
  // Enumerate antecedents in increasing size; keep only minimal valid FDs.
  std::vector<AttrSet> subsets;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    subsets.push_back(AttrSet::FromMask(mask));
  }
  std::sort(subsets.begin(), subsets.end(),
            [](AttrSet a, AttrSet b) { return a.size() != b.size()
                                           ? a.size() < b.size()
                                           : a.mask() < b.mask(); });
  for (AttrId a = 0; a < n; ++a) {
    std::vector<AttrSet> minimal_found;
    for (AttrSet lhs : subsets) {
      if (lhs.Contains(a)) continue;
      bool subsumed = false;
      for (AttrSet m : minimal_found) {
        if (m.IsSubsetOf(lhs)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
      ++result.work;
      StrippedPartition x = StrippedPartition::BuildForSet(rel, lhs);
      StrippedPartition xa = StrippedPartition::BuildForSet(rel, lhs.With(a));
      if (FdHolds(x, xa)) {
        minimal_found.push_back(lhs);
        result.fds.push_back(Ofd{lhs, a, OfdKind::kSynonym});
      }
    }
  }
  std::sort(result.fds.begin(), result.fds.end());
  return result;
}

}  // namespace fastofd
