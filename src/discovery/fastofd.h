// FastOFD: discovery of a complete, minimal set of OFDs (paper §4).
//
// Level-wise traversal of the set-containment lattice (Algorithm 2). At a
// node X the candidates are (X \ A) -> A for A ∈ X, kept minimal via the
// candidate sets C+(X) (Definition 4.2, Lemma 4.3) — the paper's Opt-2
// (Augmentation pruning). Opt-1 (Reflexivity) is structural: trivial
// candidates are never generated. Opt-3 exploits superkeys: a candidate with
// a superkey antecedent is valid without touching the ontology, and nodes
// with empty candidate sets are pruned from the lattice. Opt-4 (FD
// reduction) skips sense-intersection work for equivalence classes whose
// consequent values are syntactically equal.
//
// Setting min_support < 1 discovers approximate OFDs (support s(φ) ≥ κ·|I|):
// per equivalence class the best interpretation covers the most tuples, and
// support is monotone under antecedent augmentation, so the same pruning
// applies.

#ifndef FASTOFD_DISCOVERY_FASTOFD_H_
#define FASTOFD_DISCOVERY_FASTOFD_H_

#include <cstdint>
#include <vector>

#include "ofd/ofd.h"
#include "ofd/verifier.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

class MetricsRegistry;  // common/metrics.h
class ThreadPool;       // exec/thread_pool.h

/// Tunables for FastOFD; defaults reproduce the paper's configuration.
struct FastOfdConfig {
  /// Opt-2: prune candidates via C+(X) (augmentation). Disabling verifies
  /// every candidate and filters non-minimal results post hoc (identical
  /// output, slower) — used by the Exp-3 ablation.
  bool opt_augmentation = true;
  /// Opt-3: superkey shortcut + empty-candidate-set node pruning.
  bool opt_keys = true;
  /// Opt-4: skip ontology verification for syntactically-equal classes.
  bool opt_fd_reduction = true;
  /// Stop after this lattice level (Exp-4: compact OFDs live near the top).
  int max_level = 64;
  /// Minimum support κ ∈ (0, 1]; 1.0 discovers exact OFDs.
  double min_support = 1.0;
  /// Kind of OFD to discover (synonym is the paper's focus).
  OfdKind kind = OfdKind::kSynonym;
  /// Ancestor-distance bound for inheritance OFDs.
  int theta = 2;
  /// Worker threads for candidate validation and partition products
  /// (1 = serial). Output is identical regardless of thread count
  /// (validation results are applied in a deterministic order).
  int num_threads = 1;
  /// Candidates per validation task (0 = automatic, ~16 tasks per worker so
  /// work stealing can balance uneven candidates). Output is identical for
  /// any grain.
  int validate_grain = 0;
  /// Shared execution pool. When null, Discover() creates its own
  /// `num_threads`-wide pool once and reuses it across all levels and
  /// phases; when set, `num_threads` is ignored and this pool is used.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (`discover.*` counters and timers). When null,
  /// an internal registry still feeds the FastOfdResult telemetry fields.
  MetricsRegistry* metrics = nullptr;
  /// Optional shared cache for the base (≤1-attribute) partitions, so a
  /// later verify/clean phase over the same relation reuses them.
  PartitionCache* partitions = nullptr;
};

/// Per-level telemetry (Exp-4: OFDs found / time per lattice level).
struct LevelStats {
  int level = 0;
  int64_t nodes = 0;
  int64_t candidates_checked = 0;
  int64_t ofds_found = 0;
  double seconds = 0.0;
};

/// Discovery output.
struct FastOfdResult {
  /// Complete, minimal set of OFDs satisfied by the instance.
  SigmaSet ofds;
  std::vector<LevelStats> level_stats;
  int64_t candidates_checked = 0;
  /// Cells touched by sense-intersection verification (work Opt-4 avoids).
  int64_t values_scanned = 0;
  /// Stripped-partition products computed (work Opt-3 avoids).
  int64_t partition_products = 0;
};

/// The FastOFD discovery algorithm.
class FastOfd {
 public:
  FastOfd(const Relation& rel, const SynonymIndex& index,
          FastOfdConfig config = {}, const Ontology* ontology = nullptr);

  /// Runs the level-wise search and returns the minimal OFD set.
  FastOfdResult Discover();

 private:
  const Relation& rel_;
  const SynonymIndex& index_;
  FastOfdConfig config_;
  OfdVerifier verifier_;
};

}  // namespace fastofd

#endif  // FASTOFD_DISCOVERY_FASTOFD_H_
