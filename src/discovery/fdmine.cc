// FDMine (Yao & Hamilton 2008)-style level-wise discovery. Faithful to the
// original's observable behaviour in the paper's experiments: it validates
// candidates level-wise with partitions but does not maintain minimality
// candidate sets, so its output contains valid-but-non-minimal dependencies
// (the paper reports ~24x larger outputs and memory exhaustion). Superkey
// nodes are closed off by emitting all their dependencies.

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <vector>

#include "discovery/fd_baselines.h"
#include "relation/attr_set.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

class FdMine : public FdAlgorithm {
 public:
  std::string name() const override { return "fdmine"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();

    using Level = std::unordered_map<AttrSet, StrippedPartition, AttrSetHash>;
    Level prev;
    prev.emplace(AttrSet(), StrippedPartition::BuildForSet(rel, AttrSet()));
    Level cur;
    for (AttrId a = 0; a < n; ++a) {
      cur.emplace(AttrSet::Single(a), StrippedPartition::Build(rel, a));
    }

    int level = 1;
    while (!cur.empty()) {
      std::vector<AttrSet> keys_to_erase;
      for (auto& [attrs, partition] : cur) {
        for (AttrId a : attrs.ToVector()) {
          auto parent = prev.find(attrs.Without(a));
          if (parent == prev.end()) continue;
          ++result.work;
          if (parent->second.error() == partition.error()) {
            // Emitted without any minimality filtering.
            result.fds.push_back(Ofd{attrs.Without(a), a, OfdKind::kSynonym});
          }
        }
        if (partition.IsSuperkey()) {
          // Close off: a superkey determines every other attribute.
          for (AttrId a = 0; a < n; ++a) {
            if (!attrs.Contains(a)) {
              result.fds.push_back(Ofd{attrs, a, OfdKind::kSynonym});
            }
          }
          keys_to_erase.push_back(attrs);
        }
      }
      for (AttrSet attrs : keys_to_erase) cur.erase(attrs);

      Level next;
      if (level < n) {
        std::unordered_map<uint64_t, std::vector<AttrSet>> blocks;
        for (const auto& [attrs, _] : cur) {
          uint64_t mask = attrs.mask();
          uint64_t prefix = mask & ~(uint64_t{1} << (63 - std::countl_zero(mask)));
          blocks[prefix].push_back(attrs);
        }
        for (auto& [_, members] : blocks) {
          std::sort(members.begin(), members.end());
          for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
              AttrSet combined = members[i].Union(members[j]);
              if (next.count(combined)) continue;
              next.emplace(combined,
                           StrippedPartition::Product(cur.at(members[i]),
                                                      cur.at(members[j])));
            }
          }
        }
      }
      prev = std::move(cur);
      cur = std::move(next);
      ++level;
    }
    std::sort(result.fds.begin(), result.fds.end());
    result.fds.erase(std::unique(result.fds.begin(), result.fds.end()),
                     result.fds.end());
    return result;
  }
};

}  // namespace

std::unique_ptr<FdAlgorithm> MakeFdMine() { return std::make_unique<FdMine>(); }

}  // namespace fastofd
