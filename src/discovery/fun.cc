// FUN (Novelli & Cicchetti 2001): level-wise FD discovery over *free sets*
// using partition cardinality counting. A set X is free iff no proper subset
// has the same cardinality |Π_Y| = |Π_X|; the antecedents of minimal FDs are
// exactly the free sets, and free sets are downward closed, so an
// apriori-style traversal over free sets is complete.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "discovery/fd_baselines.h"
#include "relation/attr_set.h"
#include "relation/partition.h"

namespace fastofd {

namespace {

class Fun : public FdAlgorithm {
 public:
  std::string name() const override { return "fun"; }

  FdResult Discover(const Relation& rel) override {
    FdResult result;
    const int n = rel.num_attrs();
    rel_ = &rel;
    partitions_.clear();
    cards_.clear();
    work_ = 0;

    // Constant columns: ∅ -> A.
    AttrSet constants;
    for (AttrId a = 0; a < n; ++a) {
      if (Card(AttrSet::Single(a)) == 1) {
        constants = constants.With(a);
        result.fds.push_back(Ofd{AttrSet(), a, OfdKind::kSynonym});
      }
    }

    // Level 1 free sets: non-constant single attributes.
    std::vector<AttrSet> level;
    for (AttrId a = 0; a < n; ++a) {
      if (!constants.Contains(a)) level.push_back(AttrSet::Single(a));
    }

    while (!level.empty()) {
      for (AttrSet x : level) {
        for (AttrId a = 0; a < n; ++a) {
          if (x.Contains(a)) continue;
          ++work_;
          if (Card(x.With(a)) != Card(x)) continue;  // X -> A fails.
          // Minimality: no immediate subset implies A.
          bool minimal = !constants.Contains(a);
          for (AttrId b : x.ToVector()) {
            AttrSet sub = x.Without(b);
            if (Card(sub.With(a)) == Card(sub)) {
              minimal = false;
              break;
            }
          }
          if (minimal) result.fds.push_back(Ofd{x, a, OfdKind::kSynonym});
        }
      }

      // Next level: apriori-gen, keep only free sets.
      std::sort(level.begin(), level.end());
      std::vector<AttrSet> next;
      for (size_t i = 0; i < level.size(); ++i) {
        for (size_t j = i + 1; j < level.size(); ++j) {
          AttrSet combined = level[i].Union(level[j]);
          if (combined.size() != level[i].size() + 1) continue;
          if (!next.empty() && next.back() == combined) continue;
          // All subsets must be free (downward closure of free sets).
          bool subsets_free = true;
          for (AttrId a : combined.ToVector()) {
            if (!std::binary_search(level.begin(), level.end(),
                                    combined.Without(a))) {
              subsets_free = false;
              break;
            }
          }
          if (!subsets_free) continue;
          // Freeness of the combined set itself.
          bool free = true;
          for (AttrId a : combined.ToVector()) {
            if (Card(combined.Without(a)) == Card(combined)) {
              free = false;
              break;
            }
          }
          if (free) next.push_back(combined);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      level = std::move(next);
    }

    result.work = work_;
    std::sort(result.fds.begin(), result.fds.end());
    result.fds.erase(std::unique(result.fds.begin(), result.fds.end()),
                     result.fds.end());
    return result;
  }

 private:
  // |Π_X| with memoization (FUN's cardinality counting).
  int64_t Card(AttrSet x) {
    auto it = cards_.find(x);
    if (it != cards_.end()) return it->second;
    const StrippedPartition& p = Partition(x);
    int64_t card = p.full_num_classes();
    cards_.emplace(x, card);
    return card;
  }

  const StrippedPartition& Partition(AttrSet x) {
    auto it = partitions_.find(x);
    if (it != partitions_.end()) return it->second;
    StrippedPartition p;
    if (x.size() <= 1) {
      p = StrippedPartition::BuildForSet(*rel_, x);
    } else {
      AttrId first = x.First();
      const StrippedPartition& rest = Partition(x.Without(first));
      // Refine directly by the column: skips building the single-attribute
      // partition that Product would need.
      p = StrippedPartition::Refine(rest, *rel_, first);
    }
    return partitions_.emplace(x, std::move(p)).first->second;
  }

  const Relation* rel_ = nullptr;
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> partitions_;
  std::unordered_map<AttrSet, int64_t, AttrSetHash> cards_;
  int64_t work_ = 0;
};

}  // namespace

std::unique_ptr<FdAlgorithm> MakeFun() { return std::make_unique<Fun>(); }

}  // namespace fastofd
