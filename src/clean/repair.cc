#include "clean/repair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "clean/beam_scorer.h"
#include "common/audit.h"
#include "common/check.h"
#include "common/metrics.h"
#include "exec/thread_pool.h"
#include "ofd/verifier.h"

namespace fastofd {

namespace {

// Best repair value for a class under sense λ: the most frequent value of
// the class covered by λ; falls back to the sense's canonical value, then to
// the class majority value (λ invalid / nothing covered).
ValueId RepairValue(const Relation& rel, const SynonymIndex& index,
                    RowSpan rows, AttrId rhs, SenseId sense) {
  std::unordered_map<ValueId, int64_t> freq;
  for (RowId r : rows) ++freq[rel.At(r, rhs)];
  ValueId best_covered = kInvalidValue;
  int64_t best_covered_count = -1;
  ValueId majority = kInvalidValue;
  int64_t majority_count = -1;
  for (const auto& [v, c] : freq) {
    if (c > majority_count || (c == majority_count && v < majority)) {
      majority = v;
      majority_count = c;
    }
    if (sense != kInvalidSense && index.SenseContains(sense, v)) {
      if (c > best_covered_count || (c == best_covered_count && v < best_covered)) {
        best_covered = v;
        best_covered_count = c;
      }
    }
  }
  if (best_covered != kInvalidValue) return best_covered;
  if (sense != kInvalidSense && !index.SenseValues(sense).empty()) {
    return *std::min_element(index.SenseValues(sense).begin(),
                             index.SenseValues(sense).end());
  }
  return majority;
}

}  // namespace

RepairResult RepairData(const Relation& rel, const SynonymIndex& index,
                        const SigmaSet& sigma, const SenseAssignmentResult& assignment,
                        int64_t max_changes, ThreadPool* pool,
                        MetricsRegistry* metrics) {
  RepairResult result{rel, {}, 0, false, true};
  Relation& out = result.repaired;
  ScopedTimer repair_timer(metrics, "repair.seconds");
  if (metrics != nullptr) metrics->Add("repair.invocations", 1);

  // ---- Conflict graph + 2-approximate vertex cover (paper §7.2). -----
  // Edges are generated sparsely per violating class: each uncovered tuple
  // conflicts with one covered representative (if any) and with its
  // neighbouring uncovered tuple of a different value; this keeps the graph
  // linear in the class size while touching every problematic tuple.
  // Classes are independent (read-only over `out`), so their edge lists are
  // built on the pool and concatenated in class order — the edge sequence is
  // identical to the serial one for any thread count.
  struct Conflict {
    RowId a, b;
    int ofd, cls;
  };
  auto class_violating = [&](RowSpan rows, AttrId rhs,
                             SenseId sense) {
    ValueId first = out.At(rows[0], rhs);
    bool all_equal = true;
    bool all_covered = sense != kInvalidSense;
    for (RowId r : rows) {
      ValueId v = out.At(r, rhs);
      all_equal &= (v == first);
      if (all_covered && !index.SenseContains(sense, v)) all_covered = false;
    }
    return !all_equal && !all_covered;
  };

  std::vector<std::pair<int, int>> class_items;  // (OFD index, class index).
  for (int i = 0; i < static_cast<int>(sigma.size()); ++i) {
    const auto& classes = assignment.partitions[static_cast<size_t>(i)].classes();
    for (int c = 0; c < static_cast<int>(classes.size()); ++c) {
      class_items.emplace_back(i, c);
    }
  }
  std::vector<std::vector<Conflict>> class_edges(class_items.size());
  auto build_class_edges = [&](size_t item) {
    auto [i, c] = class_items[item];
    AttrId rhs = sigma[static_cast<size_t>(i)].rhs;
    const auto& rows =
        assignment.partitions[static_cast<size_t>(i)].classes()[static_cast<size_t>(c)];
    SenseId sense = assignment.senses[static_cast<size_t>(i)][static_cast<size_t>(c)];
    if (!class_violating(rows, rhs, sense)) return;
    RowId covered_rep = -1;
    std::vector<RowId> uncovered;
    for (RowId r : rows) {
      ValueId v = out.At(r, rhs);
      if (sense != kInvalidSense && index.SenseContains(sense, v)) {
        if (covered_rep < 0) covered_rep = r;
      } else {
        uncovered.push_back(r);
      }
    }
    std::vector<Conflict>& local = class_edges[item];
    for (size_t u = 0; u < uncovered.size(); ++u) {
      if (covered_rep >= 0) {
        local.push_back(Conflict{uncovered[u], covered_rep, i, c});
      }
      if (u + 1 < uncovered.size() &&
          out.At(uncovered[u], rhs) != out.At(uncovered[u + 1], rhs)) {
        local.push_back(Conflict{uncovered[u], uncovered[u + 1], i, c});
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(class_items.size(),
                      [&](size_t item, int) { build_class_edges(item); });
  } else {
    for (size_t item = 0; item < class_items.size(); ++item) {
      build_class_edges(item);
    }
  }
  std::vector<Conflict> edges;
  for (std::vector<Conflict>& local : class_edges) {
    edges.insert(edges.end(), local.begin(), local.end());
  }

  // 2-approximation: take both endpoints of any uncovered edge.
  std::unordered_set<RowId> cover;
  for (const Conflict& e : edges) {
    if (!cover.count(e.a) && !cover.count(e.b)) {
      cover.insert(e.a);
      cover.insert(e.b);
    }
  }
  if (metrics != nullptr) {
    metrics->Add("repair.conflict_edges", static_cast<int64_t>(edges.size()));
    metrics->Add("repair.cover_tuples", static_cast<int64_t>(cover.size()));
  }

  // ---- Repair pass: rewrite covered tuples class by class, then fix up
  // any residual violations (guarantees consistency). -----------------
  auto repair_classes = [&](bool only_cover) {
    for (int i = 0; i < static_cast<int>(sigma.size()); ++i) {
      AttrId rhs = sigma[static_cast<size_t>(i)].rhs;
      const auto& classes = assignment.partitions[static_cast<size_t>(i)].classes();
      for (int c = 0; c < static_cast<int>(classes.size()); ++c) {
        const auto& rows = classes[static_cast<size_t>(c)];
        SenseId sense =
            assignment.senses[static_cast<size_t>(i)][static_cast<size_t>(c)];
        if (!class_violating(rows, rhs, sense)) continue;
        ValueId target = RepairValue(out, index, rows, rhs, sense);
        for (RowId r : rows) {
          ValueId v = out.At(r, rhs);
          bool ok = (sense != kInvalidSense && index.SenseContains(sense, v)) ||
                    v == target;
          if (ok) continue;
          if (only_cover && !cover.count(r)) continue;
          out.SetId(r, rhs, target);
          ++result.data_changes;
          if (result.data_changes > max_changes) {
            result.tau_feasible = false;
            return;
          }
        }
      }
    }
  };
  repair_classes(/*only_cover=*/true);
  if (result.tau_feasible) repair_classes(/*only_cover=*/false);

  // Verify consistency of the repair.
  if (result.tau_feasible) {
    OfdVerifier verifier(out, index);
    result.consistent = true;
    for (size_t i = 0; i < sigma.size() && result.consistent; ++i) {
      result.consistent = verifier.Holds(sigma[i], assignment.partitions[i]);
    }
  }
  return result;
}

OfdClean::OfdClean(const Relation& rel, const Ontology& ontology,
                   const SigmaSet& sigma, OfdCleanConfig config)
    : rel_(rel), ontology_(ontology), sigma_(sigma), config_(config) {
  // Scope assumption (paper §5.1): no attribute is both an antecedent of one
  // OFD and the consequent of another — equivalence classes stay fixed.
  AttrSet lhs_attrs, rhs_attrs;
  for (const Ofd& ofd : sigma_) {
    lhs_attrs = lhs_attrs.Union(ofd.lhs);
    rhs_attrs = rhs_attrs.With(ofd.rhs);
  }
  FASTOFD_CHECK(!lhs_attrs.Intersects(rhs_attrs));
}

OfdCleanResult OfdClean::Run() {
  OfdCleanResult result{RepairResult{rel_, {}, 0, false, true}, {}, {}, 0, 0};

  // One pool and one metrics registry for the whole pipeline: sense
  // assignment, every beam-search RepairData call, and the final
  // materialization all share them.
  MetricsRegistry local_metrics;
  MetricsRegistry& metrics =
      config_.metrics != nullptr ? *config_.metrics : local_metrics;
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    owned_pool.emplace(config_.num_threads);
    pool = &*owned_pool;
  }
  ScopedTimer clean_timer(&metrics, "clean.seconds");

  SynonymIndex index(ontology_, rel_.dict());
  // The freshly compiled index must agree with the ontology exactly. The
  // beam search scores nodes through side-effect-free overlays; only the
  // final materialization mutates (and restores) the index.
  FASTOFD_AUDIT_OK(AuditOntologyIndex(ontology_, rel_.dict(), index));
  SenseAssignConfig assign_config{config_.theta};
  assign_config.pool = pool;
  assign_config.metrics = &metrics;
  assign_config.partitions = config_.partitions;
  SenseSelector selector(rel_, index, sigma_, assign_config);
  result.assignment = selector.Run();

  // τ budget: fraction of consequent cells.
  AttrSet rhs_attrs;
  for (const Ofd& ofd : sigma_) rhs_attrs = rhs_attrs.With(ofd.rhs);
  int64_t budget = static_cast<int64_t>(
      config_.tau * static_cast<double>(rhs_attrs.size()) *
      static_cast<double>(rel_.num_rows()));

  // Cand(S) (paper §7.1): (value, sense) pairs where the value occurs in a
  // class but is not in S *under the class's assigned sense* — this includes
  // values known to other senses (Table 5's "ASA (FDA)" candidate). Counted
  // by occurrence (an insertion can save at most that many data repairs);
  // only the top max_candidates by count are explored. One hash lookup per
  // uncovered cell keeps the pass linear in the dirty cells; candidate
  // order stays first-occurrence order. The same pass records, per
  // candidate, the flattened class indices whose cost the insertion can
  // change — the incremental scorer's affected lists.
  std::vector<OntologyAddition> candidates;
  std::vector<int64_t> cand_count;
  std::vector<std::vector<uint32_t>> cand_affected;
  std::unordered_map<uint64_t, size_t> cand_pos;
  uint32_t item = 0;  // Flattened (OFD, class) index, BeamScorer's order.
  for (size_t i = 0; i < sigma_.size(); ++i) {
    AttrId rhs = sigma_[i].rhs;
    const auto& classes = result.assignment.partitions[i].classes();
    for (size_t c = 0; c < classes.size(); ++c, ++item) {
      SenseId sense = result.assignment.senses[i][c];
      if (sense == kInvalidSense) continue;
      for (RowId r : classes[c]) {
        ValueId v = rel_.At(r, rhs);
        if (index.SenseContains(sense, v)) continue;
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(sense)) << 32) |
                       static_cast<uint32_t>(v);
        auto [it, inserted] = cand_pos.try_emplace(key, candidates.size());
        size_t pos = it->second;
        if (inserted) {
          candidates.push_back(OntologyAddition{sense, v});
          cand_count.push_back(0);
          cand_affected.emplace_back();
        }
        ++cand_count[pos];
        // Classes are visited in ascending `item` order, so per-class dedup
        // is a check against the list's tail.
        if (cand_affected[pos].empty() || cand_affected[pos].back() != item) {
          cand_affected[pos].push_back(item);
        }
      }
    }
  }
  // Class-support filter: localized (single-class) erroneous values are
  // dropped when min_candidate_classes > 1.
  if (config_.min_candidate_classes > 1) {
    std::vector<OntologyAddition> kept;
    std::vector<int64_t> kept_count;
    std::vector<std::vector<uint32_t>> kept_affected;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (static_cast<int>(cand_affected[i].size()) >=
          config_.min_candidate_classes) {
        kept.push_back(candidates[i]);
        kept_count.push_back(cand_count[i]);
        kept_affected.push_back(std::move(cand_affected[i]));
      }
    }
    candidates = std::move(kept);
    cand_count = std::move(kept_count);
    cand_affected = std::move(kept_affected);
  }
  result.num_candidates = static_cast<int64_t>(candidates.size());
  if (static_cast<int>(candidates.size()) > config_.max_candidates) {
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (cand_count[a] != cand_count[b]) return cand_count[a] > cand_count[b];
      return a < b;
    });
    std::vector<OntologyAddition> kept;
    std::vector<std::vector<uint32_t>> kept_affected;
    for (int i = 0; i < config_.max_candidates; ++i) {
      kept.push_back(candidates[order[static_cast<size_t>(i)]]);
      kept_affected.push_back(std::move(cand_affected[order[static_cast<size_t>(i)]]));
    }
    candidates = std::move(kept);
    cand_affected = std::move(kept_affected);
  }

  // Beam size: secretary rule ⌊w/e⌋, at least 1.
  int beam = config_.beam_size > 0
                 ? config_.beam_size
                 : std::max<int>(1, static_cast<int>(std::floor(
                                        static_cast<double>(candidates.size()) /
                                        std::exp(1.0))));

  // Node scoring: side-effect-free (overlay over the shared index) and, by
  // default, incremental (only the classes a node's insertions can affect
  // are re-costed). Scores are exact repair counts — never truncated by the
  // τ budget — so feasibility is simply `score <= budget`.
  // `clean.beam.seconds` covers exactly the node-evaluation work: level-0
  // memoization, every level's scoring, and the sorts — not the final
  // materialization (bench_clean reports full-vs-incremental speedups from
  // this timer).
  ScopedTimer beam_timer(&metrics, "clean.beam.seconds");
  BeamScorer scorer(rel_, index, sigma_, result.assignment, pool);
  scorer.SetCandidates(candidates, std::move(cand_affected));

  struct Node {
    std::vector<int> picks;
    int64_t data_changes = 0;
    bool tau_feasible = true;
  };
  int64_t classes_rescored = 0;
  // One scoring scratch (overlay + affected-union buffer) per worker, warm
  // across every node of every level: batch-grained dispatch below hands
  // each worker a run of nodes, so the per-node allocations that made
  // fine-grained expansion regress are gone.
  std::vector<BeamScorer::ScoreScratch> scratches;
  scratches.reserve(static_cast<size_t>(pool->num_threads()));
  for (int w = 0; w < pool->num_threads(); ++w) scratches.emplace_back(index);
  auto score_node = [&](std::vector<int> picks,
                        BeamScorer::ScoreScratch* scratch) -> std::pair<Node, int64_t> {
    BeamScorer::NodeScore s = config_.incremental_scoring
                                  ? scorer.ScoreIncremental(picks, scratch)
                                  : scorer.ScoreFull(picks, scratch);
    FASTOFD_AUDIT_OK(scorer.AuditNodeScore(picks, s.data_changes));
    return {Node{std::move(picks), s.data_changes, s.data_changes <= budget},
            s.classes_rescored};
  };

  // Level 0: no ontology repair. τ-infeasible nodes never contribute Pareto
  // points: their scores exceed the budget by definition, and the old
  // truncated-count accounting both polluted the frontier and let the
  // diminishing-returns exit fire on bogus values. They do stay in the beam
  // — a deeper insertion can bring a node back under budget.
  auto [zero, zero_rescored] = score_node({}, &scratches[0]);
  classes_rescored += zero_rescored;
  ++result.nodes_evaluated;
  if (zero.tau_feasible) {
    result.pareto.push_back(ParetoPoint{0, zero.data_changes});
  }
  Node best_node = zero;
  int64_t best_cost = zero.tau_feasible ? zero.data_changes
                                        : std::numeric_limits<int64_t>::max();
  int64_t prev_pareto_cost = zero.data_changes;
  bool have_prev_pareto = zero.tau_feasible;

  std::vector<Node> frontier = {std::move(zero)};
  int max_k = std::min<int>(config_.max_repair_size,
                            static_cast<int>(candidates.size()));
  for (int k = 1; k <= max_k; ++k) {
    // Expansions of this level, evaluated into pre-sized slots so the pool
    // writes race-free and the level is byte-identical for any thread count.
    std::vector<std::pair<size_t, int>> expansions;  // (frontier index, pick)
    for (size_t f = 0; f < frontier.size(); ++f) {
      int start = frontier[f].picks.empty() ? 0 : frontier[f].picks.back() + 1;
      for (int p = start; p < static_cast<int>(candidates.size()); ++p) {
        expansions.emplace_back(f, p);
      }
    }
    if (expansions.empty()) break;
    std::vector<Node> level_nodes(expansions.size());
    std::vector<int64_t> level_rescored(expansions.size(), 0);
    auto eval_expansion = [&](size_t e, int worker) {
      auto [f, p] = expansions[e];
      std::vector<int> picks = frontier[f].picks;
      picks.push_back(p);
      auto [node, rescored] =
          score_node(std::move(picks), &scratches[static_cast<size_t>(worker)]);
      level_nodes[e] = std::move(node);
      level_rescored[e] = rescored;
    };
    // Batch grain: a run of candidate expansions per task (not one node per
    // dispatch), so scheduling cost amortizes over the batch while work
    // stealing still rebalances the uneven tail (nodes with long
    // affected-class lists). The level result is byte-identical for any
    // grain or thread count — slots, then one deterministic sort below.
    const size_t beam_grain =
        config_.beam_grain > 0
            ? static_cast<size_t>(config_.beam_grain)
            : std::max<size_t>(1, expansions.size() /
                                      (static_cast<size_t>(pool->num_threads()) * 8));
    pool->ParallelForGrained(expansions.size(), beam_grain, eval_expansion);
    result.nodes_evaluated += static_cast<int64_t>(expansions.size());
    for (int64_t r : level_rescored) classes_rescored += r;

    std::sort(level_nodes.begin(), level_nodes.end(),
              [](const Node& a, const Node& b) {
                if (a.data_changes != b.data_changes) {
                  return a.data_changes < b.data_changes;
                }
                return a.picks < b.picks;
              });
    // Scores are exact, so the level's minimum-cost node is feasible iff any
    // node is; only feasible levels yield Pareto points or drive the exits.
    const Node& top = level_nodes.front();
    if (top.tau_feasible) {
      result.pareto.push_back(ParetoPoint{k, top.data_changes});
      // Track the globally best (k + data changes) feasible repair.
      if (k + top.data_changes < best_cost) {
        best_cost = k + top.data_changes;
        best_node = top;
      }
      if (top.data_changes == 0) break;  // Cannot improve further.
      // Diminishing returns: stop once a level fails to reduce data repairs
      // below the previous feasible level's minimum (the deeper lattice is
      // dominated in the Pareto sense).
      if (k >= 2 && have_prev_pareto && top.data_changes >= prev_pareto_cost) {
        break;
      }
      prev_pareto_cost = top.data_changes;
      have_prev_pareto = true;
    }
    // Keep the top-b nodes for expansion.
    if (static_cast<int>(level_nodes.size()) > beam) level_nodes.resize(beam);
    frontier = std::move(level_nodes);
  }

  beam_timer.Stop();

  // Materialize the best repair against the shared index: apply the picks
  // (recording which insertions were real, so a pre-existing mapping is
  // never deleted on restore), run the full conflict-graph repair, restore.
  std::vector<OntologyAddition> applied;
  for (int p : best_node.picks) {
    const OntologyAddition& add = candidates[static_cast<size_t>(p)];
    if (index.AddValue(add.sense, add.value)) applied.push_back(add);
  }
  result.best = RepairData(rel_, index, sigma_, result.assignment, budget, pool,
                           &metrics);
  for (const OntologyAddition& add : applied) {
    index.RemoveValue(add.sense, add.value);
  }
  for (int p : best_node.picks) {
    result.best.ontology_additions.push_back(candidates[static_cast<size_t>(p)]);
  }
  // The restored index must again agree with the ontology exactly.
  FASTOFD_AUDIT_OK(AuditOntologyIndex(ontology_, rel_.dict(), index));

  // Pareto-filter the per-k minima (dominated points removed).
  std::vector<ParetoPoint> filtered;
  int64_t best_data = std::numeric_limits<int64_t>::max();
  for (const ParetoPoint& p : result.pareto) {
    if (p.data_changes < best_data) {
      filtered.push_back(p);
      best_data = p.data_changes;
    }
  }
  result.pareto = std::move(filtered);

  pool->PublishMetrics(&metrics);
  metrics.Add("clean.candidates", result.num_candidates);
  metrics.Add("clean.beam.nodes_evaluated", result.nodes_evaluated);
  metrics.Add("clean.beam.classes_rescored", classes_rescored);
  metrics.Add("clean.ontology_additions",
              static_cast<int64_t>(result.best.ontology_additions.size()));
  metrics.Add("clean.data_changes", result.best.data_changes);
  return result;
}

}  // namespace fastofd
