#include "clean/repair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/audit.h"
#include "common/check.h"
#include "common/metrics.h"
#include "exec/thread_pool.h"
#include "ofd/verifier.h"

namespace fastofd {

namespace {

// Best repair value for a class under sense λ: the most frequent value of
// the class covered by λ; falls back to the sense's canonical value, then to
// the class majority value (λ invalid / nothing covered).
ValueId RepairValue(const Relation& rel, const SynonymIndex& index,
                    RowSpan rows, AttrId rhs, SenseId sense) {
  std::unordered_map<ValueId, int64_t> freq;
  for (RowId r : rows) ++freq[rel.At(r, rhs)];
  ValueId best_covered = kInvalidValue;
  int64_t best_covered_count = -1;
  ValueId majority = kInvalidValue;
  int64_t majority_count = -1;
  for (const auto& [v, c] : freq) {
    if (c > majority_count || (c == majority_count && v < majority)) {
      majority = v;
      majority_count = c;
    }
    if (sense != kInvalidSense && index.SenseContains(sense, v)) {
      if (c > best_covered_count || (c == best_covered_count && v < best_covered)) {
        best_covered = v;
        best_covered_count = c;
      }
    }
  }
  if (best_covered != kInvalidValue) return best_covered;
  if (sense != kInvalidSense && !index.SenseValues(sense).empty()) {
    return *std::min_element(index.SenseValues(sense).begin(),
                             index.SenseValues(sense).end());
  }
  return majority;
}

}  // namespace

RepairResult RepairData(const Relation& rel, const SynonymIndex& index,
                        const SigmaSet& sigma, const SenseAssignmentResult& assignment,
                        int64_t max_changes, ThreadPool* pool,
                        MetricsRegistry* metrics) {
  RepairResult result{rel, {}, 0, false, true};
  Relation& out = result.repaired;
  ScopedTimer repair_timer(metrics, "repair.seconds");
  if (metrics != nullptr) metrics->Add("repair.invocations", 1);

  // ---- Conflict graph + 2-approximate vertex cover (paper §7.2). -----
  // Edges are generated sparsely per violating class: each uncovered tuple
  // conflicts with one covered representative (if any) and with its
  // neighbouring uncovered tuple of a different value; this keeps the graph
  // linear in the class size while touching every problematic tuple.
  // Classes are independent (read-only over `out`), so their edge lists are
  // built on the pool and concatenated in class order — the edge sequence is
  // identical to the serial one for any thread count.
  struct Conflict {
    RowId a, b;
    int ofd, cls;
  };
  auto class_violating = [&](RowSpan rows, AttrId rhs,
                             SenseId sense) {
    ValueId first = out.At(rows[0], rhs);
    bool all_equal = true;
    bool all_covered = sense != kInvalidSense;
    for (RowId r : rows) {
      ValueId v = out.At(r, rhs);
      all_equal &= (v == first);
      if (all_covered && !index.SenseContains(sense, v)) all_covered = false;
    }
    return !all_equal && !all_covered;
  };

  std::vector<std::pair<int, int>> class_items;  // (OFD index, class index).
  for (int i = 0; i < static_cast<int>(sigma.size()); ++i) {
    const auto& classes = assignment.partitions[static_cast<size_t>(i)].classes();
    for (int c = 0; c < static_cast<int>(classes.size()); ++c) {
      class_items.emplace_back(i, c);
    }
  }
  std::vector<std::vector<Conflict>> class_edges(class_items.size());
  auto build_class_edges = [&](size_t item) {
    auto [i, c] = class_items[item];
    AttrId rhs = sigma[static_cast<size_t>(i)].rhs;
    const auto& rows =
        assignment.partitions[static_cast<size_t>(i)].classes()[static_cast<size_t>(c)];
    SenseId sense = assignment.senses[static_cast<size_t>(i)][static_cast<size_t>(c)];
    if (!class_violating(rows, rhs, sense)) return;
    RowId covered_rep = -1;
    std::vector<RowId> uncovered;
    for (RowId r : rows) {
      ValueId v = out.At(r, rhs);
      if (sense != kInvalidSense && index.SenseContains(sense, v)) {
        if (covered_rep < 0) covered_rep = r;
      } else {
        uncovered.push_back(r);
      }
    }
    std::vector<Conflict>& local = class_edges[item];
    for (size_t u = 0; u < uncovered.size(); ++u) {
      if (covered_rep >= 0) {
        local.push_back(Conflict{uncovered[u], covered_rep, i, c});
      }
      if (u + 1 < uncovered.size() &&
          out.At(uncovered[u], rhs) != out.At(uncovered[u + 1], rhs)) {
        local.push_back(Conflict{uncovered[u], uncovered[u + 1], i, c});
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(class_items.size(),
                      [&](size_t item, int) { build_class_edges(item); });
  } else {
    for (size_t item = 0; item < class_items.size(); ++item) {
      build_class_edges(item);
    }
  }
  std::vector<Conflict> edges;
  for (std::vector<Conflict>& local : class_edges) {
    edges.insert(edges.end(), local.begin(), local.end());
  }

  // 2-approximation: take both endpoints of any uncovered edge.
  std::unordered_set<RowId> cover;
  for (const Conflict& e : edges) {
    if (!cover.count(e.a) && !cover.count(e.b)) {
      cover.insert(e.a);
      cover.insert(e.b);
    }
  }
  if (metrics != nullptr) {
    metrics->Add("repair.conflict_edges", static_cast<int64_t>(edges.size()));
    metrics->Add("repair.cover_tuples", static_cast<int64_t>(cover.size()));
  }

  // ---- Repair pass: rewrite covered tuples class by class, then fix up
  // any residual violations (guarantees consistency). -----------------
  auto repair_classes = [&](bool only_cover) {
    for (int i = 0; i < static_cast<int>(sigma.size()); ++i) {
      AttrId rhs = sigma[static_cast<size_t>(i)].rhs;
      const auto& classes = assignment.partitions[static_cast<size_t>(i)].classes();
      for (int c = 0; c < static_cast<int>(classes.size()); ++c) {
        const auto& rows = classes[static_cast<size_t>(c)];
        SenseId sense =
            assignment.senses[static_cast<size_t>(i)][static_cast<size_t>(c)];
        if (!class_violating(rows, rhs, sense)) continue;
        ValueId target = RepairValue(out, index, rows, rhs, sense);
        for (RowId r : rows) {
          ValueId v = out.At(r, rhs);
          bool ok = (sense != kInvalidSense && index.SenseContains(sense, v)) ||
                    v == target;
          if (ok) continue;
          if (only_cover && !cover.count(r)) continue;
          out.SetId(r, rhs, target);
          ++result.data_changes;
          if (result.data_changes > max_changes) {
            result.tau_feasible = false;
            return;
          }
        }
      }
    }
  };
  repair_classes(/*only_cover=*/true);
  if (result.tau_feasible) repair_classes(/*only_cover=*/false);

  // Verify consistency of the repair.
  if (result.tau_feasible) {
    OfdVerifier verifier(out, index);
    result.consistent = true;
    for (size_t i = 0; i < sigma.size() && result.consistent; ++i) {
      result.consistent = verifier.Holds(sigma[i], assignment.partitions[i]);
    }
  }
  return result;
}

OfdClean::OfdClean(const Relation& rel, const Ontology& ontology,
                   const SigmaSet& sigma, OfdCleanConfig config)
    : rel_(rel), ontology_(ontology), sigma_(sigma), config_(config) {
  // Scope assumption (paper §5.1): no attribute is both an antecedent of one
  // OFD and the consequent of another — equivalence classes stay fixed.
  AttrSet lhs_attrs, rhs_attrs;
  for (const Ofd& ofd : sigma_) {
    lhs_attrs = lhs_attrs.Union(ofd.lhs);
    rhs_attrs = rhs_attrs.With(ofd.rhs);
  }
  FASTOFD_CHECK(!lhs_attrs.Intersects(rhs_attrs));
}

OfdCleanResult OfdClean::Run() {
  OfdCleanResult result{RepairResult{rel_, {}, 0, false, true}, {}, {}, 0, 0};

  // One pool and one metrics registry for the whole pipeline: sense
  // assignment, every beam-search RepairData call, and the final
  // materialization all share them.
  MetricsRegistry local_metrics;
  MetricsRegistry& metrics =
      config_.metrics != nullptr ? *config_.metrics : local_metrics;
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    owned_pool.emplace(config_.num_threads);
    pool = &*owned_pool;
  }
  ScopedTimer clean_timer(&metrics, "clean.seconds");

  SynonymIndex index(ontology_, rel_.dict());
  // The freshly compiled index must agree with the ontology exactly; the
  // beam search below mutates and restores it via AddValue/RemoveValue.
  FASTOFD_AUDIT_OK(AuditOntologyIndex(ontology_, rel_.dict(), index));
  SenseAssignConfig assign_config{config_.theta};
  assign_config.pool = pool;
  assign_config.metrics = &metrics;
  assign_config.partitions = config_.partitions;
  SenseSelector selector(rel_, index, sigma_, assign_config);
  result.assignment = selector.Run();

  // τ budget: fraction of consequent cells.
  AttrSet rhs_attrs;
  for (const Ofd& ofd : sigma_) rhs_attrs = rhs_attrs.With(ofd.rhs);
  int64_t budget = static_cast<int64_t>(
      config_.tau * static_cast<double>(rhs_attrs.size()) *
      static_cast<double>(rel_.num_rows()));

  // Cand(S) (paper §7.1): (value, sense) pairs where the value occurs in a
  // class but is not in S *under the class's assigned sense* — this includes
  // values known to other senses (Table 5's "ASA (FDA)" candidate). Counted
  // by occurrence (an insertion can save at most that many data repairs);
  // only the top max_candidates by count are explored.
  std::vector<OntologyAddition> candidates;
  std::vector<int64_t> cand_count;
  std::vector<int64_t> cand_classes;
  for (size_t i = 0; i < sigma_.size(); ++i) {
    AttrId rhs = sigma_[i].rhs;
    const auto& classes = result.assignment.partitions[i].classes();
    for (size_t c = 0; c < classes.size(); ++c) {
      SenseId sense = result.assignment.senses[i][c];
      if (sense == kInvalidSense) continue;
      std::vector<size_t> seen_here;
      for (RowId r : classes[c]) {
        ValueId v = rel_.At(r, rhs);
        if (index.SenseContains(sense, v)) continue;
        OntologyAddition add{sense, v};
        auto it = std::find(candidates.begin(), candidates.end(), add);
        size_t pos;
        if (it == candidates.end()) {
          pos = candidates.size();
          candidates.push_back(add);
          cand_count.push_back(1);
          cand_classes.push_back(0);
        } else {
          pos = static_cast<size_t>(it - candidates.begin());
          ++cand_count[pos];
        }
        if (std::find(seen_here.begin(), seen_here.end(), pos) ==
            seen_here.end()) {
          seen_here.push_back(pos);
          ++cand_classes[pos];
        }
      }
    }
  }
  // Class-support filter: localized (single-class) erroneous values are
  // dropped when min_candidate_classes > 1.
  if (config_.min_candidate_classes > 1) {
    std::vector<OntologyAddition> kept;
    std::vector<int64_t> kept_count;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (cand_classes[i] >= config_.min_candidate_classes) {
        kept.push_back(candidates[i]);
        kept_count.push_back(cand_count[i]);
      }
    }
    candidates = std::move(kept);
    cand_count = std::move(kept_count);
  }
  result.num_candidates = static_cast<int64_t>(candidates.size());
  if (static_cast<int>(candidates.size()) > config_.max_candidates) {
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (cand_count[a] != cand_count[b]) return cand_count[a] > cand_count[b];
      return a < b;
    });
    std::vector<OntologyAddition> kept;
    for (int i = 0; i < config_.max_candidates; ++i) {
      kept.push_back(candidates[order[static_cast<size_t>(i)]]);
    }
    candidates = std::move(kept);
  }

  // Beam size: secretary rule ⌊w/e⌋, at least 1.
  int beam = config_.beam_size > 0
                 ? config_.beam_size
                 : std::max<int>(1, static_cast<int>(std::floor(
                                        static_cast<double>(candidates.size()) /
                                        std::exp(1.0))));

  // Evaluate one candidate ontology repair (set of insertions).
  auto evaluate = [&](const std::vector<int>& picks) -> RepairResult {
    for (int p : picks) index.AddValue(candidates[static_cast<size_t>(p)].sense,
                                       candidates[static_cast<size_t>(p)].value);
    RepairResult r = RepairData(rel_, index, sigma_, result.assignment, budget,
                                pool, &metrics);
    for (int p : picks) index.RemoveValue(candidates[static_cast<size_t>(p)].sense,
                                          candidates[static_cast<size_t>(p)].value);
    for (int p : picks) {
      r.ontology_additions.push_back(candidates[static_cast<size_t>(p)]);
    }
    ++result.nodes_evaluated;
    return r;
  };

  // Level 0: no ontology repair.
  struct Node {
    std::vector<int> picks;
    int64_t data_changes = 0;
    bool consistent = false;
    bool tau_feasible = true;
  };
  RepairResult level0 = evaluate({});
  result.pareto.push_back(ParetoPoint{0, level0.data_changes});
  Node best_node{{}, level0.data_changes, level0.consistent, level0.tau_feasible};
  int64_t best_cost = level0.tau_feasible
                          ? level0.data_changes
                          : std::numeric_limits<int64_t>::max();

  std::vector<Node> frontier = {Node{{}, level0.data_changes, level0.consistent,
                                     level0.tau_feasible}};
  int max_k = std::min<int>(config_.max_repair_size,
                            static_cast<int>(candidates.size()));
  for (int k = 1; k <= max_k; ++k) {
    std::vector<Node> level_nodes;
    for (const Node& node : frontier) {
      int start = node.picks.empty() ? 0 : node.picks.back() + 1;
      for (int p = start; p < static_cast<int>(candidates.size()); ++p) {
        std::vector<int> picks = node.picks;
        picks.push_back(p);
        RepairResult r = evaluate(picks);
        level_nodes.push_back(
            Node{std::move(picks), r.data_changes, r.consistent, r.tau_feasible});
      }
    }
    if (level_nodes.empty()) break;
    std::sort(level_nodes.begin(), level_nodes.end(),
              [](const Node& a, const Node& b) {
                if (a.data_changes != b.data_changes) {
                  return a.data_changes < b.data_changes;
                }
                return a.picks < b.picks;
              });
    // Per-k Pareto point: the best node at this level.
    result.pareto.push_back(ParetoPoint{k, level_nodes.front().data_changes});
    // Track the globally best (k + data changes) feasible repair.
    const Node& top = level_nodes.front();
    if (top.tau_feasible && k + top.data_changes < best_cost) {
      best_cost = k + top.data_changes;
      best_node = top;
    }
    if (top.data_changes == 0) break;  // Cannot improve further.
    // Diminishing returns: stop once a level fails to reduce data repairs
    // (the deeper lattice is dominated in the Pareto sense).
    if (k >= 2 && result.pareto.size() >= 2 &&
        top.data_changes >=
            result.pareto[result.pareto.size() - 2].data_changes) {
      break;
    }
    // Keep the top-b nodes for expansion.
    if (static_cast<int>(level_nodes.size()) > beam) level_nodes.resize(beam);
    frontier = std::move(level_nodes);
  }

  // Materialize the best repair.
  result.best = evaluate(best_node.picks);
  --result.nodes_evaluated;  // Materialization is not an exploration step.

  // Pareto-filter the per-k minima (dominated points removed).
  std::vector<ParetoPoint> filtered;
  int64_t best_data = std::numeric_limits<int64_t>::max();
  for (const ParetoPoint& p : result.pareto) {
    if (p.data_changes < best_data) {
      filtered.push_back(p);
      best_data = p.data_changes;
    }
  }
  result.pareto = std::move(filtered);

  metrics.Add("clean.candidates", result.num_candidates);
  metrics.Add("clean.beam.nodes_evaluated", result.nodes_evaluated);
  metrics.Add("clean.ontology_additions",
              static_cast<int64_t>(result.best.ontology_additions.size()));
  metrics.Add("clean.data_changes", result.best.data_changes);
  return result;
}

}  // namespace fastofd
