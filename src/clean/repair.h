// OFDClean repairs (paper §5 and §7): ontology repair via beam search over
// the candidate-value lattice, and data repair via conflict graphs with a
// 2-approximate vertex cover, producing a Pareto set of (S', I') repairs.
//
// Flow (Figure 3): sense assignment fixes an interpretation λ_x per
// equivalence class; Cand(S) collects the (value, sense) pairs occurring in
// the data but missing from the ontology; the beam search explores size-k
// combinations of these insertions (top-b nodes per level, default
// b = ⌊|Cand(S)|/e⌋ by the secretary rule), and every candidate ontology
// repair is scored by the number of data repairs still required. Nodes are
// scored side-effect-free (SynonymIndexOverlay over the shared index, see
// clean/beam_scorer.h), incrementally (only the classes a node's insertions
// can affect are re-costed against the memoized level-0 per-class costs),
// and in parallel (each level's expansions in candidate batches on the
// work-stealing pool, per-worker scoring scratch, byte-identical output for
// any thread count, grain, or scoring mode). Only the
// chosen repair is materialized with a full RepairData. Data repair builds
// per-class conflict graphs (edges between tuples whose consequent values
// are neither equal nor co-covered by the class's sense), takes a
// 2-approximate minimum vertex cover, rewrites covered tuples to the best
// sense-covered value, and finishes with a fix-up pass that guarantees
// consistency. Repairs are τ-constrained: at most τ · (consequent cells)
// may change; τ-infeasible nodes are kept in the beam (a deeper insertion
// can bring them back under budget) but never contribute Pareto points.

#ifndef FASTOFD_CLEAN_REPAIR_H_
#define FASTOFD_CLEAN_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clean/sense_assignment.h"
#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {

class MetricsRegistry;  // common/metrics.h
class ThreadPool;       // exec/thread_pool.h

/// Tunables for OFDClean (paper Table 6).
struct OfdCleanConfig {
  /// Beam size b; 0 selects the secretary-rule default ⌊|Cand(S)|/e⌋.
  int beam_size = 0;
  /// τ: maximum fraction of consequent cells the data repair may change.
  double tau = 0.65;
  /// EMD refinement threshold θ (forwarded to sense assignment).
  double theta = 5.0;
  /// Cap on the number of ontology insertions explored (lattice depth).
  int max_repair_size = 12;
  /// Cap on |Cand(S)|: candidates are ranked by their occurrence count in
  /// violating classes (an insertion can save at most that many data
  /// repairs) and only the top `max_candidates` are explored.
  int max_candidates = 24;
  /// Minimum number of distinct equivalence classes a candidate value must
  /// appear in. 1 admits every uncovered value (the paper's Table 4/5
  /// example has single-class candidates); 2+ filters localized erroneous
  /// values, which legitimately missing ontology values — occurring across
  /// many classes — easily pass.
  int min_candidate_classes = 1;
  /// When true (default), beam nodes are re-scored only over the classes
  /// their insertions can affect, against memoized level-0 per-class costs;
  /// false re-costs every class per node (the reference path, kept for
  /// benchmarking and cross-validation). Output is byte-identical.
  bool incremental_scoring = true;
  /// Worker threads for sense assignment, beam-node scoring, and
  /// conflict-graph construction (1 = serial). The repair output is
  /// identical for any thread count.
  int num_threads = 1;
  /// Beam expansions per scoring task (0 = automatic, ~8 batches per
  /// worker). Batches amortize dispatch and keep per-worker scoring scratch
  /// warm; output is identical for any grain.
  int beam_grain = 0;
  /// Shared execution pool; when null, Run() creates its own
  /// `num_threads`-wide pool once and reuses it across all phases and every
  /// beam-search node. When set, `num_threads` is ignored.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (`clean.*` and `repair.*` counters and timers).
  MetricsRegistry* metrics = nullptr;
  /// Optional partition cache shared with the verify phase.
  PartitionCache* partitions = nullptr;
};

/// One ontology insertion: value added to a sense.
struct OntologyAddition {
  SenseId sense = kInvalidSense;
  ValueId value = kInvalidValue;

  friend bool operator==(const OntologyAddition& a, const OntologyAddition& b) {
    return a.sense == b.sense && a.value == b.value;
  }
};

/// A materialized repair.
struct RepairResult {
  Relation repaired;
  std::vector<OntologyAddition> ontology_additions;
  int64_t data_changes = 0;
  /// I' ⊨ Σ w.r.t. S' (verified, not assumed).
  bool consistent = false;
  /// dist(I, I') stayed within the τ budget.
  bool tau_feasible = true;
};

/// One point of the Pareto frontier over (dist(S,S'), dist(I,I')).
struct ParetoPoint {
  int64_t ontology_changes = 0;
  int64_t data_changes = 0;
};

/// Full OFDClean output.
struct OfdCleanResult {
  /// The chosen repair (minimal ontology+data changes among feasible ones).
  RepairResult best;
  /// Per-k minima (k = number of ontology insertions), Pareto-filtered.
  std::vector<ParetoPoint> pareto;
  /// The sense assignment used.
  SenseAssignmentResult assignment;
  /// Number of ontology-repair candidates |Cand(S)|.
  int64_t num_candidates = 0;
  /// Beam-search nodes evaluated.
  int64_t nodes_evaluated = 0;
};

/// The OFDClean driver (Figure 3): sense assignment, then ontology+data
/// repair. Antecedent attributes must not appear as consequents of other
/// OFDs (paper §5.1 scope assumption) — violating Σ is rejected by CHECK.
class OfdClean {
 public:
  OfdClean(const Relation& rel, const Ontology& ontology, const SigmaSet& sigma,
           OfdCleanConfig config = {});

  /// Runs the full pipeline and returns the repair set.
  OfdCleanResult Run();

 private:
  const Relation& rel_;
  const Ontology& ontology_;
  const SigmaSet& sigma_;
  OfdCleanConfig config_;
};

/// Data repair alone, given a fixed sense assignment and (possibly
/// repaired) synonym index: conflict graph + 2-approx vertex cover + fix-up.
/// Returns the repaired relation and the number of changed cells; stops and
/// flags infeasibility when the change budget `max_changes` is exceeded
/// (pass INT64_MAX for unconstrained). Conflict-graph construction runs on
/// `pool` when provided (per-class edge lists, concatenated in class order,
/// so the repair is identical for any thread count); `metrics` receives
/// `repair.*` counters and timers.
RepairResult RepairData(const Relation& rel, const SynonymIndex& index,
                        const SigmaSet& sigma, const SenseAssignmentResult& assignment,
                        int64_t max_changes, ThreadPool* pool = nullptr,
                        MetricsRegistry* metrics = nullptr);

}  // namespace fastofd

#endif  // FASTOFD_CLEAN_REPAIR_H_
