#include "clean/beam_scorer.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/audit.h"
#include "common/check.h"
#include "exec/thread_pool.h"
#include "relation/attr_set.h"

namespace fastofd {

BeamScorer::BeamScorer(const Relation& rel, const SynonymIndex& index,
                       const SigmaSet& sigma, const SenseAssignmentResult& assignment,
                       ThreadPool* pool)
    : rel_(rel), index_(index), sigma_(sigma), assignment_(assignment) {
  for (int i = 0; i < static_cast<int>(sigma_.size()); ++i) {
    const auto& classes = assignment_.partitions[static_cast<size_t>(i)].classes();
    for (int c = 0; c < static_cast<int>(classes.size()); ++c) {
      items_.push_back(Item{i, c});
    }
  }
  level0_cost_.assign(items_.size(), 0);
  auto memoize = [&](size_t item) {
    level0_cost_[item] = ClassCost(item, nullptr);
  };
  if (pool != nullptr) {
    pool->ParallelFor(items_.size(), [&](size_t item, int) { memoize(item); });
  } else {
    for (size_t item = 0; item < items_.size(); ++item) memoize(item);
  }
  for (int64_t cost : level0_cost_) base_cost_ += cost;
}

void BeamScorer::SetCandidates(std::vector<OntologyAddition> candidates,
                               std::vector<std::vector<uint32_t>> affected) {
  FASTOFD_CHECK(candidates.size() == affected.size());
  candidates_ = std::move(candidates);
  affected_ = std::move(affected);
}

int64_t BeamScorer::ClassCost(size_t item, const SynonymIndexOverlay* overlay) const {
  const auto [i, c] = items_[item];
  AttrId rhs = sigma_[static_cast<size_t>(i)].rhs;
  RowSpan rows =
      assignment_.partitions[static_cast<size_t>(i)].classes()[static_cast<size_t>(c)];
  SenseId sense = assignment_.senses[static_cast<size_t>(i)][static_cast<size_t>(c)];

  std::unordered_map<ValueId, int64_t> freq;
  for (RowId r : rows) ++freq[rel_.At(r, rhs)];
  if (freq.size() <= 1) return 0;  // All equal: never violating.

  auto covered = [&](ValueId v) {
    if (sense == kInvalidSense) return false;
    return overlay != nullptr ? overlay->SenseContains(sense, v)
                              : index_.SenseContains(sense, v);
  };
  // One pass over the distinct values; all tie-breaks (max count, then min
  // value id) match RepairValue in repair.cc, and none depend on the hash
  // map's iteration order.
  bool all_covered = sense != kInvalidSense;
  int64_t uncovered_occurrences = 0;
  ValueId best_covered = kInvalidValue;
  int64_t best_covered_count = -1;
  ValueId majority = kInvalidValue;
  int64_t majority_count = -1;
  for (const auto& [v, count] : freq) {
    if (count > majority_count || (count == majority_count && v < majority)) {
      majority = v;
      majority_count = count;
    }
    if (covered(v)) {
      if (count > best_covered_count ||
          (count == best_covered_count && v < best_covered)) {
        best_covered = v;
        best_covered_count = count;
      }
    } else {
      all_covered = false;
      uncovered_occurrences += count;
    }
  }
  if (all_covered) return 0;  // Co-covered by λ: not violating.

  const int64_t size = static_cast<int64_t>(rows.size());
  // RepairData rewrites every uncovered tuple whose value differs from the
  // repair target. With a covered target, no uncovered value can equal it,
  // so the cost is exactly the uncovered occurrences. With no covered value
  // but a non-empty sense, the target is a sense value absent from the
  // class — every tuple changes. Otherwise the majority value survives.
  if (best_covered != kInvalidValue) return uncovered_occurrences;
  if (sense != kInvalidSense &&
      (overlay != nullptr ? overlay->SenseHasValues(sense)
                          : !index_.SenseValues(sense).empty())) {
    return size;
  }
  return size - majority_count;
}

SynonymIndexOverlay BeamScorer::MakeOverlay(const std::vector<int>& picks) const {
  SynonymIndexOverlay overlay(index_);
  for (int p : picks) {
    const OntologyAddition& add = candidates_[static_cast<size_t>(p)];
    overlay.Add(add.sense, add.value);
  }
  return overlay;
}

BeamScorer::NodeScore BeamScorer::ScoreFull(const std::vector<int>& picks) const {
  ScoreScratch scratch(index_);
  return ScoreFull(picks, &scratch);
}

BeamScorer::NodeScore BeamScorer::ScoreFull(const std::vector<int>& picks,
                                            ScoreScratch* scratch) const {
  SynonymIndexOverlay& overlay = scratch->overlay_;
  overlay.Clear();
  for (int p : picks) {
    const OntologyAddition& add = candidates_[static_cast<size_t>(p)];
    overlay.Add(add.sense, add.value);
  }
  const SynonymIndexOverlay* view = picks.empty() ? nullptr : &overlay;
  NodeScore score;
  for (size_t item = 0; item < items_.size(); ++item) {
    score.data_changes += ClassCost(item, view);
  }
  score.classes_rescored = static_cast<int64_t>(items_.size());
  return score;
}

BeamScorer::NodeScore BeamScorer::ScoreIncremental(const std::vector<int>& picks) const {
  ScoreScratch scratch(index_);
  return ScoreIncremental(picks, &scratch);
}

BeamScorer::NodeScore BeamScorer::ScoreIncremental(const std::vector<int>& picks,
                                                   ScoreScratch* scratch) const {
  if (picks.empty()) return NodeScore{base_cost_, 0};
  SynonymIndexOverlay& overlay = scratch->overlay_;
  overlay.Clear();
  for (int p : picks) {
    const OntologyAddition& add = candidates_[static_cast<size_t>(p)];
    overlay.Add(add.sense, add.value);
  }
  // Union of the picks' affected-class lists (each ascending).
  std::vector<uint32_t>& affected = scratch->affected_;
  affected.clear();
  for (int p : picks) {
    const std::vector<uint32_t>& list = affected_[static_cast<size_t>(p)];
    affected.insert(affected.end(), list.begin(), list.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  NodeScore score{base_cost_, static_cast<int64_t>(affected.size())};
  for (uint32_t item : affected) {
    score.data_changes -= level0_cost_[item];
    score.data_changes += ClassCost(item, &overlay);
  }
  return score;
}

Status BeamScorer::AuditNodeScore(const std::vector<int>& picks,
                                  int64_t data_changes) const {
  auto fail = [](const std::string& message) {
    return audit::internal::Counted(Status::Error("beam scorer audit: " + message));
  };
  SynonymIndexOverlay overlay = MakeOverlay(picks);
  Status overlay_ok = AuditSynonymIndexOverlay(overlay);
  if (!overlay_ok.ok()) return audit::internal::Counted(overlay_ok);

  NodeScore full = ScoreFull(picks);
  NodeScore incremental = ScoreIncremental(picks);
  if (full.data_changes != data_changes ||
      incremental.data_changes != data_changes) {
    return fail("node scored " + std::to_string(data_changes) + " but full=" +
                std::to_string(full.data_changes) + " incremental=" +
                std::to_string(incremental.data_changes));
  }

  // From-scratch cross-check against RepairData on a materialized index
  // copy. Exact only under per-class independence: distinct consequents and
  // no antecedent/consequent overlap (coupled classes read each other's
  // rewrites). Bounded so audit-mode services stay usable.
  if (rel_.num_rows() > audit::kDeepAuditMaxRows) {
    return audit::internal::Counted(Status::Ok());
  }
  AttrSet lhs_attrs, rhs_attrs;
  for (const Ofd& ofd : sigma_) {
    if (rhs_attrs.Contains(ofd.rhs)) return audit::internal::Counted(Status::Ok());
    lhs_attrs = lhs_attrs.Union(ofd.lhs);
    rhs_attrs = rhs_attrs.With(ofd.rhs);
  }
  if (lhs_attrs.Intersects(rhs_attrs)) {
    return audit::internal::Counted(Status::Ok());
  }
  SynonymIndex materialized = index_;
  for (int p : picks) {
    const OntologyAddition& add = candidates_[static_cast<size_t>(p)];
    materialized.AddValue(add.sense, add.value);
  }
  RepairResult repaired = RepairData(rel_, materialized, sigma_, assignment_,
                                     std::numeric_limits<int64_t>::max());
  if (repaired.data_changes != data_changes) {
    return fail("from-scratch RepairData made " +
                std::to_string(repaired.data_changes) +
                " changes but the node scored " + std::to_string(data_changes));
  }
  return audit::internal::Counted(Status::Ok());
}

}  // namespace fastofd
