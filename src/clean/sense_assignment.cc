#include "clean/sense_assignment.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "clean/emd.h"
#include "common/check.h"
#include "common/metrics.h"
#include "exec/thread_pool.h"

namespace fastofd {

namespace {

// Frequency map of consequent values within a class.
ValueHistogram ClassFrequencies(const Relation& rel, RowSpan rows,
                                AttrId rhs) {
  ValueHistogram freq;
  for (RowId r : rows) ++freq[rel.At(r, rhs)];
  return freq;
}

// Values of the class not covered by `sense` — the outliers ρ_{x,λ}.
std::vector<ValueId> Outliers(const SynonymIndex& index, const ValueHistogram& freq,
                              SenseId sense) {
  std::vector<ValueId> out;
  for (const auto& [v, _] : freq) {
    if (sense == kInvalidSense || !index.SenseContains(sense, v)) out.push_back(v);
  }
  return out;
}

// Tuples of the class holding an outlier value — |R(x_λ)|.
int64_t OutlierTuples(const SynonymIndex& index, const ValueHistogram& freq,
                      SenseId sense) {
  int64_t n = 0;
  for (const auto& [v, c] : freq) {
    if (sense == kInvalidSense || !index.SenseContains(sense, v)) n += c;
  }
  return n;
}

// Canonical value of a sense: its smallest interned member (stable and
// cheap; any fixed representative works for the EMD comparison).
ValueId Canonical(const SynonymIndex& index, SenseId sense) {
  if (sense == kInvalidSense) return kInvalidValue;
  const std::vector<ValueId>& values = index.SenseValues(sense);
  if (values.empty()) return kInvalidValue;
  return *std::min_element(values.begin(), values.end());
}

// Distribution of rows' consequent values interpreted under `sense`:
// covered values collapse to the canonical value.
ValueHistogram Interpret(const Relation& rel, const SynonymIndex& index,
                         RowSpan rows, AttrId rhs, SenseId sense) {
  ValueHistogram hist;
  ValueId canonical = Canonical(index, sense);
  for (RowId r : rows) {
    ValueId v = rel.At(r, rhs);
    if (sense != kInvalidSense && index.SenseContains(sense, v)) {
      ++hist[canonical];
    } else {
      ++hist[v];
    }
  }
  return hist;
}

}  // namespace

SenseSelector::SenseSelector(const Relation& rel, const SynonymIndex& index,
                             const SigmaSet& sigma, SenseAssignConfig config)
    : rel_(rel), index_(index), sigma_(sigma), config_(config) {}

SenseId SenseSelector::InitialAssignment(const Relation& rel,
                                         const SynonymIndex& index,
                                         RowSpan rows, AttrId rhs,
                                         ValueOrdering ordering) {
  ValueHistogram freq = ClassFrequencies(rel, rows, rhs);
  std::vector<std::pair<ValueId, int64_t>> ranked(freq.begin(), freq.end());
  if (ordering == ValueOrdering::kMadDeviation) {
    // MAD-robust ordering (paper §6.1). The median and MAD are *tuple
    // weighted* — the statistics of a random tuple's value frequency — so a
    // long tail of rare erroneous values cannot shift the median away from
    // the legitimate values (which it does when computed over distinct
    // values). Values whose frequency deviates from that median by more
    // than 2·MAD are demoted as outliers; within each group values rank by
    // frequency.
    auto weighted_median = [](std::vector<std::pair<int64_t, int64_t>> items) {
      // items: (statistic, weight); returns the weighted median statistic.
      std::sort(items.begin(), items.end());
      int64_t total = 0;
      for (const auto& [_, w] : items) total += w;
      int64_t seen = 0;
      for (const auto& [v, w] : items) {
        seen += w;
        if (2 * seen >= total) return v;
      }
      return items.back().first;
    };
    std::vector<std::pair<int64_t, int64_t>> freq_weighted;
    freq_weighted.reserve(freq.size());
    for (const auto& [_, c] : freq) freq_weighted.emplace_back(c, c);
    int64_t median = weighted_median(freq_weighted);
    std::vector<std::pair<int64_t, int64_t>> dev_weighted;
    dev_weighted.reserve(freq.size());
    for (const auto& [_, c] : freq) {
      dev_weighted.emplace_back(std::abs(c - median), c);
    }
    int64_t mad = weighted_median(dev_weighted);
    int64_t threshold = std::max<int64_t>(2 * mad, 1);
    auto outlier = [&](int64_t f) { return std::abs(f - median) > threshold; };
    std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
      bool oa = outlier(a.second), ob = outlier(b.second);
      if (oa != ob) return !oa;  // Inliers first.
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  } else {
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  }

  // Decreasing-prefix intersection of sense sets (Algorithm 5 main loop).
  std::vector<SenseId> potential;
  for (size_t k = ranked.size(); k >= 1; --k) {
    std::vector<SenseId> inter = index.Senses(ranked[0].first);
    for (size_t i = 1; i < k && !inter.empty(); ++i) {
      const std::vector<SenseId>& s = index.Senses(ranked[i].first);
      std::vector<SenseId> next;
      std::set_intersection(inter.begin(), inter.end(), s.begin(), s.end(),
                            std::back_inserter(next));
      inter = std::move(next);
    }
    if (!inter.empty()) {
      potential = std::move(inter);
      break;
    }
  }
  if (potential.empty()) {
    // The top-ranked value has no senses at all; fall back to the first
    // value (by rank) that is in the ontology.
    for (const auto& [v, _] : ranked) {
      if (!index.Senses(v).empty()) {
        potential = index.Senses(v);
        break;
      }
    }
  }
  if (potential.empty()) return kInvalidSense;

  // Tie-break by tuple coverage over the class.
  SenseId best = kInvalidSense;
  int64_t best_cover = -1;
  for (SenseId s : potential) {
    int64_t cover = 0;
    for (const auto& [v, c] : freq) {
      if (index.SenseContains(s, v)) cover += c;
    }
    if (cover > best_cover) {
      best_cover = cover;
      best = s;
    }
  }
  return best;
}

SenseAssignmentResult SenseSelector::Run() {
  SenseAssignmentResult result;
  const int n_ofds = static_cast<int>(sigma_.size());
  result.partitions.reserve(static_cast<size_t>(n_ofds));
  result.senses.resize(static_cast<size_t>(n_ofds));
  MetricsRegistry* metrics = config_.metrics;
  ScopedTimer assign_timer(metrics, "clean.assign.seconds");

  // Initial assignment (Algorithm 5) for every class of every OFD. The
  // partitions are built (or fetched from the shared cache) up front; the
  // per-class assignments are independent, so they run on the pool, each
  // writing its own pre-sized slot — deterministic for any thread count.
  {
    ScopedTimer t(metrics, "clean.assign.initial.seconds");
    std::vector<std::pair<int, int>> work;  // (OFD index, class index).
    for (int i = 0; i < n_ofds; ++i) {
      AttrSet lhs = sigma_[static_cast<size_t>(i)].lhs;
      if (config_.partitions != nullptr) {
        result.partitions.push_back(*config_.partitions->Get(lhs));
      } else {
        result.partitions.push_back(StrippedPartition::BuildForSet(rel_, lhs));
      }
      size_t n_classes = result.partitions.back().classes().size();
      result.senses[static_cast<size_t>(i)].resize(n_classes, kInvalidSense);
      for (size_t c = 0; c < n_classes; ++c) {
        work.emplace_back(i, static_cast<int>(c));
      }
    }
    auto assign_one = [&](size_t w) {
      auto [i, c] = work[w];
      result.senses[static_cast<size_t>(i)][static_cast<size_t>(c)] =
          InitialAssignment(
              rel_, index_,
              result.partitions[static_cast<size_t>(i)].classes()[static_cast<size_t>(c)],
              sigma_[static_cast<size_t>(i)].rhs, config_.ordering);
    };
    if (config_.pool != nullptr) {
      config_.pool->ParallelFor(work.size(), [&](size_t w, int) { assign_one(w); });
    } else {
      for (size_t w = 0; w < work.size(); ++w) assign_one(w);
    }
    if (metrics != nullptr) {
      metrics->Add("clean.assign.classes", static_cast<int64_t>(work.size()));
    }
  }
  if (!config_.refine) return result;

  // Dependency graph: nodes are classes; edges connect overlapping classes
  // of distinct OFDs that share the consequent attribute.
  struct Edge {
    ClassRef a, b;
    std::vector<RowId> overlap;
    double initial_emd = 0.0;
  };
  std::vector<Edge> edges;
  ScopedTimer graph_timer(metrics, "clean.assign.graph.seconds");
  for (int i = 0; i < n_ofds; ++i) {
    for (int j = i + 1; j < n_ofds; ++j) {
      if (sigma_[static_cast<size_t>(i)].rhs != sigma_[static_cast<size_t>(j)].rhs) {
        continue;
      }
      // Map row -> class index for OFD j.
      std::unordered_map<RowId, int> row_cls;
      const auto& classes_j = result.partitions[static_cast<size_t>(j)].classes();
      for (int cj = 0; cj < static_cast<int>(classes_j.size()); ++cj) {
        for (RowId r : classes_j[static_cast<size_t>(cj)]) row_cls[r] = cj;
      }
      const auto& classes_i = result.partitions[static_cast<size_t>(i)].classes();
      for (int ci = 0; ci < static_cast<int>(classes_i.size()); ++ci) {
        std::unordered_map<int, std::vector<RowId>> overlaps;
        for (RowId r : classes_i[static_cast<size_t>(ci)]) {
          auto it = row_cls.find(r);
          if (it != row_cls.end()) overlaps[it->second].push_back(r);
        }
        for (auto& [cj, rows] : overlaps) {
          if (rows.size() < 2) continue;  // Single shared tuple: no conflict.
          edges.push_back(Edge{{i, ci}, {j, cj}, std::move(rows), 0.0});
        }
      }
    }
  }

  auto edge_emd = [&](const Edge& e) {
    SenseId sa = result.senses[static_cast<size_t>(e.a.ofd)][static_cast<size_t>(e.a.cls)];
    SenseId sb = result.senses[static_cast<size_t>(e.b.ofd)][static_cast<size_t>(e.b.cls)];
    AttrId rhs = sigma_[static_cast<size_t>(e.a.ofd)].rhs;
    return CategoricalEmd(Interpret(rel_, index_, e.overlap, rhs, sa),
                          Interpret(rel_, index_, e.overlap, rhs, sb));
  };

  graph_timer.Stop();
  // EMD edge weights are independent of one another: compute them on the
  // pool, each into its own edge slot.
  {
    ScopedTimer t(metrics, "clean.assign.emd.seconds");
    if (config_.pool != nullptr) {
      config_.pool->ParallelFor(edges.size(), [&](size_t ei, int) {
        edges[ei].initial_emd = edge_emd(edges[ei]);
      });
    } else {
      for (Edge& e : edges) e.initial_emd = edge_emd(e);
    }
  }
  if (metrics != nullptr) {
    metrics->Add("clean.assign.dependency_edges", static_cast<int64_t>(edges.size()));
  }

  // Visit order: nodes by decreasing summed EMD (Algorithm 7).
  struct NodeKey {
    int ofd, cls;
    bool operator==(const NodeKey& o) const { return ofd == o.ofd && cls == o.cls; }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      return static_cast<size_t>(k.ofd) * 1000003u + static_cast<size_t>(k.cls);
    }
  };
  std::unordered_map<NodeKey, double, NodeKeyHash> node_weight;
  std::unordered_map<NodeKey, std::vector<int>, NodeKeyHash> incident;
  for (int ei = 0; ei < static_cast<int>(edges.size()); ++ei) {
    const Edge& e = edges[static_cast<size_t>(ei)];
    node_weight[{e.a.ofd, e.a.cls}] += e.initial_emd;
    node_weight[{e.b.ofd, e.b.cls}] += e.initial_emd;
    incident[{e.a.ofd, e.a.cls}].push_back(ei);
    incident[{e.b.ofd, e.b.cls}].push_back(ei);
  }
  std::vector<NodeKey> order;
  order.reserve(node_weight.size());
  for (const auto& [k, _] : node_weight) order.push_back(k);
  std::sort(order.begin(), order.end(), [&](const NodeKey& x, const NodeKey& y) {
    double wx = node_weight[x], wy = node_weight[y];
    if (wx != wy) return wx > wy;
    if (x.ofd != y.ofd) return x.ofd < y.ofd;
    return x.cls < y.cls;
  });

  // Local_Refinement (Algorithm 6) per node, heaviest first. Inherently
  // sequential: each re-assignment feeds into later edge evaluations.
  ScopedTimer refine_timer(metrics, "clean.assign.refine.seconds");
  auto sense_of = [&](ClassRef c) -> SenseId& {
    return result.senses[static_cast<size_t>(c.ofd)][static_cast<size_t>(c.cls)];
  };
  for (const NodeKey& u1 : order) {
    for (int ei : incident[u1]) {
      Edge& e = edges[static_cast<size_t>(ei)];
      double w = edge_emd(e);
      if (w <= config_.theta) continue;
      ++result.edges_evaluated;
      AttrId rhs = sigma_[static_cast<size_t>(e.a.ofd)].rhs;
      SenseId sa = sense_of(e.a);
      SenseId sb = sense_of(e.b);
      ValueHistogram freq = ClassFrequencies(rel_, e.overlap, rhs);

      // Option 1: ontology repair — add every outlier to its sense.
      int64_t c_ont = static_cast<int64_t>(Outliers(index_, freq, sa).size()) +
                      static_cast<int64_t>(Outliers(index_, freq, sb).size());

      // Option 2: data repair — update outlier tuples to a value covered by
      // both senses (infeasible when the senses share no value).
      int64_t c_data = OutlierTuples(index_, freq, sa) +
                       OutlierTuples(index_, freq, sb);
      bool data_feasible = false;
      if (sa != kInvalidSense && sb != kInvalidSense) {
        for (ValueId v : index_.SenseValues(sa)) {
          if (index_.SenseContains(sb, v)) {
            data_feasible = true;
            break;
          }
        }
      }

      // Option 3: sense re-assignment, either direction, costed over the
      // *whole* class (delta of uncovered tuples).
      const auto& class_a =
          result.partitions[static_cast<size_t>(e.a.ofd)]
              .classes()[static_cast<size_t>(e.a.cls)];
      const auto& class_b =
          result.partitions[static_cast<size_t>(e.b.ofd)]
              .classes()[static_cast<size_t>(e.b.cls)];
      ValueHistogram freq_a = ClassFrequencies(rel_, class_a, rhs);
      ValueHistogram freq_b = ClassFrequencies(rel_, class_b, rhs);
      int64_t c_reassign_b = OutlierTuples(index_, freq_b, sa) -
                             OutlierTuples(index_, freq_b, sb);
      int64_t c_reassign_a = OutlierTuples(index_, freq_a, sb) -
                             OutlierTuples(index_, freq_a, sa);

      // Pick the locally cheapest option; only re-assignments are enacted
      // here (ontology/data repairs belong to the repair phase).
      int64_t best = c_ont;
      int option = 1;
      if (data_feasible && c_data < best) {
        best = c_data;
        option = 2;
      }
      if (sa != kInvalidSense && c_reassign_b < best) {
        best = c_reassign_b;
        option = 3;
      }
      if (sb != kInvalidSense && c_reassign_a < best) {
        best = c_reassign_a;
        option = 4;
      }
      if (option == 3 || option == 4) {
        ClassRef target = option == 3 ? e.b : e.a;
        SenseId new_sense = option == 3 ? sa : sb;
        SenseId old_sense = sense_of(target);
        sense_of(target) = new_sense;
        double w_new = edge_emd(e);
        if (w_new < w) {
          ++result.refinements;
        } else {
          sense_of(target) = old_sense;  // Keep the initial sense.
        }
      }
    }
  }
  if (metrics != nullptr) {
    metrics->Add("clean.assign.refinements", result.refinements);
    metrics->Add("clean.assign.edges_evaluated", result.edges_evaluated);
  }
  return result;
}

}  // namespace fastofd
