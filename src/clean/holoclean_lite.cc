#include "clean/holoclean_lite.h"

#include <unordered_map>
#include <vector>

#include "ontology/synonym_index.h"
#include "relation/partition.h"

namespace fastofd {

HoloCleanLiteResult HoloCleanLite(const Relation& rel, const Ontology& dictionary,
                                  const SigmaSet& sigma, HoloCleanLiteConfig config) {
  HoloCleanLiteResult result{rel, 0, 0};
  Relation& out = result.repaired;
  SynonymIndex dict_index(dictionary, rel.dict());

  // Global frequency prior per attribute.
  std::vector<std::unordered_map<ValueId, int64_t>> prior(
      static_cast<size_t>(rel.num_attrs()));
  for (int a = 0; a < rel.num_attrs(); ++a) {
    for (RowId r = 0; r < rel.num_rows(); ++r) ++prior[static_cast<size_t>(a)][rel.At(r, a)];
  }

  for (const Ofd& ofd : sigma) {
    StrippedPartition partition = StrippedPartition::BuildForSet(out, ofd.lhs);
    for (const auto& rows : partition.classes()) {
      // Denial-constraint violation: syntactically differing consequents.
      std::unordered_map<ValueId, int64_t> cooc;
      for (RowId r : rows) ++cooc[out.At(r, ofd.rhs)];
      if (cooc.size() <= 1) continue;  // Clean under equality semantics.
      result.cells_flagged += static_cast<int64_t>(rows.size());

      // Score every candidate value occurring with this antecedent class:
      // P(v) ∝ (cooc + smoothing) · prior · dictionary boost.
      std::unordered_map<ValueId, double> scores;
      ValueId best = kInvalidValue;
      double best_score = -1.0;
      for (const auto& [v, count] : cooc) {
        double score = (static_cast<double>(count) + config.smoothing) *
                       static_cast<double>(prior[static_cast<size_t>(ofd.rhs)][v]);
        if (dict_index.InOntology(v)) score *= config.dictionary_boost;
        scores[v] = score;
        if (score > best_score || (score == best_score && v < best)) {
          best_score = score;
          best = v;
        }
      }
      // Repair only low-confidence deviations: the most probable value must
      // beat the current value by the margin (posterior thresholding).
      for (RowId r : rows) {
        ValueId v = out.At(r, ofd.rhs);
        if (v != best && best_score >= config.repair_margin * scores[v]) {
          out.SetId(r, ofd.rhs, best);
          ++result.cells_changed;
        }
      }
    }
  }
  return result;
}

}  // namespace fastofd
