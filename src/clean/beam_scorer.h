// Incremental, side-effect-free scoring for the OFDClean ontology-repair
// beam search (paper §7.1).
//
// A beam node is a set of candidate insertions (sense, value); its score is
// the number of data repairs RepairData would still need with those
// insertions applied. Three observations make scoring cheap and parallel:
//
//   1. Per-class independence. With each OFD repairing its own consequent
//      column and classes of one partition disjoint, the repair count
//      decomposes into a sum of per-class costs, each a function of only the
//      class's rows, its assigned sense λ, and the synonym view.
//   2. Locality of insertions. Adding (λ, v) to the ontology can change the
//      cost of class x only when λ_x = λ and v occurs among x's consequent
//      values (it flips those occurrences from uncovered to covered; the
//      covered set of any other class is untouched). So each candidate
//      carries the precomputed list of classes it can affect, and a node is
//      re-scored over the union of its picks' lists: the memoized level-0
//      cost stands in for every unaffected class.
//   3. No shared mutable state. Each node layers its insertions over the
//      shared base index with a SynonymIndexOverlay instead of
//      AddValue/RemoveValue, so a level's expansions can be scored
//      concurrently with ThreadPool::ParallelFor.
//
// ScoreFull (a fresh pass over every class) and ScoreIncremental compute the
// same function; audit mode additionally cross-checks both against a
// from-scratch RepairData on a materialized index copy.

#ifndef FASTOFD_CLEAN_BEAM_SCORER_H_
#define FASTOFD_CLEAN_BEAM_SCORER_H_

#include <cstdint>
#include <vector>

#include "clean/repair.h"
#include "clean/sense_assignment.h"
#include "common/status.h"
#include "ofd/ofd.h"
#include "ontology/synonym_index.h"
#include "relation/relation.h"

namespace fastofd {

class ThreadPool;  // exec/thread_pool.h

/// Scores ontology-repair beam nodes against a fixed sense assignment.
/// Construction memoizes the level-0 (no insertions) cost of every class;
/// const thereafter, so one instance is safely shared by concurrent node
/// evaluations.
class BeamScorer {
 public:
  /// Memoizes per-class level-0 repair costs (on `pool` when provided; the
  /// memo is byte-identical for any thread count).
  BeamScorer(const Relation& rel, const SynonymIndex& index, const SigmaSet& sigma,
             const SenseAssignmentResult& assignment, ThreadPool* pool = nullptr);

  /// Registers the candidate set. `affected[i]` lists the flattened class
  /// indices (OFDs in Σ order, classes in partition order) whose cost can
  /// change when candidates[i] is inserted — the classes whose assigned
  /// sense matches and whose consequent rows contain the value. Lists must
  /// be ascending (the collection pass produces them that way).
  void SetCandidates(std::vector<OntologyAddition> candidates,
                     std::vector<std::vector<uint32_t>> affected);

  struct NodeScore {
    /// Data repairs still required with the node's insertions applied.
    int64_t data_changes = 0;
    /// Classes whose cost was recomputed for this node.
    int64_t classes_rescored = 0;
  };

  /// Reusable per-worker scoring state: the overlay the node's insertions
  /// are layered into and the affected-class union buffer. One instance per
  /// worker, reused across every node that worker scores in a batch,
  /// eliminates the per-node overlay/vector allocations that dominated
  /// fine-grained expansion (the old one-node-per-dispatch shape). Scores
  /// are independent of which scratch (or how warm) is used.
  class ScoreScratch {
   public:
    explicit ScoreScratch(const SynonymIndex& base) : overlay_(base) {}

   private:
    friend class BeamScorer;
    SynonymIndexOverlay overlay_;
    std::vector<uint32_t> affected_;
  };

  /// Scores a node (candidate indices into the registered set) by
  /// recomputing every class under the node's overlay.
  NodeScore ScoreFull(const std::vector<int>& picks) const;
  NodeScore ScoreFull(const std::vector<int>& picks, ScoreScratch* scratch) const;

  /// Scores a node by recomputing only the classes its picks can affect;
  /// returns exactly ScoreFull's data_changes.
  NodeScore ScoreIncremental(const std::vector<int>& picks) const;
  NodeScore ScoreIncremental(const std::vector<int>& picks,
                             ScoreScratch* scratch) const;

  /// Σ of the memoized level-0 per-class costs (== ScoreFull({})).
  int64_t base_cost() const { return base_cost_; }

  /// Flattened class count across all OFDs.
  size_t num_classes() const { return items_.size(); }

  /// Deep audit for one scored node: the overlay invariants hold
  /// (AuditSynonymIndexOverlay), incremental and full scoring agree on
  /// `data_changes`, and — when the instance is small enough
  /// (audit::kDeepAuditMaxRows) and the OFDs' attribute sets are disjoint
  /// enough for per-class independence (distinct consequents, no
  /// antecedent/consequent overlap) — a from-scratch RepairData over a
  /// materialized index copy reports the same repair count.
  Status AuditNodeScore(const std::vector<int>& picks, int64_t data_changes) const;

 private:
  struct Item {
    int ofd = 0;
    int cls = 0;
  };

  /// Repair cost of one class under the given view (null = base index).
  int64_t ClassCost(size_t item, const SynonymIndexOverlay* overlay) const;

  SynonymIndexOverlay MakeOverlay(const std::vector<int>& picks) const;

  const Relation& rel_;
  const SynonymIndex& index_;
  const SigmaSet& sigma_;
  const SenseAssignmentResult& assignment_;
  std::vector<Item> items_;
  std::vector<int64_t> level0_cost_;
  int64_t base_cost_ = 0;
  std::vector<OntologyAddition> candidates_;
  std::vector<std::vector<uint32_t>> affected_;
};

}  // namespace fastofd

#endif  // FASTOFD_CLEAN_BEAM_SCORER_H_
