#include "clean/emd.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace fastofd {

double CategoricalEmd(const ValueHistogram& p, const ValueHistogram& q) {
  int64_t l1 = 0;
  int64_t mass_p = 0, mass_q = 0;
  for (const auto& [v, c] : p) {
    mass_p += c;
    auto it = q.find(v);
    l1 += std::abs(c - (it == q.end() ? 0 : it->second));
  }
  for (const auto& [v, c] : q) {
    mass_q += c;
    if (!p.count(v)) l1 += c;
  }
  int64_t diff = std::abs(mass_p - mass_q);
  // Matched mass moves cost (l1 - diff) / 2; surplus mass costs diff.
  return static_cast<double>(l1 - diff) / 2.0 + static_cast<double>(diff);
}

double OrderedEmd(const std::vector<double>& p, const std::vector<double>& q) {
  FASTOFD_CHECK(p.size() == q.size());
  double carry = 0.0;
  double work = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    carry += p[i] - q[i];
    work += std::fabs(carry);
  }
  return work;
}

}  // namespace fastofd
