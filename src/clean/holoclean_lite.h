// HoloCleanLite: a compact stand-in for HoloClean (Rekatsinas et al. 2017)
// used as the comparative repair baseline (paper Exp-14).
//
// It consumes the same three signals the paper feeds HoloClean:
//   (1) integrity constraints — the OFDs read as plain FDs (denial
//       constraints over equality), which is exactly what HoloClean gets
//       since it has no notion of senses;
//   (2) an external dictionary — the set of ontology values;
//   (3) statistical profiles — value frequencies and antecedent
//       co-occurrence counts from the (mostly clean) data.
//
// Cells flagged by constraint violations get candidate repairs from the
// values co-occurring with the same antecedent; candidates are scored by a
// naive-Bayes-style product of co-occurrence likelihood, global frequency
// prior, and a dictionary-membership boost, and the argmax is applied.
// Because equality is its only notion of consistency, it rewrites
// legitimate synonyms to the majority value — the false positives OFDClean
// avoids, which is the effect Exp-14 measures.

#ifndef FASTOFD_CLEAN_HOLOCLEAN_LITE_H_
#define FASTOFD_CLEAN_HOLOCLEAN_LITE_H_

#include <cstdint>

#include "ofd/ofd.h"
#include "ontology/ontology.h"
#include "relation/relation.h"

namespace fastofd {

/// Tunables for the baseline.
struct HoloCleanLiteConfig {
  /// Multiplicative boost for candidates found in the external dictionary.
  double dictionary_boost = 2.0;
  /// Additive smoothing for the co-occurrence likelihood.
  double smoothing = 0.5;
  /// Confidence margin: a flagged cell is repaired only when the best
  /// candidate's score exceeds the current value's score by this factor
  /// (models HoloClean's posterior thresholding — frequent co-occurring
  /// values are kept).
  double repair_margin = 4.0;
};

/// Result of a HoloCleanLite run.
struct HoloCleanLiteResult {
  Relation repaired;
  int64_t cells_flagged = 0;
  int64_t cells_changed = 0;
};

/// Runs the baseline: violation detection from Σ-as-FDs, probabilistic
/// repair from co-occurrence + prior + dictionary signals.
HoloCleanLiteResult HoloCleanLite(const Relation& rel, const Ontology& dictionary,
                                  const SigmaSet& sigma,
                                  HoloCleanLiteConfig config = {});

}  // namespace fastofd

#endif  // FASTOFD_CLEAN_HOLOCLEAN_LITE_H_
