// Sense assignment for OFDClean (paper §6, Algorithms 5–7).
//
// Every equivalence class x of every OFD X ->_syn A gets an interpretation
// λ_x. The initial assignment greedily picks, per class, a sense covering as
// many of the class's (MAD-ranked) values as possible, breaking ties by
// tuple coverage. Refinement then models interactions between classes of
// OFDs that share a consequent attribute: a dependency graph with EMD edge
// weights is walked in BFS order (largest summed EMD first), and for each
// heavy edge the three alignment options — add outliers to the ontology,
// repair outlier tuples, or re-assign one class's sense — are costed; a
// re-assignment is kept only when it actually lowers the edge's EMD.

#ifndef FASTOFD_CLEAN_SENSE_ASSIGNMENT_H_
#define FASTOFD_CLEAN_SENSE_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "ofd/ofd.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace fastofd {

class MetricsRegistry;  // common/metrics.h
class ThreadPool;       // exec/thread_pool.h

/// How class values are ranked before the prefix-intersection search of
/// Initial_Assignment (Algorithm 5).
enum class ValueOrdering {
  /// Deviation of each value's frequency from the class median, descending —
  /// the paper's MAD-based robust ordering (outliers sink to the back).
  kMadDeviation,
  /// Raw frequency, descending (the ablation baseline: sensitive to bursts
  /// of erroneous values).
  kFrequency,
};

/// Tunables for sense assignment.
struct SenseAssignConfig {
  /// EMD threshold θ: edges lighter than this are not refined.
  double theta = 5.0;
  /// Value-ranking strategy for the initial assignment.
  ValueOrdering ordering = ValueOrdering::kMadDeviation;
  /// Disable the dependency-graph local refinement (ablation).
  bool refine = true;
  /// Shared execution pool for the per-class initial assignment and the EMD
  /// edge weights (null = serial). Output is identical either way: parallel
  /// stages write into pre-sized slots and results are applied in a fixed
  /// order.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (`clean.assign.*` timers and counters).
  MetricsRegistry* metrics = nullptr;
  /// Optional shared partition cache for Π*_X (shared with verify/repair).
  PartitionCache* partitions = nullptr;
};

/// A class within the assignment: (OFD index, class index in Π*_X).
struct ClassRef {
  int ofd = 0;
  int cls = 0;
};

/// Result of sense assignment.
struct SenseAssignmentResult {
  /// Π*_X per OFD in Σ (classes align with `senses`).
  std::vector<StrippedPartition> partitions;
  /// Assigned sense per OFD per class; kInvalidSense when no sense covers
  /// any value of the class (all values outside the ontology).
  std::vector<std::vector<SenseId>> senses;
  /// Number of sense re-assignments performed during refinement.
  int64_t refinements = 0;
  /// Number of dependency-graph edges evaluated.
  int64_t edges_evaluated = 0;
};

/// Computes sense assignments for all equivalence classes of Σ.
class SenseSelector {
 public:
  SenseSelector(const Relation& rel, const SynonymIndex& index, const SigmaSet& sigma,
                SenseAssignConfig config = {});

  /// Runs Initial_Assignment for every class, then Local_Refinement over
  /// the dependency graph.
  SenseAssignmentResult Run();

  /// Initial_Assignment (Algorithm 5) for one class: ranked-value prefix
  /// intersection, ties broken by tuple coverage. Exposed for tests.
  static SenseId InitialAssignment(const Relation& rel, const SynonymIndex& index,
                                   RowSpan rows, AttrId rhs,
                                   ValueOrdering ordering = ValueOrdering::kMadDeviation);

 private:
  const Relation& rel_;
  const SynonymIndex& index_;
  const SigmaSet& sigma_;
  SenseAssignConfig config_;
};

}  // namespace fastofd

#endif  // FASTOFD_CLEAN_SENSE_ASSIGNMENT_H_
