// Earth Mover's Distance between value distributions (paper §6.2.2).
//
// OFDClean models the tuples shared by two equivalence classes as
// distributions over canonical values and uses EMD to rank which class
// pairs to refine. For categorical histograms with unit ground distance the
// EMD of two equal-mass histograms is half the L1 distance; for unequal
// masses the surplus also costs one move per unit. A classic 1-D
// ordered-bin EMD is provided as well (and tested against the closed form).

#ifndef FASTOFD_CLEAN_EMD_H_
#define FASTOFD_CLEAN_EMD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/dictionary.h"

namespace fastofd {

/// Histogram over categorical values (counts).
using ValueHistogram = std::unordered_map<ValueId, int64_t>;

/// EMD between two categorical histograms with unit cross-bin distance:
/// moves = (L1 distance + |mass difference|) / 2; with equal masses this is
/// exactly half the L1 distance.
double CategoricalEmd(const ValueHistogram& p, const ValueHistogram& q);

/// EMD between 1-D histograms over ordered bins with |i-j| ground distance
/// (the prefix-sum formula). The two histograms must have the same number
/// of bins; masses may differ (the surplus is charged one move per unit).
double OrderedEmd(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace fastofd

#endif  // FASTOFD_CLEAN_EMD_H_
