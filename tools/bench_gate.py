#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly collected benchmark JSON file (scripts/collect_bench.sh
output) against a committed baseline and fails when:

  * a table present in the baseline is missing from the fresh run,
  * a table's row count changed (shape drift — refresh the baseline),
  * a time-like cell regressed beyond tolerance,
  * a `micro_partition` intersection op (product / refine / error) reports
    a flat-vs-legacy speedup below --speedup-min, or
  * a `clean_beam` row reports a full-vs-incremental node-scoring speedup
    below --clean-speedup-min, or is not byte-identical across modes, or
  * a `serve_closed_loop` row produced on capable hardware (hw >= 8)
    rejects more than --serve-reject-max percent of its requests, or its
    p99 exceeds --serve-p99-max-ms on a drivable row (clients <= 4*hw), or
  * a thread-scaling floor is violated on capable hardware: at 8+ threads
    the `ext_parallel` products-phase speedup (`products_x`) must reach
    --ext-products-speedup-min and the `clean_threads` beam speedup must
    reach --clean-threads-speedup-min — enforced only on rows whose `hw`
    column (the producing machine's hardware concurrency) is >= the row's
    thread count, since a smaller machine physically cannot scale there.

Time-like columns (names containing "ms", "(s)", "seconds", or ending in
"_s") are machine-dependent, so they get a generous relative tolerance with
an absolute slack floor for sub-millisecond cells: a cell passes if
    fresh <= base * (1 + rel_tol)   OR   fresh - base <= abs_slack.
The speedup columns of `micro_partition` and `clean_beam` are same-process
ratios and therefore machine-independent; they are gated hard, with no
tolerance. The thread-scaling floors are also same-process ratios, but they
additionally depend on physical core count, hence the hw >= threads
condition. The `identical` columns (clean tables and `ext_parallel`) assert
determinism — parallel search reproduces the serial reference byte for
byte — and must read "yes" everywhere, on every machine.

Usage:
    tools/bench_gate.py --baseline BENCH_core.json --fresh out/BENCH_core.json
    tools/bench_gate.py --self-test
"""

import argparse
import json
import re
import sys

TIME_COLUMN_RE = re.compile(r"ms|\(s\)|\bseconds\b|_s$")

# Ops in the micro_partition table whose speedup ratio is gated hard.
GATED_INTERSECTION_OPS = ("product", "refine", "error")


def is_time_column(name):
    return bool(TIME_COLUMN_RE.search(name))


def as_number(cell):
    """Returns the cell as float, or None for non-numeric cells like "-"."""
    if isinstance(cell, bool):
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    try:
        return float(str(cell).rstrip("x"))
    except ValueError:
        return None


def compare_tables(baseline, fresh, rel_tol, abs_slack, speedup_min,
                   clean_speedup_min=2.0, ext_products_speedup_min=4.0,
                   clean_threads_speedup_min=3.0, serve_reject_max=1.0,
                   serve_p99_max_ms=10.0):
    """Returns a list of human-readable failure strings (empty == pass)."""
    failures = []
    fresh_by_name = {t["bench"]: t for t in fresh}
    for base_table in baseline:
        name = base_table["bench"]
        if name not in fresh_by_name:
            failures.append(f"{name}: table missing from fresh run")
            continue
        fresh_table = fresh_by_name[name]
        if fresh_table["columns"] != base_table["columns"]:
            failures.append(
                f"{name}: columns changed "
                f"({base_table['columns']} -> {fresh_table['columns']}); "
                "refresh the committed baseline")
            continue
        if len(fresh_table["rows"]) != len(base_table["rows"]):
            failures.append(
                f"{name}: row count changed "
                f"({len(base_table['rows'])} -> {len(fresh_table['rows'])}); "
                "refresh the committed baseline")
            continue
        columns = base_table["columns"]
        time_cols = [i for i, c in enumerate(columns) if is_time_column(c)]
        for row_idx, (base_row, fresh_row) in enumerate(
                zip(base_table["rows"], fresh_table["rows"])):
            label = f"{name} row {row_idx} ({base_row[0]})"
            for col in time_cols:
                base_v = as_number(base_row[col])
                fresh_v = as_number(fresh_row[col])
                if base_v is None or fresh_v is None:
                    continue  # "-" cells (skipped configurations)
                if (fresh_v > base_v * (1.0 + rel_tol)
                        and fresh_v - base_v > abs_slack):
                    failures.append(
                        f"{label}: {columns[col]} regressed "
                        f"{base_v:g} -> {fresh_v:g} "
                        f"(> +{rel_tol:.0%} and > +{abs_slack:g})")
        if name == "micro_partition":
            failures.extend(
                check_micro_partition(fresh_table, speedup_min))
        if name in ("clean_beam", "clean_threads"):
            failures.extend(
                check_clean_table(fresh_table, clean_speedup_min))
        if name == "ext_parallel":
            failures.extend(check_identical_rows(fresh_table))
            failures.extend(check_scaling_floor(
                fresh_table, "products_x", ext_products_speedup_min,
                "products-phase speedup"))
        if name == "clean_threads":
            failures.extend(check_scaling_floor(
                fresh_table, "speedup", clean_threads_speedup_min,
                "beam thread-scaling speedup"))
        if name == "serve_closed_loop":
            failures.extend(check_serve_closed_loop(
                fresh_table, serve_reject_max, serve_p99_max_ms))
    base_names = {t["bench"] for t in baseline}
    for extra in [n for n in fresh_by_name if n not in base_names]:
        print(f"note: fresh table {extra!r} has no committed baseline",
              file=sys.stderr)
    return failures


def check_micro_partition(table, speedup_min):
    """Hard gate: flat kernels must beat the legacy layout on the
    intersection ops by at least speedup_min. The ratio is computed in one
    process on one machine, so no tolerance applies."""
    failures = []
    columns = table["columns"]
    op_col = columns.index("op")
    speedup_col = columns.index("speedup")
    rows_col = columns.index("rows")
    for row in table["rows"]:
        op = row[op_col]
        if op not in GATED_INTERSECTION_OPS:
            continue
        speedup = as_number(row[speedup_col])
        if speedup is None or speedup < speedup_min:
            failures.append(
                f"micro_partition: op {op!r} at {row[rows_col]} rows has "
                f"flat-vs-legacy speedup {row[speedup_col]} "
                f"(gate requires >= {speedup_min:g})")
    return failures


def check_identical_rows(table):
    """Every row of a table with an `identical` column must read "yes":
    determinism does not depend on the machine, so this is unconditional."""
    failures = []
    columns = table["columns"]
    if "identical" not in columns:
        print(f"note: {table['bench']} has no 'identical' column; "
              "determinism check skipped (refresh the bench binary)",
              file=sys.stderr)
        return failures
    identical_col = columns.index("identical")
    for row in table["rows"]:
        if row[identical_col] != "yes":
            failures.append(
                f"{table['bench']}: row {row[0]} is not byte-identical to "
                f"the serial reference (identical={row[identical_col]!r})")
    return failures


def check_scaling_floor(table, value_col_name, floor, what):
    """Hard gate for thread-scaling floors, conditioned on hardware: rows
    with 8+ threads must reach `floor`, but only when the machine that
    produced the run reports hw >= threads — a scaling ratio physically
    cannot materialize on fewer cores than the sweep point uses (a
    single-CPU runner measures pure overhead). Rows skipped here are still
    covered by the unconditional identical checks."""
    failures = []
    columns = table["columns"]
    if "hw" not in columns:
        print(f"note: {table['bench']} has no 'hw' column; scaling floor "
              "skipped (refresh the bench binary)", file=sys.stderr)
        return failures
    threads_col = columns.index("threads")
    hw_col = columns.index("hw")
    value_col = columns.index(value_col_name)
    for row in table["rows"]:
        threads = as_number(row[threads_col])
        hw = as_number(row[hw_col])
        if threads is None or threads < 8:
            continue
        if hw is None or hw < threads:
            continue  # This machine cannot scale to this sweep point.
        value = as_number(row[value_col])
        if value is None or value < floor:
            failures.append(
                f"{table['bench']}: {what} at {int(threads)} threads is "
                f"{row[value_col]} (gate requires >= {floor:g} when "
                f"hw >= threads; hw={int(hw)})")
    return failures


def check_serve_closed_loop(table, reject_max_pct, p99_max_ms):
    """Hard gates for the service closed-loop sweep, conditioned on hardware
    (the `hw` column is the producing machine's hardware concurrency):

      * rejection rate: on capable hardware (hw >= 8) the sharded executors
        with bounded waiting must answer virtually everything — the 503 rate
        (rejected_503 / sent) must stay under reject_max_pct on every row;
      * tail latency: p99_ms must stay under p99_max_ms, but only on rows
        the machine can actually drive concurrently (clients <= 4 * hw) —
        a closed-loop client count far beyond the core count measures queue
        depth, not service latency.

    Rows from small machines (dev laptops, 1-CPU runners) are skipped
    entirely; the regular row-wise time comparison still applies to them."""
    failures = []
    columns = table["columns"]
    if "hw" not in columns:
        print(f"note: {table['bench']} has no 'hw' column; serve floors "
              "skipped (refresh the bench binary)", file=sys.stderr)
        return failures
    clients_col = columns.index("clients")
    hw_col = columns.index("hw")
    sent_col = columns.index("sent")
    rejected_col = columns.index("rejected_503")
    p99_col = columns.index("p99_ms")
    for row in table["rows"]:
        hw = as_number(row[hw_col])
        if hw is None or hw < 8:
            continue  # Small machine: floors do not arm.
        clients = as_number(row[clients_col])
        sent = as_number(row[sent_col])
        rejected = as_number(row[rejected_col])
        if sent and rejected is not None:
            reject_pct = rejected / sent * 100.0
            if reject_pct > reject_max_pct:
                failures.append(
                    f"serve_closed_loop: {int(clients)} clients rejected "
                    f"{int(rejected)}/{int(sent)} requests "
                    f"({reject_pct:.2f}%; gate requires <= "
                    f"{reject_max_pct:g}% when hw >= 8)")
        if clients is not None and clients > 4 * hw:
            continue  # Oversubscribed point: p99 measures queueing, not serving.
        p99 = as_number(row[p99_col])
        if p99 is None or p99 > p99_max_ms:
            failures.append(
                f"serve_closed_loop: {int(clients)} clients has p99 "
                f"{row[p99_col]} ms (gate requires <= {p99_max_ms:g} ms "
                f"when hw >= 8 and clients <= 4*hw; hw={int(hw)})")
    return failures


def check_clean_table(table, clean_speedup_min):
    """Hard gates for the OFDClean beam-search tables: every row must be
    byte-identical to the serial full-rescore reference, and the `clean_beam`
    full-vs-incremental speedup (a same-process ratio) must meet the
    minimum. The `clean_threads` speedup floor is enforced separately by
    check_scaling_floor (it needs capable hardware, hw >= threads)."""
    failures = []
    name = table["bench"]
    columns = table["columns"]
    identical_col = columns.index("identical")
    speedup_col = columns.index("speedup")
    for row in table["rows"]:
        if row[identical_col] != "yes":
            failures.append(
                f"{name}: row {row[0]} is not byte-identical to the serial "
                f"reference (identical={row[identical_col]!r})")
        if name != "clean_beam":
            continue
        speedup = as_number(row[speedup_col])
        if speedup is None or speedup < clean_speedup_min:
            failures.append(
                f"clean_beam: {row[0]} rows has full-vs-incremental speedup "
                f"{row[speedup_col]} (gate requires >= {clean_speedup_min:g})")
    return failures


def run_gate(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)
    failures = compare_tables(baseline, fresh, args.rel_tol, args.abs_slack,
                              args.speedup_min, args.clean_speedup_min,
                              args.ext_products_speedup_min,
                              args.clean_threads_speedup_min,
                              args.serve_reject_max, args.serve_p99_max_ms)
    if failures:
        print(f"bench gate FAILED ({len(failures)} problem(s)) comparing "
              f"{args.fresh} against {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench gate passed: {args.fresh} vs {args.baseline} "
          f"({len(baseline)} tables)")
    return 0


def self_test():
    """Exercises the pass path and each failure mode on synthetic tables."""
    baseline = [
        {"bench": "micro_partition",
         "columns": ["op", "rows", "legacy(ms)", "flat(ms)", "speedup"],
         "rows": [["build", 20000, 0.10, 0.04, 2.50],
                  ["product", 20000, 0.75, 0.26, 2.88]]},
        {"bench": "serve_update_latency",
         "columns": ["N", "update(ms)", "full_reverify(ms)", "speedup"],
         "rows": [[5000, 0.014, 0.33, 23.0]]},
        {"bench": "clean_beam",
         "columns": ["rows", "cands", "nodes", "full(ms)", "incremental(ms)",
                     "speedup", "identical"],
         "rows": [[10000, 450, 1380, 420.0, 150.0, 2.80, "yes"]]},
        {"bench": "clean_threads",
         "columns": ["threads", "hw", "rows", "beam(ms)", "speedup",
                     "identical"],
         "rows": [[1, 16, 10000, 150.0, 1.00, "yes"],
                  [8, 16, 10000, 45.0, 3.33, "yes"]]},
        {"bench": "ext_parallel",
         "columns": ["threads", "hw", "seconds", "speedup", "validate_s",
                     "validate_x", "products_s", "products_x", "identical"],
         "rows": [[1, 16, 0.80, 1.00, 0.10, 1.00, 0.70, 1.00, "yes"],
                  [8, 16, 0.15, 5.33, 0.02, 5.00, 0.13, 5.38, "yes"]]},
        {"bench": "serve_closed_loop",
         "columns": ["clients", "queue_depth", "shards", "hw", "sent", "ok",
                     "rejected_503", "p50_ms", "p95_ms", "p99_ms"],
         "rows": [[32, 64, 8, 16, 1600, 1600, 0, 0.9, 2.1, 3.2],
                  [256, 64, 8, 16, 12800, 12795, 5, 4.0, 7.5, 9.8]]},
    ]

    def gate(fresh):
        return compare_tables(baseline, fresh, rel_tol=0.5, abs_slack=0.25,
                              speedup_min=2.0, clean_speedup_min=2.0,
                              ext_products_speedup_min=4.0,
                              clean_threads_speedup_min=3.0,
                              serve_reject_max=1.0, serve_p99_max_ms=10.0)

    def clone(tables):
        return json.loads(json.dumps(tables))

    checks = []

    # 1. Identical run passes.
    checks.append(("identical run passes", gate(clone(baseline)) == []))

    # 2. A regressed time cell (beyond rel tolerance and abs slack) fails.
    regressed = clone(baseline)
    regressed[1]["rows"][0][2] = 5.0  # full_reverify(ms): 0.33 -> 5.0
    failures = gate(regressed)
    checks.append(("regressed time cell fails",
                   len(failures) == 1 and "full_reverify" in failures[0]))

    # 3. Noise within tolerance passes (big relative jump, tiny absolute).
    noisy = clone(baseline)
    noisy[1]["rows"][0][1] = 0.025  # update(ms): 0.014 -> 0.025 (< abs slack)
    checks.append(("sub-slack noise passes", gate(noisy) == []))

    # 4. Speedup below the hard minimum fails even with fast absolute times.
    slow_ratio = clone(baseline)
    slow_ratio[0]["rows"][1][2] = 0.30  # legacy(ms)
    slow_ratio[0]["rows"][1][3] = 0.26  # flat(ms): within tolerance
    slow_ratio[0]["rows"][1][4] = 1.15  # speedup < 2.0
    failures = gate(slow_ratio)
    checks.append(("speedup below minimum fails",
                   len(failures) == 1 and "speedup 1.15" in failures[0]))

    # 5. Build op is not speedup-gated (only the intersection ops are).
    slow_build = clone(baseline)
    slow_build[0]["rows"][0][4] = 1.10  # build speedup < 2.0: allowed
    checks.append(("build op not speedup-gated", gate(slow_build) == []))

    # 6. A clean_beam speedup below the minimum fails.
    slow_clean = clone(baseline)
    slow_clean[2]["rows"][0][5] = 1.40  # clean_beam speedup < 2.0
    failures = gate(slow_clean)
    checks.append(("clean_beam speedup below minimum fails",
                   len(failures) == 1 and "1.4" in failures[0]))

    # 7. A non-identical clean row fails, in either clean table.
    broken_identical = clone(baseline)
    broken_identical[3]["rows"][1][5] = "NO"
    failures = gate(broken_identical)
    checks.append(("non-identical clean row fails",
                   len(failures) == 1 and "byte-identical" in failures[0]))

    # 8. A missing table fails.
    missing = clone(baseline)[1:]
    failures = gate(missing)
    checks.append(("missing table fails",
                   len(failures) == 1 and "missing" in failures[0]))

    # 9. Shape drift (row count change) fails with refresh advice.
    reshaped = clone(baseline)
    reshaped[0]["rows"].append(["error", 20000, 0.73, 0.04, 16.0])
    failures = gate(reshaped)
    checks.append(("row-count drift fails",
                   len(failures) == 1 and "refresh" in failures[0]))

    # 10. Thread-scaling floors on capable hardware (hw >= threads): a
    #     clean_threads beam speedup below 3.0 at 8 threads fails ...
    flat_threads = clone(baseline)
    flat_threads[3]["rows"][1][4] = 2.10  # speedup < 3.0, hw=16
    failures = gate(flat_threads)
    checks.append(("clean_threads floor enforced when hw >= threads",
                   len(failures) == 1 and "beam thread-scaling" in failures[0]
                   and "2.1" in failures[0]))
    #     ... and an ext_parallel products-phase speedup below 4.0 fails.
    flat_products = clone(baseline)
    flat_products[4]["rows"][1][7] = 1.20  # products_x < 4.0, hw=16
    failures = gate(flat_products)
    checks.append(("ext_parallel products floor enforced when hw >= threads",
                   len(failures) == 1 and "products-phase" in failures[0]
                   and "1.2" in failures[0]))

    # 11. The same flat ratios pass on a machine that cannot scale (hw <
    #     threads, e.g. the single-CPU runner): the floor is hardware-
    #     conditional, the identical checks still apply.
    small_machine = clone(baseline)
    for table in (small_machine[3], small_machine[4]):
        for row in table["rows"]:
            row[1] = 1  # hw = 1
    small_machine[3]["rows"][1][4] = 0.81  # clean_threads speedup
    small_machine[4]["rows"][1][7] = 0.98  # ext_parallel products_x
    checks.append(("scaling floors skipped when hw < threads",
                   gate(small_machine) == []))

    # 12. A non-identical ext_parallel row fails on any machine.
    broken_ext = clone(small_machine)
    broken_ext[4]["rows"][1][8] = "NO"
    failures = gate(broken_ext)
    checks.append(("non-identical ext_parallel row fails",
                   len(failures) == 1 and "byte-identical" in failures[0]))

    # 13. Serve floors on capable hardware (hw >= 8): a rejection rate over
    #     the maximum fails even when the latency columns look healthy ...
    rejecting = clone(baseline)
    rejecting[5]["rows"][0][5] = 1280   # ok
    rejecting[5]["rows"][0][6] = 320    # rejected_503: 20% of sent
    failures = gate(rejecting)
    checks.append(("serve rejection rate over maximum fails",
                   len(failures) == 1 and "rejected" in failures[0]
                   and "20.00%" in failures[0]))
    #     ... and a p99 above the floor fails on a drivable row
    #     (clients <= 4*hw).
    slow_tail = clone(baseline)
    slow_tail[5]["rows"][0][9] = 14.0   # p99_ms at 32 clients, hw=16
    failures = gate(slow_tail)
    checks.append(("serve p99 over floor fails on drivable row",
                   any("p99" in f and "14" in f for f in failures)))

    # 14. The oversubscribed row (clients > 4*hw) is exempt from the p99
    #     floor but still rejection-gated.
    slow_oversub = clone(baseline)
    # p99_ms at 256 clients, hw=16: above the 10 ms floor (which does not
    # arm at 256 > 4*16 clients) yet within the row-wise time tolerance.
    slow_oversub[5]["rows"][1][9] = 12.0
    checks.append(("oversubscribed row exempt from p99 floor",
                   gate(slow_oversub) == []))
    rejecting_oversub = clone(baseline)
    rejecting_oversub[5]["rows"][1][5] = 10800
    rejecting_oversub[5]["rows"][1][6] = 2000  # 15.6% rejected
    failures = gate(rejecting_oversub)
    checks.append(("oversubscribed row still rejection-gated",
                   len(failures) == 1 and "rejected" in failures[0]))

    # 15. Small machines (hw < 8, e.g. the dev box or a 4-core hosted
    #     runner) skip both serve floors: the closed loop physically cannot
    #     hit datacenter tails there. Time columns are still diffed row-wise
    #     against the baseline by the generic comparison.
    small_serve = clone(baseline)
    for row in small_serve[5]["rows"]:
        row[3] = 1                        # hw = 1
    small_serve[5]["rows"][0][6] = 500  # heavy rejection: no floor to trip
    checks.append(("serve floors skipped when hw < 8",
                   gate(small_serve) == []))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test FAILED: {failed}")
        return 1
    print(f"self-test passed ({len(checks)} checks)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--fresh", help="freshly collected JSON")
    parser.add_argument("--rel-tol", type=float, default=0.5,
                        help="relative tolerance for time columns "
                             "(default 0.5 = +50%%)")
    parser.add_argument("--abs-slack", type=float, default=0.25,
                        help="absolute slack for time columns, in the "
                             "column's own unit (default 0.25)")
    parser.add_argument("--speedup-min", type=float, default=2.0,
                        help="hard minimum for micro_partition intersection "
                             "op speedups (default 2.0)")
    parser.add_argument("--clean-speedup-min", type=float, default=2.0,
                        help="hard minimum for the clean_beam full-vs-"
                             "incremental node-scoring speedup (default 2.0)")
    parser.add_argument("--ext-products-speedup-min", type=float, default=4.0,
                        help="hard minimum for the ext_parallel products-"
                             "phase speedup at 8+ threads when the run "
                             "machine has hw >= threads (default 4.0)")
    parser.add_argument("--clean-threads-speedup-min", type=float, default=3.0,
                        help="hard minimum for the clean_threads beam "
                             "speedup at 8+ threads when the run machine "
                             "has hw >= threads (default 3.0)")
    parser.add_argument("--serve-reject-max", type=float, default=1.0,
                        help="hard maximum 503 rejection rate (percent) for "
                             "serve_closed_loop rows produced on hw >= 8 "
                             "machines (default 1.0)")
    parser.add_argument("--serve-p99-max-ms", type=float, default=10.0,
                        help="hard maximum p99 latency (ms) for "
                             "serve_closed_loop rows with hw >= 8 and "
                             "clients <= 4*hw (default 10.0)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in negative/positive tests")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required (or --self-test)")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
