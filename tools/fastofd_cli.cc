// fastofd — command-line front end to the library.
//
//   fastofd discover --data t.csv --ontology o.txt [--kappa 0.9] [--inh]
//                    [--max-level L] [--out sigma.txt]
//       Discover the complete minimal set of OFDs; write Σ to --out.
//
//   fastofd verify --data t.csv --ontology o.txt --sigma sigma.txt
//       Check each OFD in Σ; print satisfied/violated and support.
//
//   fastofd clean --data t.csv --ontology o.txt --sigma sigma.txt
//                 [--beam B] [--tau T] [--out repaired.csv]
//                 [--ontology-out repaired_ontology.txt]
//       Run OFDClean; print the Pareto frontier and write the chosen repair.
//
//   fastofd gen --rows N [--senses K] [--err RATE] [--inc RATE]
//               [--out data.csv] [--ontology-out o.txt] [--sigma-out s.txt]
//       Generate a synthetic instance (data + ontology + Σ + ground truth).
//
//   fastofd serve (--socket PATH | --port N) [--shards S] [--queue-depth D]
//                 [--max-parked P] [--deadline-ms MS] [--max-batch B]
//       Run the resident cleaning service (NDJSON over a UNIX-domain or
//       loopback TCP socket; see docs/protocol.md). Drains gracefully on
//       SIGTERM/SIGINT: in-flight requests finish, new ones get 503.
//
//   fastofd client (--socket PATH | --port N) <op> [op flags]
//                  | --json '{"op": ...}'
//       Send one request and print the response line. Op fields come from
//       flags: --session, --data/--ontology/--sigma (load), --row/--attr
//       /--value (update), --out (clean). Exit 0 on ok, 1 otherwise.
//
// Flags common to all subcommands:
//   --threads N        worker threads for the shared execution pool
//                      (default 1; 0 = all hardware threads). Output is
//                      identical for any thread count. `gen` accepts the
//                      flag for symmetry but generation itself is serial.
//   --metrics[=json]   after the run, dump the metrics registry (counters,
//                      gauges, timers — including partition-cache
//                      hit/miss/eviction counts and per-level timers) to
//                      stderr as aligned text, or as JSON with `=json`.
//   --cache-mb M       memory budget for the shared stripped-partition
//                      cache in MiB (default 256; 0 = unbounded). Least
//                      recently used partitions are evicted beyond it.

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "clean/repair.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "datagen/datagen.h"
#include "discovery/fastofd.h"
#include "exec/thread_pool.h"
#include "ofd/sigma_io.h"
#include "ofd/verifier.h"
#include "ontology/ontology.h"
#include "ontology/synonym_index.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace fastofd {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fastofd <discover|verify|clean|gen|serve|client> "
               "[flags]\n"
               "common flags: --threads N, --metrics[=json], --cache-mb M\n"
               "see the header of tools/fastofd_cli.cc for details\n");
  return 2;
}

// Shared execution & instrumentation context, built from the common flags.
struct ExecContext {
  explicit ExecContext(const Flags& flags)
      : pool(ResolveThreads(flags)),
        cache_budget(ResolveCacheBudget(flags)),
        metrics_mode(flags.GetString("metrics", "")) {}

  static int ResolveThreads(const Flags& flags) {
    int threads = static_cast<int>(flags.GetInt("threads", 1));
    return threads <= 0 ? ThreadPool::DefaultThreads() : threads;
  }

  static int64_t ResolveCacheBudget(const Flags& flags) {
    int64_t mb = flags.GetInt("cache-mb", 256);
    return mb <= 0 ? PartitionCache::kUnbounded : mb * (int64_t{1} << 20);
  }

  /// Dumps the registry to stderr if --metrics was given. Scheduler gauges
  /// (exec.worker<NN>.executed/.stolen) are refreshed first, so a scaling
  /// regression is diagnosable straight from --metrics=json output.
  void Report() {
    if (metrics_mode.empty()) return;
    pool.PublishMetrics(&metrics);
    std::string dump =
        metrics_mode == "json" ? metrics.ToJson() + "\n" : metrics.ToText();
    std::fputs(dump.c_str(), stderr);
  }

  MetricsRegistry metrics;
  ThreadPool pool;
  int64_t cache_budget;
  std::string metrics_mode;
};

// Loads --data and --ontology; returns false (after printing) on failure.
bool LoadInputs(const Flags& flags, Relation* rel, Ontology* ontology) {
  std::string data_path = flags.GetString("data", "");
  std::string ont_path = flags.GetString("ontology", "");
  if (data_path.empty() || ont_path.empty()) {
    std::fprintf(stderr, "error: --data and --ontology are required\n");
    return false;
  }
  auto csv = ReadCsvFile(data_path);
  if (!csv.ok()) {
    std::fprintf(stderr, "error: %s\n", csv.status().message().c_str());
    return false;
  }
  auto rel_result = Relation::FromCsv(csv.value());
  if (!rel_result.ok()) {
    std::fprintf(stderr, "error: %s\n", rel_result.status().message().c_str());
    return false;
  }
  *rel = std::move(rel_result).value();
  auto ont = ReadOntologyFile(ont_path);
  if (!ont.ok()) {
    std::fprintf(stderr, "error: %s\n", ont.status().message().c_str());
    return false;
  }
  *ontology = std::move(ont).value();
  return true;
}

int RunDiscover(const Flags& flags) {
  Relation rel;
  Ontology ontology;
  if (!LoadInputs(flags, &rel, &ontology)) return 1;
  ExecContext exec(flags);
  PartitionCache cache(rel, exec.cache_budget, &exec.metrics);
  SynonymIndex index(ontology, rel.dict());
  FastOfdConfig config;
  config.min_support = flags.GetDouble("kappa", 1.0);
  config.max_level = static_cast<int>(flags.GetInt("max-level", 64));
  if (flags.GetBool("inh", false)) config.kind = OfdKind::kInheritance;
  config.theta = static_cast<int>(flags.GetInt("theta", 2));
  config.pool = &exec.pool;
  config.metrics = &exec.metrics;
  config.partitions = &cache;
  FastOfdResult result =
      FastOfd(rel, index, config, config.kind == OfdKind::kInheritance
                                      ? &ontology
                                      : nullptr)
          .Discover();
  exec.Report();
  std::fprintf(stderr, "%zu minimal OFDs (%lld candidates checked)\n",
               result.ofds.size(),
               static_cast<long long>(result.candidates_checked));
  std::string text = WriteSigma(result.ofds, rel.schema());
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
  }
  return 0;
}

int RunVerify(const Flags& flags) {
  Relation rel;
  Ontology ontology;
  if (!LoadInputs(flags, &rel, &ontology)) return 1;
  auto sigma = ReadSigmaFile(flags.GetString("sigma", ""), rel.schema());
  if (!sigma.ok()) {
    std::fprintf(stderr, "error: %s\n", sigma.status().message().c_str());
    return 1;
  }
  ExecContext exec(flags);
  PartitionCache cache(rel, exec.cache_budget, &exec.metrics);
  SynonymIndex index(ontology, rel.dict());
  OfdVerifier verifier(rel, index, &ontology,
                       static_cast<int>(flags.GetInt("theta", 2)));
  const SigmaSet& ofds = sigma.value();

  // Checks of distinct OFDs are independent: compute them on the pool (the
  // partition cache is thread-safe and shares prefixes across OFDs), then
  // print in Σ order so output is identical for any thread count.
  struct Check {
    bool holds = false;
    double support = 0.0;
    SynonymSavings savings;
  };
  std::vector<Check> checks(ofds.size());
  {
    ScopedTimer t(&exec.metrics, "verify.seconds");
    exec.pool.ParallelFor(ofds.size(), [&](size_t i, int) {
      const Ofd& ofd = ofds[i];
      std::shared_ptr<const StrippedPartition> p = cache.Get(ofd.lhs);
      Check& check = checks[i];
      check.holds = verifier.Holds(ofd, *p);
      check.support = ofd.kind == OfdKind::kSynonym ? verifier.Support(ofd, *p)
                                                    : (check.holds ? 1 : 0);
      check.savings = verifier.Savings(ofd, *p);
    });
  }
  int violated = 0;
  for (size_t i = 0; i < ofds.size(); ++i) {
    std::printf("%-40s %-9s support=%.4f\n",
                RenderOfd(ofds[i], rel.schema()).c_str(),
                checks[i].holds ? "satisfied" : "VIOLATED", checks[i].support);
    violated += !checks[i].holds;
    exec.metrics.Add("verify.classes", checks[i].savings.classes);
    exec.metrics.Add("verify.synonym_classes", checks[i].savings.synonym_classes);
    exec.metrics.Add("verify.saved_tuples", checks[i].savings.saved_tuples);
  }
  exec.metrics.Add("verify.ofds_checked", static_cast<int64_t>(ofds.size()));
  exec.metrics.Add("verify.violations", violated);
  exec.Report();
  return violated == 0 ? 0 : 3;
}

int RunClean(const Flags& flags) {
  Relation rel;
  Ontology ontology;
  if (!LoadInputs(flags, &rel, &ontology)) return 1;
  auto sigma = ReadSigmaFile(flags.GetString("sigma", ""), rel.schema());
  if (!sigma.ok()) {
    std::fprintf(stderr, "error: %s\n", sigma.status().message().c_str());
    return 1;
  }
  ExecContext exec(flags);
  PartitionCache cache(rel, exec.cache_budget, &exec.metrics);
  OfdCleanConfig config;
  config.beam_size = static_cast<int>(flags.GetInt("beam", 0));
  config.tau = flags.GetDouble("tau", 0.65);
  config.pool = &exec.pool;
  config.metrics = &exec.metrics;
  config.partitions = &cache;
  OfdClean cleaner(rel, ontology, sigma.value(), config);
  OfdCleanResult result = cleaner.Run();
  exec.Report();

  std::printf("Pareto frontier (ontology insertions, data changes):\n");
  for (const ParetoPoint& p : result.pareto) {
    std::printf("  (%lld, %lld)\n", static_cast<long long>(p.ontology_changes),
                static_cast<long long>(p.data_changes));
  }
  std::printf("chosen: %zu ontology insertions, %lld data changes, %s\n",
              result.best.ontology_additions.size(),
              static_cast<long long>(result.best.data_changes),
              result.best.consistent ? "consistent" : "NOT consistent");
  for (const OntologyAddition& add : result.best.ontology_additions) {
    std::printf("  + '%s' under sense '%s'\n",
                rel.dict().String(add.value).c_str(),
                ontology.sense_name(add.sense).c_str());
    ontology.AddValue(add.sense, rel.dict().String(add.value));
  }

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status s = WriteCsvFile(out, result.best.repaired.ToCsv());
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
  }
  std::string ont_out = flags.GetString("ontology-out", "");
  if (!ont_out.empty()) {
    std::FILE* f = std::fopen(ont_out.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", ont_out.c_str());
      return 1;
    }
    std::string text = WriteOntology(ontology);
    std::fputs(text.c_str(), f);
    std::fclose(f);
  }
  return 0;
}

int RunGen(const Flags& flags) {
  // --threads is accepted for flag symmetry; generation itself is a serial
  // seeded stream (parallelizing it would change the instance).
  ExecContext exec(flags);
  DataGenConfig config;
  config.num_rows = static_cast<int>(flags.GetInt("rows", 1000));
  config.num_antecedents = static_cast<int>(flags.GetInt("antecedents", 2));
  config.num_consequents = static_cast<int>(flags.GetInt("consequents", 2));
  config.num_senses = static_cast<int>(flags.GetInt("senses", 4));
  config.error_rate = flags.GetDouble("err", 0.03);
  config.incompleteness_rate = flags.GetDouble("inc", 0.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  ScopedTimer gen_timer(&exec.metrics, "gen.seconds");
  GeneratedData data = GenerateData(config);
  gen_timer.Stop();
  exec.metrics.Add("gen.rows", data.rel.num_rows());
  exec.metrics.Add("gen.errors", static_cast<int64_t>(data.errors.size()));
  exec.metrics.Add("gen.removed_values",
                   static_cast<int64_t>(data.removed_values.size()));
  std::fprintf(stderr, "generated %d rows, %zu errors, %zu removed values\n",
               data.rel.num_rows(), data.errors.size(),
               data.removed_values.size());
  auto write_text = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return false;
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
  };
  std::string out = flags.GetString("out", "generated.csv");
  if (!WriteCsvFile(out, data.rel.ToCsv()).ok()) return 1;
  if (!write_text(flags.GetString("ontology-out", "generated_ontology.txt"),
                  WriteOntology(data.ontology))) {
    return 1;
  }
  if (!write_text(flags.GetString("sigma-out", "generated_sigma.txt"),
                  WriteSigma(data.sigma, data.rel.schema()))) {
    return 1;
  }
  exec.Report();
  return 0;
}

ServiceServer* g_server = nullptr;

extern "C" void HandleTermSignal(int) {
  // Async-signal-safe: one byte down the server's self-pipe.
  if (g_server != nullptr) g_server->NotifyShutdown();
}

int RunServe(const Flags& flags) {
  ServerConfig config;
  config.unix_socket = flags.GetString("socket", "");
  config.tcp_port = static_cast<int>(flags.GetInt("port", 0));
  if (config.unix_socket.empty() && !flags.Has("port")) {
    std::fprintf(stderr, "error: serve requires --socket PATH or --port N\n");
    return 2;
  }
  config.threads = ExecContext::ResolveThreads(flags);
  config.shards = static_cast<int>(flags.GetInt("shards", 0));
  config.queue_depth = static_cast<int>(flags.GetInt("queue-depth", 64));
  config.max_parked = static_cast<int>(flags.GetInt("max-parked", 1024));
  config.default_deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  config.max_update_batch = static_cast<int>(flags.GetInt("max-batch", 64));
  config.cache_budget_bytes = ExecContext::ResolveCacheBudget(flags);

  MetricsRegistry metrics;
  ServiceServer server(config, &metrics);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleTermSignal);
  std::signal(SIGINT, HandleTermSignal);

  if (!config.unix_socket.empty()) {
    std::printf("listening on %s\n", config.unix_socket.c_str());
  } else {
    std::printf("listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);

  server.Wait();
  g_server = nullptr;
  // Final metrics flush is part of the drain contract.
  std::string mode = flags.GetString("metrics", "text");
  std::string dump = mode == "json" ? metrics.ToJson() + "\n" : metrics.ToText();
  std::fputs(dump.c_str(), stderr);
  std::fprintf(stderr, "drained\n");
  return 0;
}

int RunClient(const Flags& flags, const std::vector<std::string>& positional) {
  Json request;
  std::string raw = flags.GetString("json", "");
  if (!raw.empty()) {
    auto parsed = Json::Parse(raw);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: --json: %s\n",
                   parsed.status().message().c_str());
      return 2;
    }
    request = std::move(parsed).value();
  } else {
    if (positional.empty()) {
      std::fprintf(stderr,
                   "error: client requires an op (ping|load|unload|list|verify|"
                   "discover|clean|update|stats|shutdown) or --json\n");
      return 2;
    }
    request = Json::Object();
    request.Set("id", Json::Int(1));
    request.Set("op", Json::Str(positional[0]));
    // Pass through op fields that are set; the server validates the rest.
    for (const char* key : {"session", "data", "ontology", "sigma", "out",
                            "attr", "value"}) {
      if (flags.Has(key)) request.Set(key, Json::Str(flags.GetString(key, "")));
    }
    for (const char* key : {"row", "beam", "max_level"}) {
      if (flags.Has(key)) request.Set(key, Json::Int(flags.GetInt(key, 0)));
    }
    for (const char* key : {"deadline_ms", "kappa", "tau", "ms"}) {
      if (flags.Has(key)) {
        request.Set(key, Json::Number(flags.GetDouble(key, 0.0)));
      }
    }
  }

  Result<ServiceClient> client =
      flags.Has("socket") ? ServiceClient::ConnectUnix(flags.GetString("socket", ""))
                          : ServiceClient::ConnectTcp(
                                static_cast<int>(flags.GetInt("port", 0)));
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().message().c_str());
    return 1;
  }
  Result<Json> response = client.value().Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().message().c_str());
    return 1;
  }
  std::printf("%s\n", response.value().Dump().c_str());
  if (!response.value().Get("ok").AsBool()) return 1;
  // Mirror the batch CLI: a successful verify of a violated Σ exits 3.
  if (request.Get("op").AsString() == ops::kVerify &&
      !response.value().Get("consistent").AsBool(true)) {
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fastofd

int main(int argc, char** argv) {
  using namespace fastofd;
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags = Flags::Parse(argc - 1, argv + 1);
  if (command == "discover") return RunDiscover(flags);
  if (command == "verify") return RunVerify(flags);
  if (command == "clean") return RunClean(flags);
  if (command == "gen") return RunGen(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "client") return RunClient(flags, flags.positional());
  return Usage();
}
