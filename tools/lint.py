#!/usr/bin/env python3
"""Repo-specific lint rules that neither the compiler nor clang-tidy enforce.

Rules (each can be suppressed on a specific line with `lint:allow(<rule>)`
in a trailing comment):

  raw-numeric-parse   std::sto*/strto*/ato* are banned outside
                      src/common/parse.h: they accept partial input and
                      (for ato*) hide overflow. Use ParseInt64/ParseDouble/
                      ParseIndex, which reject both.
  unchecked-rowid     static_cast<RowId>/<AttrId> of a wire-derived int64
                      must sit within a few lines of an explicit range
                      check (or ParseIndex) — narrowing 2^32 to 0 turns an
                      invalid request into a silent write to row 0.
  detached-thread     .detach() is banned: a detached thread outlives
                      shutdown and races destructors. Store the handle and
                      join it (see ServiceServer's reader reaping).
  nodiscard-status    Status and Result must keep their [[nodiscard]]
                      attribute so the compiler rejects swallowed errors.
  header-guard        Headers under src/ use FASTOFD_<PATH>_H_ guards.
  include-order       Within a block of consecutive #include lines, quoted
                      project includes are sorted and come after system
                      includes; a .cc file's first include is its own
                      header.

Usage: tools/lint.py [paths...]   (defaults to src tools tests bench fuzz
                                   examples)
Exit code 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import os
import re
import sys

DEFAULT_ROOTS = ["src", "tools", "tests", "bench", "fuzz", "examples"]

RAW_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|stof|stod|stold|"
    r"strtol|strtoll|strtoul|strtoull|strtof|strtod|strtold|"
    r"atoi|atol|atoll|atof)\s*\("
)
NARROW_CAST_RE = re.compile(r"static_cast<(?:RowId|AttrId)>\s*\(")
RANGE_CHECK_RE = re.compile(
    r"ParseIndex|num_rows|num_attrs|< 0|>= 0|FASTOFD_CHECK|in range|NextUint"
)
# How many preceding lines may hold the range check. Generous on purpose:
# the rule targets casts of wire-derived values with *no* validation in the
# surrounding logic, not casts far from (but guarded by) an early return.
RANGE_CHECK_WINDOW = 50
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
INCLUDE_RE = re.compile(r'^#include\s+(["<])([^">]+)[">]')
ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

# Files allowed to use raw numeric parsing: the checked helpers themselves.
RAW_PARSE_ALLOWED = {os.path.join("src", "common", "parse.h")}


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def is_comment(line):
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def lint_file(path, findings):
    rel = os.path.relpath(path)
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        findings.append((rel, 0, "io", str(e)))
        return

    check_raw_parse(rel, lines, findings)
    check_narrow_casts(rel, lines, findings)
    check_detach(rel, lines, findings)
    check_includes(rel, lines, findings)
    if rel.endswith(".h") and rel.startswith("src" + os.sep):
        check_header_guard(rel, lines, findings)
    if rel == os.path.join("src", "common", "status.h"):
        check_nodiscard(rel, lines, findings)


def check_raw_parse(rel, lines, findings):
    if rel in RAW_PARSE_ALLOWED:
        return
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "raw-numeric-parse"):
            continue
        if RAW_PARSE_RE.search(line):
            findings.append(
                (rel, i, "raw-numeric-parse",
                 "use common/parse.h (ParseInt64/ParseDouble/ParseIndex) "
                 "instead of raw numeric parsing")
            )


def check_narrow_casts(rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "unchecked-rowid"):
            continue
        if not NARROW_CAST_RE.search(line):
            continue
        window = lines[max(0, i - 1 - RANGE_CHECK_WINDOW): i + 1]
        if not any(RANGE_CHECK_RE.search(w) for w in window):
            findings.append(
                (rel, i, "unchecked-rowid",
                 "narrowing to RowId/AttrId without a nearby range check; "
                 "validate against num_rows()/num_attrs() (or ParseIndex) "
                 "first")
            )


def check_detach(rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "detached-thread"):
            continue
        if DETACH_RE.search(line):
            findings.append(
                (rel, i, "detached-thread",
                 "detached threads outlive shutdown; store the handle and "
                 "join it")
            )


def check_nodiscard(rel, lines, findings):
    text = "\n".join(lines)
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] Result"):
        if cls not in text:
            findings.append(
                (rel, 1, "nodiscard-status",
                 f"expected `{cls}`: the attribute is what makes dropped "
                 "Status values a compile error")
            )


def expected_guard(rel):
    # src/ofd/incremental.h -> FASTOFD_OFD_INCREMENTAL_H_
    inner = rel[len("src" + os.sep):]
    token = re.sub(r"[^A-Za-z0-9]", "_", inner.upper())
    return f"FASTOFD_{token}_"


def check_header_guard(rel, lines, findings):
    guard = expected_guard(rel)
    text = "\n".join(lines)
    if (f"#ifndef {guard}" not in text or f"#define {guard}" not in text
            or f"#endif  // {guard}" not in text):
        findings.append(
            (rel, 1, "header-guard",
             f"expected guard {guard} (#ifndef/#define/#endif  // {guard})")
        )


def check_includes(rel, lines, findings):
    if not rel.endswith(".cc"):
        return
    blocks = []  # list of (start_line, [(kind, path)])
    current = None
    for i, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if m:
            if current is None:
                current = (i, [])
                blocks.append(current)
            current[1].append((m.group(1), m.group(2), i, line))
        else:
            # Any non-include line — blank lines included — ends the block:
            # blank-separated groups (own header / system / project) are
            # each checked on their own.
            current = None

    if not blocks:
        return

    # A .cc file's first include is its own header (when one exists).
    base = os.path.splitext(rel)[0]
    own = None
    for root in ("src", "fuzz", "tools"):
        if rel.startswith(root + os.sep):
            candidate = base + ".h"
            if os.path.exists(candidate):
                own = os.path.relpath(candidate, start=os.path.dirname(rel)) \
                    if root != "src" else candidate[len("src" + os.sep):]
                own = own.replace(os.sep, "/")
    first_kind, first_path, first_line, _ = blocks[0][1][0]
    if own is not None and (first_kind != '"' or first_path != own):
        findings.append(
            (rel, first_line, "include-order",
             f'first include must be the file\'s own header "{own}"')
        )

    for _, entries in blocks:
        # Within one contiguous block: system includes (<>) precede project
        # includes (""), and each group is sorted.
        kinds = [k for k, _, _, _ in entries]
        if '"' in kinds and "<" in kinds and kinds.index('"') < (
                len(kinds) - 1 - kinds[::-1].index("<")):
            sysline = entries[len(kinds) - 1 - kinds[::-1].index("<")][2]
            findings.append(
                (rel, sysline, "include-order",
                 "system includes (<...>) must precede project includes "
                 '("...") within a block')
            )
            continue
        for kind in ('"', "<"):
            grp = [(p, ln) for k, p, ln, raw in entries
                   if k == kind and not allowed(raw, "include-order")]
            # Skip the own-header include, which leads its block by rule.
            if kind == '"' and own is not None and grp and grp[0][0] == own:
                grp = grp[1:]
            paths = [p for p, _ in grp]
            if paths != sorted(paths):
                bad = next(ln for j, (p, ln) in enumerate(grp)
                           if paths[j] != sorted(paths)[j])
                findings.append(
                    (rel, bad, "include-order",
                     "includes within a block must be sorted")
                )
                break


def main(argv):
    roots = argv[1:] or DEFAULT_ROOTS
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    if not files:
        print("lint.py: no input files", file=sys.stderr)
        return 2

    findings = []
    for path in sorted(files):
        lint_file(path, findings)

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    print(f"lint.py: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
