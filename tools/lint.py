#!/usr/bin/env python3
"""Repo-specific lint rules that neither the compiler nor clang-tidy enforce.

Rules (each can be suppressed on a specific line with `lint:allow(<rule>)`
in a trailing comment):

  raw-numeric-parse   std::sto*/strto*/ato* are banned outside
                      src/common/parse.h: they accept partial input and
                      (for ato*) hide overflow. Use ParseInt64/ParseDouble/
                      ParseIndex, which reject both.
  unchecked-rowid     static_cast<RowId>/<AttrId> of a wire-derived int64
                      must sit within a few lines of an explicit range
                      check (or ParseIndex) — narrowing 2^32 to 0 turns an
                      invalid request into a silent write to row 0.
  detached-thread     .detach() is banned: a detached thread outlives
                      shutdown and races destructors. Store the handle and
                      join it (see ServiceServer's reader reaping).
  nodiscard-status    Status and Result must keep their [[nodiscard]]
                      attribute so the compiler rejects swallowed errors.
  header-guard        Headers under src/ use FASTOFD_<PATH>_H_ guards.
  include-order       Within a block of consecutive #include lines, quoted
                      project includes are sorted and come after system
                      includes; a .cc file's first include is its own
                      header.
  raw-sync            std::mutex/lock_guard/unique_lock/condition_variable
                      (and friends, plus their headers) are banned outside
                      src/common/sync.h. Use the annotated Mutex/MutexLock/
                      CondVar wrappers so Clang Thread Safety Analysis sees
                      every lock.
  dangling-capture    A by-reference lambda ([&...]) handed to Submit() in
                      non-test code must be joined by a same-scope Wait()
                      before the captures' scope closes — otherwise the
                      task can outlive what it captured.
  wait-under-lock     TaskGroup::Wait()/ParallelFor*/OrderedReduce while a
                      MutexLock is live in an enclosing scope: the caller
                      may help-execute arbitrary queued tasks, and any of
                      them taking the held lock deadlocks. (CondVar waits
                      release their mutex and are fine.)

Usage: tools/lint.py [--self-test] [--fix-dry-run] [paths...]
                                  (paths default to src tools tests bench
                                   fuzz examples)
  --self-test     run the built-in positive/negative cases for the
                  concurrency rules and exit
  --fix-dry-run   after each finding, also print the offending source line
                  (anchored file:line) so fixes can be applied by hand
Exit code 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import os
import re
import sys

DEFAULT_ROOTS = ["src", "tools", "tests", "bench", "fuzz", "examples"]

RAW_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|stof|stod|stold|"
    r"strtol|strtoll|strtoul|strtoull|strtof|strtod|strtold|"
    r"atoi|atol|atoll|atof)\s*\("
)
NARROW_CAST_RE = re.compile(r"static_cast<(?:RowId|AttrId)>\s*\(")
RANGE_CHECK_RE = re.compile(
    r"ParseIndex|num_rows|num_attrs|< 0|>= 0|FASTOFD_CHECK|in range|NextUint"
)
# How many preceding lines may hold the range check. Generous on purpose:
# the rule targets casts of wire-derived values with *no* validation in the
# surrounding logic, not casts far from (but guarded by) an early return.
RANGE_CHECK_WINDOW = 50
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
INCLUDE_RE = re.compile(r'^#include\s+(["<])([^">]+)[">]')
ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

# Files allowed to use raw numeric parsing: the checked helpers themselves.
RAW_PARSE_ALLOWED = {os.path.join("src", "common", "parse.h")}

RAW_SYNC_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)
RAW_SYNC_INCLUDE_RE = re.compile(
    r"^#include\s+<(?:mutex|condition_variable|shared_mutex)>"
)
# The annotated wrappers themselves: the one place raw primitives may live.
RAW_SYNC_ALLOWED = {os.path.join("src", "common", "sync.h")}

SUBMIT_REF_CAPTURE_RE = re.compile(r"\bSubmit\s*\(\s*\[\s*&")
WAIT_CALL_RE = re.compile(r"\.\s*Wait\s*\(\s*\)")
# Calls that may help-execute arbitrary queued tasks on the calling thread.
BLOCKING_EXEC_RE = re.compile(
    r"\.\s*Wait\s*\(\s*\)|\bParallelForGrained\s*\(|\bParallelFor\s*\(|"
    r"\bOrderedReduce\s*\("
)
MUTEX_LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")
UNLOCK_CALL_RE = re.compile(r"\.\s*Unlock\s*\(\s*\)")
STRING_LIT_RE = re.compile(r'"(?:\\.|[^"\\])*"')
CHAR_LIT_RE = re.compile(r"'(?:\\.|[^'\\])*'")


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def is_comment(line):
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def code_text(line):
    """The line with string/char literals emptied and // comments dropped,
    so brace counting and keyword matching ignore quoted text."""
    line = CHAR_LIT_RE.sub("''", STRING_LIT_RE.sub('""', line))
    cut = line.find("//")
    return line[:cut] if cut != -1 else line


def line_depths(lines):
    """Brace-nesting depth *before* each line (index-aligned with lines)."""
    depths = []
    depth = 0
    for line in lines:
        depths.append(depth)
        text = code_text(line)
        depth = max(0, depth + text.count("{") - text.count("}"))
    return depths


def lint_file(path, findings):
    rel = os.path.relpath(path)
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        findings.append((rel, 0, "io", str(e)))
        return

    check_raw_parse(rel, lines, findings)
    check_narrow_casts(rel, lines, findings)
    check_detach(rel, lines, findings)
    check_raw_sync(rel, lines, findings)
    check_dangling_capture(rel, lines, findings)
    check_wait_under_lock(rel, lines, findings)
    check_includes(rel, lines, findings)
    if rel.endswith(".h") and rel.startswith("src" + os.sep):
        check_header_guard(rel, lines, findings)
    if rel == os.path.join("src", "common", "status.h"):
        check_nodiscard(rel, lines, findings)


def check_raw_parse(rel, lines, findings):
    if rel in RAW_PARSE_ALLOWED:
        return
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "raw-numeric-parse"):
            continue
        if RAW_PARSE_RE.search(line):
            findings.append(
                (rel, i, "raw-numeric-parse",
                 "use common/parse.h (ParseInt64/ParseDouble/ParseIndex) "
                 "instead of raw numeric parsing")
            )


def check_narrow_casts(rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "unchecked-rowid"):
            continue
        if not NARROW_CAST_RE.search(line):
            continue
        window = lines[max(0, i - 1 - RANGE_CHECK_WINDOW): i + 1]
        if not any(RANGE_CHECK_RE.search(w) for w in window):
            findings.append(
                (rel, i, "unchecked-rowid",
                 "narrowing to RowId/AttrId without a nearby range check; "
                 "validate against num_rows()/num_attrs() (or ParseIndex) "
                 "first")
            )


def check_detach(rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "detached-thread"):
            continue
        if DETACH_RE.search(line):
            findings.append(
                (rel, i, "detached-thread",
                 "detached threads outlive shutdown; store the handle and "
                 "join it")
            )


def check_nodiscard(rel, lines, findings):
    text = "\n".join(lines)
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] Result"):
        if cls not in text:
            findings.append(
                (rel, 1, "nodiscard-status",
                 f"expected `{cls}`: the attribute is what makes dropped "
                 "Status values a compile error")
            )


def check_raw_sync(rel, lines, findings):
    if rel in RAW_SYNC_ALLOWED:
        return
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "raw-sync"):
            continue
        if RAW_SYNC_INCLUDE_RE.match(line) or RAW_SYNC_TYPE_RE.search(
                code_text(line)):
            findings.append(
                (rel, i, "raw-sync",
                 "raw std synchronization primitive; use the annotated "
                 "Mutex/MutexLock/CondVar wrappers from common/sync.h so "
                 "thread-safety analysis sees the lock")
            )


def check_dangling_capture(rel, lines, findings):
    # Test code routinely submits-and-waits inside one test body; the rule
    # targets library/tool code where a submitted task can escape its scope.
    if rel.startswith("tests" + os.sep):
        return
    depths = line_depths(lines)
    for i, line in enumerate(lines, 1):
        if is_comment(line) or allowed(line, "dangling-capture"):
            continue
        if not SUBMIT_REF_CAPTURE_RE.search(code_text(line)):
            continue
        d0 = depths[i - 1]
        # The group (and the captured locals) live at or below d0; once the
        # depth drops below d0 - 1 the surrounding scope has closed without
        # a join.
        floor = max(1, d0 - 1)
        joined = False
        for j in range(i, len(lines)):
            if depths[j] < floor:
                break
            if depths[j] <= d0 and WAIT_CALL_RE.search(code_text(lines[j])):
                joined = True
                break
        if not joined:
            findings.append(
                (rel, i, "dangling-capture",
                 "by-reference capture submitted to the pool without a "
                 "same-scope Wait(); the task can outlive its captures")
            )


def check_wait_under_lock(rel, lines, findings):
    depth = 0
    active = []  # [(decl_depth, decl_line), ...] innermost last
    for i, line in enumerate(lines, 1):
        text = code_text(line)
        if not is_comment(line):
            if (active and BLOCKING_EXEC_RE.search(text)
                    and not allowed(line, "wait-under-lock")):
                findings.append(
                    (rel, i, "wait-under-lock",
                     "blocking task execution (Wait/ParallelFor/"
                     "OrderedReduce) while the MutexLock from line "
                     f"{active[-1][1]} is held; a help-executed task taking "
                     "that lock deadlocks")
                )
            if active and UNLOCK_CALL_RE.search(text):
                active.pop()
            m = MUTEX_LOCK_DECL_RE.search(text)
            if m:
                prefix = text[:m.start()]
                decl_depth = max(
                    0, depth + prefix.count("{") - prefix.count("}"))
                active.append((decl_depth, i))
        depth = max(0, depth + text.count("{") - text.count("}"))
        while active and depth < active[-1][0]:
            active.pop()


def expected_guard(rel):
    # src/ofd/incremental.h -> FASTOFD_OFD_INCREMENTAL_H_
    inner = rel[len("src" + os.sep):]
    token = re.sub(r"[^A-Za-z0-9]", "_", inner.upper())
    return f"FASTOFD_{token}_"


def check_header_guard(rel, lines, findings):
    guard = expected_guard(rel)
    text = "\n".join(lines)
    if (f"#ifndef {guard}" not in text or f"#define {guard}" not in text
            or f"#endif  // {guard}" not in text):
        findings.append(
            (rel, 1, "header-guard",
             f"expected guard {guard} (#ifndef/#define/#endif  // {guard})")
        )


def check_includes(rel, lines, findings):
    if not rel.endswith(".cc"):
        return
    blocks = []  # list of (start_line, [(kind, path)])
    current = None
    for i, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if m:
            if current is None:
                current = (i, [])
                blocks.append(current)
            current[1].append((m.group(1), m.group(2), i, line))
        else:
            # Any non-include line — blank lines included — ends the block:
            # blank-separated groups (own header / system / project) are
            # each checked on their own.
            current = None

    if not blocks:
        return

    # A .cc file's first include is its own header (when one exists).
    base = os.path.splitext(rel)[0]
    own = None
    for root in ("src", "fuzz", "tools"):
        if rel.startswith(root + os.sep):
            candidate = base + ".h"
            if os.path.exists(candidate):
                own = os.path.relpath(candidate, start=os.path.dirname(rel)) \
                    if root != "src" else candidate[len("src" + os.sep):]
                own = own.replace(os.sep, "/")
    first_kind, first_path, first_line, _ = blocks[0][1][0]
    if own is not None and (first_kind != '"' or first_path != own):
        findings.append(
            (rel, first_line, "include-order",
             f'first include must be the file\'s own header "{own}"')
        )

    for _, entries in blocks:
        # Within one contiguous block: system includes (<>) precede project
        # includes (""), and each group is sorted.
        kinds = [k for k, _, _, _ in entries]
        if '"' in kinds and "<" in kinds and kinds.index('"') < (
                len(kinds) - 1 - kinds[::-1].index("<")):
            sysline = entries[len(kinds) - 1 - kinds[::-1].index("<")][2]
            findings.append(
                (rel, sysline, "include-order",
                 "system includes (<...>) must precede project includes "
                 '("...") within a block')
            )
            continue
        for kind in ('"', "<"):
            grp = [(p, ln) for k, p, ln, raw in entries
                   if k == kind and not allowed(raw, "include-order")]
            # Skip the own-header include, which leads its block by rule.
            if kind == '"' and own is not None and grp and grp[0][0] == own:
                grp = grp[1:]
            paths = [p for p, _ in grp]
            if paths != sorted(paths):
                bad = next(ln for j, (p, ln) in enumerate(grp)
                           if paths[j] != sorted(paths)[j])
                findings.append(
                    (rel, bad, "include-order",
                     "includes within a block must be sorted")
                )
                break


# (description, synthetic path, source, expected rule names). Each
# concurrency rule gets at least one positive, one negative, and one
# suppression/exemption case; keep these in sync with the rule docstrings.
SELF_TESTS = [
    # --- raw-sync ---
    ("raw-sync: std::mutex member", "src/foo/a.h",
     "class A {\n  std::mutex mu_;\n};\n",
     ["raw-sync"]),
    ("raw-sync: lock_guard use", "src/foo/a.cc",
     "void F() {\n  std::lock_guard<std::mutex> lock(mu_);\n}\n",
     ["raw-sync"]),
    ("raw-sync: banned include", "src/foo/a.cc",
     "#include <condition_variable>\n",
     ["raw-sync"]),
    ("raw-sync: annotated wrappers pass", "src/foo/a.cc",
     "void F() {\n  MutexLock lock(mu_);\n  items_.clear();\n}\n",
     []),
    ("raw-sync: sync.h itself is exempt",
     os.path.join("src", "common", "sync.h"),
     "class Mutex {\n  std::mutex mu_;\n};\n",
     []),
    ("raw-sync: lint:allow suppression", "src/foo/a.cc",
     "std::mutex mu_;  // lint:allow(raw-sync)\n",
     []),
    ("raw-sync: name in comment passes", "src/foo/a.cc",
     "// std::mutex is banned here\nMutex mu_;\n",
     []),
    # --- dangling-capture ---
    ("dangling-capture: submit without wait", "src/foo/a.cc",
     "void F(ThreadPool* pool) {\n"
     "  int local = 0;\n"
     "  TaskGroup group(pool);\n"
     "  group.Submit([&local](int w) { local += w; });\n"
     "}\n",
     ["dangling-capture"]),
    ("dangling-capture: same-scope wait passes", "src/foo/a.cc",
     "void F(ThreadPool* pool) {\n"
     "  int local = 0;\n"
     "  TaskGroup group(pool);\n"
     "  group.Submit([&local](int w) { local += w; });\n"
     "  group.Wait();\n"
     "}\n",
     []),
    ("dangling-capture: wait after submit loop passes", "src/foo/a.cc",
     "void F(ThreadPool* pool, size_t n) {\n"
     "  TaskGroup group(pool);\n"
     "  for (size_t b = 0; b < n; ++b) {\n"
     "    group.Submit([&n, b](int) { Use(n, b); });\n"
     "  }\n"
     "  group.Wait();\n"
     "}\n",
     []),
    ("dangling-capture: by-value capture passes", "src/foo/a.cc",
     "void F(ThreadPool* pool) {\n"
     "  TaskGroup group(pool);\n"
     "  group.Submit([n](int w) { Use(n, w); });\n"
     "}\n",
     []),
    ("dangling-capture: test code is exempt",
     os.path.join("tests", "a_test.cc"),
     "void F(ThreadPool* pool) {\n"
     "  TaskGroup group(pool);\n"
     "  group.Submit([&](int w) { Use(w); });\n"
     "}\n",
     []),
    ("dangling-capture: lint:allow suppression", "src/foo/a.cc",
     "void F(ThreadPool* pool) {\n"
     "  TaskGroup group(pool);\n"
     "  group.Submit([&](int w) { Use(w); });  // lint:allow(dangling-capture)\n"
     "}\n",
     []),
    # --- wait-under-lock ---
    ("wait-under-lock: group wait under lock", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  group.Wait();\n"
     "}\n",
     ["wait-under-lock"]),
    ("wait-under-lock: ParallelFor under lock", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  pool_.ParallelFor(n, [](size_t, int) {});\n"
     "}\n",
     ["wait-under-lock"]),
    ("wait-under-lock: lock scope closed passes", "src/foo/a.cc",
     "void F() {\n"
     "  {\n"
     "    MutexLock lock(mu_);\n"
     "    items_.clear();\n"
     "  }\n"
     "  group.Wait();\n"
     "}\n",
     []),
    ("wait-under-lock: early Unlock passes", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  lock.Unlock();\n"
     "  group.Wait();\n"
     "}\n",
     []),
    ("wait-under-lock: condvar wait has args, passes", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  while (!ready_) cv_.Wait(mu_);\n"
     "}\n",
     []),
    ("wait-under-lock: next function not poisoned", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  items_.clear();\n"
     "}\n"
     "void G() {\n"
     "  group.Wait();\n"
     "}\n",
     []),
    ("wait-under-lock: lint:allow suppression", "src/foo/a.cc",
     "void F() {\n"
     "  MutexLock lock(mu_);\n"
     "  group.Wait();  // lint:allow(wait-under-lock)\n"
     "}\n",
     []),
]


def run_self_test():
    failures = 0
    for desc, rel, source, expected in SELF_TESTS:
        findings = []
        lines = source.splitlines()
        check_raw_sync(rel, lines, findings)
        check_dangling_capture(rel, lines, findings)
        check_wait_under_lock(rel, lines, findings)
        got = sorted({rule for _, _, rule, _ in findings})
        want = sorted(set(expected))
        if got != want:
            print(f"self-test FAIL: {desc}: expected {want}, got {got}")
            failures += 1
    print(f"lint.py --self-test: {len(SELF_TESTS)} cases, "
          f"{failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if "--self-test" in args:
        return run_self_test()
    fix_dry_run = "--fix-dry-run" in args
    roots = [a for a in args if a != "--fix-dry-run"] or DEFAULT_ROOTS
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    if not files:
        print("lint.py: no input files", file=sys.stderr)
        return 2

    findings = []
    file_lines = {}
    for path in sorted(files):
        lint_file(path, findings)
        if fix_dry_run:
            try:
                with open(path, encoding="utf-8") as f:
                    file_lines[os.path.relpath(path)] = f.read().splitlines()
            except (OSError, UnicodeDecodeError):
                pass

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
        if fix_dry_run:
            src = file_lines.get(rel, [])
            if 0 < line <= len(src):
                print(f"  {rel}:{line} | {src[line - 1].strip()}")
    print(f"lint.py: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
